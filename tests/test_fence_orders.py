"""Wait-mask selectivity: S-Fence composes with lfence/sfence-style
refinement (Section VII: 'the idea of S-Fence can be combined with the
various finer fences').

A fence with ``WAIT_STORES`` orders prior stores only; ``WAIT_LOADS``
prior loads only.  These tests check both the timing side (what stalls)
and the architectural side (which litmus outcomes are forbidden).
"""

from repro.isa.instructions import (
    Fence,
    FenceKind,
    Load,
    Store,
    WAIT_BOTH,
    WAIT_LOADS,
    WAIT_STORES,
)
from repro.isa.program import ops_program
from repro.litmus.tests import explore, message_passing, store_buffering
from repro.sim.config import MemoryModel, SimConfig
from repro.sim.simulator import run_program

FAST = [0, 1, 5, 40, 150, 320]


def stall_of(ops):
    res = run_program(ops_program([ops]), SimConfig(n_cores=1))
    return res.stats.cores[0].fence_stall_cycles


def test_store_wait_ignores_pending_loads():
    loads_pending = [Load(4096), Fence(FenceKind.GLOBAL, WAIT_STORES)]
    stores_pending = [Store(4096, 1), Fence(FenceKind.GLOBAL, WAIT_STORES)]
    assert stall_of(loads_pending) < 10
    assert stall_of(stores_pending) > 250


def test_load_wait_ignores_pending_stores():
    loads_pending = [Load(4096), Fence(FenceKind.GLOBAL, WAIT_LOADS)]
    stores_pending = [Store(4096, 1), Fence(FenceKind.GLOBAL, WAIT_LOADS)]
    assert stall_of(loads_pending) > 250
    assert stall_of(stores_pending) < 10


def test_wait_both_waits_for_everything():
    ops = [Load(4096), Store(8192, 1), Fence(FenceKind.GLOBAL, WAIT_BOTH)]
    assert stall_of(ops) > 250


def test_scoped_wait_masks_compose():
    """A class-scope store-store fence ignores in-scope pending loads."""
    from repro.isa.instructions import FsEnd, FsStart

    ops = [
        FsStart(1),
        Load(4096),
        Fence(FenceKind.CLASS, WAIT_STORES),
        FsEnd(1),
    ]
    assert stall_of(ops) < 10


def test_sb_not_forbidden_by_load_only_fence():
    """Store buffering needs store->load ordering; a load-load fence
    leaves the relaxed outcome observable."""

    def build_with_ll_fence(env, d0, d1):
        base = store_buffering(fenced=True)(env, d0, d1)
        return base

    # a full fence forbids it ...
    fenced = explore(store_buffering(fenced=True), "SB", MemoryModel.RMO, FAST)
    assert not fenced.observed((0, 0))
    # ... but replacing it with WAIT_LOADS does not
    def ll_variant(env, d0, d1):
        from repro.isa.program import Program

        x = env.var("x")
        y = env.var("y")
        out = {}

        def t0(tid):
            from repro.isa.instructions import Compute

            if d0:
                yield Compute(d0)
            yield x.store(1)
            yield Fence(FenceKind.GLOBAL, WAIT_LOADS)  # does not order the store
            out[0] = yield y.load()

        def t1(tid):
            from repro.isa.instructions import Compute

            if d1:
                yield Compute(d1)
            yield y.store(1)
            yield Fence(FenceKind.GLOBAL, WAIT_LOADS)
            out[1] = yield x.load()

        return Program([t0, t1]), lambda: (out[0], out[1])

    res = explore(ll_variant, "SB+llfence", MemoryModel.RMO, FAST)
    assert res.observed((0, 0))


def test_mp_forbidden_by_store_only_fence():
    """Message passing needs only store->store order in the writer."""
    res = explore(message_passing(fenced=True), "MP", MemoryModel.RMO, FAST)
    assert not res.observed((1, 0))
