"""In-window speculation (Section VI-B, T+/S+) behaviour tests."""

import pytest

from repro.isa.instructions import (
    Cas,
    Compute,
    Fence,
    FenceKind,
    FsEnd,
    FsStart,
    Load,
    Store,
    WAIT_BOTH,
    WAIT_STORES,
)
from repro.isa.program import Program, ops_program
from repro.sim.config import SimConfig
from repro.sim.simulator import run_program


def run_ops(ops, **cfg):
    cfg.setdefault("n_cores", 1)
    cfg.setdefault("in_window_speculation", True)
    return run_program(ops_program([ops]), SimConfig(**cfg))


def test_speculation_reduces_fence_stalls():
    ops = [Store(4096, 1), Fence(FenceKind.GLOBAL, WAIT_BOTH), Load(200), Compute(50)]
    spec = run_ops(list(ops))
    nospec = run_ops(list(ops), in_window_speculation=False)
    assert spec.stats.cores[0].fence_stall_cycles < nospec.stats.cores[0].fence_stall_cycles
    assert spec.cycles < nospec.cycles


def test_speculative_fence_still_orders_stores():
    """A store after a speculative fence may not become visible before
    the pre-fence store: the held-store discipline."""
    observed = []

    def writer(tid):
        yield Store(4096, 1)                 # slow (cold miss)
        yield Fence(FenceKind.GLOBAL, WAIT_STORES)
        yield Store(4104, 1)                 # would drain fast if not held
        yield Compute(600)

    def reader(tid):
        while True:
            b = yield Load(4104)
            if b:
                a = yield Load(4096)
                observed.append((a, b))
                return

    res = run_program(
        Program([writer, reader]),
        SimConfig(n_cores=2, in_window_speculation=True),
    )
    assert observed == [(1, 1)]  # never flag-without-data


def test_non_speculable_fence_blocks_dispatch():
    ops_spec = [Store(4096, 1), Fence(FenceKind.GLOBAL, speculable=True), Load(200)]
    ops_nospec = [Store(4096, 1), Fence(FenceKind.GLOBAL, speculable=False), Load(200)]
    spec = run_ops(list(ops_spec))
    blocked = run_ops(list(ops_nospec))
    assert blocked.stats.cores[0].fence_stall_cycles > spec.stats.cores[0].fence_stall_cycles


def test_cas_never_passes_open_fence():
    """A CAS publishes at dispatch, so it must wait for open fences."""
    def body(tid):
        yield Store(4096, 7)
        yield Fence(FenceKind.GLOBAL, WAIT_STORES)
        ok = yield Cas(100, 0, 1)
        assert ok

    res = run_program(Program([body]), SimConfig(n_cores=1, in_window_speculation=True))
    # the CAS had to sit out the fence -> counted as fence stall
    assert res.stats.cores[0].fence_stall_cycles > 100


def test_scoped_speculative_fence_completes_early():
    """A class fence's countdown covers only its scope: it completes
    while an out-of-scope cold store is still draining."""
    ops = [
        Store(4096, 1),                      # out of scope, slow
        FsStart(1),
        Store(100, 2),                       # in scope
        Fence(FenceKind.CLASS, WAIT_STORES),
        Load(200),
        FsEnd(1),
        Compute(5),
    ]
    scoped = run_ops(list(ops))
    trad = run_ops(
        [
            Store(4096, 1),
            Store(100, 2),
            Fence(FenceKind.GLOBAL, WAIT_STORES),
            Load(200),
            Compute(5),
        ]
    )
    assert scoped.cycles <= trad.cycles


def test_fences_complete_oldest_first():
    """A younger fence's held store may not drain while an older fence
    is still open, even if the younger fence's scope is clear."""
    observed = []

    def writer(tid):
        yield Store(4096, 1)                       # slow, global scope
        yield Fence(FenceKind.GLOBAL, WAIT_STORES)  # fence A (waits long)
        yield FsStart(1)
        yield Fence(FenceKind.CLASS, WAIT_STORES)   # fence B (scope empty)
        yield Store(4104, 1)                        # held behind A via B
        yield FsEnd(1)
        yield Compute(600)

    def reader(tid):
        while True:
            b = yield Load(4104)
            if b:
                a = yield Load(4096)
                observed.append((a, b))
                return

    run_program(
        Program([writer, reader]),
        SimConfig(n_cores=2, in_window_speculation=True),
    )
    assert observed == [(1, 1)]


def test_sfence_early_issue_stat_in_spec_mode():
    ops = [
        Store(4096, 1),
        FsStart(1),
        Fence(FenceKind.CLASS, WAIT_STORES),
        FsEnd(1),
    ]
    res = run_ops(list(ops))
    assert res.stats.cores[0].sfence_early_issues == 1


def test_program_drains_all_holds_at_exit():
    ops = [
        Store(4096, 1),
        Fence(FenceKind.GLOBAL, WAIT_STORES),
        Store(4104, 2),
    ]
    res = run_ops(list(ops))
    assert res.memory.read_global(4104) == 2
