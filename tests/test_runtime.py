"""Tests for the runtime 'language/compiler' layer."""

import pytest

from repro.isa.instructions import Cas, FenceKind, Load, Store, WAIT_STORES
from repro.isa.program import Program
from repro.runtime.address_space import AddressSpace
from repro.runtime.lang import Env, ScopedStructure, cid_of, scoped_method
from repro.sim.config import SimConfig


# ------------------------------------------------------------- address space
def test_alloc_disjoint_and_line_aligned():
    space = AddressSpace(4096, 8)
    a = space.alloc("a", 3)
    b = space.alloc("b", 5)
    assert a % 8 == 0 and b % 8 == 0
    assert b >= a + 3
    assert space.owner_of(a) == "a"
    assert space.owner_of(b + 4) == "b"


def test_alloc_duplicate_name_rejected():
    space = AddressSpace(4096, 8)
    space.alloc("a", 1)
    with pytest.raises(ValueError):
        space.alloc("a", 1)


def test_alloc_exhaustion():
    space = AddressSpace(64, 8)
    with pytest.raises(MemoryError):
        space.alloc("big", 100)


def test_address_zero_reserved():
    space = AddressSpace(4096, 8)
    assert space.alloc("first", 1) != 0


# --------------------------------------------------------------------- env
def test_var_ops_and_host_access():
    env = Env(SimConfig(n_cores=1))
    v = env.var("x", init=9)
    assert v.peek() == 9
    op = v.load()
    assert isinstance(op, Load) and op.addr == v.addr
    st = v.store(3)
    assert isinstance(st, Store) and st.value == 3
    c = v.cas(9, 10)
    assert isinstance(c, Cas) and c.expected == 9


def test_flagged_var_builds_flagged_ops():
    env = Env(SimConfig(n_cores=1))
    v = env.var("x", flagged=True)
    assert v.load().flagged and v.store(1).flagged and v.cas(0, 1).flagged


def test_array_bounds_checked():
    env = Env(SimConfig(n_cores=1))
    arr = env.array("a", 4)
    with pytest.raises(IndexError):
        arr.load(4)
    with pytest.raises(IndexError):
        arr.store(-1, 0)


def test_strided_array_layout():
    env = Env(SimConfig(n_cores=1))
    wpl = env.config.words_per_line
    arr = env.line_array("a", 4)
    assert arr.addr_of(1) - arr.addr_of(0) == wpl
    arr.poke(2, 5)
    assert arr.peek(2) == 5
    assert env.memory.read_global(arr.addr_of(2)) == 5


def test_private_array_distinct_per_thread():
    env = Env(SimConfig(n_cores=2))
    a0 = env.private_array("p", 0, 16)
    a1 = env.private_array("p", 1, 16)
    assert a0.base != a1.base


# ------------------------------------------------------------- scoped classes
class Thing(ScopedStructure):
    def __init__(self, env, scope=FenceKind.CLASS):
        super().__init__(env, "thing", scope)
        self.a = self.svar("a")

    @scoped_method
    def poke_it(self, value):
        yield self.a.store(value)
        yield self.fence(WAIT_STORES)
        return value * 2


def test_cid_is_stable_per_class():
    assert cid_of(Thing) == cid_of(Thing)
    class Other(ScopedStructure):
        pass
    assert cid_of(Other) != cid_of(Thing)


def test_scoped_method_wraps_with_fs_ops():
    env = Env(SimConfig(n_cores=1))
    thing = Thing(env)
    ops = list(thing.poke_it(3))
    from repro.isa.instructions import FsEnd, FsStart

    assert isinstance(ops[0], FsStart) and ops[0].cid == thing.cid
    assert isinstance(ops[-1], FsEnd) and ops[-1].cid == thing.cid


def test_scoped_method_emits_fs_end_on_early_return():
    class Early(ScopedStructure):
        @scoped_method
        def maybe(self, flag):
            if flag:
                return 1
            yield self.fence()
            return 2

    env = Env(SimConfig(n_cores=1))
    e = Early(env, "early")
    ops = list(e.maybe(True))
    from repro.isa.instructions import FsEnd, FsStart

    assert isinstance(ops[0], FsStart)
    assert isinstance(ops[-1], FsEnd)


def test_scoped_method_return_value_via_yield_from():
    env = Env(SimConfig(n_cores=1))
    thing = Thing(env)

    got = {}

    def body(tid):
        got["rv"] = yield from thing.poke_it(21)

    env.run(Program([body]))
    assert got["rv"] == 42
    assert thing.a.peek() == 21


def test_structure_scope_controls_fence_kind_and_flags():
    env = Env(SimConfig(n_cores=1))
    c = Thing(env, scope=FenceKind.CLASS)
    assert c.fence().kind is FenceKind.CLASS
    assert not c.a.flagged

    class SetThing(Thing):
        def __init__(self, env):
            ScopedStructure.__init__(self, env, "setthing", FenceKind.SET)
            self.a = self.svar("a")

    s = SetThing(env)
    assert s.fence().kind is FenceKind.SET
    assert s.a.flagged


def test_warm_requests_applied_at_simulator_build():
    env = Env(SimConfig(n_cores=1))
    arr = env.line_array("warmme", 8)
    env.request_warm(arr, 0)
    sim = env.simulator(Program([lambda tid: iter(())]))
    assert sim.hierarchy.resident_in_l2(arr.addr_of(0))
    assert sim.hierarchy.resident_in_l2(arr.addr_of(7))
