"""Unit tests for the reorder buffer and store buffer models."""

import pytest

from repro.cpu.rob import K_LOAD, K_STORE, ReorderBuffer, RobEntry
from repro.cpu.store_buffer import S_INFLIGHT, S_WAITING, StoreBuffer


# ---------------------------------------------------------------------- ROB
def test_rob_in_order():
    rob = ReorderBuffer(4)
    a = RobEntry(K_LOAD, 0)
    b = RobEntry(K_STORE, 1)
    rob.push(a)
    rob.push(b)
    assert rob.head() is a
    assert rob.pop_head() is a
    assert rob.head() is b


def test_rob_capacity():
    rob = ReorderBuffer(2)
    rob.push(RobEntry(K_LOAD, 0))
    rob.push(RobEntry(K_LOAD, 0))
    assert rob.full
    with pytest.raises(OverflowError):
        rob.push(RobEntry(K_LOAD, 0))


def test_rob_entries_iteration_order():
    rob = ReorderBuffer(4)
    entries = [RobEntry(K_LOAD, i) for i in range(3)]
    for e in entries:
        rob.push(e)
    assert list(rob.entries()) == entries


def test_rob_invalid_capacity():
    with pytest.raises(ValueError):
        ReorderBuffer(0)


# --------------------------------------------------------------- store buffer
def test_sb_fifo_drain_order():
    sb = StoreBuffer(4, fifo_drain=True)
    a = sb.insert(10, 0)
    b = sb.insert(20, 0)
    assert sb.next_issuable() is a
    sb.mark_inflight(a, 100)
    # FIFO: nothing else may issue while the head is in flight
    assert sb.next_issuable() is None
    sb.remove(a)
    assert sb.next_issuable() is b


def test_sb_relaxed_drain_allows_youngest_first_completion():
    sb = StoreBuffer(4, fifo_drain=False)
    a = sb.insert(10, 0)
    b = sb.insert(20, 0)
    sb.mark_inflight(a, 300)
    # relaxed: b may issue while a is still in flight
    assert sb.next_issuable() is b


def test_sb_relaxed_same_address_stays_ordered():
    sb = StoreBuffer(4, fifo_drain=False)
    a = sb.insert(10, 0)
    b = sb.insert(10, 0)   # same address: must wait for a
    c = sb.insert(20, 0)
    assert sb.next_issuable() is a
    sb.mark_inflight(a, 300)
    assert sb.next_issuable() is c  # b blocked by same-address order
    sb.remove(a)
    sb.mark_inflight(c, 300)
    assert sb.next_issuable() is b


def test_sb_capacity():
    sb = StoreBuffer(1, fifo_drain=False)
    sb.insert(1, 0)
    assert sb.full
    with pytest.raises(OverflowError):
        sb.insert(2, 0)


def test_sb_held_entries_do_not_issue():
    sb = StoreBuffer(4, fifo_drain=False)
    a = sb.insert(10, 0, held=True)
    b = sb.insert(20, 0)
    assert sb.next_issuable() is b
    sb.mark_inflight(b, 10)
    assert sb.next_issuable() is None
    a.held = False
    assert sb.next_issuable() is a


def test_sb_held_blocks_same_address_younger():
    sb = StoreBuffer(4, fifo_drain=False)
    a = sb.insert(10, 0, held=True)
    b = sb.insert(10, 0)
    assert sb.next_issuable() is None  # b behind held same-address a


def test_sb_program_order_iteration():
    sb = StoreBuffer(4, fifo_drain=False)
    a = sb.insert(1, 0)
    b = sb.insert(2, 0)
    assert list(sb.entries()) == [a, b]
    sb.mark_inflight(b, 5)
    assert list(sb.inflight()) == [b]
    assert b.state == S_INFLIGHT and a.state == S_WAITING
