"""Litmus tests: the memory model exhibits and forbids the right outcomes."""

import pytest

from repro.isa.instructions import FenceKind
from repro.litmus.tests import (
    coherence_rr,
    explore,
    iriw,
    load_buffering,
    message_passing,
    store_buffering,
)
from repro.sim.config import MemoryModel

FAST = [0, 1, 5, 40, 150, 320]


def test_sb_relaxed_outcome_observable_under_rmo():
    res = explore(store_buffering(fenced=False), "SB", MemoryModel.RMO, FAST)
    assert res.observed((0, 0)), sorted(res.outcomes)


def test_sb_relaxed_outcome_observable_under_tso():
    res = explore(store_buffering(fenced=False), "SB", MemoryModel.TSO, FAST)
    assert res.observed((0, 0))


def test_sb_forbidden_under_sc():
    res = explore(store_buffering(fenced=False), "SB", MemoryModel.SC, FAST)
    assert not res.observed((0, 0)), sorted(res.outcomes)


def test_sb_forbidden_with_global_fence():
    res = explore(store_buffering(fenced=True), "SB", MemoryModel.RMO, FAST)
    assert not res.observed((0, 0))


def test_sb_forbidden_with_set_scope_fence():
    """The scoped fence suffices: both racing variables are in its set."""
    res = explore(
        store_buffering(fenced=True, fence_kind=FenceKind.SET),
        "SB",
        MemoryModel.RMO,
        FAST,
    )
    assert not res.observed((0, 0))


def test_mp_reordering_observable_under_rmo():
    res = explore(message_passing(fenced=False), "MP", MemoryModel.RMO, FAST)
    assert res.observed((1, 0)), sorted(res.outcomes)


def test_mp_forbidden_under_tso():
    """TSO drains the store buffer in order: no store-store reordering."""
    res = explore(message_passing(fenced=False), "MP", MemoryModel.TSO, FAST)
    assert not res.observed((1, 0))


def test_mp_forbidden_with_storestore_fence():
    res = explore(message_passing(fenced=True), "MP", MemoryModel.RMO, FAST)
    assert not res.observed((1, 0))


def test_mp_forbidden_with_set_scope_fence():
    res = explore(
        message_passing(fenced=True, fence_kind=FenceKind.SET),
        "MP",
        MemoryModel.RMO,
        FAST,
    )
    assert not res.observed((1, 0))


def test_mp_eventually_delivers():
    res = explore(message_passing(fenced=True), "MP", MemoryModel.RMO, FAST)
    assert res.observed((1, 42))


def test_lb_outcome_never_observed():
    """Documented deviation: loads bind in program order, so the LB
    relaxed outcome cannot occur even under RMO."""
    res = explore(load_buffering(), "LB", MemoryModel.RMO, FAST)
    assert not res.observed((1, 1))


def test_corr_same_location_coherence():
    res = explore(coherence_rr(), "CoRR", MemoryModel.RMO, FAST)
    assert (1, 0) not in res.outcomes  # never new-then-old


def test_iriw_readers_agree():
    """Multi-copy atomicity by construction: the forbidden IRIW outcome
    (readers disagreeing about the store order) never shows up."""
    res = explore(iriw(), "IRIW", MemoryModel.RMO, [0, 3, 11, 150])
    assert (1, 0, 1, 0) not in res.outcomes
