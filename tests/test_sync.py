"""Spinlock and barrier primitives under the relaxed simulator."""

import pytest

from repro.isa.instructions import Compute, FenceKind, Probe
from repro.isa.program import Program
from repro.runtime.lang import Env
from repro.runtime.sync import SenseBarrier, SpinLock
from repro.sim.config import SimConfig


# ----------------------------------------------------------------------- lock
def test_spinlock_mutual_exclusion():
    env = Env(SimConfig(n_cores=4))
    lock = SpinLock(env)
    state = {"inside": 0, "max": 0}

    def enter(cycle):
        state["inside"] += 1
        state["max"] = max(state["max"], state["inside"])

    def leave(cycle):
        state["inside"] -= 1

    def worker(tid):
        for i in range(6):
            yield from lock.lock()
            yield Probe(fn=enter)
            yield Compute(15)
            yield Probe(fn=leave)
            yield from lock.unlock()

    env.run(Program([worker] * 4), max_cycles=3_000_000)
    assert state["max"] == 1 and state["inside"] == 0
    assert lock.holder_view() == 0


def test_spinlock_publishes_critical_section_data():
    """With the default release fence, the next owner sees the previous
    owner's protected stores."""
    env = Env(SimConfig(n_cores=4))
    lock = SpinLock(env)
    shared = env.var("protected")
    reads = []

    def worker(tid):
        for _ in range(5):
            yield from lock.lock()
            v = yield shared.load()
            reads.append(v)
            yield shared.store(v + 1)
            yield from lock.unlock()

    env.run(Program([worker] * 4), max_cycles=3_000_000)
    # no lost updates: the 20 reads see 0..19 in order
    assert reads == list(range(20))
    assert shared.peek() == 20


def test_scoped_release_leaks_stale_protected_data():
    """unlock(publish_all=False) scopes the release fence to the lock
    word: the lock hand-off can beat a slow (cold-miss) protected store,
    so the next owner reads stale data -- Figure 1's 'user orders their
    own data' contract made visible.  The default full-fence release
    never leaks."""

    def run(publish_all: bool) -> int:
        env = Env(SimConfig(n_cores=4))
        lock = SpinLock(env, name="l", scope=FenceKind.SET)
        index = env.var("index")
        slots = env.line_array("slots", 64)  # each slot: a cold line
        stale = []

        def worker(tid):
            for _ in range(4):
                yield from lock.lock()
                idx = yield index.load()
                if idx > 0:
                    prev = yield slots.load(idx - 1)
                    if prev == 0:
                        stale.append(idx - 1)
                yield slots.store(idx, tid + 1)  # slow: cold-miss store
                yield index.store(idx + 1)       # fast: hot line
                yield from lock.unlock(publish_all=publish_all)

        env.run(Program([worker] * 4), max_cycles=3_000_000)
        return len(stale)

    assert run(publish_all=True) == 0, "full-fence release must never leak"
    assert run(publish_all=False) > 0, (
        "expected stale reads with a set-scope release fence"
    )


# -------------------------------------------------------------------- barrier
def test_barrier_rendezvous():
    env = Env(SimConfig(n_cores=4))
    barrier = SenseBarrier(env, 4)
    order = []

    def worker(tid):
        yield Compute(10 + tid * 50)  # staggered arrivals
        order.append(("before", tid))
        yield from barrier.wait(tid)
        order.append(("after", tid))

    env.run(Program([worker] * 4), max_cycles=2_000_000)
    befores = [i for i, (phase, _) in enumerate(order) if phase == "before"]
    afters = [i for i, (phase, _) in enumerate(order) if phase == "after"]
    assert max(befores) < min(afters), order


def test_barrier_reusable_across_episodes():
    env = Env(SimConfig(n_cores=3))
    barrier = SenseBarrier(env, 3)
    counter = env.var("episodes")
    seen = []

    def worker(tid):
        for episode in range(4):
            yield from barrier.wait(tid)
            if tid == 0:
                yield counter.store(episode + 1)
            yield from barrier.wait(tid)
            seen.append((tid, episode, (yield counter.load())))

    env.run(Program([worker] * 3), max_cycles=3_000_000)
    # after the second barrier of episode e, every thread reads e+1
    assert all(value == episode + 1 for _, episode, value in seen)


def test_barrier_publishes_pre_barrier_stores():
    env = Env(SimConfig(n_cores=2))
    barrier = SenseBarrier(env, 2)
    data = env.var("pre")
    got = []

    def writer(tid):
        yield data.store(99)
        yield from barrier.wait(tid)

    def reader(tid):
        yield from barrier.wait(tid)
        got.append((yield data.load()))

    env.run(Program([writer, reader]), max_cycles=2_000_000)
    assert got == [99]


def test_barrier_validation():
    env = Env(SimConfig(n_cores=1))
    with pytest.raises(ValueError):
        SenseBarrier(env, 0)
