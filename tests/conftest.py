"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime.lang import Env
from repro.sim.config import MemoryModel, SimConfig


@pytest.fixture
def config() -> SimConfig:
    """Default Table III configuration."""
    return SimConfig()


@pytest.fixture
def small_config() -> SimConfig:
    """A two-core configuration for focused functional tests."""
    return SimConfig(n_cores=2)


@pytest.fixture
def env(config) -> Env:
    return Env(config)


@pytest.fixture
def env2(small_config) -> Env:
    return Env(small_config)


def make_env(**overrides) -> Env:
    """Fresh environment with config overrides (helper for tests)."""
    return Env(SimConfig(**overrides))
