"""Differential litmus fuzzing: simulator vs the reference memory model.

Seeded random small programs are generated in the textual litmus DSL,
explored on the simulator across timing offsets, and every observed
register outcome is checked against the allowed set of the reference
model in :mod:`repro.core.semantics`.  The reference is deliberately
weaker than the simulator, so ``observed ⊆ allowed`` must hold for
*every* program; any excess outcome is a fence-semantics bug.

The sweep is a deterministic pytest matrix over **fence modes x seeds
x coherence backends**, so a failure names its exact cell (e.g.
``test_simulator_outcomes_within_reference[scoped-3-sisd]``) and that
one cell reruns in isolation:

* ``plain``  -- traditional fences only (``fence``/``.ss``/``.ll``);
* ``scoped`` -- S-Fence set fences only, over ``flag``-ged variables;
* ``mixed``  -- both families interleaved in one program.

Generation constraints keep the reference sound and the enumeration
exact:

* a thread never loads a variable it stored earlier (store->load
  forwarding interacts with fences in ways a plain interleaving model
  cannot express -- see the reference-model comment block), and
* at most four memory operations per thread, so the allowed set is
  enumerated exhaustively rather than sampled.

Every program runs under each coherence backend (MESI and SiSd):
backends are timing models, so a backend that leaked stale values into
register outcomes would surface here as an outcome outside the
reference allowed set.

The base seed is pinned (``LITMUS_FUZZ_SEED``, default 0) so CI runs
are reproducible; bump the env var locally to explore fresh programs.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.semantics import reference_allowed_outcomes
from repro.litmus.dsl import abstract_threads, parse_litmus, run_litmus
from repro.sim.config import MEM_BACKENDS, MemoryModel

SEED_BASE = int(os.environ.get("LITMUS_FUZZ_SEED", "0"))
N_PROGRAMS_PER_MODE = 6

#: delay offsets explored per program: enough spread to move stores
#: across drain boundaries without exploding runtime
OFFSETS = [0, 3, 47, 160]

_VARS = ("x", "y", "z")
_PLAIN_FENCES = ("fence", "fence.ss", "fence.ll")
_SET_FENCES = ("fence.set", "fence.set.ss", "fence.set.ll")
_MAX_MEM_OPS = 4

#: fence-mode axis of the fuzz matrix: which fence family a program draws
FUZZ_MODES = {
    "plain": _PLAIN_FENCES,
    "scoped": _SET_FENCES,
    "mixed": _PLAIN_FENCES + _SET_FENCES,
}


def generate_program(seed: int, mode: str = "mixed") -> str:
    """One random two-thread litmus program in the textual DSL."""
    fences = FUZZ_MODES[mode]
    rng = random.Random(f"litmus-fuzz:{mode}:{seed}")
    use_set = mode != "plain"  # scoped/mixed programs flag variables
    flagged = sorted(rng.sample(_VARS, rng.randint(1, 2))) if use_set else []

    next_value = 1
    next_reg = 0
    threads: list[list[str]] = []
    for tid in range(2):
        stmts: list[str] = []
        stored: set[str] = set()
        mem_ops = 0
        for _ in range(rng.randint(3, 5)):
            roll = rng.random()
            if roll < 0.40 and mem_ops < _MAX_MEM_OPS:
                var = rng.choice(_VARS)
                stmts.append(f"{var} = {next_value}")
                next_value += 1
                stored.add(var)
                mem_ops += 1
            elif roll < 0.80 and mem_ops < _MAX_MEM_OPS:
                loadable = [v for v in _VARS if v not in stored]
                if not loadable:
                    continue
                stmts.append(f"r{next_reg} = {rng.choice(loadable)}")
                next_reg += 1
                mem_ops += 1
            elif roll < 0.95:
                stmts.append(rng.choice(fences))
            else:
                stmts.append("delay")
        threads.append(stmts)

    lines = [f"name fuzz-{seed}"]
    if flagged:
        lines.append("flag " + " ".join(flagged))
    for tid, stmts in enumerate(threads):
        for stmt in stmts:
            cells = ["", ""]
            cells[tid] = stmt
            lines.append(" | ".join(cells))
    return "\n".join(lines)


def _has_work(source: str) -> bool:
    test = parse_litmus(source)
    ops = [op for ops in abstract_threads(test) for op in ops]
    return (any(op[0] == "load" for op in ops)
            and any(op[0] == "store" for op in ops))


def _fuzz_seeds(mode: str) -> list[int]:
    """N seeds for one mode, skipping workless generations."""
    seeds, candidate = [], SEED_BASE
    while len(seeds) < N_PROGRAMS_PER_MODE:
        if _has_work(generate_program(candidate, mode)):
            seeds.append(candidate)
        candidate += 1
    return seeds


_MATRIX = [(mode, seed, backend)
           for mode in FUZZ_MODES
           for seed in _fuzz_seeds(mode)
           for backend in MEM_BACKENDS]


@pytest.mark.parametrize("mode,seed,backend", _MATRIX,
                         ids=[f"{m}-{s}-{b}" for m, s, b in _MATRIX])
def test_simulator_outcomes_within_reference(mode, seed, backend):
    source = generate_program(seed, mode)
    test = parse_litmus(source)
    allowed = reference_allowed_outcomes(abstract_threads(test), dict(test.init))
    run = run_litmus(test, MemoryModel.RMO, OFFSETS, mem_backend=backend)
    extra = run.outcomes - allowed
    assert not extra, (
        f"simulator observed outcomes outside the reference allowed set\n"
        f"fence mode {mode}, seed {seed}, backend {backend}; program:\n{source}\n"
        f"registers: {run.register_names}\n"
        f"extra outcomes: {sorted(extra)}\n"
        f"allowed: {sorted(allowed)}"
    )


def test_generation_is_deterministic():
    assert generate_program(5, "mixed") == generate_program(5, "mixed")
    assert generate_program(5, "mixed") != generate_program(6, "mixed")
    assert generate_program(5, "plain") != generate_program(5, "scoped")


def test_modes_generate_their_fence_families():
    """Each matrix row exercises the fence family it names."""
    plain = [generate_program(s, "plain") for s in _fuzz_seeds("plain")]
    scoped = [generate_program(s, "scoped") for s in _fuzz_seeds("scoped")]
    mixed = [generate_program(s, "mixed") for s in _fuzz_seeds("mixed")]
    assert not any("fence.set" in s or "flag " in s for s in plain)
    assert any("fence\n" in s or "fence " in s or "fence.ss" in s
               or "fence.ll" in s for s in plain)
    assert all("flag " in s for s in scoped)
    assert any("fence.set" in s for s in scoped)
    assert any("fence.set" in s for s in mixed)


# ---------------------------------------------------------- reference pinning
def _allowed(source: str) -> set[tuple]:
    test = parse_litmus(source)
    return reference_allowed_outcomes(abstract_threads(test), dict(test.init))


def test_reference_allows_sb_relaxation():
    allowed = _allowed("""
        name SB
        x = 1  | y = 1
        r0 = y | r1 = x
    """)
    assert (0, 0) in allowed and (1, 1) in allowed


def test_reference_forbids_fenced_sb():
    allowed = _allowed("""
        name SB+fences
        x = 1  | y = 1
        fence  | fence
        r0 = y | r1 = x
    """)
    assert (0, 0) not in allowed
    assert allowed == {(0, 1), (1, 0), (1, 1)}


def test_reference_ll_fence_does_not_order_stores():
    allowed = _allowed("""
        name SB+ll
        x = 1    | y = 1
        fence.ll | fence.ll
        r0 = y   | r1 = x
    """)
    assert (0, 0) in allowed  # load-load fences leave SB observable


def test_reference_set_fence_scopes_only_flagged_vars():
    # x is flagged: the set fence orders the x-store; y is not, so
    # thread 1's store may still float past its fence
    fenced = _allowed("""
        name SB+set
        flag x y
        x = 1     | y = 1
        fence.set | fence.set
        r0 = y    | r1 = x
    """)
    assert (0, 0) not in fenced
    partial = _allowed("""
        name SB+set-partial
        flag x
        x = 1     | y = 1
        fence.set | fence.set
        r0 = y    | r1 = x
    """)
    assert (0, 0) in partial  # y out of scope: relaxation still allowed


def test_reference_preserves_coherence():
    allowed = _allowed("""
        name CoWR
        x = 1  | r0 = x
        x = 2  | r1 = x
    """)
    assert (2, 1) not in allowed  # never new-then-old at one location
