"""Property-based tests for the SiSd backend's cache bookkeeping.

Seeded random access/sync sequences are driven straight into a
:class:`repro.mem.sisd.SiSdHierarchy` (no simulator in the loop) and
the SiSd invariants are checked after every step, mirroring the
delay-set property suite's structure:

* **No stale read survives self-invalidation** -- after an
  acquire-like sync point every resident line of the syncing core is
  dirty (its own writes); every clean line was dropped.
* **No dirty line survives self-downgrade** -- after a release-like
  sync point the syncing core's dirty set is empty and every line it
  downgraded is resident in the LLC (the write-through landed).
* A full sync point does both, leaving the L1 empty.
* ``dirty`` is always a subset of the resident lines (eviction retires
  the dirty bit through a write-back, never silently).
* **No invalidation traffic** -- no access or sync point on one core
  ever perturbs a peer's resident or dirty lines.
* The :class:`~repro.mem.backend.SyncOutcome` counts are exact (the
  clean/dirty populations at the instant of the sync), its latency is
  one LLC round trip iff anything was downgraded, and the running
  counters in ``backend_stats()`` tally the per-sync outcomes.

A tiny L1 (1 KiB: 16 lines, 4-way) over a small address range forces
evictions, so the lazy-downgrade write-back path is exercised too.
"""

from __future__ import annotations

import random

import pytest

from repro.isa.instructions import WAIT_BOTH, WAIT_LOADS, WAIT_STORES
from repro.mem.sisd import SiSdHierarchy
from repro.sim.config import SimConfig
from repro.sim.stats import CoreStats

SEEDS = range(16)
N_STEPS = 120
N_CORES = 3
#: word addresses drawn by the fuzz driver: ~4x the 16-line L1 capacity
ADDR_RANGE = 64 * 8


def _small_config() -> SimConfig:
    return SimConfig(n_cores=N_CORES, l1_kb=1, l1_assoc=4)


def _snapshot(h: SiSdHierarchy):
    """(resident, dirty) per core -- the peer-isolation oracle."""
    return [
        (h.l1[c].resident_lines(), set(h.dirty[c]))
        for c in range(h.config.n_cores)
    ]


def _check_core_invariants(h: SiSdHierarchy):
    for core in range(h.config.n_cores):
        resident = h.l1[core].resident_lines()
        dirty = h.dirty_lines(core)
        assert dirty <= resident, (
            f"core {core}: dirty lines {sorted(dirty - resident)} are not "
            f"resident -- an eviction dropped a line without its write-back"
        )
        assert h.clean_lines(core) == resident - dirty


@pytest.mark.parametrize("seed", SEEDS)
def test_random_sequences_preserve_sisd_invariants(seed):
    rng = random.Random(f"sisd-prop:{seed}")
    h = SiSdHierarchy(_small_config())
    stats = [CoreStats(core_id=c) for c in range(N_CORES)]
    expected = {"sync_points": 0, "self_invalidations": 0,
                "self_downgrades": 0, "eviction_writebacks": 0}

    for _ in range(N_STEPS):
        core = rng.randrange(N_CORES)
        before = _snapshot(h)
        evictions_before = h.counters["eviction_writebacks"]

        if rng.random() < 0.75:
            addr = rng.randrange(ADDR_RANGE)
            is_write = rng.random() < 0.5
            latency = h.access(core, addr, is_write, stats[core])
            cfg = h.config
            assert latency in (cfg.l1_latency, cfg.l2_latency, cfg.mem_latency)
            assert h.resident_in_l1(core, addr)
            assert h.resident_in_l2(addr)
            if is_write:
                assert h.line_of(addr) in h.dirty_lines(core)
        else:
            waits = rng.choice((WAIT_LOADS, WAIT_STORES, WAIT_BOTH))
            clean_before = h.clean_lines(core)
            dirty_before = h.dirty_lines(core)
            sync = h.fence(core, "fence", waits, stats[core])
            assert sync is not None

            if waits & WAIT_LOADS:
                # no stale read survives self-invalidation
                assert h.clean_lines(core) == set()
                assert h.l1[core].resident_lines() <= h.dirty_lines(core)
                if waits & WAIT_STORES:
                    # the downgrade ran first, so every resident line was
                    # clean by the time the invalidation sweep saw it
                    assert sync.invalidated == (
                        len(clean_before) + len(dirty_before)
                    )
                else:
                    assert sync.invalidated == len(clean_before)
            else:
                assert sync.invalidated == 0
            if waits & WAIT_STORES:
                # no dirty line survives self-downgrade
                assert h.dirty_lines(core) == set()
                for line in dirty_before:
                    assert h.llc.contains(line), (
                        f"downgraded line {line} missing from the LLC"
                    )
                assert sync.downgraded == len(dirty_before)
            else:
                assert sync.downgraded == 0
            if waits == WAIT_BOTH:
                assert h.l1[core].resident_lines() == set()
                assert sync.kind == "full"
            elif waits == WAIT_STORES:
                assert sync.kind == "release"
            else:
                assert sync.kind == "acquire"
            assert sync.latency == (
                h.config.l2_latency if sync.downgraded else 0
            )
            expected["sync_points"] += 1
            expected["self_invalidations"] += sync.invalidated
            expected["self_downgrades"] += sync.downgraded

        # no invalidation traffic: peers are untouched by this step
        after = _snapshot(h)
        for other in range(N_CORES):
            if other != core:
                assert after[other] == before[other], (
                    f"core {core}'s step perturbed core {other}'s L1"
                )
        _check_core_invariants(h)
        expected["eviction_writebacks"] += (
            h.counters["eviction_writebacks"] - evictions_before
        )

    got = h.backend_stats()
    expected["eviction_writebacks"] = got["eviction_writebacks"]  # tracked live
    assert got == expected


def test_eviction_write_back_retires_dirty_bit():
    """A dirty victim lands in the LLC and leaves the dirty set."""
    h = SiSdHierarchy(_small_config())
    stats = CoreStats()
    assoc = h.config.l1_assoc
    n_sets = h.config.l1_lines // assoc
    # write assoc+1 lines mapping to set 0: the LRU one must be evicted
    lines = [i * n_sets for i in range(assoc + 1)]
    for line in lines:
        h.access(0, line * h._words_per_line, True, stats)
    victim = lines[0]
    assert not h.l1[0].contains(victim)
    assert victim not in h.dirty_lines(0)
    assert h.llc.contains(victim)
    assert h.backend_stats()["eviction_writebacks"] == 1
    _check_core_invariants(h)


def test_acquire_preserves_own_dirty_lines():
    """Self-invalidation must not drop the core's own unpublished writes."""
    h = SiSdHierarchy(_small_config())
    stats = CoreStats()
    h.access(0, 0, True, stats)    # dirty line
    h.access(0, 64, False, stats)  # clean line (different line: 64 words)
    sync = h.fence(0, "fence.ll", WAIT_LOADS, stats)
    assert sync.kind == "acquire"
    assert sync.invalidated == 1 and sync.downgraded == 0
    assert h.dirty_lines(0) == {h.line_of(0)}
    assert h.resident_in_l1(0, 0)
    assert not h.resident_in_l1(0, 64)


def test_release_is_idempotent():
    """A second release with nothing dirty downgrades nothing, free."""
    h = SiSdHierarchy(_small_config())
    stats = CoreStats()
    h.access(0, 0, True, stats)
    first = h.fence(0, "fence.ss", WAIT_STORES, stats)
    second = h.fence(0, "fence.ss", WAIT_STORES, stats)
    assert first.downgraded == 1 and first.latency == h.config.l2_latency
    assert second.downgraded == 0 and second.latency == 0
