"""Property-based synthesis fuzzing over generated litmus programs.

Reuses the :mod:`tests.test_litmus_fuzz` program generator on a pinned
seed matrix (derived from ``LITMUS_FUZZ_SEED``, default 0, same as the
litmus fuzz sweep -- failures name a reproducible cell).  Two spec
derivations are exercised:

* **all-full spec** (the main matrix): forbidden = allowed(stripped) -
  allowed(all-full-at-every-site), i.e. everything canonical fencing
  can eliminate.  Always enforceable by construction, and non-vacuous
  for any program with a real race, so every cell drives the search.
* **differential spec** (pinned seeds): forbidden = allowed(stripped)
  - allowed(original-with-its-fences), the ordering the program's own
  randomly generated fences actually bought.  Rarely non-vacuous, so
  those seeds are found by a bounded scan rather than fixed offsets.

For every synthesized placement the test re-checks soundness with both
oracles *independently of the synthesizer* and asserts the placement
never costs more simulated stall than the all-full corner.
"""

from __future__ import annotations

import pytest

from repro.core.semantics import reference_allowed_outcomes
from repro.litmus.dsl import abstract_threads, parse_litmus
from repro.synth import synthesize
from repro.synth.cost import SMOKE_PROBE_OFFSETS
from repro.synth.sites import apply_placement, fence_sites, strip_test
from repro.verify.explorer import explore_allowed_outcomes
from tests.test_litmus_fuzz import FUZZ_MODES, SEED_BASE, generate_program

N_PROGRAMS_PER_MODE = 3
#: bounded scan depth for the rare differential-spec programs
DIFF_SCAN = 40


def _allowed(test) -> set[tuple]:
    threads = abstract_threads(test)
    init = dict(test.init)
    explored = explore_allowed_outcomes(threads, init).outcomes
    reference = reference_allowed_outcomes(threads, init)
    assert explored == reference, "oracle disagreement on a fuzz program"
    return explored


def _all_full_spec(test) -> set[tuple]:
    """Everything canonical all-sites full fencing eliminates."""
    stripped = strip_test(test)
    sites = fence_sites(stripped)
    full = apply_placement(stripped, sites, ("full",) * len(sites))
    return _allowed(stripped) - _allowed(full)


def _check_sound_and_bounded(test, forbidden, label: str):
    result = synthesize(test, offsets=SMOKE_PROBE_OFFSETS,
                        forbidden=forbidden)
    variant = apply_placement(
        strip_test(test), result.sites, result.assignment)
    leaked = _allowed(variant) & forbidden
    assert not leaked, (
        f"synthesized placement admits forbidden outcome(s) [{label}]\n"
        f"placement: {result.placement()}\nleaked: {sorted(leaked)}"
    )
    assert result.stall_cycles <= result.all_full_stall, (
        f"synthesis regressed past all-full [{label}]: placement "
        f"{result.placement()} stalls {result.stall_cycles}, all-full "
        f"stalls {result.all_full_stall}"
    )
    assert result.baseline_cycles <= result.cycles
    return result


def _fuzz_cells() -> list[tuple[str, int]]:
    """N pinned cells per mode whose programs have loads and stores."""
    cells = []
    for mode in FUZZ_MODES:
        found, candidate = 0, SEED_BASE
        while found < N_PROGRAMS_PER_MODE:
            test = parse_litmus(generate_program(candidate, mode))
            ops = [op for ops in abstract_threads(test) for op in ops]
            if (any(op[0] == "load" for op in ops)
                    and any(op[0] == "store" for op in ops)):
                cells.append((mode, candidate))
                found += 1
            candidate += 1
    return cells


_MATRIX = _fuzz_cells()


@pytest.mark.parametrize("mode,seed", _MATRIX,
                         ids=[f"{m}-{s}" for m, s in _MATRIX])
def test_synthesized_placement_is_sound_and_bounded(mode, seed):
    source = generate_program(seed, mode)
    test = parse_litmus(source)
    forbidden = _all_full_spec(test)
    result = _check_sound_and_bounded(
        test, forbidden, f"{mode}-{seed}\nprogram:\n{source}")
    if not forbidden:
        # nothing to enforce: the empty placement is the only minimum
        assert result.fence_count == 0
        assert result.stall_cycles == 0


def _differential_cells() -> list[tuple[str, int, frozenset]]:
    """Scanned cells whose own fences constrained at least one outcome."""
    cells = []
    for mode in FUZZ_MODES:
        for seed in range(SEED_BASE, SEED_BASE + DIFF_SCAN):
            test = parse_litmus(generate_program(seed, mode))
            diff = _allowed(strip_test(test)) - _allowed(test)
            if diff:
                cells.append((mode, seed, frozenset(diff)))
    return cells


def test_differential_specs_from_generated_fences():
    """Synthesis re-buys exactly what each program's own fences bought."""
    cells = _differential_cells()
    if SEED_BASE == 0:
        # pinned default matrix: the scan is known to find programs
        # whose fences constrain outcomes; if generation changes and
        # none remain, the property below would pass vacuously
        assert cells, "no generated program had a constraining fence"
    for mode, seed, forbidden in cells:
        test = parse_litmus(generate_program(seed, mode))
        _check_sound_and_bounded(
            test, set(forbidden), f"differential {mode}-{seed}")


def test_matrix_is_pinned_and_nontrivial():
    """The matrix is deterministic and exercises non-vacuous specs."""
    assert len(_MATRIX) == len(FUZZ_MODES) * N_PROGRAMS_PER_MODE
    assert _MATRIX == _fuzz_cells()
    nontrivial = sum(
        1 for mode, seed in _MATRIX
        if _all_full_spec(parse_litmus(generate_program(seed, mode))))
    assert nontrivial > 0, (
        "every pinned fuzz program had a vacuous all-full spec; "
        "the soundness property was never exercised"
    )
