"""Property test for the wake-up contract behind the event scheduler.

``Core.next_event_cycle(now)`` promises (docs/architecture.md §9): after
a tick at ``now`` made no progress, every tick strictly before the
reported wake-up cycle (a) makes no progress, (b) mutates no observable
core state, and (c) bumps exactly the stall-counter deltas the
no-progress tick recorded (``_idle_deltas``) -- the three properties
that make skipping those ticks, and replaying their accounting via
``account_idle``, byte-identical to running them.

The checker drives the *dense* loop and verifies the contract at every
single no-progress tick, across workloads chosen to stall on every
wake-up source: fences over long memory misses (event heap), store
buffer full (drain completions), MSHR exhaustion, compute chains
(``_blocked_until``), chaos drain throttling (``_sb_hold_until``), and
a work-stealing workload for cross-core interaction.  A ``None``
wake-up must mean the core never progresses again.
"""

from __future__ import annotations

import pytest

from repro.chaos.faults import ChaosEngine, FaultPlan
from repro.isa.instructions import Compute, Fence, FenceKind, Load, Store
from repro.isa.program import ops_program
from repro.runtime.lang import Env, reset_cids
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator


def _counters(core):
    s = core.stats
    return (s.fence_stall_cycles, s.rob_full_stalls, s.sb_full_stalls,
            s.mshr_stalls)


def _snapshot(core):
    """Everything observable about one core's architectural state."""
    return (
        len(core.rob), len(core.sb), core.stall_reason, core.finished,
        core._blocked_until, core._sb_hold_until, core._outstanding_misses,
        len(core._events),
        tuple(core.retire_log) if core.retire_log is not None else None,
        core.stats.instructions, core.stats.loads, core.stats.stores,
        core.stats.fences,
    )


def check_wakeup_contract(sim: Simulator, limit: int = 300_000) -> int:
    """Dense-tick ``sim`` verifying the contract; returns checked ticks."""
    gens = sim.program.spawn()
    for core, gen in zip(sim.cores, gens):
        core.bind(gen)
    for core in sim.cores[len(gens):]:
        core.bind(None)

    cores = sim.cores
    pending: dict[int, tuple] = {}  # core -> (wake, snapshot, deltas)
    checked = 0
    cycle = 0
    while cycle < limit:
        progress = False
        running = 0
        for i, core in enumerate(cores):
            pre = _counters(core)
            ticked = core.tick(cycle)
            if ticked:
                progress = True
            if not core.finished:
                running += 1
            claim = pending.get(i)
            if claim is not None:
                wake, snap, deltas = claim
                if wake is None or cycle < wake:
                    checked += 1
                    assert not ticked, (
                        f"core {i} progressed at cycle {cycle}, strictly "
                        f"before its reported wake-up {wake}"
                    )
                    assert _snapshot(core) == snap, (
                        f"core {i} mutated observable state at cycle {cycle} "
                        f"while asleep until {wake}"
                    )
                    got = tuple(a - b for a, b in zip(_counters(core), pre))
                    assert got == deltas, (
                        f"core {i} stall-counter deltas {got} at cycle "
                        f"{cycle} != recorded idle deltas {deltas}"
                    )
                else:
                    pending.pop(i, None)
            if not ticked and not core.finished:
                pending[i] = (
                    core.next_event_cycle(cycle), _snapshot(core),
                    core._idle_deltas,
                )
            elif ticked:
                pending.pop(i, None)
        if running == 0:
            return checked
        if not progress and all(
            core.next_event_cycle(cycle) is None
            for core in cores if not core.finished
        ):
            return checked  # proven deadlock: None claims all held to the end
        cycle += 1
    raise AssertionError(f"workload did not finish within {limit} cycles")


# ------------------------------------------------------------------- workloads
def test_fence_and_memory_event_sources():
    """Fences over cold misses: event-heap and drain wake-ups."""
    prog = ops_program([
        [Store(64 * i, i + 1), Fence(FenceKind.GLOBAL), Load(64 * i + 8192),
         Store(64 * i + 16384, 7), Fence(FenceKind.GLOBAL), Load(64 * i + 24576)]
        for i in range(4)
    ])
    assert check_wakeup_contract(Simulator(SimConfig(n_cores=4), prog)) > 0


def test_store_buffer_pressure_source():
    """SB-full stalls: wake-ups come from drain completions."""
    prog = ops_program([
        [Store(64 * (12 * t + j), j + 1) for j in range(12)] + [Fence(FenceKind.GLOBAL)]
        for t in range(2)
    ])
    cfg = SimConfig(n_cores=2, sb_size=2)
    assert check_wakeup_contract(Simulator(cfg, prog)) > 0


def test_mshr_and_compute_sources():
    """MSHR exhaustion and compute-chain (_blocked_until) wake-ups."""
    prog = ops_program([
        [Load(64 * (16 * t + j) + 8192) for j in range(16)]
        + [Compute(400), Load(64 * (16 * t + 20) + 8192)]
        for t in range(2)
    ])
    cfg = SimConfig(n_cores=2, mshrs=2)
    assert check_wakeup_contract(Simulator(cfg, prog)) > 0


@pytest.mark.parametrize("n_threads", (2, 4))
def test_workload_cross_core(n_threads):
    """Work stealing: cores interact only through memory, never wake-ups."""
    from repro.algorithms.workloads import build_wsq_workload

    reset_cids()
    env = Env(SimConfig(n_cores=n_threads, retire_log_len=16))
    handle = build_wsq_workload(
        env, scope=FenceKind.SET, iterations=4, workload_level=1,
        n_threads=n_threads,
    )
    sim = env.simulator(handle.program)
    assert check_wakeup_contract(sim, limit=3_000_000) > 0
    handle.check()


def test_chaos_drain_hold_source():
    """Chaos drain throttling adds the _sb_hold_until wake-up source."""
    from repro.algorithms.workloads import build_wsq_workload

    reset_cids()
    env = Env(SimConfig(n_cores=2, retire_log_len=16))
    handle = build_wsq_workload(
        env, scope=FenceKind.SET, iterations=4, workload_level=1, n_threads=2,
    )
    sim = env.simulator(handle.program)
    engine = ChaosEngine(
        FaultPlan(seed=5, drain_stall_prob=0.3, drain_stall_cycles=50)
    ).install(sim)
    assert check_wakeup_contract(sim, limit=3_000_000) > 0
    assert engine.counts["drain_stall"] > 0
