"""Unit tests for the set-associative LRU cache."""

import pytest

from repro.mem.cache import Cache


def test_fill_and_contains():
    c = Cache(8, 2)
    c.fill(5)
    assert c.contains(5)
    assert not c.contains(6)
    assert len(c) == 1


def test_touch_miss_and_hit():
    c = Cache(8, 2)
    assert not c.touch(3)
    c.fill(3)
    assert c.touch(3)


def test_lru_eviction_within_set():
    c = Cache(8, 2)  # 4 sets
    a, b, d = 0, 4, 8  # all map to set 0
    c.fill(a)
    c.fill(b)
    victim = c.fill(d)
    assert victim == a  # least recently used
    assert not c.contains(a)
    assert c.contains(b) and c.contains(d)


def test_touch_refreshes_recency():
    c = Cache(8, 2)
    a, b, d = 0, 4, 8
    c.fill(a)
    c.fill(b)
    c.touch(a)          # a becomes MRU
    victim = c.fill(d)
    assert victim == b


def test_refill_resident_line_updates_recency():
    c = Cache(8, 2)
    a, b, d = 0, 4, 8
    c.fill(a)
    c.fill(b)
    assert c.fill(a) is None  # already resident
    victim = c.fill(d)
    assert victim == b


def test_different_sets_do_not_conflict():
    c = Cache(8, 2)
    for line in range(8):
        c.fill(line)
    assert len(c) == 8  # 4 sets x 2 ways all occupied


def test_invalidate():
    c = Cache(8, 2)
    c.fill(1)
    assert c.invalidate(1)
    assert not c.contains(1)
    assert not c.invalidate(1)


def test_resident_lines_snapshot():
    c = Cache(4, 2)
    c.fill(0)
    c.fill(1)
    assert c.resident_lines() == {0, 1}


def test_invalid_geometry():
    with pytest.raises(ValueError):
        Cache(2, 4)
    with pytest.raises(ValueError):
        Cache(7, 2)
