"""Idempotent work stealing: semantics and the pst comparison."""

import pytest

from repro.algorithms.idempotent_wsq import EMPTY, IdempotentLifo
from repro.apps.pst import build_pst
from repro.isa.instructions import Compute, FenceKind
from repro.isa.program import Program
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


def test_lifo_single_thread():
    env = Env(SimConfig(n_cores=1))
    q = IdempotentLifo(env, capacity=16)
    got = []

    def body(tid):
        for v in (1, 2, 3):
            yield from q.put(v)
        for _ in range(4):
            got.append((yield from q.extract()))

    env.run(Program([body]))
    assert got == [3, 2, 1, EMPTY]


def test_at_least_once_under_contention():
    """Every put task is extracted at least once; duplicates are
    legal (the whole point of the relaxation)."""
    env = Env(SimConfig(n_cores=4))
    q = IdempotentLifo(env, capacity=64)
    extracted = []
    done = env.var("iw.done")

    def owner(tid):
        for i in range(12):
            yield from q.put(i + 1)
            yield Compute(30)
        while True:  # drain
            t = yield from q.extract()
            if t == EMPTY:
                break
            extracted.append(t)
        yield done.store(1)

    def thief(tid):
        while True:
            if (yield done.load()):
                s, _ = 0, 0
                return
            t = yield from q.extract()
            if t != EMPTY:
                extracted.append(t)

    env.run(Program([owner, thief, thief, thief]), max_cycles=3_000_000)
    # at-least-once: nothing may be lost
    missing = set(range(1, 13)) - set(extracted)
    # anything still in the pool at exit also counts as "not lost"
    size, _ = q.snapshot()
    assert size == 0
    assert not missing, f"idempotent pool lost tasks: {missing}"


def test_extract_has_no_fence():
    """The selling point: extraction executes zero fences."""
    env = Env(SimConfig(n_cores=1))
    q = IdempotentLifo(env, capacity=8)

    def body(tid):
        yield from q.put(5)
        yield from q.extract()
        yield from q.extract()

    res = env.run(Program([body]))
    assert res.stats.fences == 1  # only put's store-store fence


def test_capacity_checked():
    env = Env(SimConfig(n_cores=1))
    with pytest.raises(ValueError):
        IdempotentLifo(env, capacity=0)


def test_pst_runs_on_idempotent_pool():
    from repro.algorithms.idempotent_wsq import IdempotentLifo as IL

    env = Env(SimConfig())
    inst = build_pst(
        env,
        n_vertices=64,
        extra_edges=48,
        deque_factory=lambda env, name, cap, scope: IL(env, name, cap, scope),
    )
    env.run(inst.program, max_cycles=5_000_000)
    inst.check()  # the spanning tree is still exact (claims are CAS-deduped)


def test_pst_idempotent_executes_fewer_fences():
    def run(factory):
        env = Env(SimConfig())
        inst = build_pst(env, n_vertices=64, extra_edges=48, deque_factory=factory)
        res = env.run(inst.program, max_cycles=5_000_000)
        inst.check()
        return res

    from repro.algorithms.idempotent_wsq import IdempotentLifo as IL

    standard = run(None)
    idem = run(lambda env, name, cap, scope: IL(env, name, cap, scope))
    assert idem.stats.fences < standard.stats.fences
