"""Unit tests for the Fence Scope Bits counters."""

import pytest

from repro.core.fsb import FenceScopeBits


def test_requires_two_entries():
    with pytest.raises(ValueError):
        FenceScopeBits(1)


def test_set_entry_is_last():
    fsb = FenceScopeBits(4)
    assert fsb.set_entry == 3
    assert list(fsb.class_entries) == [0, 1, 2]


def test_dispatch_sets_all_masked_entries():
    fsb = FenceScopeBits(4)
    fsb.record_dispatch(0b0101, is_load=True)
    assert fsb.pending_loads == [1, 0, 1, 0]
    assert fsb.total_loads == 1
    assert fsb.total_stores == 0


def test_unflagged_op_counts_only_in_totals():
    fsb = FenceScopeBits(4)
    fsb.record_dispatch(0, is_load=False)
    assert fsb.pending_stores == [0, 0, 0, 0]
    assert fsb.total_stores == 1
    assert not fsb.all_clear(True, True)
    assert fsb.entry_clear(0, True, True)


def test_complete_clears_bits():
    fsb = FenceScopeBits(4)
    fsb.record_dispatch(0b0011, is_load=True)
    fsb.record_dispatch(0b0001, is_load=False)
    fsb.record_complete(0b0011, is_load=True)
    assert fsb.pending_loads == [0, 0, 0, 0]
    assert fsb.pending_stores == [1, 0, 0, 0]
    assert not fsb.entry_clear(0, wait_loads=False, wait_stores=True)
    assert fsb.entry_clear(0, wait_loads=True, wait_stores=False)


def test_wait_mask_selectivity():
    fsb = FenceScopeBits(2)
    fsb.record_dispatch(0b01, is_load=True)
    assert fsb.entry_clear(0, wait_loads=False, wait_stores=True)
    assert not fsb.entry_clear(0, wait_loads=True, wait_stores=False)
    assert fsb.all_clear(False, True)
    assert not fsb.all_clear(True, False)


def test_underflow_raises():
    fsb = FenceScopeBits(2)
    with pytest.raises(RuntimeError):
        fsb.record_complete(0, is_load=True)


def test_entry_counter_underflow_raises():
    fsb = FenceScopeBits(2)
    fsb.record_dispatch(0, is_load=True)
    with pytest.raises(RuntimeError):
        fsb.record_complete(0b01, is_load=True)


def test_store_buffer_side_counters():
    fsb = FenceScopeBits(4)
    fsb.record_dispatch(0b0001, is_load=False)
    assert fsb.all_clear_sb()  # not retired into the SB yet
    fsb.record_store_retired(0b0001)
    assert not fsb.all_clear_sb()
    assert not fsb.entry_clear_sb(0)
    assert fsb.entry_clear_sb(1)
    fsb.record_complete(0b0001, is_load=False, in_sb=True)
    assert fsb.all_clear_sb()
    assert fsb.entry_idle(0)


def test_sb_underflow_raises():
    fsb = FenceScopeBits(2)
    fsb.record_dispatch(0, is_load=False)
    with pytest.raises(RuntimeError):
        fsb.record_complete(0, is_load=False, in_sb=True)


def test_entry_idle_tracks_both_kinds():
    fsb = FenceScopeBits(4)
    fsb.record_dispatch(0b0010, is_load=True)
    assert not fsb.entry_idle(1)
    fsb.record_complete(0b0010, is_load=True)
    assert fsb.entry_idle(1)
