"""Delay-set analysis tests: trace classification and Shasha-Snir."""

from repro.apps.barnes import build_barnes
from repro.apps.delay_set import classify_trace, conflict_graph, delay_pairs, fence_points
from repro.apps.radiosity import build_radiosity
from repro.isa.instructions import FenceKind
from repro.runtime.lang import Env
from repro.sim.config import SimConfig
from repro.sim.trace import TraceCollector, TraceRecord


# --------------------------------------------------------- trace classification
def _trace(records):
    t = TraceCollector()
    for core, kind, addr in records:
        t.record(core, kind, addr)
    return t


def test_private_address():
    c = classify_trace(_trace([(0, "load", 1), (0, "store", 1)]))
    assert 1 in c.private


def test_shared_read_only():
    c = classify_trace(_trace([(0, "load", 1), (1, "load", 1)]))
    assert 1 in c.shared_read_only


def test_conflicting_requires_a_writer():
    c = classify_trace(_trace([(0, "store", 1), (1, "load", 1)]))
    assert 1 in c.conflicting
    assert c.flagged() == frozenset({1})


def test_cas_counts_as_write():
    c = classify_trace(_trace([(0, "cas", 1), (1, "load", 1)]))
    assert 1 in c.conflicting


def test_partition_is_disjoint_and_total():
    recs = [(0, "load", 1), (1, "load", 1), (0, "store", 2), (1, "store", 2), (0, "store", 3)]
    c = classify_trace(_trace(recs))
    all_addrs = c.private | c.shared_read_only | c.conflicting
    assert all_addrs == {1, 2, 3}
    assert not (c.private & c.conflicting)
    assert not (c.private & c.shared_read_only)


# ------------------------------------------------- barnes/radiosity flag checks
def test_barnes_flags_match_dynamic_classification():
    """The statically flagged data of barnes must be exactly the
    conflicting addresses a trace-based delay-set classifier finds
    (modulo conflicting addresses barnes flags conservatively)."""
    env = Env(SimConfig())
    inst = build_barnes(env, n_bodies=48, scope=FenceKind.SET)
    tracer = TraceCollector()
    sim = env.simulator(inst.program, tracer=tracer)
    sim.run(max_cycles=2_000_000)
    inst.check()
    classification = classify_trace(tracer)

    flagged_ranges = []
    for arr in (inst.pos_x, inst.pos_y):
        flagged_ranges.append((arr.base, arr.base + arr.length * arr.stride))

    def is_statically_flagged(addr: int) -> bool:
        return any(lo <= addr < hi for lo, hi in flagged_ranges)

    # every dynamically conflicting address inside the app's data is
    # statically flagged (the exchange region is flagged by construction)
    for addr in classification.conflicting:
        owner = env.space.owner_of(addr)
        if owner and owner.startswith("barnes.") and "exchange" not in owner:
            assert is_statically_flagged(addr), (addr, owner)
    # and nothing read-only got flagged
    for addr in classification.shared_read_only:
        assert not is_statically_flagged(addr), addr


def test_radiosity_readonly_data_unflagged():
    env = Env(SimConfig())
    inst = build_radiosity(env, n_patches=32, scope=FenceKind.SET)
    tracer = TraceCollector()
    sim = env.simulator(inst.program, tracer=tracer)
    sim.run(max_cycles=2_000_000)
    inst.check()
    classification = classify_trace(tracer)
    for addr in classification.shared_read_only:
        owner = env.space.owner_of(addr)
        if owner and owner.startswith("rad."):
            assert "inter" in owner or "factor" in owner, owner


# --------------------------------------------------------------- Shasha-Snir
DEKKER = [
    [("flag0", "w"), ("flag1", "r")],
    [("flag1", "w"), ("flag0", "r")],
]


def test_dekker_needs_both_delay_pairs():
    pairs = delay_pairs(DEKKER)
    assert ((0, 0), (0, 1)) in pairs
    assert ((1, 0), (1, 1)) in pairs


def test_dekker_fence_points():
    points = fence_points(DEKKER)
    assert points == {0: {0}, 1: {0}}


def test_message_passing_needs_writer_and_reader_order():
    mp = [
        [("data", "w"), ("flag", "w")],
        [("flag", "r"), ("data", "r")],
    ]
    pairs = delay_pairs(mp)
    assert ((0, 0), (0, 1)) in pairs  # writer: data before flag
    assert ((1, 0), (1, 1)) in pairs  # reader: flag before data


def test_independent_threads_need_no_fences():
    prog = [
        [("a", "w"), ("b", "w")],
        [("c", "w"), ("d", "w")],
    ]
    assert delay_pairs(prog) == set()


def test_read_only_sharing_needs_no_fences():
    prog = [
        [("x", "r"), ("y", "r")],
        [("x", "r"), ("y", "r")],
    ]
    assert delay_pairs(prog) == set()


def test_conflict_graph_structure():
    g = conflict_graph(DEKKER)
    # program edges within threads + bidirectional conflict edges
    assert g.has_edge((0, 0), (0, 1))
    assert g.has_edge((0, 0), (1, 1)) and g.has_edge((1, 1), (0, 0))
    kinds = {d["kind"] for _, _, d in g.edges(data=True)}
    assert kinds == {"program", "conflict"}
