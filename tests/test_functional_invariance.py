"""Property: fence scoping never changes architectural results.

S-Fence is a *performance* mechanism -- for any single-threaded program
(where timing cannot alter the interleaving), the final memory image
and every value loaded must be identical under traditional fences,
class scope, set scope, no fences at all, and in-window speculation.
Random programs with random scope nesting drive all five
configurations and compare.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import (
    Cas,
    Compute,
    Fence,
    FenceKind,
    FsEnd,
    FsStart,
    Load,
    Store,
    WAIT_BOTH,
    WAIT_LOADS,
    WAIT_STORES,
)
from repro.isa.program import Program
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator

ADDRS = [8, 16, 24, 64, 72, 4096]


@st.composite
def random_program(draw):
    """A random well-scoped single-thread op script."""
    n = draw(st.integers(3, 40))
    script = []
    depth = 0
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["load", "store", "cas", "fence", "enter", "exit", "compute"]
        ))
        addr = draw(st.sampled_from(ADDRS))
        if kind == "load":
            script.append(("load", addr, draw(st.booleans())))
        elif kind == "store":
            script.append(("store", addr, draw(st.integers(1, 99))))
        elif kind == "cas":
            script.append(("cas", addr, draw(st.integers(0, 3)), draw(st.integers(1, 9))))
        elif kind == "fence":
            script.append(("fence", draw(st.sampled_from([WAIT_BOTH, WAIT_LOADS, WAIT_STORES]))))
        elif kind == "enter" and depth < 3:
            cid = draw(st.integers(1, 3))
            script.append(("enter", cid))
            depth += 1
        elif kind == "exit" and depth > 0:
            script.append(("exit",))
            depth -= 1
        elif kind == "compute":
            script.append(("compute", draw(st.integers(1, 20))))
    for _ in range(depth):
        script.append(("exit",))
    return script


def materialize(script, fence_kind: FenceKind | None):
    """Turn the script into a guest thread fn; records loaded values."""
    loaded: list[int] = []
    open_cids: list[int] = []

    def body(tid):
        stack = []
        for step in script:
            op = step[0]
            if op == "load":
                v = yield Load(step[1], flagged=step[2])
                loaded.append(v)
            elif op == "store":
                yield Store(step[1], step[2])
            elif op == "cas":
                ok = yield Cas(step[1], step[2], step[3])
                loaded.append(1 if ok else 0)
            elif op == "fence":
                if fence_kind is not None:
                    yield Fence(fence_kind, step[1])
            elif op == "enter":
                stack.append(step[1])
                yield FsStart(step[1])
            elif op == "exit":
                yield FsEnd(stack.pop())
            elif op == "compute":
                yield Compute(step[1])

    return body, loaded


from repro.sim.config import MemoryModel

CONFIGS = [
    ("trad", SimConfig(n_cores=1, scoped_fences=False), FenceKind.GLOBAL),
    ("class", SimConfig(n_cores=1), FenceKind.CLASS),
    ("set", SimConfig(n_cores=1), FenceKind.SET),
    ("none", SimConfig(n_cores=1), None),
    ("spec", SimConfig(n_cores=1, in_window_speculation=True), FenceKind.CLASS),
    ("tso", SimConfig(n_cores=1, memory_model=MemoryModel.TSO), FenceKind.GLOBAL),
    ("sc", SimConfig(n_cores=1, memory_model=MemoryModel.SC), FenceKind.GLOBAL),
]


@settings(max_examples=60, deadline=None)
@given(script=random_program())
def test_single_thread_results_invariant_under_scoping(script):
    outcomes = []
    for label, cfg, kind in CONFIGS:
        body, loaded = materialize(script, kind)
        sim = Simulator(cfg, Program([body]))
        result = sim.run(max_cycles=3_000_000)
        image = tuple(result.memory.read_global(a) for a in ADDRS)
        outcomes.append((label, tuple(loaded), image))
    baseline = outcomes[0]
    for label, loaded, image in outcomes[1:]:
        assert loaded == baseline[1], f"{label}: loaded values diverged"
        assert image == baseline[2], f"{label}: final memory diverged"
