"""Unit tests for the two-level hierarchy latency model."""

import pytest

from repro.mem.hierarchy import MemoryHierarchy
from repro.sim.config import SimConfig
from repro.sim.stats import CoreStats


@pytest.fixture
def hier() -> MemoryHierarchy:
    return MemoryHierarchy(SimConfig(n_cores=2))


@pytest.fixture
def stats() -> CoreStats:
    return CoreStats()


def test_cold_miss_costs_memory_latency(hier, stats):
    cfg = hier.config
    assert hier.access(0, 100, False, stats) == cfg.mem_latency
    assert stats.l1_misses == 1
    assert stats.l2_misses == 1


def test_l1_hit_after_fill(hier, stats):
    cfg = hier.config
    hier.access(0, 100, False, stats)
    assert hier.access(0, 100, False, stats) == cfg.l1_latency
    assert stats.l1_hits == 1


def test_same_line_different_word_hits(hier, stats):
    cfg = hier.config
    hier.access(0, 96, False, stats)   # line 12 (8 words/line)
    assert hier.access(0, 97, False, stats) == cfg.l1_latency


def test_l2_hit_when_peer_fetched_line(hier, stats):
    cfg = hier.config
    hier.access(1, 100, False, stats)
    assert hier.access(0, 100, False, stats) == cfg.l2_latency
    assert stats.l2_hits == 1


def test_write_upgrade_invalidates_sharers(hier, stats):
    cfg = hier.config
    hier.access(0, 100, False, stats)
    hier.access(1, 100, False, stats)
    # both share the line; core 0 writes -> upgrade, core 1 invalidated
    assert hier.access(0, 100, True, stats) == cfg.l2_latency
    assert not hier.resident_in_l1(1, 100)
    # core 1's next read is a cache-to-cache / L2 transfer
    lat = hier.access(1, 100, False, stats)
    assert lat == cfg.l2_latency + cfg.cache_to_cache_latency


def test_exclusive_write_hit_is_cheap(hier, stats):
    cfg = hier.config
    hier.access(0, 100, True, stats)  # miss + claim
    assert hier.access(0, 100, True, stats) == cfg.l1_latency


def test_l2_inclusive_back_invalidation(stats):
    # tiny L2: 2 lines, direct-ish; force an L2 eviction
    cfg = SimConfig(n_cores=1, l1_kb=1, l1_assoc=1, l2_kb=1, l2_assoc=1)
    hier = MemoryHierarchy(cfg)
    n_l2_lines = cfg.l2_lines
    hier.access(0, 0, False, stats)
    # fill enough conflicting lines to evict line 0 from L2
    for i in range(1, n_l2_lines + 1):
        hier.access(0, i * n_l2_lines * cfg.words_per_line, False, stats)
    assert not hier.resident_in_l2(0)
    assert not hier.resident_in_l1(0, 0)  # back-invalidated


def test_warm_into_l2(hier, stats):
    cfg = hier.config
    hier.warm(0, 100, 64)
    assert hier.resident_in_l2(100)
    assert not hier.resident_in_l1(0, 100)
    assert hier.access(0, 100, False, stats) == cfg.l2_latency


def test_warm_into_l1(hier, stats):
    cfg = hier.config
    hier.warm(0, 100, 8, into_l1=True)
    assert hier.access(0, 100, False, stats) == cfg.l1_latency


def test_line_of():
    hier = MemoryHierarchy(SimConfig(n_cores=1))
    wpl = hier.config.words_per_line
    assert hier.line_of(0) == 0
    assert hier.line_of(wpl - 1) == 0
    assert hier.line_of(wpl) == 1
