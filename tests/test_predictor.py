"""Two-bit branch predictor: unit and pipeline-integration tests."""

import pytest

from repro.cpu.predictor import TwoBitPredictor
from repro.isa.instructions import Branch, Compute, FsEnd, FsStart, Store
from repro.isa.program import Program, ops_program
from repro.runtime.lang import Env
from repro.sim.config import SimConfig
from repro.sim.simulator import run_program


def test_initial_state_predicts_taken():
    p = TwoBitPredictor(16)
    assert p.predict(0)


def test_saturates_taken():
    p = TwoBitPredictor(16)
    for _ in range(5):
        p.update(3, True)
    assert p.predict(3)
    # one not-taken does not flip a saturated counter
    p.update(3, False)
    assert p.predict(3)
    p.update(3, False)
    assert not p.predict(3)


def test_loop_pattern_mispredicts_only_at_exit():
    p = TwoBitPredictor(16)
    missed = 0
    for i in range(32):
        taken = (i % 8) != 7
        if p.update(5, taken):
            missed += 1
    # 4 loop exits, each mispredicted once; the counter never leaves
    # 'taken' territory after a single not-taken, so re-entry is fine
    assert missed == 4
    assert p.predictions == 32 and p.mispredictions == 4
    assert p.accuracy == 1 - 4 / 32


def test_distinct_pcs_do_not_alias_within_table():
    p = TwoBitPredictor(16)
    for _ in range(3):
        p.update(1, True)
        p.update(2, False)
    assert p.predict(1)
    assert not p.predict(2)


def test_aliasing_wraps_by_table_size():
    p = TwoBitPredictor(16)
    for _ in range(3):
        p.update(0, False)
    assert not p.predict(16)  # 16 aliases to slot 0


def test_invalid_sizes():
    with pytest.raises(ValueError):
        TwoBitPredictor(0)
    with pytest.raises(ValueError):
        TwoBitPredictor(12)


# ----------------------------------------------------------------- integration
def test_core_uses_predictor_when_enabled():
    # branch at pc 7: taken 7 times, then not taken, repeated
    ops = []
    for i in range(24):
        ops.append(Branch(taken=(i % 8) != 7, pc=7))
        ops.append(Compute(2))
    res = run_program(
        ops_program([ops]),
        SimConfig(n_cores=1, use_branch_predictor=True),
    )
    assert res.stats.cores[0].branch_mispredicts == 3


def test_guest_flag_ignored_when_predictor_enabled():
    ops = [Branch(taken=True, mispredict=True, pc=1), Compute(1)]
    res = run_program(
        ops_program([ops]),
        SimConfig(n_cores=1, use_branch_predictor=True),
    )
    # predictor starts weakly-taken: a taken branch predicts correctly
    assert res.stats.cores[0].branch_mispredicts == 0


def test_mispredict_flush_preserves_scope_state():
    """A mispredicted branch inside a scope region squashes/restores
    the FSS; subsequent scoped fences still behave correctly."""
    from repro.isa.instructions import Fence, FenceKind, WAIT_STORES

    ops = []
    for i in range(10):
        ops.append(FsStart(1))
        ops.append(Store(100 + i, i))
        ops.append(Branch(taken=(i % 4) != 3, pc=9))
        ops.append(Fence(FenceKind.CLASS, WAIT_STORES))
        ops.append(FsEnd(1))
    res = run_program(
        ops_program([ops]),
        SimConfig(n_cores=1, use_branch_predictor=True),
    )
    assert res.stats.fences == 10
    assert res.memory.read_global(100) == 0 and res.memory.read_global(109) == 9


def test_private_work_emits_loop_branches():
    from repro.runtime.harness import PrivateWork

    env = Env(SimConfig(n_cores=1, use_branch_predictor=True))
    work = PrivateWork(env, 0, 1, emit_branches=True)

    def body(tid):
        for i in range(16):
            yield from work.emit(i)

    res = env.run(Program([body]))
    core = res.stats.cores[0]
    assert core.branch_mispredicts >= 1  # the every-8th loop exits