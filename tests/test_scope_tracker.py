"""Unit tests for the per-core S-Fence controller (ScopeTracker)."""

import pytest

from repro.core.scope_tracker import ScopeTracker
from repro.isa.instructions import FenceKind, WAIT_BOTH, WAIT_LOADS, WAIT_STORES
from repro.sim.config import SimConfig


def make(**overrides) -> ScopeTracker:
    return ScopeTracker(SimConfig(**overrides))


def test_mem_op_outside_scope_gets_no_bits():
    t = make()
    assert t.dispatch_mem(is_load=True, flagged=False) == 0


def test_mem_op_in_scope_sets_scope_bits():
    t = make()
    t.fs_start(7)
    mask = t.dispatch_mem(is_load=False, flagged=False)
    assert mask == t.fss.mask()
    assert mask != 0


def test_nested_scopes_flag_inner_and_outer():
    """Inner-scope ops also flag all outer scopes (Section IV-A3)."""
    t = make()
    t.fs_start(1)
    t.fs_start(2)
    mask = t.dispatch_mem(is_load=True, flagged=False)
    assert bin(mask).count("1") == 2


def test_set_flag_adds_dedicated_entry():
    t = make()
    mask = t.dispatch_mem(is_load=True, flagged=True)
    assert mask == 1 << t.fsb.set_entry


def test_flagged_op_inside_class_scope_sets_both():
    t = make()
    t.fs_start(1)
    mask = t.dispatch_mem(is_load=True, flagged=True)
    assert mask & (1 << t.fsb.set_entry)
    assert mask & t.fss.mask()


def test_class_fence_waits_only_for_scope():
    t = make()
    # out-of-scope store
    out_mask = t.dispatch_mem(is_load=False, flagged=False)
    t.fs_start(1)
    assert t.fence_ready(FenceKind.CLASS, WAIT_BOTH)  # nothing in scope yet
    in_mask = t.dispatch_mem(is_load=False, flagged=False)
    assert not t.fence_ready(FenceKind.CLASS, WAIT_BOTH)
    assert not t.fence_ready(FenceKind.GLOBAL, WAIT_BOTH)
    t.complete_mem(in_mask, is_load=False)
    assert t.fence_ready(FenceKind.CLASS, WAIT_BOTH)   # scope clear
    assert not t.fence_ready(FenceKind.GLOBAL, WAIT_BOTH)  # global still waits
    t.complete_mem(out_mask, is_load=False)
    assert t.fence_ready(FenceKind.GLOBAL, WAIT_BOTH)


def test_set_fence_checks_only_set_entry():
    t = make()
    t.dispatch_mem(is_load=False, flagged=False)
    assert t.fence_ready(FenceKind.SET, WAIT_BOTH)
    m = t.dispatch_mem(is_load=False, flagged=True)
    assert not t.fence_ready(FenceKind.SET, WAIT_BOTH)
    t.complete_mem(m, is_load=False)
    assert t.fence_ready(FenceKind.SET, WAIT_BOTH)


def test_wait_mask_respected():
    t = make()
    t.fs_start(1)
    m = t.dispatch_mem(is_load=True, flagged=False)
    assert t.fence_ready(FenceKind.CLASS, WAIT_STORES)   # only a load pending
    assert not t.fence_ready(FenceKind.CLASS, WAIT_LOADS)
    t.complete_mem(m, is_load=True)
    assert t.fence_ready(FenceKind.CLASS, WAIT_LOADS)


def test_scoped_fences_disabled_degrades_to_global():
    t = make(scoped_fences=False)
    t.fs_start(1)
    t.dispatch_mem(is_load=False, flagged=False)  # mask is 0 when disabled
    assert not t.fence_ready(FenceKind.CLASS, WAIT_BOTH)
    assert not t.fence_ready(FenceKind.SET, WAIT_BOTH)


def test_class_fence_outside_any_scope_is_global():
    t = make()
    t.dispatch_mem(is_load=False, flagged=False)
    assert not t.fence_ready(FenceKind.CLASS, WAIT_BOTH)


def test_fs_end_pops_and_recycles():
    t = make()
    t.fs_start(1)
    m = t.dispatch_mem(is_load=True, flagged=False)
    t.fs_end(1)
    assert t.fss.empty
    # mapping still alive: the op is in flight
    assert t.mapping.lookup(1) is not None
    t.complete_mem(m, is_load=True)
    # all bits cleared and scope closed -> mapping invalidated
    assert t.mapping.lookup(1) is None


def test_mapping_survives_while_scope_on_stack():
    t = make()
    t.fs_start(1)
    m = t.dispatch_mem(is_load=True, flagged=False)
    t.complete_mem(m, is_load=True)
    # scope still open: mapping must not be recycled
    assert t.mapping.lookup(1) is not None
    t.fs_end(1)
    assert t.mapping.lookup(1) is None


def test_unmatched_fs_end_is_noop():
    t = make()
    t.fs_end(99)
    assert t.unmatched_fs_ends == 1
    assert t.fss.empty


# ------------------------------------------------------------------ overflow
def test_fss_overflow_enters_counter_mode():
    t = make(fss_entries=2, mapping_entries=8, fsb_entries=4)
    t.fs_start(1)
    t.fs_start(2)
    t.fs_start(3)  # FSS full -> overflow counter
    assert t.overflow_count == 1
    # while in overflow, class fences degrade to global
    out = t.dispatch_mem(is_load=False, flagged=False)
    assert not t.fence_ready(FenceKind.CLASS, WAIT_BOTH)
    t.complete_mem(out, is_load=False)
    assert t.fence_ready(FenceKind.CLASS, WAIT_BOTH)
    # fs_end unwinds the counter before touching the FSS
    t.fs_end(3)
    assert t.overflow_count == 0
    assert len(t.fss) == 2


def test_mapping_overflow_enters_counter_mode():
    t = make(mapping_entries=1, fss_entries=8)
    t.fs_start(1)
    t.fs_start(2)  # table full -> counter mode
    assert t.overflow_count == 1
    t.fs_end(2)
    t.fs_end(1)
    assert t.overflow_count == 0
    assert t.fss.empty


def test_overflow_period_ops_stay_visible_to_later_fences():
    """Regression for a soundness hole in a naive reading of the paper's
    overflow scheme: an op dispatched while the overflow counter is
    active must still be waited for by a class fence in a *later*
    re-activation of its scope.  The tracker flags such ops with every
    class entry (found by the Figure-5 lockstep property test)."""
    t = make(mapping_entries=1)
    t.fs_start(1)
    blocker = t.dispatch_mem(is_load=False, flagged=False)
    t.fs_end(1)
    # cid 1 still owns the single mapping slot (its op is in flight),
    # so entering cid 3 overflows into counter mode
    t.fs_start(3)
    assert t.overflow_count == 1
    orphan = t.dispatch_mem(is_load=False, flagged=False)
    t.fs_end(3)
    assert t.overflow_count == 0
    # cid 1's op completes; its mapping recycles; cid 3 can now map
    t.complete_mem(blocker, is_load=False)
    t.fs_start(3)
    # the class fence in this re-activation must wait for the orphan op
    assert not t.fence_ready(FenceKind.CLASS, WAIT_BOTH)
    t.complete_mem(orphan, is_load=False)
    assert t.fence_ready(FenceKind.CLASS, WAIT_BOTH)


def test_fs_start_returns_entry_or_sentinel():
    t = make(fss_entries=1)
    entry = t.fs_start(1)
    assert entry >= 0 and entry == t.fss.top()
    assert t.fs_start(2) == ScopeTracker.OVERFLOWED
    assert t.fs_end(2) == ScopeTracker.OVERFLOWED
    assert t.fs_end(1) == entry
    assert t.fs_end(1) == ScopeTracker.UNMATCHED


def test_chaos_overflow_hook_forces_counter_mode():
    """The fault-injection hook must push fs_start onto the overflow
    counter even though FSS and mapping table have plenty of room."""
    forced = []
    t = make()
    t.chaos_overflow = lambda cid: forced.append(cid) or True
    assert t.fs_start(1) == ScopeTracker.OVERFLOWED
    assert forced == [1]
    assert t.overflow_count == 1 and t.fss.empty
    assert t.mapping.size == 0
    # degraded behaviour is exactly the organic-overflow behaviour
    m = t.dispatch_mem(is_load=False, flagged=False)
    assert m == t._all_class_mask
    assert not t.fence_ready(FenceKind.CLASS, WAIT_BOTH)
    t.complete_mem(m, is_load=False)
    assert t.fs_end(1) == ScopeTracker.OVERFLOWED
    assert t.overflow_count == 0


def test_chaos_overflow_hook_can_decline():
    t = make()
    t.chaos_overflow = lambda cid: False
    assert t.fs_start(1) >= 0
    assert t.overflow_count == 0


def test_overflow_dispatch_mask_is_all_class_entries():
    t = make(fss_entries=1)
    t.fs_start(1)
    t.fs_start(2)  # overflow
    m = t.dispatch_mem(is_load=True, flagged=True)
    assert m == t._all_class_mask | (1 << t.fsb.set_entry)


def test_set_fence_keeps_scope_during_overflow():
    """Set fences never degrade: their FSB column survives counter mode."""
    t = make(fss_entries=1)
    t.fs_start(1)
    t.fs_start(2)  # overflow
    assert t.resolve_fence_scope(FenceKind.SET) == t.fsb.set_entry
    assert t.resolve_fence_scope(FenceKind.CLASS) == t.GLOBAL_SCOPE


def test_deep_nesting_counter():
    t = make(fss_entries=1)
    for cid in range(5):
        t.fs_start(cid)
    assert t.overflow_count == 4
    for _ in range(4):
        t.fs_end(0)
    assert t.overflow_count == 0
    assert len(t.fss) == 1


# --------------------------------------------------------------- speculation
def test_shadow_tracks_nonspeculative_ops():
    t = make()
    t.fs_start(1)
    assert t.shadow_fss.items() == t.fss.items()
    t.fs_end(1)
    assert t.shadow_fss.items() == t.fss.items() == ()


def test_squash_restores_fss_from_shadow():
    t = make()
    t.fs_start(1)
    t.begin_speculation()
    # wrong-path scope ops: only FSS is updated
    t.fs_end(1)
    t.fs_start(2)
    assert t.fss.items() != t.shadow_fss.items()
    t.squash()
    assert t.fss.items() == t.shadow_fss.items() == t.fss.items()
    assert t.fss.items() == (t.mapping.lookup(1),)


def test_confirm_applies_queued_ops_to_shadow():
    t = make()
    t.begin_speculation()
    t.fs_start(1)
    assert t.shadow_fss.empty
    t.confirm_speculation()
    assert t.shadow_fss.items() == t.fss.items()


def test_nested_speculation_applies_in_order():
    t = make()
    t.begin_speculation()
    t.fs_start(1)
    t.begin_speculation()
    t.fs_start(2)
    t.confirm_speculation()  # oldest branch confirms
    assert t.shadow_fss.items() == (t.mapping.lookup(1),)
    t.confirm_speculation()
    assert t.shadow_fss.items() == t.fss.items()


def test_confirm_without_begin_raises():
    t = make()
    with pytest.raises(RuntimeError):
        t.confirm_speculation()


def test_squash_restores_overflow_counter():
    t = make(fss_entries=1)
    t.fs_start(1)
    t.begin_speculation()
    t.fs_start(2)  # overflow on the wrong path
    assert t.overflow_count == 1
    t.squash()
    assert t.overflow_count == 0


def test_wrong_path_double_fs_end_recovers():
    """The paper's motivating case: a wrong-path fs_end pops the FSS;
    after the squash restores FSS', the correct-path fs_end matches."""
    t = make()
    t.fs_start(1)
    t.begin_speculation()
    t.fs_end(1)      # wrong path
    t.squash()       # mispredict detected
    assert len(t.fss) == 1
    t.fs_end(1)      # refetched correct path
    assert t.fss.empty


# ----------------------------------------------------------- in-window helpers
def test_resolve_fence_scope():
    t = make()
    assert t.resolve_fence_scope(FenceKind.GLOBAL) == t.GLOBAL_SCOPE
    assert t.resolve_fence_scope(FenceKind.CLASS) == t.GLOBAL_SCOPE  # no scope open
    assert t.resolve_fence_scope(FenceKind.SET) == t.fsb.set_entry
    t.fs_start(1)
    assert t.resolve_fence_scope(FenceKind.CLASS) == t.fss.top()


def test_fence_ready_at_head_only_watches_sb():
    t = make()
    m = t.dispatch_mem(is_load=False, flagged=False)
    # store still in the window, not in the SB: at-head check passes
    assert t.fence_ready_at_head(t.GLOBAL_SCOPE, WAIT_BOTH)
    t.store_retired(m)
    assert not t.fence_ready_at_head(t.GLOBAL_SCOPE, WAIT_BOTH)
    assert t.fence_ready_at_head(t.GLOBAL_SCOPE, WAIT_LOADS)
    t.complete_mem(m, is_load=False, in_sb=True)
    assert t.fence_ready_at_head(t.GLOBAL_SCOPE, WAIT_BOTH)


def test_pending_for_scope_counts():
    t = make()
    t.fs_start(1)
    t.dispatch_mem(is_load=True, flagged=False)
    t.dispatch_mem(is_load=False, flagged=False)
    e = t.fss.top()
    assert t.pending_for_scope(e, WAIT_BOTH) == 2
    assert t.pending_for_scope(e, WAIT_LOADS) == 1
    assert t.pending_for_scope(t.GLOBAL_SCOPE, WAIT_STORES) == 1
