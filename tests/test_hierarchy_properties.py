"""Property-based tests on the memory hierarchy invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.hierarchy import MemoryHierarchy
from repro.sim.config import SimConfig
from repro.sim.stats import CoreStats


def tiny_hier():
    cfg = SimConfig(n_cores=2, l1_kb=1, l1_assoc=2, l2_kb=4, l2_assoc=2)
    return MemoryHierarchy(cfg), cfg


ACCESS = st.tuples(
    st.integers(0, 1),                 # core
    st.integers(0, 127),               # line index -> addr
    st.booleans(),                     # is_write
)


@settings(max_examples=50)
@given(ops=st.lists(ACCESS, min_size=1, max_size=120))
def test_l2_inclusive_of_l1s(ops):
    hier, cfg = tiny_hier()
    stats = CoreStats()
    wpl = cfg.words_per_line
    for core, line, is_write in ops:
        hier.access(core, line * wpl, is_write, stats)
        # inclusivity: every line resident in any L1 is resident in L2
        for c, l1 in enumerate(hier.l1):
            for resident in l1.resident_lines():
                assert hier.l2.contains(resident), (
                    f"line {resident} in L1.{c} but not in L2"
                )


@settings(max_examples=50)
@given(ops=st.lists(ACCESS, min_size=1, max_size=100))
def test_latency_is_always_a_known_value(ops):
    hier, cfg = tiny_hier()
    stats = CoreStats()
    wpl = cfg.words_per_line
    legal = {
        cfg.l1_latency,
        cfg.l2_latency,
        cfg.mem_latency,
        cfg.l2_latency + cfg.cache_to_cache_latency,
    }
    for core, line, is_write in ops:
        lat = hier.access(core, line * wpl, is_write, stats)
        assert lat in legal, lat


@settings(max_examples=50)
@given(ops=st.lists(ACCESS, min_size=1, max_size=100))
def test_dirty_owner_is_always_an_exclusive_sharer(ops):
    hier, cfg = tiny_hier()
    stats = CoreStats()
    wpl = cfg.words_per_line
    seen_lines = set()
    for core, line, is_write in ops:
        hier.access(core, line * wpl, is_write, stats)
        seen_lines.add(line)
        for l in seen_lines:
            owner = hier.directory.dirty_owner(l)
            if owner is not None:
                assert hier.directory.sharers(l) == {owner}


@settings(max_examples=40)
@given(ops=st.lists(ACCESS, min_size=1, max_size=80))
def test_repeat_access_is_l1_hit(ops):
    """Immediately re-reading the same word always hits the L1."""
    hier, cfg = tiny_hier()
    stats = CoreStats()
    wpl = cfg.words_per_line
    for core, line, is_write in ops:
        hier.access(core, line * wpl, is_write, stats)
        assert hier.access(core, line * wpl, False, stats) == cfg.l1_latency