"""Unit tests for the trace compiler and the block-boundary markers.

Block *admission* is exercised end-to-end by the differential suites
(tests/test_fastpath_equivalence.py runs every workload under all three
engines); this file covers the compiler itself -- segmentation, the
cut-point taxonomy, signature memoisation -- and the runtime layer's
``block()`` / ``load_block`` / ``store_block`` markers, including the
hint contract (results discarded, identical behaviour on every engine).
"""

from __future__ import annotations

import dataclasses
import hashlib

import pytest

from repro.cpu.rob import K_COMPUTE, K_LOAD, K_STORE
from repro.isa.instructions import Compute, Fence, FenceKind, Load, Store
from repro.isa.program import Program
from repro.runtime.lang import Env, block, reset_cids
from repro.sim.config import SimConfig
from repro.sim.tracecomp import (
    MIN_BLOCK,
    BlockHint,
    CompiledBlock,
    block_signature,
    compile_ops,
)

ENGINES = {
    "dense": dict(dense_loop=True),
    "event": dict(dense_loop=False, trace_compile=False),
    "compiled": dict(dense_loop=False, trace_compile=True),
}


# ------------------------------------------------------------------- compiler
def test_compile_ops_segments_at_cut_points():
    ops = [Store(0, 1), Load(8), Fence(FenceKind.GLOBAL),
           Compute(3), Store(16, 2)]
    units = compile_ops(ops)
    assert [type(u) for u in units] == [CompiledBlock, Fence, CompiledBlock]
    assert units[0].n == 2 and units[2].n == 2


def test_compile_ops_short_runs_stay_interpreted():
    # a lone blockable op between cut points is cheaper interpreted
    assert MIN_BLOCK == 2
    ops = [Load(0), Fence(FenceKind.GLOBAL), Store(8, 1)]
    units = compile_ops(ops)
    assert units == ops  # no blocks formed, original ops preserved


def test_flagged_and_serialize_ops_are_cut_points():
    ops = [Load(0), Load(8, flagged=True), Store(16, 1),
           Load(24, serialize=True), Store(32, 2), Store(40, 3)]
    units = compile_ops(ops)
    # flagged load and serialize load split the stream; only the final
    # two stores form a run long enough to compile
    assert [type(u) for u in units] == [Load, Load, Store, Load,
                                        CompiledBlock]
    assert units[-1].n == 2


def test_block_signature_compute_latency_in_addr_slot():
    sig = block_signature([Load(64), Store(8, 5), Compute(7), Compute(0)])
    assert sig == ((K_LOAD, 64, 0), (K_STORE, 8, 5),
                   (K_COMPUTE, 7, 0), (K_COMPUTE, 1, 0))


def test_blocks_memoised_by_signature():
    a = compile_ops([Load(128), Store(136, 1)])[0]
    b = compile_ops([Load(128, name="other"), Store(136, 1)])[0]
    assert a is b  # names don't enter the signature; the block is shared


def test_blockhint_rejects_non_ops():
    with pytest.raises(TypeError):
        BlockHint([Load(0), "not an op"])


# --------------------------------------------------- block-boundary markers
def _run_marked_guest(engine: str):
    """A dynamic guest using every marker form, under one engine."""
    reset_cids()
    env = Env(SimConfig(n_cores=2, **ENGINES[engine]))
    data = env.line_array("data", 8)
    flags = env.array("flags", 4, flagged=True)
    done = env.var("done")

    def writer(tid):
        # scatter via the array marker, then a hand-rolled block with a
        # cut point (the flagged store) inside it
        yield data.store_block((i, i + 1) for i in range(8))
        yield block([Store(data.addr_of(0) + 1, 9), flags.store(0, 1),
                     Compute(4), Store(data.addr_of(1) + 1, 9)])
        yield Fence(FenceKind.GLOBAL)
        yield done.store(1)

    def reader(tid):
        while (yield done.load()) != 1:
            yield Compute(2)
        # gather: values are discarded by contract
        got = yield data.load_block(range(8))
        assert got is None
        total = 0
        for i in range(8):
            total += yield data.load(i)
        yield block([])  # empty hint is a no-op
        yield done.store(total)

    res = env.run(Program([writer, reader], name="marked"),
                  max_cycles=200_000)
    return {
        "cycles": res.cycles,
        "stats": [dataclasses.asdict(c) for c in res.stats.cores],
        "memory_sha": hashlib.sha256(
            env.memory.snapshot().tobytes()).hexdigest(),
        "done": done.peek(),
    }


def test_marked_guest_equivalent_on_all_engines():
    dense = _run_marked_guest("dense")
    assert dense["done"] == sum(range(1, 9))
    for engine in ("event", "compiled"):
        assert _run_marked_guest(engine) == dense, engine


def test_record_program_expands_block_hints():
    # the delay-set replay (synth's skeleton recorder) must see through
    # hints: same accesses, fences and memory effects as the plain form
    from repro.apps.delay_set import record_program

    reset_cids()
    env = Env(SimConfig(n_cores=2))
    data = env.line_array("data", 4)
    flag = env.var("flag", flagged=True)

    def hinted(tid):
        yield data.store_block((i, i + 10) for i in range(4))
        yield Fence(FenceKind.GLOBAL, name="pub")
        yield flag.store(1)

    def plain(tid):
        for i in range(4):
            yield data.store(i, i + 10)
        yield Fence(FenceKind.GLOBAL, name="pub")
        yield flag.store(1)

    hinted_sk = record_program(Program([hinted], name="h"), env.memory)
    plain_sk = record_program(Program([plain], name="p"), env.memory)
    assert hinted_sk.threads == plain_sk.threads
    assert hinted_sk.fences == plain_sk.fences
    assert data.peek(2) == 12  # hint effects reached functional memory


def test_store_block_values_visible():
    reset_cids()
    env = Env(SimConfig(n_cores=1))
    arr = env.array("a", 4)

    def body(tid):
        yield arr.store_block(enumerate((3, 1, 4, 1)))
        yield Fence(FenceKind.GLOBAL)

    env.run(Program([body]), max_cycles=50_000)
    assert [arr.peek(i) for i in range(4)] == [3, 1, 4, 1]
