"""Dekker mutual exclusion under the relaxed simulator."""

import pytest

from repro.algorithms.dekker import DekkerLock, build_workload
from repro.isa.instructions import FenceKind, Probe
from repro.isa.program import Program
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


def run_dekker(scope=FenceKind.SET, use_fences=True, workload_level=1, iterations=12):
    env = Env(SimConfig())
    handle = build_workload(
        env,
        scope=scope,
        iterations=iterations,
        workload_level=workload_level,
        use_fences=use_fences,
    )
    res = env.run(handle.program)
    return handle, res


def test_mutual_exclusion_with_set_scope_fences():
    handle, _ = run_dekker(scope=FenceKind.SET)
    handle.check()
    assert handle.meta["checker"].max_inside == 1


def test_mutual_exclusion_with_traditional_fences():
    handle, _ = run_dekker(scope=FenceKind.GLOBAL)
    handle.check()


def test_unfenced_dekker_violates_mutual_exclusion():
    """Without fences the relaxed store buffers break Dekker: both
    threads read the peer flag as 0 before either store drains."""
    violations = 0
    for level in (0, 1):
        handle, _ = run_dekker(use_fences=False, workload_level=level)
        if handle.meta["checker"].max_inside > 1:
            violations += 1
    assert violations > 0, "expected at least one mutual-exclusion violation"


def test_scoped_is_not_slower_than_traditional():
    _, trad = run_dekker(scope=FenceKind.GLOBAL, workload_level=2)
    _, scoped = run_dekker(scope=FenceKind.SET, workload_level=2)
    assert scoped.cycles <= trad.cycles


def test_cs_entry_count_exact():
    handle, _ = run_dekker(iterations=7)
    handle.check()
    assert handle.meta["checker"].entries == 14


def test_lock_vars_flagged_only_for_set_scope():
    env = Env(SimConfig())
    lock = DekkerLock(env, name="d1", scope=FenceKind.SET)
    assert lock.flag[0].flagged and lock.turn.flagged
    lock2 = DekkerLock(env, name="d2", scope=FenceKind.CLASS)
    assert not lock2.flag[0].flagged
