"""Tier-1 simulator soundness and outcome coverage on the corpus.

Soundness: no outcome either simulator engine observes may fall outside
the exhaustive allowed set of its (test, fence-mode) cell -- on any
cell, ever.  Coverage: the classic weak behaviours must actually be
*reachable* when allowed, so the forbidden-outcome tests in the corpus
are not passing vacuously -- and the forbidden outcome of a fenced cell
must be absent both from the allowed set (model) and from the observed
set (simulator), for the traditional fence and both S-Fence paths.
"""

from __future__ import annotations

import pytest

from repro.litmus.corpus import CORPUS
from repro.verify.runner import verify_case

ENTRY = {e.name: e for e in CORPUS}


def _case(name: str, mode: str, engine: str = "event", seeds: int = 1,
          smoke: bool = True) -> dict:
    # smoke=True uses the truncated offset grid -- enough for soundness
    # and allowed-set assertions; reachability assertions need the full
    # grid (smoke=False), whose long offsets let stores drain between
    # threads
    return verify_case({
        "name": name, "source": ENTRY[name].source, "mode": mode,
        "engine": engine, "seeds": seeds, "smoke": smoke,
    })


@pytest.mark.parametrize("entry", CORPUS, ids=[e.name for e in CORPUS])
@pytest.mark.parametrize("engine", ["event", "dense"])
def test_simulator_sound_on_corpus(entry, engine):
    """Every engine outcome lies inside the exhaustive allowed set."""
    for mode in ("orig", "none", "sfence-set"):
        result = _case(entry.name, mode, engine)
        assert result["reference_match"], (
            f"{entry.name}[{mode}]: explorer disagrees with reference: "
            f"explorer-only {result['explorer_only']}, "
            f"reference-only {result['reference_only']}"
        )
        assert result["sound"], (
            f"{entry.name}[{mode}] on {engine}: outcomes outside the "
            f"allowed set: {result['violations']} "
            f"(registers {result['registers']})"
        )


def test_sb_both_outcomes_reachable_without_fence():
    """Store buffering with no fence: the relaxed outcome (0, 0) and at
    least one SC outcome are both actually observed."""
    result = _case("SB", "none", smoke=False)
    observed = {tuple(o) for o in result["observed"]}
    assert [0, 0] in result["allowed"]
    assert (0, 0) in observed, "relaxed SB outcome never reached -- vacuous"
    assert observed & {(0, 1), (1, 0), (1, 1)}, "no SC outcome reached"


@pytest.mark.parametrize("mode", ["full", "sfence-class", "sfence-set"])
def test_sb_forbidden_outcome_unreachable_with_fence(mode):
    """Fenced store buffering: (0, 0) is outside the allowed set and the
    simulator never produces it -- for the traditional fence and both
    scoped S-Fence hardware paths."""
    result = _case("SB", mode)
    assert [0, 0] not in result["allowed"]
    assert [0, 0] not in result["observed"]
    assert result["sound"]
    # the cell is not vacuous either: something is still observed
    assert result["coverage"][0] >= 1


def test_mp_relaxation_reachable_and_fenced_away():
    """MP: flag-before-data observable bare, forbidden under sfence-set."""
    bare = _case("MP", "none", smoke=False)
    # registers sorted: (r0, r1, rw); relaxed outcome r0=1, r1=0
    assert bare["registers"] == ["r0", "r1", "rw"]
    assert any(o[0] == 1 and o[1] == 0 for o in bare["observed"]), (
        "MP relaxation never observed without fences"
    )
    fenced = _case("MP", "sfence-set")
    assert not any(o[0] == 1 and o[1] == 0 for o in fenced["allowed"])
    assert not any(o[0] == 1 and o[1] == 0 for o in fenced["observed"])


def test_scoped_fences_match_full_fence_allowed_sets():
    """A litmus program runs outside any method scope with every
    variable flagged, so both S-Fence modes must shrink the allowed set
    exactly as the traditional full fence does."""
    for name in ENTRY:
        full = _case(name, "full")
        for mode in ("sfence-class", "sfence-set"):
            scoped = _case(name, mode)
            assert scoped["allowed"] == full["allowed"], (
                f"{name}: {mode} allowed set diverges from full fence"
            )


def test_engines_observe_identical_outcomes():
    """Dense and event engines see the same schedules, so the observed
    sets must match cell by cell (the fast-path equivalence contract,
    restated at the verify layer)."""
    for name in ("SB", "MP+ss"):
        for mode in ("none", "sfence-set"):
            event = _case(name, mode, "event")
            dense = _case(name, mode, "dense")
            assert event["observed"] == dense["observed"]
            assert event["coverage"] == dense["coverage"]
