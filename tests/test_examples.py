"""Smoke tests: every shipped example runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    if path.stem == "work_stealing_tree":
        monkeypatch.setattr(sys, "argv", [str(path), "96"])  # smaller graph
    else:
        monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_example_litmus_files_parse_and_run():
    from repro.litmus.dsl import parse_litmus, run_litmus

    litmus_dir = Path(__file__).parent.parent / "examples" / "litmus"
    files = sorted(litmus_dir.glob("*.litmus"))
    assert len(files) >= 3
    for f in files:
        test = parse_litmus(f.read_text())
        run = run_litmus(test, offsets=[0, 150])
        assert run.outcomes
