"""The coherence-backend interface: completeness, leaks, cache keys.

Three layers of enforcement around :data:`repro.mem.BACKEND_INTERFACE`:

* **Completeness** -- every registered backend implements the whole
  surface, and :func:`repro.mem.create_backend` dispatches
  ``SimConfig.mem_backend`` to the right class.
* **No leaks** -- a grep-driven scan of every ``*.hierarchy.<attr>``
  call site in ``src/`` (outside ``repro/mem`` itself) fails if any
  attribute outside the declared surface is touched, so MESI
  internals (directory, MSHRs) and SiSd internals (dirty sets) cannot
  creep back into the core model.
* **Cache identity** -- the campaign result cache must key on the
  backend: the same job parameters under ``mesi`` and ``sisd`` are
  different work and must never share a cache object.  A warm re-run
  of a backend-keyed sweep serves everything from cache and reproduces
  its results exactly.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro
from repro.campaign import ResultCache, litmus_jobs, run_campaign
from repro.campaign.cache import job_key
from repro.mem import (
    BACKEND_INTERFACE,
    MemoryHierarchy,
    SiSdHierarchy,
    create_backend,
)
from repro.sim.config import MEM_BACKENDS, SimConfig

SRC_ROOT = Path(repro.__file__).resolve().parent

#: any attribute access on a ``hierarchy``-named object: the simulator
#: exposes the backend as ``sim.hierarchy``, cores hold
#: ``self.hierarchy``, chaos installs ``sim.hierarchy.fault``
_CALL_SITE = re.compile(r"\.hierarchy\.(\w+)")


# -------------------------------------------------------------- completeness
@pytest.mark.parametrize("backend", MEM_BACKENDS)
def test_backends_implement_the_full_interface(backend):
    instance = create_backend(SimConfig(n_cores=2, mem_backend=backend))
    assert instance.name == backend
    for attr in BACKEND_INTERFACE:
        assert hasattr(instance, attr), (
            f"backend {backend!r} is missing interface member {attr!r}"
        )


def test_create_backend_dispatch():
    assert isinstance(create_backend(SimConfig(n_cores=2)), MemoryHierarchy)
    assert isinstance(
        create_backend(SimConfig(n_cores=2, mem_backend="sisd")), SiSdHierarchy
    )


def test_unknown_backend_rejected_at_config_time():
    with pytest.raises(ValueError, match="mem_backend"):
        SimConfig(mem_backend="directoryless-magic")


def test_mesi_fence_sync_is_free():
    """The MESI invariant the refactor rests on: sync points are no-ops."""
    from repro.sim.stats import CoreStats

    h = create_backend(SimConfig(n_cores=2))
    assert h.fence(0, "fence", 0b11, CoreStats()) is None


# ------------------------------------------------------------------ no leaks
def test_no_backend_internals_leak_outside_mem():
    mem_dir = SRC_ROOT / "mem"
    offenders: list[str] = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if mem_dir in path.parents:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for attr in _CALL_SITE.findall(line):
                if attr not in BACKEND_INTERFACE:
                    offenders.append(
                        f"{path.relative_to(SRC_ROOT)}:{lineno}: "
                        f".hierarchy.{attr}"
                    )
    assert not offenders, (
        "call sites outside repro/mem touch attributes beyond "
        f"BACKEND_INTERFACE {sorted(BACKEND_INTERFACE)}:\n"
        + "\n".join(offenders)
    )


def test_interface_is_actually_exercised():
    """The scan is live: the core model really does call the surface."""
    used: set[str] = set()
    mem_dir = SRC_ROOT / "mem"
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if mem_dir in path.parents:
            continue
        used.update(_CALL_SITE.findall(path.read_text()))
    for attr in ("access", "completion_cycle", "fence", "warm", "fault"):
        assert attr in used, f"interface member {attr!r} has no call site"


# ------------------------------------------------------------- cache identity
def test_cache_keys_differ_by_backend():
    for kind, params in (
        ("verify", {"test": "SB", "mode": "none", "engine": "event",
                    "seeds": 2, "smoke": False}),
        ("litmus", {"name": "SB", "model": "rmo", "dense_loop": False}),
        ("chaos", {"algo": "wsq", "scenario": "clean", "seed": 0}),
    ):
        keys = {
            job_key(kind, {**params, "backend" if kind == "verify"
                           else "mem_backend": b}, "fp")
            for b in MEM_BACKENDS
        }
        assert len(keys) == len(MEM_BACKENDS), (
            f"{kind} jobs share one cache key across backends"
        )


@pytest.mark.parametrize("backend", MEM_BACKENDS)
def test_warm_rerun_is_cached_and_identical(backend, tmp_path):
    jobs = litmus_jobs(mem_backend=backend)[:2]
    cache = ResultCache(tmp_path / backend)
    cold = run_campaign(jobs, parallel=0, cache=cache)
    assert cold.ok and cold.executed == len(jobs)
    warm = run_campaign(jobs, parallel=0, cache=ResultCache(tmp_path / backend))
    assert warm.ok
    assert warm.executed == 0, "a warm re-run recomputed cached jobs"
    assert warm.cached == len(jobs)
    assert warm.results() == cold.results()


def test_backends_do_not_share_cache_objects(tmp_path):
    """The same litmus job under each backend is distinct cached work."""
    cache = ResultCache(tmp_path)
    seen_keys = set()
    for backend in MEM_BACKENDS:
        job = litmus_jobs(mem_backend=backend)[0]
        seen_keys.add(cache.key_for(job))
    assert len(seen_keys) == len(MEM_BACKENDS)
