"""Supervised runner: escalation ladder + failure classification."""

import pytest

from repro.chaos.supervisor import (
    ChaosFailure,
    FailureKind,
    run_supervised,
)
from repro.isa.instructions import Compute
from repro.isa.program import ops_program
from repro.sim.config import SimConfig
from repro.sim.diagnostics import SimDiagnostic, capture
from repro.sim.simulator import CycleLimitError, DeadlockError, Simulator


def make_sim(n_ops=4, op_cycles=50):
    return Simulator(SimConfig(n_cores=1),
                     ops_program([[Compute(op_cycles)] * n_ops]))


def _diag(instructions: int, reason: str = "cycle-limit") -> SimDiagnostic:
    sim = make_sim(n_ops=0)
    diag = capture(sim.cores, 10, reason)
    diag.cores[0].instructions = instructions
    diag.cores[0].finished = False
    return diag


# ------------------------------------------------------------------ success
def test_first_attempt_success():
    outcome = run_supervised(make_sim, base_budget=100_000)
    assert outcome.ok
    assert outcome.result.cycles >= 200
    assert [a.outcome for a in outcome.attempts] == ["ok"]
    assert outcome.attempts[0].instructions == 4


def test_escalation_until_success():
    """Budget 150 is too small for 4x50-cycle ops; doubling twice fits."""
    outcome = run_supervised(make_sim, base_budget=150, escalations=3)
    assert outcome.ok
    assert len(outcome.attempts) > 1
    assert outcome.attempts[-1].outcome == "ok"
    assert all(a.outcome == "cycle-limit" for a in outcome.attempts[:-1])
    # each rung doubled the previous budget
    budgets = [a.budget for a in outcome.attempts]
    assert budgets == [150 * 2 ** i for i in range(len(budgets))]
    # earlier rungs retired strictly fewer instructions (real progress)
    assert outcome.attempts[0].instructions < outcome.attempts[-1].instructions


# ----------------------------------------------------------- classification
def test_deadlock_is_terminal_no_retry():
    calls = []

    def build():
        calls.append(1)

        class Dead:
            def run(self, max_cycles):
                raise DeadlockError("wedged", diagnostic=_diag(7, "deadlock"))

        return Dead()

    outcome = run_supervised(build, base_budget=100, raise_on_failure=False)
    assert not outcome.ok
    assert outcome.failure.kind is FailureKind.DEADLOCK
    assert len(calls) == 1                      # deterministic: never retried
    assert outcome.failure.diagnostic is not None
    assert "deadlock" in str(outcome.failure)


def test_livelock_detected_on_equal_progress():
    def build():
        class Stuck:
            def run(self, max_cycles):
                raise CycleLimitError("over budget", diagnostic=_diag(42))

        return Stuck()

    outcome = run_supervised(build, base_budget=100, escalations=5,
                             raise_on_failure=False)
    assert outcome.failure.kind is FailureKind.LIVELOCK
    # early exit: two equal-progress rungs suffice, not the full ladder
    assert len(outcome.attempts) == 2
    assert "42 instructions" in str(outcome.failure)


def test_budget_exhaustion_when_still_progressing():
    insns = iter([10, 20, 30, 40, 50])

    def build():
        class Slow:
            def run(self, max_cycles):
                raise CycleLimitError("over budget", diagnostic=_diag(next(insns)))

        return Slow()

    outcome = run_supervised(build, base_budget=100, escalations=3,
                             raise_on_failure=False)
    assert outcome.failure.kind is FailureKind.BUDGET
    assert len(outcome.attempts) == 4           # base + 3 escalations
    assert [a.budget for a in outcome.attempts] == [100, 200, 400, 800]


def test_failure_raises_by_default():
    def build():
        class Dead:
            def run(self, max_cycles):
                raise DeadlockError("wedged", diagnostic=_diag(0, "deadlock"))

        return Dead()

    with pytest.raises(ChaosFailure) as exc_info:
        run_supervised(build, base_budget=100)
    assert exc_info.value.kind is FailureKind.DEADLOCK


def test_failure_message_carries_ladder_and_postmortem():
    def build():
        class Stuck:
            def run(self, max_cycles):
                raise CycleLimitError("over budget", diagnostic=_diag(5))

        return Stuck()

    outcome = run_supervised(build, base_budget=100, raise_on_failure=False)
    msg = str(outcome.failure)
    assert "attempts:" in msg
    assert "100cy:cycle-limit" in msg
    assert "core 0" in msg                      # rendered diagnostic


def test_supervised_run_helper_lazy_wrapper():
    from repro.runtime.harness import supervised_run

    outcome = supervised_run(make_sim, base_budget=100_000)
    assert outcome.ok and outcome.result is not None
