"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import Cache
from repro.mem.memory import SharedMemory
from repro.runtime.address_space import AddressSpace


# -------------------------------------------------------------------- cache
@given(
    lines=st.lists(st.integers(0, 200), min_size=1, max_size=120),
    assoc=st.sampled_from([1, 2, 4]),
)
def test_cache_capacity_never_exceeded(lines, assoc):
    c = Cache(16, assoc)
    for line in lines:
        c.fill(line)
        assert len(c) <= 16
    # per-set occupancy never exceeds associativity
    per_set = {}
    for line in c.resident_lines():
        per_set.setdefault(line % c.n_sets, []).append(line)
    assert all(len(v) <= assoc for v in per_set.values())


@given(lines=st.lists(st.integers(0, 50), min_size=1, max_size=60))
def test_cache_most_recent_line_always_resident(lines):
    c = Cache(8, 2)
    for line in lines:
        c.fill(line)
        assert c.contains(line)


@given(lines=st.lists(st.integers(0, 20), min_size=1, max_size=40))
def test_cache_touch_consistent_with_contains(lines):
    c = Cache(8, 2)
    for line in lines:
        assert c.touch(line) == c.contains(line) or c.contains(line)
        c.fill(line)
        assert c.touch(line)


# ------------------------------------------------------------ shared memory
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["store", "drain", "read"]),
            st.integers(0, 2),   # core
            st.integers(0, 7),   # addr
            st.integers(1, 99),  # value
        ),
        max_size=60,
    )
)
def test_memory_forwarding_matches_reference(ops):
    """Model: per-core pending FIFO per address + global image."""
    mem = SharedMemory(64, 3)
    ref_global = [0] * 8
    ref_pending = {c: {} for c in range(3)}
    for kind, core, addr, value in ops:
        if kind == "store":
            mem.buffer_store(core, addr, value)
            ref_pending[core].setdefault(addr, []).append(value)
        elif kind == "drain":
            fifo = ref_pending[core].get(addr)
            if fifo:
                got = mem.drain_store(core, addr)
                expect = fifo.pop(0)
                assert got == expect
                ref_global[addr] = expect
        else:
            expect = (
                ref_pending[core][addr][-1]
                if ref_pending[core].get(addr)
                else ref_global[addr]
            )
            assert mem.read(core, addr) == expect
            # other cores never see pending values of this core
            for other in range(3):
                if other != core and not ref_pending[other].get(addr):
                    assert mem.read(other, addr) == ref_global[addr]


@given(
    addrs=st.lists(st.integers(0, 15), min_size=1, max_size=30),
    core=st.integers(0, 1),
)
def test_memory_pending_count_balances(addrs, core):
    mem = SharedMemory(64, 2)
    for a in addrs:
        mem.buffer_store(core, a, a + 1)
    assert mem.pending_count(core) == len(addrs)
    for a in addrs:
        mem.drain_store(core, a)
    assert mem.pending_count(core) == 0


# ------------------------------------------------------------ address space
@given(
    sizes=st.lists(st.integers(1, 64), min_size=1, max_size=20),
    aligned=st.booleans(),
)
def test_allocations_never_overlap(sizes, aligned):
    space = AddressSpace(1 << 16, 8)
    regions = []
    for i, size in enumerate(sizes):
        base = space.alloc(f"r{i}", size, line_aligned=aligned)
        regions.append((base, size))
    for i, (b1, s1) in enumerate(regions):
        for b2, s2 in regions[i + 1:]:
            assert b1 + s1 <= b2 or b2 + s2 <= b1, "overlapping allocations"


@settings(max_examples=25)
@given(st.data())
def test_owner_of_resolves_inside_regions(data):
    space = AddressSpace(1 << 14, 8)
    n = data.draw(st.integers(1, 8))
    for i in range(n):
        size = data.draw(st.integers(1, 32))
        base = space.alloc(f"r{i}", size)
        assert space.owner_of(base) == f"r{i}"
        assert space.owner_of(base + size - 1) == f"r{i}"
