"""Tests for the simulator perf harness and the ``perf`` CLI command."""

import json

import pytest

from repro.__main__ import main
from repro.analysis.simperf import (
    GATE_WORKLOAD,
    WORKLOADS,
    divergent_cells,
    run_perf,
)


def test_workload_registry():
    assert GATE_WORKLOAD in WORKLOADS
    assert {"litmus", "fig15-hot", "cilk_fib"} <= set(WORKLOADS)


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        run_perf(workloads=["no-such-workload"], smoke=True)


def test_unknown_backend_rejected():
    with pytest.raises(KeyError):
        run_perf(workloads=["litmus"], smoke=True, mem_backends=["bogus"])


def test_run_perf_report_shape():
    report = run_perf(workloads=["litmus"], smoke=True, min_speedup=2.0,
                      reps=1)
    w = report["workloads"]["litmus"]
    for key in ("sim_cycles", "dense_wall_s", "event_wall_s",
                "compiled_wall_s", "dense_cycles_per_s", "event_cycles_per_s",
                "compiled_cycles_per_s", "event_speedup", "compiled_speedup",
                "compile_ratio", "identical", "backends", "gate"):
        assert key in w, key
    assert w["identical"] is True
    assert w["sim_cycles"] > 0
    assert w["gate"]["passed"] is True
    assert set(w["backends"]) == {"mesi"}
    assert divergent_cells(report) == []
    # the gate workload was not requested: the gate records a skip and
    # does not fail the partial sweep
    assert report["gate"]["skipped"] is True
    assert report["failures"] == []
    assert report["ok"] is True


def test_run_perf_backend_axis():
    report = run_perf(workloads=["litmus"], smoke=True,
                      mem_backends="mesi,sisd", reps=1)
    w = report["workloads"]["litmus"]
    assert set(w["backends"]) == {"mesi", "sisd"}
    for cell in w["backends"].values():
        assert cell["identical"] is True
    # flattened columns mirror the primary (first listed) backend
    assert w["event_wall_s"] == w["backends"]["mesi"]["event_wall_s"]
    assert report["mem_backends"] == ["mesi", "sisd"]


def test_perf_command_writes_report(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    assert main(["perf", "--smoke", "--workloads", "litmus",
                 "--perf-reps", "1", "-o", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "dense loop vs event vs trace-compiled" in out
    assert "litmus" in out
    report = json.loads(out_path.read_text())
    assert report["smoke"] is True
    assert report["workloads"]["litmus"]["identical"] is True


def test_perf_command_gate_failure(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    # an impossible speedup requirement on the gate workload must fail
    assert main(["perf", "--smoke", "--workloads", GATE_WORKLOAD,
                 "--perf-reps", "1", "--min-speedup", "1000000",
                 "-o", str(out_path)]) == 1
    err = capsys.readouterr().err
    assert GATE_WORKLOAD in err  # the failing workload is named
    report = json.loads(out_path.read_text())
    assert report["gate"]["passed"] is False
    assert report["failures"] == [GATE_WORKLOAD]
    assert report["ok"] is False


def test_perf_command_compile_gate_failure(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    # same for an impossible compiled-vs-event ratio requirement
    assert main(["perf", "--smoke", "--workloads", GATE_WORKLOAD,
                 "--perf-reps", "1", "--min-speedup", "0",
                 "--min-compile-ratio", "1000000",
                 "-o", str(out_path)]) == 1
    err = capsys.readouterr().err
    assert "compiled/event ratio" in err
    report = json.loads(out_path.read_text())
    assert report["gate"]["passed"] is False
    assert report["ok"] is False


def test_perf_command_unknown_workload(tmp_path, capsys):
    assert main(["perf", "--smoke", "--workloads", "bogus",
                 "-o", str(tmp_path / "b.json")]) == 2


def test_perf_command_unknown_backend(tmp_path, capsys):
    assert main(["perf", "--smoke", "--workloads", "litmus",
                 "--mem-backend", "bogus",
                 "-o", str(tmp_path / "b.json")]) == 2
