"""Tests for the simulator perf harness and the ``perf`` CLI command."""

import json

import pytest

from repro.__main__ import main
from repro.analysis.simperf import GATE_WORKLOAD, WORKLOADS, run_perf


def test_workload_registry():
    assert GATE_WORKLOAD in WORKLOADS
    assert {"litmus", "fig15-hot", "cilk_fib"} <= set(WORKLOADS)


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        run_perf(workloads=["no-such-workload"], smoke=True)


def test_run_perf_report_shape():
    report = run_perf(workloads=["litmus"], smoke=True, min_speedup=2.0)
    w = report["workloads"]["litmus"]
    for key in ("sim_cycles", "dense_wall_s", "fast_wall_s",
                "dense_cycles_per_s", "fast_cycles_per_s", "speedup",
                "identical"):
        assert key in w, key
    assert w["identical"] is True
    assert w["sim_cycles"] > 0
    # the gate workload was not requested: the gate records a skip and
    # does not fail the partial sweep
    assert report["gate"]["skipped"] is True
    assert report["ok"] is True


def test_perf_command_writes_report(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    assert main(["perf", "--smoke", "--workloads", "litmus",
                 "-o", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "dense loop vs event-driven fast path" in out
    assert "litmus" in out
    report = json.loads(out_path.read_text())
    assert report["smoke"] is True
    assert report["workloads"]["litmus"]["identical"] is True


def test_perf_command_gate_failure(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    # an impossible speedup requirement on the gate workload must fail
    assert main(["perf", "--smoke", "--workloads", GATE_WORKLOAD,
                 "--min-speedup", "1000000", "-o", str(out_path)]) == 1
    report = json.loads(out_path.read_text())
    assert report["gate"]["passed"] is False
    assert report["ok"] is False


def test_perf_command_unknown_workload(tmp_path, capsys):
    assert main(["perf", "--smoke", "--workloads", "bogus",
                 "-o", str(tmp_path / "b.json")]) == 2
