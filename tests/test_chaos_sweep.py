"""Acceptance sweep: >=20 seeds x the full algorithm suite under forced
mapping-table/FSS pressure, with zero invariant violations.

The ``scope`` scenario runs a 2-entry FSB / 2-entry FSS / 2-entry
mapping table *and* randomly forces the overflow counter, so entry
sharing, mapping overflow and counter mode all trigger; ``storm`` layers
every injector (latency, branch flips, drain throttling, overflow) on
top of in-window speculation.  Every case must finish, satisfy every
ordering invariant, and pass its algorithm's own linearizability check.
"""

import pytest

from repro.chaos.runner import ALGORITHMS, SCENARIOS, run_chaos_case, sweep

N_SEEDS = 20


def _assert_all_ok(reports):
    bad = [r for r in reports if not r.ok]
    detail = "\n\n".join(
        f"{r.algo}/{r.scenario} seed={r.seed}: {r.status}\n{r.detail}"
        for r in bad[:3]
    )
    assert not bad, f"{len(bad)}/{len(reports)} chaos cases failed:\n{detail}"
    assert all(r.violations == 0 for r in reports)


def test_scope_pressure_sweep_clean():
    """The headline acceptance case: forced overflow, 20 seeds, all algos."""
    reports = sweep(scenarios=["scope"], n_seeds=N_SEEDS)
    assert len(reports) == N_SEEDS * len(ALGORITHMS)
    _assert_all_ok(reports)
    # the sweep genuinely drove the degraded paths
    assert sum(r.injected.get("scope_overflow", 0) for r in reports) > 50
    # and genuinely checked fences on every case
    assert all(r.fences_checked > 0 for r in reports)
    # both fence flavours were exercised (seed parity alternates them)
    assert {r.scope for r in reports} == {"class", "set"}


def test_storm_sweep_clean():
    reports = sweep(scenarios=["storm"], n_seeds=N_SEEDS)
    assert len(reports) == N_SEEDS * len(ALGORITHMS)
    _assert_all_ok(reports)
    injected = {}
    for r in reports:
        for key, n in r.injected.items():
            injected[key] = injected.get(key, 0) + n
    for key in ("mem_spike", "mem_jitter", "branch_flip", "scope_overflow",
                "drain_stall"):
        assert injected.get(key, 0) > 0, f"storm never injected {key}"


@pytest.mark.parametrize("scenario", ["latency", "branch", "drain"])
def test_single_fault_scenarios_clean(scenario):
    reports = sweep(scenarios=[scenario], n_seeds=4)
    _assert_all_ok(reports)


def test_case_is_deterministic():
    a = run_chaos_case("wsq", "storm", 7)
    b = run_chaos_case("wsq", "storm", 7)
    assert (a.cycles, a.events, a.fences_checked, a.injected) == \
           (b.cycles, b.events, b.fences_checked, b.injected)


def test_seeds_actually_vary_the_run():
    cycles = {run_chaos_case("msn", "latency", s).cycles for s in range(4)}
    assert len(cycles) > 1


def test_unknown_names_rejected():
    with pytest.raises(KeyError):
        sweep(algos=["nope"], n_seeds=1)
    with pytest.raises(KeyError):
        sweep(scenarios=["nope"], n_seeds=1)


def test_scenarios_cover_every_injector():
    """Guard the preset table: between them, the scenarios must exercise
    every FaultPlan knob."""
    knobs = set()
    for scen in SCENARIOS.values():
        p = scen.plan
        if p.mem_spike_prob:
            knobs.add("spike")
        if p.mem_jitter:
            knobs.add("jitter")
        if p.branch_flip_prob:
            knobs.add("branch")
        if p.scope_overflow_prob:
            knobs.add("overflow")
        if p.drain_stall_prob:
            knobs.add("drain")
    assert knobs == {"spike", "jitter", "branch", "overflow", "drain"}
