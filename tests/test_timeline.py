"""Tests for the execution-timeline recorder."""

from repro.isa.instructions import Compute, Fence, FenceKind, Load, Store
from repro.isa.program import ops_program
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator
from repro.sim.timeline import Segment, TimelineRecorder


def run_with_timeline(ops, **cfg):
    cfg.setdefault("n_cores", 1)
    tl = TimelineRecorder()
    sim = Simulator(SimConfig(**cfg), ops_program([ops]), timeline=tl)
    res = sim.run()
    return res, tl


def test_records_fence_stall_segment():
    res, tl = run_with_timeline(
        [Store(4096, 1), Fence(FenceKind.GLOBAL), Load(64)]
    )
    states = tl.state_cycles(0)
    assert states.get("fence", 0) >= 250
    assert "run" in states
    segs = tl.segments(0)
    assert any(s.state == "fence" and s.length >= 250 for s in segs)


def test_segments_cover_the_whole_run():
    res, tl = run_with_timeline([Compute(40), Compute(40)])
    segs = tl.segments(0)
    assert segs[0].start == 0
    # segments are contiguous and ordered
    for a, b in zip(segs, segs[1:]):
        assert b.start == a.end + 1
    assert segs[-1].end >= res.cycles - 1


def test_state_cycles_sum_matches_span():
    res, tl = run_with_timeline([Store(64, 1), Compute(20)])
    segs = tl.segments(0)
    total = sum(s.length for s in segs)
    assert total == segs[-1].end - segs[0].start + 1


def test_render_mentions_each_core():
    def t0(tid):
        yield Compute(10)

    from repro.isa.program import Program

    tl = TimelineRecorder()
    sim = Simulator(SimConfig(n_cores=2), Program([t0, t0]), timeline=tl)
    sim.run()
    out = tl.render()
    assert "core 0" in out and "core 1" in out


def test_render_truncates_long_timelines():
    ops = []
    for i in range(30):
        ops.append(Store(4096 + i * 64, 1))
        ops.append(Fence(FenceKind.GLOBAL))
    _, tl = run_with_timeline(ops)
    out = tl.render(max_segments=3)
    assert "segments)" in out


def test_empty_recorder():
    tl = TimelineRecorder()
    assert tl.segments(0) == []
    assert tl.cores() == []
    assert tl.render() == ""


# ------------------------------------------------- fast-path skip-span markers
_JUMPY_OPS = [
    Store(4096, 1), Fence(FenceKind.GLOBAL), Load(64), Compute(30),
    Store(8192, 2), Fence(FenceKind.GLOBAL), Load(128),
]


def test_fastpath_records_skipped_spans():
    """Clock jumps leave explicit markers, not holes."""
    _, tl = run_with_timeline(list(_JUMPY_OPS))
    spans = tl.skipped_spans(0)
    assert spans, "event scheduler produced no skip markers"
    assert all(s.end >= s.start for s in spans)
    assert any(s.state == "fence" and s.length >= 200 for s in spans)
    # markers integrate seamlessly: segments still tile the run
    segs = tl.segments(0)
    for a, b in zip(segs, segs[1:]):
        assert b.start == a.end + 1


def test_timeline_identical_across_modes():
    """Dense and fast-path timelines summarise to the same thing."""

    def run(dense):
        tl = TimelineRecorder()
        prog = ops_program([list(_JUMPY_OPS), [Compute(80), Store(64, 5)]])
        sim = Simulator(
            SimConfig(n_cores=2, dense_loop=dense), prog, timeline=tl
        )
        res = sim.run()
        return res, tl

    res_d, tl_d = run(True)
    res_f, tl_f = run(False)
    assert res_d.cycles == res_f.cycles
    assert tl_d.cores() == tl_f.cores()
    for core in tl_d.cores():
        assert tl_d.segments(core) == tl_f.segments(core)
        assert tl_d.state_cycles(core) == tl_f.state_cycles(core)
    assert tl_d.render() == tl_f.render()
    # the fast path got there by skipping, the dense loop by sampling
    assert any(tl_f.skipped_spans(c) for c in tl_f.cores())
    assert not any(tl_d.skipped_spans(c) for c in tl_d.cores())
