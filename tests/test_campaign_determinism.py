"""Determinism regression for the campaign engine's core contract.

A campaign with the same seeds must produce byte-identical results
whether it runs in-process, in a single worker subprocess, or on a
multi-worker pool -- and identical to the pre-existing serial sweep.
The ``probe`` job kind digests the *entire* per-core monitor event
stream (every dispatch, drain, fence, scope and squash event, every
field), so these tests fail on any divergence in simulation behaviour,
not just on differing headline stats.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.campaign import chaos_jobs, probe_jobs, run_campaign

PROBE_CASES = [("wsq", "storm", 3), ("lamport", "scope", 4)]


def _results(jobs, parallel):
    campaign = run_campaign(jobs, parallel=parallel)
    assert campaign.ok, [o.error for o in campaign.failures]
    return campaign.results()


def test_probe_identical_across_execution_modes():
    jobs = probe_jobs(PROBE_CASES)
    inline = _results(jobs, parallel=0)
    single = _results(jobs, parallel=1)
    pool = _results(jobs, parallel=2)
    assert inline == single == pool
    # the probes did real work and the digests cover real streams
    for r in inline:
        assert r["status"] == "ok"
        assert r["events"] > 100
        assert r["violations"] == 0
        assert r["stats"]["total_cycles"] > 0


def test_probe_event_stream_stable_within_one_process():
    jobs = probe_jobs([PROBE_CASES[0]])
    first = _results(jobs, parallel=0)
    second = _results(jobs, parallel=0)
    assert first == second


def test_probe_seeds_change_the_stream():
    base, other = probe_jobs([("wsq", "storm", 3), ("wsq", "storm", 5)])
    r = _results([base, other], parallel=0)
    assert r[0]["events_sha"] != r[1]["events_sha"]


def test_chaos_campaign_matches_serial_sweep():
    """Pool execution reproduces the serial sweep's reports exactly."""
    from repro.chaos.runner import sweep

    algos, scenarios, n_seeds = ["wsq", "msn"], ["latency", "scope"], 2
    serial = [asdict(r) for r in
              sweep(algos=algos, scenarios=scenarios, n_seeds=n_seeds)]
    jobs = chaos_jobs(algos=algos, scenarios=scenarios, n_seeds=n_seeds)
    pooled = _results(jobs, parallel=2)
    assert pooled == serial


def test_outcomes_return_in_submission_order():
    """Workers finish in any order; the result list must not."""
    jobs = chaos_jobs(algos=["wsq", "lamport"], scenarios=["latency"], n_seeds=2)
    campaign = run_campaign(jobs, parallel=2)
    for job, outcome in zip(jobs, campaign.outcomes):
        assert outcome.job.params == job.params
