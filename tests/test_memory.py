"""Unit tests for the functional shared memory (relaxed visibility)."""

import pytest

from repro.mem.memory import SharedMemory


@pytest.fixture
def mem() -> SharedMemory:
    return SharedMemory(1024, n_cores=2)


def test_initial_zero(mem):
    assert mem.read(0, 5) == 0
    assert mem.read_global(5) == 0


def test_buffered_store_invisible_to_others(mem):
    mem.buffer_store(0, 10, 42)
    assert mem.read(0, 10) == 42     # own forwarding
    assert mem.read(1, 10) == 0      # peer sees old value
    assert mem.read_global(10) == 0


def test_drain_publishes(mem):
    mem.buffer_store(0, 10, 42)
    assert mem.drain_store(0, 10) == 42
    assert mem.read(1, 10) == 42
    assert mem.read_global(10) == 42


def test_forwarding_returns_youngest(mem):
    mem.buffer_store(0, 10, 1)
    mem.buffer_store(0, 10, 2)
    assert mem.read(0, 10) == 2


def test_same_address_drains_fifo(mem):
    mem.buffer_store(0, 10, 1)
    mem.buffer_store(0, 10, 2)
    assert mem.drain_store(0, 10) == 1
    assert mem.read_global(10) == 1
    assert mem.read(0, 10) == 2  # still forwarding the younger one
    assert mem.drain_store(0, 10) == 2
    assert mem.read_global(10) == 2


def test_drain_without_pending_raises(mem):
    with pytest.raises(RuntimeError):
        mem.drain_store(0, 10)


def test_has_pending_and_count(mem):
    assert not mem.has_pending(0, 10)
    mem.buffer_store(0, 10, 1)
    mem.buffer_store(0, 11, 2)
    assert mem.has_pending(0, 10)
    assert not mem.has_pending(1, 10)
    assert mem.pending_count(0) == 2
    mem.drain_store(0, 10)
    assert mem.pending_count(0) == 1


def test_cas_success_and_failure(mem):
    mem.write_global(10, 5)
    assert mem.cas(0, 10, 5, 6)
    assert mem.read_global(10) == 6
    assert not mem.cas(1, 10, 5, 7)
    assert mem.read_global(10) == 6


def test_cas_force_drains_own_pending(mem):
    mem.buffer_store(0, 10, 3)
    assert mem.cas(0, 10, 3, 4)
    assert mem.read_global(10) == 4
    assert not mem.has_pending(0, 10)


def test_cas_does_not_see_peer_buffer(mem):
    mem.buffer_store(1, 10, 9)
    assert mem.cas(0, 10, 0, 1)  # peer's store unpublished
    assert mem.read_global(10) == 1
    # the peer's store drains afterwards (coherence order = drain order)
    mem.drain_store(1, 10)
    assert mem.read_global(10) == 9


def test_store_store_reordering_observable(mem):
    """Out-of-order drains make PSO/RMO behaviour architectural."""
    mem.buffer_store(0, 10, 1)   # data
    mem.buffer_store(0, 11, 1)   # flag
    mem.drain_store(0, 11)       # flag drains first (no fence)
    assert mem.read(1, 11) == 1
    assert mem.read(1, 10) == 0  # peer sees flag without data


def test_snapshot_is_copy(mem):
    snap = mem.snapshot()
    mem.write_global(0, 99)
    assert snap[0] == 0


def test_invalid_size():
    with pytest.raises(ValueError):
        SharedMemory(0, 1)
