"""SimConfig (Table III) and statistics tests."""

import pytest

from repro.sim.config import MemoryModel, SimConfig, TABLE_III
from repro.sim.stats import CoreStats, SimStats


def test_table_iii_defaults():
    cfg = TABLE_III
    assert cfg.n_cores == 8
    assert cfg.rob_size == 128
    assert cfg.l1_kb == 32 and cfg.l1_assoc == 4 and cfg.l1_latency == 2
    assert cfg.l2_kb == 1024 and cfg.l2_assoc == 8 and cfg.l2_latency == 10
    assert cfg.mem_latency == 300
    assert cfg.fsb_entries == 4
    assert cfg.fss_entries == 4
    assert cfg.memory_model is MemoryModel.RMO


def test_derived_geometry():
    cfg = SimConfig()
    assert cfg.words_per_line == 8
    assert cfg.l1_lines == 512
    assert cfg.l2_lines == 16384


def test_with_override():
    cfg = SimConfig().with_(mem_latency=500)
    assert cfg.mem_latency == 500
    assert cfg.rob_size == 128  # everything else unchanged


def test_validation():
    with pytest.raises(ValueError):
        SimConfig(n_cores=0)
    with pytest.raises(ValueError):
        SimConfig(rob_size=1)
    with pytest.raises(ValueError):
        SimConfig(fsb_entries=1)
    with pytest.raises(ValueError):
        SimConfig(line_bytes=60)
    with pytest.raises(ValueError):
        SimConfig(sb_size=0)


def test_memory_model_properties():
    assert MemoryModel.TSO.sb_fifo and MemoryModel.SC.sb_fifo
    assert not MemoryModel.RMO.sb_fifo and not MemoryModel.PSO.sb_fifo
    assert MemoryModel.RMO.sb_at_dispatch
    assert not MemoryModel.PSO.sb_at_dispatch


def test_core_stats_derived():
    c = CoreStats()
    assert c.avg_rob_occupancy == 0.0
    assert c.l1_hit_rate == 0.0
    c.rob_occupancy_sum, c.rob_occupancy_samples = 100, 10
    c.l1_hits, c.l1_misses = 30, 10
    assert c.avg_rob_occupancy == 10.0
    assert c.l1_hit_rate == 0.75


def test_sim_stats_aggregation():
    a = CoreStats(core_id=0, cycles=100, fence_stall_cycles=40, instructions=10)
    b = CoreStats(core_id=1, cycles=100, fence_stall_cycles=10, instructions=20)
    s = SimStats(cores=[a, b], total_cycles=100)
    assert s.fence_stall_cycles == 50
    assert s.instructions == 30
    assert s.fence_stall_fraction == 50 / 200
    assert s.summary()["total_cycles"] == 100


def test_empty_stats_summary():
    s = SimStats()
    assert s.fence_stall_fraction == 0.0
    assert s.avg_rob_occupancy == 0.0
