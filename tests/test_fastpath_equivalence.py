"""Differential equivalence: dense loop vs event fast path vs compiled.

The event scheduler's entire claim is that skipping no-progress ticks
is unobservable, and the trace-compiled engine's claim is that batch
block admission is unobservable on top of that.  These tests run the
same workloads under all three engines and assert *byte-identical*
results at every level the simulator exposes: final memory contents,
every per-core stats counter, retire logs, the full monitor event
stream (dispatch/complete/drain/fence/scope events with their exact
cycles), chaos fault-injection decisions, and litmus outcome sets.

Coverage: the whole litmus corpus, seeded fuzz programs (the same
generator the differential fuzzer uses), a lock-free workload, and
chaos-fault scenarios -- each at two simulated core counts -- plus
directed tests for the wake-up contract's edge cases (zero-latency
memory, a core that never wakes, and wake-source coincidence).
"""

from __future__ import annotations

import dataclasses
import hashlib

import pytest

from repro.chaos.faults import ChaosEngine, FaultPlan
from repro.isa.instructions import Compute, Fence, FenceKind, Load, Store
from repro.isa.program import ops_program
from repro.litmus.corpus import CORPUS
from repro.litmus.dsl import parse_litmus, run_litmus
from repro.runtime.lang import Env, reset_cids
from repro.sim.config import SimConfig
from repro.sim.simulator import DeadlockError, Simulator
from repro.sim.trace import OrderEventLog
from tests.test_litmus_fuzz import generate_program

OFFSETS = [0, 3, 47]
CORE_COUNTS = (2, 4)

#: engine name -> SimConfig overrides.  "compiled" is the default mode;
#: "event" is the same scheduler with block compilation disabled (every
#: op interpreted); "dense" is the per-cycle reference loop.
ENGINES = {
    "dense": dict(dense_loop=True),
    "event": dict(dense_loop=False, trace_compile=False),
    "compiled": dict(dense_loop=False, trace_compile=True),
}


# ---------------------------------------------------------------- deep harness
def _run_workload(n_threads: int, engine: str, plan: FaultPlan | None = None):
    """One wsq-workload run; returns every observable as plain data."""
    from repro.algorithms.workloads import build_wsq_workload

    reset_cids()
    cfg = SimConfig(n_cores=n_threads, retire_log_len=32, **ENGINES[engine])
    env = Env(cfg)
    handle = build_wsq_workload(
        env, scope=FenceKind.SET, iterations=6, workload_level=1,
        n_threads=n_threads,
    )
    sim = env.simulator(handle.program)
    log = OrderEventLog()
    for core in sim.cores:
        core.monitor = log
    engine_ = ChaosEngine(plan).install(sim) if plan is not None else None
    res = sim.run(max_cycles=3_000_000)
    handle.check()
    return {
        "cycles": res.cycles,
        "stats": [dataclasses.asdict(c) for c in res.stats.cores],
        "summary": res.stats.summary(),
        "retire_logs": [list(core.retire_log) for core in sim.cores],
        "memory_sha": hashlib.sha256(sim.memory.snapshot().tobytes()).hexdigest(),
        "events": log.events,
        "injected": engine_.summary() if engine_ is not None else None,
    }


def _assert_identical(ref: dict, got: dict, engine: str) -> None:
    for key in ref:
        assert ref[key] == got[key], f"dense/{engine} diverged on {key!r}"


def _run_ops(ops_per_thread, engine: str, max_cycles: int = 200_000, **cfg):
    """Run an ops_program under one engine; returns all observables."""
    config = SimConfig(retire_log_len=16, **ENGINES[engine], **cfg)
    sim = Simulator(config, ops_program(ops_per_thread))
    res = sim.run(max_cycles=max_cycles)
    return {
        "cycles": res.cycles,
        "stats": [dataclasses.asdict(c) for c in res.stats.cores],
        "retire_logs": [list(core.retire_log) for core in sim.cores],
        "memory_sha": hashlib.sha256(sim.memory.snapshot().tobytes()).hexdigest(),
    }


# --------------------------------------------------------------- litmus corpus
@pytest.mark.parametrize("n_cores", CORE_COUNTS)
@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
def test_litmus_corpus_equivalence(entry, n_cores):
    test = parse_litmus(entry.source)
    cores = max(n_cores, test.n_threads)
    dense = run_litmus(test, offsets=OFFSETS, n_cores=cores, dense_loop=True)
    for tc in (False, True):
        fast = run_litmus(test, offsets=OFFSETS, n_cores=cores,
                          dense_loop=False, trace_compile=tc)
        assert dense.outcomes == fast.outcomes
        assert dense.condition_observed == fast.condition_observed
        assert dense.total_cycles == fast.total_cycles


# ---------------------------------------------------------------- fuzz corpus
@pytest.mark.parametrize("seed", range(6))
def test_fuzz_program_equivalence(seed):
    test = parse_litmus(generate_program(seed))
    dense = run_litmus(test, offsets=OFFSETS, dense_loop=True)
    for tc in (False, True):
        fast = run_litmus(test, offsets=OFFSETS, dense_loop=False,
                          trace_compile=tc)
        assert dense.outcomes == fast.outcomes
        assert dense.condition_observed == fast.condition_observed
        assert dense.total_cycles == fast.total_cycles


# ------------------------------------------------------------ workload + chaos
@pytest.mark.parametrize("n_threads", CORE_COUNTS)
def test_workload_equivalence(n_threads):
    """Full observable state: memory, stats, retire logs, event stream."""
    dense = _run_workload(n_threads, "dense")
    for engine in ("event", "compiled"):
        _assert_identical(dense, _run_workload(n_threads, engine), engine)


@pytest.mark.parametrize("n_threads", CORE_COUNTS)
def test_chaos_latency_spike_equivalence(n_threads):
    """Latency-spike injection draws the same RNG stream in all modes."""
    plan = FaultPlan(seed=7, mem_spike_prob=0.08, mem_spike_cycles=700,
                     mem_jitter=7)
    dense = _run_workload(n_threads, "dense", plan=plan)
    assert sum(dense["injected"].values()) > 0  # scenario actually fired
    for engine in ("event", "compiled"):
        _assert_identical(dense, _run_workload(n_threads, engine, plan=plan),
                          engine)


def test_chaos_drain_throttle_equivalence():
    """Drain throttling (the write-port RNG) is tick-aligned, the one
    injector whose decision stream depends on *which* cycles the core
    is consulted -- the fast path must consult on exactly the same
    ticks as the dense loop."""
    plan = FaultPlan(seed=9, drain_stall_prob=0.15, drain_stall_cycles=60)
    dense = _run_workload(4, "dense", plan=plan)
    assert dense["injected"].get("drain_stall", 0) > 0
    for engine in ("event", "compiled"):
        _assert_identical(dense, _run_workload(4, engine, plan=plan), engine)


# ------------------------------------------------- directed wake-up edge cases
def test_zero_latency_memory_equivalence():
    """Zero-latency memory: completion events land on the dispatch cycle.

    Every access resolves in 0 cycles, so completion events are pushed
    at the *current* cycle -- the degenerate case for
    ``next_event_cycle``'s strict ``c > now`` guards (a stale event at
    ``now`` must never be reported as a future wake-up) and for the
    scheduler's cycle+1 rescheduling after progress.
    """
    ops = [
        [Store(64 * t, t + 1), Fence(FenceKind.GLOBAL), Load(64 * (1 - t)),
         Compute(1), Store(64 * t + 8, 7), Load(64 * t + 8)]
        for t in range(2)
    ]
    dense = _run_ops(ops, "dense", n_cores=2,
                     l1_latency=0, l2_latency=0, mem_latency=0,
                     cache_to_cache_latency=0)
    for engine in ("event", "compiled"):
        got = _run_ops(ops, engine, n_cores=2,
                       l1_latency=0, l2_latency=0, mem_latency=0,
                       cache_to_cache_latency=0)
        _assert_identical(dense, got, engine)


def _wedge_core(sim: Simulator, core_id: int) -> None:
    """Give a core a ROB entry that never completes.

    The entry has no completion event, so once the core's generator is
    drained its ``next_event_cycle`` is ``None`` -- the "this core can
    never progress again" claim the scheduler turns into a stuck core
    (wake = INF) and, once every core is stuck or finished, a proven
    deadlock settled via ``_settle_stuck``.
    """
    from repro.cpu.rob import K_LOAD, RobEntry

    sim.cores[core_id].rob.push(RobEntry(K_LOAD, 0))


def test_never_wakes_core_settles_identically():
    """A core that never wakes: all-idle settle at the deadlock point.

    Core 0 is wedged on a never-completing ROB entry while core 1 runs
    real work to completion.  Each engine must (a) prove the deadlock at
    the same cycle and (b) charge the stuck core the same per-cycle idle
    accounting the dense loop pays by ticking it (``_settle_stuck``
    replays the span lazily since the stuck core left the heap).
    """
    ops = [[], [Store(64, 1), Load(4096), Compute(20)]]

    def settle(engine: str):
        config = SimConfig(n_cores=2, **ENGINES[engine])
        sim = Simulator(config, ops_program(ops))
        _wedge_core(sim, 0)
        with pytest.raises(DeadlockError) as exc_info:
            sim.run(max_cycles=100_000)
        return (exc_info.value.diagnostic.cycle,
                [dataclasses.asdict(c.stats) for c in sim.cores])

    dense = settle("dense")
    assert settle("event") == dense
    assert settle("compiled") == dense


def test_never_wakes_reports_none():
    """The wedged core's wake-up contract: no event can ever wake it."""
    sim = Simulator(SimConfig(n_cores=1), ops_program([[]]))
    _wedge_core(sim, 0)
    gens = sim.program.spawn()
    sim.cores[0].bind(gens[0])
    core = sim.cores[0]
    assert not core.tick(0)          # generator drained, head never done
    assert not core.finished
    assert core.next_event_cycle(0) is None


@pytest.mark.parametrize("compute_cycles", range(46, 56))
def test_op_exactly_on_wake_cycle(compute_cycles):
    """Wake-source coincidence: an event lands exactly on the wake cycle.

    A dependent-chain block (``_blocked_until``) races a store-drain
    completion event; sweeping the compute latency across the drain
    latency guarantees one parameter hits exact coincidence (both wake
    sources report the same cycle) plus both orderings around it.  The
    scheduler must not double-tick, skip, or mis-account any of them.
    """
    ops = [[Store(4096, 9), Compute(compute_cycles),
            Fence(FenceKind.GLOBAL), Load(4096), Compute(3)]]
    dense = _run_ops(ops, "dense", n_cores=1, mem_latency=50)
    for engine in ("event", "compiled"):
        got = _run_ops(ops, engine, n_cores=1, mem_latency=50)
        _assert_identical(dense, got, engine)
