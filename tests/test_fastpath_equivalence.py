"""Differential equivalence: event-driven fast path vs dense loop.

The event scheduler's entire claim is that skipping no-progress ticks
is unobservable.  These tests run the same workloads under both
engines and assert *byte-identical* results at every level the
simulator exposes: final memory contents, every per-core stats counter,
retire logs, the full monitor event stream (dispatch/complete/drain/
fence/scope events with their exact cycles), chaos fault-injection
decisions, and litmus outcome sets.

Coverage: the whole litmus corpus, seeded fuzz programs (the same
generator the differential fuzzer uses), a lock-free workload, and
chaos-fault scenarios -- each at two simulated core counts.
"""

from __future__ import annotations

import dataclasses
import hashlib

import pytest

from repro.chaos.faults import ChaosEngine, FaultPlan
from repro.isa.instructions import FenceKind
from repro.litmus.corpus import CORPUS
from repro.litmus.dsl import parse_litmus, run_litmus
from repro.runtime.lang import Env, reset_cids
from repro.sim.config import SimConfig
from repro.sim.trace import OrderEventLog
from tests.test_litmus_fuzz import generate_program

OFFSETS = [0, 3, 47]
CORE_COUNTS = (2, 4)


# ---------------------------------------------------------------- deep harness
def _run_workload(n_threads: int, dense: bool, plan: FaultPlan | None = None):
    """One wsq-workload run; returns every observable as plain data."""
    from repro.algorithms.workloads import build_wsq_workload

    reset_cids()
    cfg = SimConfig(n_cores=n_threads, retire_log_len=32, dense_loop=dense)
    env = Env(cfg)
    handle = build_wsq_workload(
        env, scope=FenceKind.SET, iterations=6, workload_level=1,
        n_threads=n_threads,
    )
    sim = env.simulator(handle.program)
    log = OrderEventLog()
    for core in sim.cores:
        core.monitor = log
    engine = ChaosEngine(plan).install(sim) if plan is not None else None
    res = sim.run(max_cycles=3_000_000)
    handle.check()
    return {
        "cycles": res.cycles,
        "stats": [dataclasses.asdict(c) for c in res.stats.cores],
        "summary": res.stats.summary(),
        "retire_logs": [list(core.retire_log) for core in sim.cores],
        "memory_sha": hashlib.sha256(sim.memory.snapshot().tobytes()).hexdigest(),
        "events": log.events,
        "injected": engine.summary() if engine is not None else None,
    }


def _assert_identical(dense: dict, fast: dict) -> None:
    for key in dense:
        assert dense[key] == fast[key], f"dense/fast diverged on {key!r}"


# --------------------------------------------------------------- litmus corpus
@pytest.mark.parametrize("n_cores", CORE_COUNTS)
@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
def test_litmus_corpus_equivalence(entry, n_cores):
    test = parse_litmus(entry.source)
    cores = max(n_cores, test.n_threads)
    dense = run_litmus(test, offsets=OFFSETS, n_cores=cores, dense_loop=True)
    fast = run_litmus(test, offsets=OFFSETS, n_cores=cores, dense_loop=False)
    assert dense.outcomes == fast.outcomes
    assert dense.condition_observed == fast.condition_observed
    assert dense.total_cycles == fast.total_cycles


# ---------------------------------------------------------------- fuzz corpus
@pytest.mark.parametrize("seed", range(6))
def test_fuzz_program_equivalence(seed):
    test = parse_litmus(generate_program(seed))
    dense = run_litmus(test, offsets=OFFSETS, dense_loop=True)
    fast = run_litmus(test, offsets=OFFSETS, dense_loop=False)
    assert dense.outcomes == fast.outcomes
    assert dense.condition_observed == fast.condition_observed
    assert dense.total_cycles == fast.total_cycles


# ------------------------------------------------------------ workload + chaos
@pytest.mark.parametrize("n_threads", CORE_COUNTS)
def test_workload_equivalence(n_threads):
    """Full observable state: memory, stats, retire logs, event stream."""
    _assert_identical(
        _run_workload(n_threads, dense=True),
        _run_workload(n_threads, dense=False),
    )


@pytest.mark.parametrize("n_threads", CORE_COUNTS)
def test_chaos_latency_spike_equivalence(n_threads):
    """Latency-spike injection draws the same RNG stream in both modes."""
    plan = FaultPlan(seed=7, mem_spike_prob=0.08, mem_spike_cycles=700,
                     mem_jitter=7)
    dense = _run_workload(n_threads, dense=True, plan=plan)
    fast = _run_workload(n_threads, dense=False, plan=plan)
    assert sum(dense["injected"].values()) > 0  # scenario actually fired
    _assert_identical(dense, fast)


def test_chaos_drain_throttle_equivalence():
    """Drain throttling (the write-port RNG) is tick-aligned, the one
    injector whose decision stream depends on *which* cycles the core
    is consulted -- the fast path must consult on exactly the same
    ticks as the dense loop."""
    plan = FaultPlan(seed=9, drain_stall_prob=0.15, drain_stall_cycles=60)
    dense = _run_workload(4, dense=True, plan=plan)
    fast = _run_workload(4, dense=False, plan=plan)
    assert dense["injected"].get("drain_stall", 0) > 0
    _assert_identical(dense, fast)
