"""Integration tests that re-enact the paper's worked examples.

* Figure 6: nested class scopes -- the fence in class B orders only
  B's accesses; the fence in class A orders A's *and* B's (B is
  reached from inside A's method).
* Figure 9: the FSB/mapping-table/FSS walkthrough for two nested
  scopes, checked state by state on the scope tracker.
* Figure 10: the timeline comparison -- the S-Fence issues as soon as
  the in-scope store completes while the traditional fence drains the
  whole store buffer.
"""

from repro.core.scope_tracker import ScopeTracker
from repro.isa.instructions import (
    Fence,
    FenceKind,
    FsEnd,
    FsStart,
    Load,
    Store,
    WAIT_BOTH,
    WAIT_STORES,
)
from repro.isa.program import Program, ops_program
from repro.runtime.lang import Env, ScopedStructure, scoped_method
from repro.sim.config import SimConfig
from repro.sim.simulator import run_program


# ------------------------------------------------------------------- Figure 6
class ClassB(ScopedStructure):
    def __init__(self, env):
        super().__init__(env, "B", FenceKind.CLASS)
        self.n1 = self.svar("n1")
        self.n2 = self.svar("n2")

    @scoped_method
    def funcB(self):
        yield self.n1.store(2)       # line 15
        yield self.fence(WAIT_BOTH)  # line 16
        yield self.n2.store(3)       # line 17


class ClassA(ScopedStructure):
    def __init__(self, env):
        super().__init__(env, "A", FenceKind.CLASS)
        self.b = ClassB(env)
        self.m1 = self.svar("m1")
        self.m2 = self.svar("m2")

    @scoped_method
    def funcA1(self):
        yield from self.b.funcB()    # line 5
        yield self.fence(WAIT_BOTH)  # line 6
        yield self.m1.store(10)      # line 7

    @scoped_method
    def funcA2(self):
        yield self.m2.store(11)      # line 10


def _trace_scope_waits(env, a):
    """Replay funcA1's op stream against a bare tracker and record, at
    each fence, which in-flight accesses the fence watches."""
    tracker = ScopeTracker(env.config)
    pending = []  # (name, mask)
    waits_at_fence = []
    gen = a.funcA1()
    try:
        op = gen.send(None)
        while True:
            if isinstance(op, FsStart):
                tracker.fs_start(op.cid)
            elif isinstance(op, FsEnd):
                tracker.fs_end(op.cid)
            elif isinstance(op, Store):
                mask = tracker.dispatch_mem(is_load=False, flagged=op.flagged)
                pending.append((op.name, mask))
            elif isinstance(op, Fence):
                entry = tracker.fss.top()
                watched = [n for n, m in pending if m & (1 << entry)]
                waits_at_fence.append(watched)
            op = gen.send(None)
    except StopIteration:
        pass
    return waits_at_fence


def test_figure6_nested_scope_wait_sets():
    env = Env(SimConfig(n_cores=1))
    a = ClassA(env)
    fence_b, fence_a = _trace_scope_waits(env, a)
    # the fence at line 16 (inside B) orders only B's accesses so far
    assert fence_b == ["B.opstat", "B.n1"] or fence_b == ["B.n1"]
    # the fence at line 6 (inside A) orders the accesses to both A's
    # and B's data (n1, n2 were made by b.funcB() called from funcA1)
    assert "B.n1" in fence_a and "B.n2" in fence_a


def test_figure6_runs_on_the_full_simulator():
    env = Env(SimConfig(n_cores=1))
    a = ClassA(env)

    def body(tid):
        yield from a.funcA1()
        yield from a.funcA2()

    res = env.run(Program([body]))
    assert a.m1.peek() == 10 and a.m2.peek() == 11
    assert a.b.n1.peek() == 2 and a.b.n2.peek() == 3
    assert res.stats.fences == 2


# ------------------------------------------------------------------- Figure 9
def test_figure9_walkthrough():
    """fs_start a; I0; I1; fs_start b; I2..I4; fs_end b; I5; I6;
    fs_end a; I7 -- mapping/FSS states as in the paper's figure."""
    t = ScopeTracker(SimConfig())
    masks = {}

    t.fs_start(0xA)
    assert t.mapping.mappings() == {0xA: 0}
    assert t.fss.items() == (0,)
    masks["I0"] = t.dispatch_mem(is_load=False, flagged=False)
    masks["I1"] = t.dispatch_mem(is_load=True, flagged=False)
    assert masks["I0"] == masks["I1"] == 0b0001

    t.fs_start(0xB)
    assert t.mapping.mappings() == {0xA: 0, 0xB: 1}
    assert t.fss.items() == (0, 1)
    for i in ("I2", "I3", "I4"):
        masks[i] = t.dispatch_mem(is_load=False, flagged=False)
        # inner-scope ops flag the inner AND the outer entry
        assert masks[i] == 0b0011

    t.fs_end(0xB)
    assert t.fss.items() == (0,)
    # "the mapping table remains the same": ops of scope b are in flight
    assert t.mapping.mappings() == {0xA: 0, 0xB: 1}
    masks["I5"] = t.dispatch_mem(is_load=True, flagged=False)
    masks["I6"] = t.dispatch_mem(is_load=False, flagged=False)
    assert masks["I5"] == masks["I6"] == 0b0001

    t.fs_end(0xA)
    assert t.fss.empty
    masks["I7"] = t.dispatch_mem(is_load=True, flagged=False)
    assert masks["I7"] == 0  # no scope active: nothing flagged

    # completing scope b's ops recycles entry 1 and drops its mapping
    for i in ("I2", "I3", "I4"):
        t.complete_mem(masks[i], is_load=False)
    assert t.mapping.lookup(0xB) is None
    # scope a still has in-flight ops, so its mapping survives
    assert t.mapping.lookup(0xA) == 0


# ------------------------------------------------------------------ Figure 10
def test_figure10_timeline():
    """St A (out-of-scope miss), St X (in-scope), FENCE, Ld Y, St B:
    the scoped fence issues once St X completes; the traditional fence
    waits for the store buffer to drain St A."""
    def stream(kind):
        return [
            Store(4096, 1, name="St A"),      # cache miss, out of scope
            FsStart(1),
            Store(64, 2, name="St X"),        # in scope
            Fence(kind, WAIT_STORES),
            Load(128, name="Ld Y"),
            Store(65, 3, name="St B"),
            FsEnd(1),
        ]

    def run(kind, warm):
        cfg = SimConfig(n_cores=1)
        from repro.sim.simulator import Simulator

        sim = Simulator(cfg, ops_program([stream(kind)]))
        if warm:
            # St X's and Ld Y's lines are cache-resident (the paper's
            # premise: the in-scope data is hot)
            sim.hierarchy.warm(0, 64, 128, into_l1=True)
        return sim.run()

    trad = run(FenceKind.GLOBAL, warm=True)
    scoped = run(FenceKind.CLASS, warm=True)
    assert scoped.stats.cores[0].fence_stall_cycles < trad.stats.cores[0].fence_stall_cycles
    assert scoped.stats.cores[0].sfence_early_issues == 1
    # both leave identical memory state: scoping changes no semantics
    assert trad.memory.read_global(4096) == scoped.memory.read_global(4096) == 1
    assert trad.memory.read_global(64) == 2 and trad.memory.read_global(65) == 3
