"""Branch models, trace collection, workload graph generators."""

import pytest

from repro.apps.graphs import predecessors_of, random_connected_graph, random_dag
from repro.apps.quadtree import build_quadtree
from repro.cpu.branch import AlternatingBranchModel, BranchModel, RandomBranchModel
from repro.isa.instructions import Load, Store
from repro.isa.program import ops_program
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceCollector


# -------------------------------------------------------------------- branch
def test_base_model_never_mispredicts():
    m = BranchModel()
    assert not any(m.branch().mispredict for _ in range(20))


def test_random_model_is_seeded():
    m1 = RandomBranchModel(0.5, seed=1)
    m2 = RandomBranchModel(0.5, seed=1)
    a = [m1.branch().mispredict for _ in range(50)]
    b = [m2.branch().mispredict for _ in range(50)]
    assert a == b
    assert any(a) and not all(a)


def test_random_model_extremes():
    assert not any(RandomBranchModel(0.0).branch().mispredict for _ in range(20))
    assert all(RandomBranchModel(1.0).branch().mispredict for _ in range(20))
    with pytest.raises(ValueError):
        RandomBranchModel(1.5)


def test_alternating_model_period():
    m = AlternatingBranchModel(3)
    flags = [m.branch().mispredict for _ in range(9)]
    assert flags == [False, False, True] * 3


# --------------------------------------------------------------------- trace
def test_trace_records_memory_ops():
    tracer = TraceCollector()
    prog = ops_program([[Store(10, 1), Load(10), Load(20)]])
    Simulator(SimConfig(n_cores=1), prog, tracer=tracer).run()
    kinds = [(r.kind, r.addr) for r in tracer.records]
    assert ("store", 10) in kinds and ("load", 10) in kinds and ("load", 20) in kinds
    assert len(tracer) == 3
    assert set(tracer.by_addr()) == {10, 20}


# -------------------------------------------------------------------- graphs
def test_connected_graph_is_connected():
    g = random_connected_graph(40, 20, seed=3)
    seen = {0}
    stack = [0]
    while stack:
        v = stack.pop()
        for w in g.neighbors_of(v):
            if w not in seen:
                seen.add(w)
                stack.append(w)
    assert seen == set(range(40))


def test_connected_graph_is_symmetric():
    g = random_connected_graph(20, 10, seed=1)
    for v in range(20):
        for w in g.neighbors_of(v):
            assert v in g.neighbors_of(w)


def test_graph_seeded_determinism():
    g1 = random_connected_graph(30, 15, seed=9)
    g2 = random_connected_graph(30, 15, seed=9)
    assert g1.neighbors == g2.neighbors and g1.offsets == g2.offsets


def test_dag_edges_point_forward():
    g = random_dag(30, 2.0, seed=4)
    for v in range(30):
        assert all(w > v for w in g.neighbors_of(v))


def test_predecessors_inverts_successors():
    g = random_dag(25, 2.0, seed=5)
    p = predecessors_of(g)
    for v in range(25):
        for w in g.neighbors_of(v):
            assert v in p.neighbors_of(w)
    assert p.n_edges == g.n_edges


def test_graph_degree_helper():
    g = random_connected_graph(10, 0, seed=2)
    assert sum(g.degree(v) for v in range(10)) == g.n_edges


# ------------------------------------------------------------------ quadtree
def test_quadtree_counts_and_leaves():
    import random

    rng = random.Random(0)
    bodies = [(rng.random(), rng.random()) for _ in range(50)]
    tree = build_quadtree(bodies, leaf_capacity=4)
    assert tree.count[tree.root] == 50
    collected = []
    stack = [tree.root]
    while stack:
        c = stack.pop()
        if tree.is_leaf(c):
            collected += tree.leaf_bodies(c)
        else:
            stack += [k for k in tree.children[c] if k != -1]
    assert sorted(collected) == list(range(50))
    assert all(len(tree.leaf_bodies(c)) <= 4 or tree.depth() >= 16
               for c in range(tree.n_cells) if tree.is_leaf(c))


def test_quadtree_com_inside_unit_square():
    import random

    rng = random.Random(1)
    bodies = [(rng.random(), rng.random()) for _ in range(20)]
    tree = build_quadtree(bodies)
    for cx, cy in tree.com:
        assert 0.0 <= cx <= 1.0 and 0.0 <= cy <= 1.0


def test_quadtree_requires_bodies():
    with pytest.raises(ValueError):
        build_quadtree([])
