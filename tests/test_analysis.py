"""Tests for the analysis drivers and report formatting."""

import pytest

from repro.algorithms.workloads import build_wsq_workload
from repro.analysis.report import (
    StreamAggregator,
    ascii_series,
    failure_counts,
    format_table,
    paper_vs_measured,
    progress_line,
    render_failure_counts,
    speedup_row,
    stacked_bar_rows,
)
from repro.analysis.speedup import (
    RunPoint,
    measure,
    normalized_series,
    ratio,
    traditional_vs_scoped,
)
from repro.isa.instructions import FenceKind
from repro.sim.config import SimConfig


def test_measure_runs_and_checks():
    point = measure(
        lambda env: build_wsq_workload(env, iterations=6, workload_level=1),
        SimConfig(),
        label="T",
    )
    assert point.cycles > 0
    assert 0.0 <= point.fence_stall_fraction <= 1.0
    assert point.others_fraction == 1.0 - point.fence_stall_fraction


def test_traditional_vs_scoped_driver():
    trad, scoped, speedup = traditional_vs_scoped(
        lambda env, scope: build_wsq_workload(
            env, scope=scope, iterations=10, workload_level=2
        ),
        FenceKind.CLASS,
    )
    assert trad.label == "T" and scoped.label == "S"
    assert speedup == trad.cycles / scoped.cycles
    assert speedup >= 1.0


def test_normalized_series():
    base = RunPoint("T", 1000, 400, 0.4)
    other = RunPoint("S", 800, 80, 0.1)
    rows = normalized_series([base, other], base)
    assert rows[0]["normalized_time"] == 1.0
    assert rows[1]["normalized_time"] == 0.8
    assert abs(rows[0]["fence_stalls"] - 0.4) < 1e-9
    assert abs(rows[1]["others"] - 0.72) < 1e-9


def test_format_table_alignment():
    out = format_table(["a", "long_header"], [[1, 2], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    assert len(lines) == 5


def test_paper_vs_measured():
    out = paper_vs_measured("Fig X", [("speedup", "1.23x", "1.19x")])
    assert "paper" in out and "measured" in out and "1.19x" in out


def test_speedup_row():
    name, t, s = speedup_row("wsq", 2000, 1600)
    assert name == "wsq"
    assert "1.250x" in s


def test_stacked_bar_rows():
    rows = stacked_bar_rows(
        [{"label": "T", "normalized_time": 1.0, "fence_stalls": 0.4, "others": 0.6}]
    )
    assert rows == [("T", "1.000", "0.400", "0.600")]


def test_ascii_series():
    lines = ascii_series([1.0, 0.5])
    assert len(lines) == 2
    assert lines[0].count("#") == 2 * lines[1].count("#")
    assert ascii_series([]) == []


def test_normalized_series_zero_cycle_baseline():
    """A degenerate zero-cycle baseline must not divide by zero."""
    base = RunPoint("T", 0, 0, 0.0)
    rows = normalized_series([base, RunPoint("S", 800, 80, 0.1)], base)
    assert all(r["normalized_time"] == 0.0 for r in rows)
    assert all(r["fence_stalls"] == 0.0 for r in rows)


def test_ratio_edge_cases():
    assert ratio(1500, 1000) == 1.5
    assert ratio(1500, 0) is None     # zero-cycle baseline
    assert ratio(None, 1000) is None  # missing cell
    assert ratio(1500, None) is None
    assert ratio(0, 1000) == 0.0


def test_progress_line_rendering():
    empty = progress_line(0, 10, width=10)
    assert empty.startswith("[..........]")
    full = progress_line(10, 10, ok=8, failed=2, cached=3, width=10)
    assert full.startswith("[##########]")
    assert "10/10" in full and "ok=8" in full and "failed=2" in full and "cached=3" in full
    half = progress_line(5, 10, width=10)
    assert half.count("#") == 5 and half.count(".") == 5
    assert "0/0" in progress_line(0, 0)  # no jobs: no crash


def test_stream_aggregator_counts_and_summary():
    agg = StreamAggregator(4)
    agg.add(True, cached=True)
    agg.add(True)
    agg.add(False, label="chaos:wsq/storm#3")
    assert (agg.done, agg.ok, agg.failed, agg.cached) == (3, 2, 1, 1)
    assert "3/4" in agg.line()
    summary = agg.summary()
    assert "2 ok" in summary and "1 failed" in summary
    assert "chaos:wsq/storm#3" in summary


def test_stream_aggregator_truncates_failure_list():
    agg = StreamAggregator(30)
    for i in range(15):
        agg.add(False, label=f"job{i}")
    assert "+5 more" in agg.summary()


def test_stream_aggregator_throughput_and_eta():
    """jobs/sec and ETA come from the injectable clock, not sleeping."""
    now = [100.0]
    agg = StreamAggregator(10, clock=lambda: now[0])
    assert agg.jobs_per_s() is None and agg.eta_s() is None
    assert "job/s" not in agg.line()  # no rate before the first job
    now[0] = 102.0
    for _ in range(4):
        agg.add(True)
    assert agg.jobs_per_s() == pytest.approx(2.0)  # 4 jobs in 2 s
    assert agg.eta_s() == pytest.approx(3.0)       # 6 left at 2/s
    line = agg.line()
    assert "4/10" in line
    assert "2.0 job/s" in line and "eta 0:03" in line


def test_stream_aggregator_eta_reaches_zero():
    now = [0.0]
    agg = StreamAggregator(2, clock=lambda: now[0])
    now[0] = 90.0
    agg.add(True)
    agg.add(True)
    assert agg.eta_s() == 0
    assert "eta 0:00" in agg.line()
    # sub-second completions still report a finite, positive rate
    assert agg.jobs_per_s() > 0


def test_failure_counts_include_clean_groups():
    """Groups with zero failures still appear -- truncated sweeps must
    report the scenarios they covered, not just the ones that failed."""
    counts = failure_counts([
        ("latency", True), ("latency", True),
        ("storm", False), ("storm", True), ("storm", False),
    ])
    assert counts == {"latency": 0, "storm": 2}
    rendered = render_failure_counts(counts)
    assert "latency=0" in rendered and "storm=2" in rendered


def test_assemble_figure_handles_missing_cells():
    """A crashed cell renders as n/a instead of poisoning the table."""
    from repro.campaign import figure_jobs, assemble_figure

    jobs = figure_jobs("fig14", 0.3)
    results = [{"cycles": 1000} for _ in jobs]
    results[1] = None  # one cell lost to a worker crash
    table = assemble_figure("fig14", jobs, results)
    assert "n/a" in table
    assert "1.000" in table  # intact cells still compute their ratio

def test_stream_aggregator_zero_elapsed_clock_is_guarded():
    """An all-cached sweep can land every job inside one timer tick:
    the rate and ETA must come back None, never a division by zero."""
    agg = StreamAggregator(5, clock=lambda: 42.0)  # clock never advances
    for _ in range(3):
        agg.add(True, cached=True)
    assert agg.jobs_per_s() is None
    assert agg.eta_s() is None
    line = agg.line()  # must not raise on the None rate/eta pair
    assert "3/5" in line and "job/s" not in line


def test_stream_aggregator_all_cached_instant_completion():
    """Finishing everything on a frozen clock reports eta 0, no rate."""
    agg = StreamAggregator(4, clock=lambda: 7.0)
    for _ in range(4):
        agg.add(True, cached=True)
    assert agg.eta_s() == 0.0          # done: no phantom wait
    assert agg.jobs_per_s() is None    # rate undefined at zero elapsed
    assert "4/4" in agg.line()


def test_stream_aggregator_notes_surface_in_summary():
    agg = StreamAggregator(2)
    agg.add(True)
    agg.note("downgrade: pool 8 -> 4")
    agg.note("retry: litmus:sb 1/2")
    summary = agg.summary()
    assert "2 event(s)" in summary
    assert "pool 8 -> 4" in summary and "retry: litmus:sb" in summary
    # overflow keeps the line bounded
    for i in range(9):
        agg.note(f"e{i}")
    assert "(+6 more)" in agg.summary()
