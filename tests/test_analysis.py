"""Tests for the analysis drivers and report formatting."""

from repro.algorithms.workloads import build_wsq_workload
from repro.analysis.report import (
    ascii_series,
    format_table,
    paper_vs_measured,
    speedup_row,
    stacked_bar_rows,
)
from repro.analysis.speedup import (
    RunPoint,
    measure,
    normalized_series,
    traditional_vs_scoped,
)
from repro.isa.instructions import FenceKind
from repro.sim.config import SimConfig


def test_measure_runs_and_checks():
    point = measure(
        lambda env: build_wsq_workload(env, iterations=6, workload_level=1),
        SimConfig(),
        label="T",
    )
    assert point.cycles > 0
    assert 0.0 <= point.fence_stall_fraction <= 1.0
    assert point.others_fraction == 1.0 - point.fence_stall_fraction


def test_traditional_vs_scoped_driver():
    trad, scoped, speedup = traditional_vs_scoped(
        lambda env, scope: build_wsq_workload(
            env, scope=scope, iterations=10, workload_level=2
        ),
        FenceKind.CLASS,
    )
    assert trad.label == "T" and scoped.label == "S"
    assert speedup == trad.cycles / scoped.cycles
    assert speedup >= 1.0


def test_normalized_series():
    base = RunPoint("T", 1000, 400, 0.4)
    other = RunPoint("S", 800, 80, 0.1)
    rows = normalized_series([base, other], base)
    assert rows[0]["normalized_time"] == 1.0
    assert rows[1]["normalized_time"] == 0.8
    assert abs(rows[0]["fence_stalls"] - 0.4) < 1e-9
    assert abs(rows[1]["others"] - 0.72) < 1e-9


def test_format_table_alignment():
    out = format_table(["a", "long_header"], [[1, 2], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    assert len(lines) == 5


def test_paper_vs_measured():
    out = paper_vs_measured("Fig X", [("speedup", "1.23x", "1.19x")])
    assert "paper" in out and "measured" in out and "1.19x" in out


def test_speedup_row():
    name, t, s = speedup_row("wsq", 2000, 1600)
    assert name == "wsq"
    assert "1.250x" in s


def test_stacked_bar_rows():
    rows = stacked_bar_rows(
        [{"label": "T", "normalized_time": 1.0, "fence_stalls": 0.4, "others": 0.6}]
    )
    assert rows == [("T", "1.000", "0.400", "0.600")]


def test_ascii_series():
    lines = ascii_series([1.0, 0.5])
    assert len(lines) == 2
    assert lines[0].count("#") == 2 * lines[1].count("#")
    assert ascii_series([]) == []
