"""Behavioural tests of the out-of-order core (single core unless noted)."""

import pytest

from repro.isa.instructions import (
    Branch,
    Cas,
    Compute,
    Fence,
    FenceKind,
    FsEnd,
    FsStart,
    Load,
    Probe,
    Store,
    WAIT_BOTH,
    WAIT_STORES,
)
from repro.isa.program import Program, ops_program
from repro.sim.config import MemoryModel, SimConfig
from repro.sim.simulator import Simulator, run_program


def run_ops(ops, **cfg):
    cfg.setdefault("n_cores", 1)
    return run_program(ops_program([ops]), SimConfig(**cfg))


def test_empty_program():
    res = run_ops([])
    assert res.cycles == 0
    assert res.stats.instructions == 0


def test_store_then_load_forwards():
    def body(tid):
        yield Store(100, 7)
        v = yield Load(100)
        assert v == 7

    res = run_program(Program([body]), SimConfig(n_cores=1))
    assert res.stats.cores[0].sb_forwards >= 1
    assert res.memory.read_global(100) == 7


def test_load_returns_initialized_value():
    def body(tid):
        v = yield Load(50)
        assert v == 123

    cfg = SimConfig(n_cores=1)
    sim = Simulator(cfg, Program([body]))
    sim.memory.write_global(50, 123)
    sim.run()


def test_traditional_fence_waits_for_store_drain():
    res = run_ops([Store(100, 1), Fence(FenceKind.GLOBAL, WAIT_BOTH), Load(200)])
    # the fence must stall roughly the cold-miss drain latency
    assert res.stats.cores[0].fence_stall_cycles >= 250
    assert res.memory.read_global(100) == 1


def test_scoped_fence_skips_out_of_scope_store():
    """The Figure 10 scenario: the class fence ignores the out-of-scope
    cold-miss store and issues once the in-scope (cheap) access drains."""
    def build(kind):
        return [
            Store(4096, 1),              # out of scope, cold miss
            FsStart(1),
            Store(100, 2),               # in scope, also cold, but that's all
            Fence(kind, WAIT_STORES),
            Load(200),
            FsEnd(1),
        ]

    trad = run_ops(build(FenceKind.GLOBAL))
    scoped = run_ops(build(FenceKind.CLASS))
    assert scoped.stats.cores[0].fence_stall_cycles <= trad.stats.cores[0].fence_stall_cycles
    assert scoped.stats.cores[0].sfence_early_issues >= 0
    # both must still publish every store eventually
    assert scoped.memory.read_global(4096) == 1


def test_scoped_fence_early_issue_counted():
    ops = [
        Store(4096, 1),
        FsStart(1),
        Fence(FenceKind.CLASS, WAIT_STORES),  # empty scope: issues at once
        FsEnd(1),
    ]
    res = run_ops(ops)
    assert res.stats.cores[0].sfence_early_issues == 1


def test_set_fence_waits_only_flagged():
    ops_flagged_pending = [
        Store(100, 1, flagged=True),
        Fence(FenceKind.SET, WAIT_STORES),
    ]
    ops_unflagged_pending = [
        Store(100, 1, flagged=False),
        Fence(FenceKind.SET, WAIT_STORES),
    ]
    r1 = run_ops(ops_flagged_pending)
    r2 = run_ops(ops_unflagged_pending)
    assert r1.stats.cores[0].fence_stall_cycles > r2.stats.cores[0].fence_stall_cycles


def test_compute_blocks_dispatch():
    res = run_ops([Compute(500)])
    assert res.cycles >= 500


def test_branch_mispredict_costs_penalty():
    base = run_ops([Branch(mispredict=False), Compute(1)])
    miss = run_ops([Branch(mispredict=True), Compute(1)])
    cfg = SimConfig()
    assert miss.cycles >= base.cycles + cfg.mispredict_penalty - 1
    assert miss.stats.cores[0].branch_mispredicts == 1


def test_probe_runs_at_dispatch():
    seen = []
    res = run_ops([Probe(fn=seen.append), Compute(1)])
    assert len(seen) == 1
    assert isinstance(seen[0], int)


def test_cas_results_and_atomicity():
    def body(tid):
        ok = yield Cas(100, 0, 5)
        assert ok is True
        ok = yield Cas(100, 0, 6)
        assert ok is False

    res = run_program(Program([body]), SimConfig(n_cores=1))
    assert res.memory.read_global(100) == 5
    assert res.stats.cores[0].cas_ops == 2


def test_concurrent_cas_exactly_one_winner():
    wins = []

    def body(tid):
        ok = yield Cas(100, 0, tid + 1)
        if ok:
            wins.append(tid)

    res = run_program(Program([body, body]), SimConfig(n_cores=2))
    assert len(wins) == 1
    assert res.memory.read_global(100) == wins[0] + 1


def test_cas_waits_for_own_same_address_store():
    def body(tid):
        yield Store(100, 3)
        ok = yield Cas(100, 3, 4)  # must see its own prior store
        assert ok

    res = run_program(Program([body]), SimConfig(n_cores=1))
    assert res.memory.read_global(100) == 4


def test_cas_fence_mode_blocks_younger():
    ops = [Store(4096, 1), Cas(100, 0, 1), Load(200)]
    free = run_ops(list(ops), cas_fence=False)
    fenced = run_ops(list(ops), cas_fence=True)
    assert fenced.stats.cores[0].fence_stall_cycles > free.stats.cores[0].fence_stall_cycles


def test_serialized_load_blocks_dispatch():
    fast = run_ops([Load(100), Compute(1)])
    slow = run_ops([Load(100, serialize=True), Compute(1)])
    assert slow.cycles > fast.cycles


def test_unknown_yield_rejected():
    def body(tid):
        yield 42

    with pytest.raises(TypeError):
        run_program(Program([body]), SimConfig(n_cores=1))


def test_rob_fills_on_many_loads():
    # more independent cold-miss loads than ROB entries
    ops = [Load(i * 64) for i in range(80)]
    res = run_ops(ops, rob_size=16)
    assert res.stats.cores[0].rob_full_stalls > 0


def test_sb_at_dispatch_only_under_rmo():
    # under TSO a store behind an incomplete load cannot drain early;
    # under RMO (senior store queue) it can
    ops = [Load(8192), Store(100, 1), Fence(FenceKind.GLOBAL, WAIT_STORES)]
    rmo = run_ops(list(ops), memory_model=MemoryModel.RMO)
    tso = run_ops(list(ops), memory_model=MemoryModel.TSO)
    # TSO: the store waits for the load to retire before entering the SB,
    # so the fence stalls longer
    assert tso.stats.cores[0].fence_stall_cycles >= rmo.stats.cores[0].fence_stall_cycles


def test_sc_orders_every_memory_op():
    ops = [Store(4096, 1), Load(100)]
    sc = run_ops(list(ops), memory_model=MemoryModel.SC)
    rmo = run_ops(list(ops), memory_model=MemoryModel.RMO)
    # under SC the load waits for the store's drain
    assert sc.cycles > rmo.cycles


def test_instruction_count():
    res = run_ops([Store(1, 1), Load(1), Compute(2), Fence(), FsStart(1), FsEnd(1)])
    assert res.stats.instructions == 6
    assert res.stats.cores[0].loads == 1
    assert res.stats.cores[0].stores == 1
    assert res.stats.fences == 1
