"""Chase-Lev work-stealing deque: functional and relaxed-memory tests."""

import pytest

from repro.algorithms.chase_lev import ABORT, EMPTY, WorkStealingDeque
from repro.algorithms.workloads import build_wsq_workload
from repro.isa.instructions import FenceKind
from repro.isa.program import Program
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


def test_put_take_lifo_single_thread():
    env = Env(SimConfig(n_cores=1))
    d = WorkStealingDeque(env, capacity=16)
    got = []

    def owner(tid):
        for task in (1, 2, 3):
            yield from d.put(task)
        for _ in range(4):
            got.append((yield from d.take()))

    env.run(Program([owner]))
    assert got == [3, 2, 1, EMPTY]


def test_steal_fifo_order():
    env = Env(SimConfig(n_cores=2))
    d = WorkStealingDeque(env, capacity=16)
    stolen = []
    ready = env.var("ready")

    def owner(tid):
        for task in (1, 2, 3):
            yield from d.put(task)
        yield ready.store(1)

    def thief(tid):
        while not (yield ready.load()):
            pass
        while True:
            t = yield from d.steal()
            if t == EMPTY:
                return
            if t != ABORT:
                stolen.append(t)

    env.run(Program([owner, thief]))
    assert stolen == [1, 2, 3]


def test_last_element_race_is_single_winner():
    """Owner take vs thief steal on a single element: exactly one wins."""
    for seed_delay in range(6):
        env = Env(SimConfig(n_cores=2))
        d = WorkStealingDeque(env, capacity=8)
        winners = []

        def owner(tid):
            yield from d.put(7)
            from repro.isa.instructions import Compute

            yield Compute(1 + seed_delay * 40)
            t = yield from d.take()
            if t >= 0:
                winners.append(("owner", t))

        def thief(tid):
            while True:
                t = yield from d.steal()
                if t >= 0:
                    winners.append(("thief", t))
                    return
                # give up once the owner is certainly done
                head, tail = d.snapshot()
                if head >= tail and head > 0:
                    return
                if t == EMPTY and winners:
                    return

        env.run(Program([owner, thief]), max_cycles=200_000)
        assert len(winners) == 1, winners
        assert winners[0][1] == 7


def test_phantom_task_without_storestore_fence():
    """Dropping the put fence under RMO lets TAIL drain before the task
    write: a thief can steal a phantom (stale) value -- the bug the
    paper's Figure 2 fence prevents."""
    from repro.isa.instructions import Compute

    saw_phantom = False
    for delay in (60, 90, 120, 150, 200):
        env = Env(SimConfig(n_cores=2))
        d = WorkStealingDeque(env, capacity=8, use_fences=False)
        d.arr.poke(0, -99)  # poison: a phantom read is recognisable
        grabbed = []

        def owner(tid):
            # let the thief warm HEAD/TAIL into the caches first, so the
            # TAIL publication drains fast while the (cold) task-slot
            # store is still in flight
            yield Compute(delay)
            yield from d.put(1)
            yield Compute(600)

        def thief(tid):
            for _ in range(400):
                t = yield from d.steal()
                if t != EMPTY and t != ABORT:
                    grabbed.append(t)
                    return

        env.run(Program([owner, thief]), max_cycles=300_000)
        if grabbed and grabbed[0] == -99:
            saw_phantom = True
            break
    assert saw_phantom, "expected a phantom task without the put fence"


def test_workload_harness_is_safe_with_fences():
    env = Env(SimConfig())
    handle = build_wsq_workload(env, iterations=15, workload_level=1)
    env.run(handle.program)
    handle.check()


def test_workload_scoped_beats_traditional_at_peak():
    cyc = {}
    for scoped in (False, True):
        env = Env(SimConfig(scoped_fences=scoped))
        handle = build_wsq_workload(env, iterations=25, workload_level=2)
        res = env.run(handle.program)
        handle.check()
        cyc[scoped] = res.cycles
    assert cyc[False] > cyc[True] * 1.05  # clearly faster, not noise


def test_capacity_validation():
    env = Env(SimConfig(n_cores=1))
    with pytest.raises(ValueError):
        WorkStealingDeque(env, capacity=0)
