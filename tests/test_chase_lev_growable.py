"""Growable Chase-Lev deque tests."""

import pytest

from repro.algorithms.chase_lev import ABORT, EMPTY
from repro.algorithms.chase_lev_growable import GrowableWorkStealingDeque
from repro.apps.pst import build_pst
from repro.isa.instructions import Compute
from repro.isa.program import Program
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


def test_grows_past_initial_capacity():
    env = Env(SimConfig(n_cores=1))
    d = GrowableWorkStealingDeque(env, initial_capacity=4)
    got = []

    def owner(tid):
        for i in range(20):
            yield from d.put(i + 1)
        for _ in range(20):
            got.append((yield from d.take()))

    env.run(Program([owner]))
    assert got == list(range(20, 0, -1))
    assert d.grows >= 2
    assert d.live_capacity >= 16


def test_no_growth_when_it_fits():
    env = Env(SimConfig(n_cores=1))
    d = GrowableWorkStealingDeque(env, initial_capacity=8)

    def owner(tid):
        for i in range(6):
            yield from d.put(i + 1)

    env.run(Program([owner]))
    assert d.grows == 0


def test_wraparound_reuse():
    env = Env(SimConfig(n_cores=1))
    d = GrowableWorkStealingDeque(env, initial_capacity=4)
    got = []

    def owner(tid):
        for round_ in range(5):
            for i in range(3):
                yield from d.put(round_ * 10 + i)
            for _ in range(3):
                got.append((yield from d.take()))

    env.run(Program([owner]))
    assert len(got) == 15 and EMPTY not in got
    assert d.grows == 0  # never more than 3 live elements


def test_steals_race_with_growth():
    """Thieves keep stealing while the owner grows the array; every
    task is delivered exactly once."""
    env = Env(SimConfig(n_cores=3))
    d = GrowableWorkStealingDeque(env, initial_capacity=4)
    done = env.var("g.done")
    extracted = []

    start = env.var("g.start")

    def owner(tid):
        task = 1
        # first burst outruns the (gated) thieves and forces a growth
        for _ in range(10):
            yield from d.put(task)
            task += 1
        yield start.store(1)
        for burst in range(4):
            for _ in range(5):
                yield from d.put(task)
                task += 1
            yield Compute(60)
        while True:
            t = yield from d.take()
            if t < 0:
                break
            extracted.append(("o", t))
        yield done.store(1)

    def thief(tid):
        while not (yield start.load()):
            pass
        while True:
            if (yield done.load()):
                return
            t = yield from d.steal()
            if t >= 0:
                extracted.append((tid, t))

    env.run(Program([owner, thief, thief]), max_cycles=5_000_000)
    got = [t for _, t in extracted]
    assert len(set(got)) == len(got), "duplicate extraction"
    head, tail = d.snapshot()
    assert len(got) + max(0, tail - head) == 30
    assert d.grows >= 1, "the test never exercised a growth"


def test_region_limit():
    env = Env(SimConfig(n_cores=1))
    d = GrowableWorkStealingDeque(env, initial_capacity=2, max_regions=2)

    def owner(tid):
        for i in range(40):
            yield from d.put(i)

    with pytest.raises(MemoryError):
        env.run(Program([owner]))


def test_invalid_capacity():
    env = Env(SimConfig(n_cores=1))
    with pytest.raises(ValueError):
        GrowableWorkStealingDeque(env, initial_capacity=1)


def test_pst_runs_on_growable_deque():
    env = Env(SimConfig())
    inst = build_pst(
        env,
        n_vertices=64,
        extra_edges=48,
        deque_factory=lambda env, name, cap, scope: GrowableWorkStealingDeque(
            env, name, initial_capacity=8, scope=scope, max_regions=10
        ),
    )
    env.run(inst.program, max_cycles=5_000_000)
    inst.check()
