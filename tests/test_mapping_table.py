"""Unit tests for the cid -> FSB-entry mapping table."""

import pytest

from repro.core.mapping_table import MappingOverflow, MappingTable


def test_allocates_distinct_entries():
    mt = MappingTable(capacity=4, n_fsb_class_entries=3)
    e1 = mt.lookup_or_allocate(10)
    e2 = mt.lookup_or_allocate(20)
    e3 = mt.lookup_or_allocate(30)
    assert len({e1, e2, e3}) == 3


def test_lookup_is_stable():
    mt = MappingTable(capacity=4, n_fsb_class_entries=3)
    e = mt.lookup_or_allocate(10)
    assert mt.lookup_or_allocate(10) == e
    assert mt.lookup(10) == e
    assert mt.lookup(99) is None


def test_fsb_exhaustion_falls_back_to_shared_entry():
    """Paper: 'we simply choose one specific FSB entry' when out of entries."""
    mt = MappingTable(capacity=8, n_fsb_class_entries=2)
    e1 = mt.lookup_or_allocate(1)
    e2 = mt.lookup_or_allocate(2)
    e3 = mt.lookup_or_allocate(3)  # no free FSB entry left
    e4 = mt.lookup_or_allocate(4)
    assert {e1, e2} == {0, 1}
    assert e3 == mt.shared_entry
    assert e4 == mt.shared_entry


def test_table_capacity_overflow_raises():
    mt = MappingTable(capacity=2, n_fsb_class_entries=3)
    mt.lookup_or_allocate(1)
    mt.lookup_or_allocate(2)
    with pytest.raises(MappingOverflow):
        mt.lookup_or_allocate(3)
    # existing mappings still resolve
    assert mt.lookup(1) is not None


def test_release_invalidates_all_cids_of_entry():
    mt = MappingTable(capacity=8, n_fsb_class_entries=1)
    mt.lookup_or_allocate(1)
    mt.lookup_or_allocate(2)  # shares entry 0 (only one class entry)
    assert mt.entry_in_use(0)
    mt.release_entry(0)
    assert not mt.entry_in_use(0)
    assert mt.lookup(1) is None
    assert mt.lookup(2) is None
    # entry is reusable afterwards
    assert mt.lookup_or_allocate(3) == 0


def test_release_unused_entry_is_noop():
    mt = MappingTable(capacity=4, n_fsb_class_entries=2)
    mt.release_entry(1)
    assert mt.size == 0


def test_size_and_mappings_snapshot():
    mt = MappingTable(capacity=4, n_fsb_class_entries=3)
    mt.lookup_or_allocate(5)
    snap = mt.mappings()
    assert snap == {5: snap[5]}
    assert mt.size == 1


# ------------------------------------------------ recycling under overflow
def test_shared_entry_release_recycles_all_sharers():
    """With FSB entries exhausted, several cids share the fallback entry;
    releasing it must invalidate every sharer and free the entry exactly
    once."""
    mt = MappingTable(capacity=8, n_fsb_class_entries=2)
    mt.lookup_or_allocate(1)          # entry 0
    mt.lookup_or_allocate(2)          # entry 1
    mt.lookup_or_allocate(3)          # shares fallback entry 0
    mt.lookup_or_allocate(4)          # shares fallback entry 0
    assert mt.free_entries() == ()
    assert mt.lookup(1) == mt.lookup(3) == mt.lookup(4) == mt.shared_entry
    mt.release_entry(mt.shared_entry)
    for cid in (1, 3, 4):
        assert mt.lookup(cid) is None
    assert mt.lookup(2) is not None   # the other entry is untouched
    assert mt.free_entries().count(mt.shared_entry) == 1
    # the recycled entry is allocatable again (not the shared fallback)
    assert mt.lookup_or_allocate(9) == mt.shared_entry
    assert mt.free_entries() == ()


def test_release_does_not_duplicate_free_entry():
    """Releasing an entry twice (complete + fs_end race in the tracker)
    must not put it on the free list twice."""
    mt = MappingTable(capacity=8, n_fsb_class_entries=2)
    mt.lookup_or_allocate(1)
    mt.lookup_or_allocate(2)
    mt.release_entry(1)
    mt.release_entry(1)               # second release: mapping already gone
    assert mt.free_entries().count(1) == 1
    e1 = mt.lookup_or_allocate(10)
    e2 = mt.lookup_or_allocate(11)
    assert e1 == 1 and e2 == mt.shared_entry  # 1 handed out exactly once


def test_capacity_overflow_after_recycling_clears():
    """MappingOverflow pressure goes away once stale mappings recycle."""
    mt = MappingTable(capacity=2, n_fsb_class_entries=3)
    mt.lookup_or_allocate(1)
    e2 = mt.lookup_or_allocate(2)
    with pytest.raises(MappingOverflow):
        mt.lookup_or_allocate(3)
    mt.release_entry(e2)
    assert mt.lookup_or_allocate(3) is not None
    assert mt.size == 2


def test_invalid_construction():
    with pytest.raises(ValueError):
        MappingTable(0, 2)
    with pytest.raises(ValueError):
        MappingTable(2, 0)
