"""Infrastructure fault injection: scripted plans, worker hooks, cache
sabotage -- and the engine healing every injected fault."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    DegradationLadder,
    InfraFaultPlan,
    Job,
    NO_RETRY,
    ResultCache,
    RetryPolicy,
    STATUS_CRASH,
    STATUS_OK,
    STATUS_TIMEOUT,
    run_campaign,
    sabotage_cache,
    scripted_plan,
)
from repro.campaign.chaosinfra import INFRA_EXIT_CODE

FAST_RETRY = RetryPolicy(retries=2, backoff_base=0.01, backoff_cap=0.05)


def ok_jobs(n):
    return [Job("selftest", {"mode": "ok", "echo": i}) for i in range(n)]


def calm_ladder(target):
    """A ladder that tolerates the whole scripted storm without descending."""
    return DegradationLadder(target=target, enabled=False)


# -------------------------------------------------------------- scripted plans
def test_scripted_plan_is_deterministic_per_seed():
    a = scripted_plan(3, 20)
    b = scripted_plan(3, 20)
    assert a == b
    assert a.describe() == b.describe()
    assert scripted_plan(4, 20) != a


def test_scripted_plan_targets_are_distinct_and_in_range():
    plan = scripted_plan(9, 12)
    targets = ([i for i, _ in plan.kills] + [i for i, _ in plan.receive_kills]
               + [i for i, _ in plan.stalls])
    assert all(0 <= i < 12 for i in targets)
    # the double-kill victim appears twice; everything else is distinct
    assert len(set(targets)) == 4
    assert plan.live
    assert plan.corrupt_blobs and plan.truncate_blobs and plan.tear_manifest


def test_scripted_plan_respects_retry_budget():
    shallow = scripted_plan(3, 20, retries=1)
    assert max(a for _, a in shallow.kills) == 0  # no attempt-1 faults
    deep = scripted_plan(3, 20, retries=2)
    assert max(a for _, a in deep.kills) == 1


def test_scripted_plan_needs_enough_jobs():
    with pytest.raises(ValueError):
        scripted_plan(0, 3)


def test_empty_plan_is_not_live():
    assert not InfraFaultPlan().live


# ------------------------------------------------------------ engine under fire
def test_injected_kill_is_healed_by_retry():
    plan = InfraFaultPlan(kills=((1, 0),))
    jobs = ok_jobs(4)
    campaign = run_campaign(jobs, parallel=2, retry=FAST_RETRY, infra=plan,
                            ladder=calm_ladder(2))
    assert campaign.ok
    assert campaign.outcomes[1].attempts == (STATUS_CRASH,)
    assert campaign.retried == 1


def test_injected_kill_without_retry_shows_infra_exit_code():
    plan = InfraFaultPlan(kills=((0, 0),))
    campaign = run_campaign(ok_jobs(2), parallel=1, retry=NO_RETRY, infra=plan,
                            ladder=calm_ladder(1))
    assert campaign.outcomes[0].status == STATUS_CRASH
    assert f"code {INFRA_EXIT_CODE}" in campaign.outcomes[0].error
    assert campaign.outcomes[1].status == STATUS_OK


def test_injected_stall_trips_timeout_then_recovers():
    plan = InfraFaultPlan(stalls=((0, 0),), stall_seconds=4.0)
    campaign = run_campaign(ok_jobs(3), parallel=2, job_timeout=1.0,
                            retry=FAST_RETRY, infra=plan,
                            ladder=calm_ladder(2))
    assert campaign.ok
    assert campaign.outcomes[0].attempts == (STATUS_TIMEOUT,)


def test_receive_kill_poisons_chunk_then_retries_recover():
    """A pre-start kill burns the chunk's re-queue budget (all jobs
    classified worker-crash by the backstop) -- then per-job retries at
    attempt 1 run clean and everything ends ok."""
    plan = InfraFaultPlan(receive_kills=((0, 0),))
    jobs = ok_jobs(4)
    campaign = run_campaign(jobs, parallel=1, chunk_cost=1e9,
                            retry=FAST_RETRY, infra=plan,
                            ladder=calm_ladder(1))
    assert campaign.ok
    assert all(o.attempts == (STATUS_CRASH,) for o in campaign.outcomes)
    assert campaign.retried == len(jobs)


def test_jitter_changes_no_outcome():
    plan = InfraFaultPlan(seed=3, jitter_prob=1.0, jitter_max_s=0.01)
    baseline = run_campaign(ok_jobs(6), parallel=2)
    jittered = run_campaign(ok_jobs(6), parallel=2, infra=plan,
                            ladder=calm_ladder(2))
    assert jittered.ok
    assert jittered.results() == baseline.results()
    assert jittered.retried == 0


# --------------------------------------------------------------- cache sabotage
def _populated_cache(tmp_path, n=6):
    cache = ResultCache(tmp_path, fingerprint="fp")
    jobs = ok_jobs(n)
    run_campaign(jobs, parallel=0, cache=cache)
    return cache, jobs


def test_sabotage_damages_exactly_what_it_reports(tmp_path):
    cache, _jobs = _populated_cache(tmp_path)
    plan = InfraFaultPlan(seed=5, corrupt_blobs=2, truncate_blobs=1,
                          tear_manifest=True)
    report = sabotage_cache(tmp_path, plan)
    assert len(report["corrupted"]) == 2
    assert len(report["truncated"]) == 1
    assert report["manifest_torn"]
    # corrupted blobs still parse (only the checksum can convict them)
    for name in report["corrupted"]:
        blob = next(p for p in (tmp_path / "objects").rglob(name))
        assert json.loads(blob.read_text())["result"] == {"tampered": True}
    # truncated blobs no longer parse
    for name in report["truncated"]:
        blob = next(p for p in (tmp_path / "objects").rglob(name))
        with pytest.raises(ValueError):
            json.loads(blob.read_text())
    # the torn manifest line is the unterminated trailing one
    tail = (tmp_path / "manifest.jsonl").read_text().rsplit("\n", 1)[-1]
    assert tail and not tail.endswith("}")


def test_sabotage_is_deterministic(tmp_path):
    _populated_cache(tmp_path / "a")
    _populated_cache(tmp_path / "b")
    plan = InfraFaultPlan(seed=7, corrupt_blobs=1, truncate_blobs=1)
    assert sabotage_cache(tmp_path / "a", plan) == \
        sabotage_cache(tmp_path / "b", plan)


def test_sabotaged_cache_recovers_transparently(tmp_path):
    """The full recovery path: sabotage, re-open, resume -- only the
    damaged entries recompute and the results match the originals."""
    cache, jobs = _populated_cache(tmp_path)
    original = run_campaign(jobs, parallel=0, cache=cache)
    plan = InfraFaultPlan(seed=1, corrupt_blobs=1, truncate_blobs=1,
                          tear_manifest=True)
    sabotage_cache(tmp_path, plan)
    reopened = ResultCache(tmp_path, fingerprint="fp")
    assert reopened.repaired is not None  # the torn line forced a repair
    resumed = run_campaign(jobs, parallel=0, cache=reopened)
    assert resumed.ok
    assert resumed.executed == 2 and resumed.cached == len(jobs) - 2
    assert reopened.quarantined == 2
    assert resumed.results() == original.results()
