"""Treiber stack and Lamport SPSC queue (extension algorithms)."""

import pytest

from repro.algorithms.lamport_queue import EMPTY as LQ_EMPTY
from repro.algorithms.lamport_queue import LamportQueue
from repro.algorithms.treiber_stack import EMPTY as TS_EMPTY
from repro.algorithms.treiber_stack import TreiberStack
from repro.isa.program import Program
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


# ------------------------------------------------------------------- treiber
def test_treiber_lifo():
    env = Env(SimConfig(n_cores=1))
    s = TreiberStack(env, pool_size=16)
    got = []

    def body(tid):
        for v in (1, 2, 3):
            yield from s.push(v)
        for _ in range(4):
            got.append((yield from s.pop()))

    env.run(Program([body]))
    assert got == [3, 2, 1, TS_EMPTY]


def test_treiber_values_host():
    env = Env(SimConfig(n_cores=1))
    s = TreiberStack(env, pool_size=16)

    def body(tid):
        for v in (1, 2, 3):
            yield from s.push(v)

    env.run(Program([body]))
    assert s.values_host() == [3, 2, 1]


def test_treiber_concurrent_push_pop_no_loss():
    env = Env(SimConfig(n_cores=4))
    s = TreiberStack(env, pool_size=128)
    popped = []

    def pusher(tid):
        for i in range(8):
            yield from s.push(tid * 100 + i)

    def popper(tid):
        empties = 0
        while empties < 40:
            v = yield from s.pop()
            if v == TS_EMPTY:
                empties += 1
            else:
                empties = 0
                popped.append(v)

    env.run(Program([pusher, pusher, popper, popper]), max_cycles=3_000_000)
    pushed = {t * 100 + i for t in (0, 1) for i in range(8)}
    assert sorted(popped + s.values_host()) == sorted(pushed)
    assert len(set(popped)) == len(popped)


# ------------------------------------------------------------------- lamport
def test_lamport_fifo_spsc():
    env = Env(SimConfig(n_cores=2))
    q = LamportQueue(env, capacity=8)
    got = []

    def producer(tid):
        sent = 0
        while sent < 12:
            ok = yield from q.enqueue(sent + 1)
            if ok:
                sent += 1

    def consumer(tid):
        while len(got) < 12:
            v = yield from q.dequeue()
            if v != LQ_EMPTY:
                got.append(v)

    env.run(Program([producer, consumer]), max_cycles=1_000_000)
    assert got == list(range(1, 13))


def test_lamport_full_detection():
    env = Env(SimConfig(n_cores=1))
    q = LamportQueue(env, capacity=4)
    results = []

    def body(tid):
        for v in range(5):
            results.append((yield from q.enqueue(v)))

    env.run(Program([body]))
    assert results == [True, True, True, False, False]


def test_lamport_empty_detection():
    env = Env(SimConfig(n_cores=1))
    q = LamportQueue(env, capacity=4)
    got = []

    def body(tid):
        got.append((yield from q.dequeue()))

    env.run(Program([body]))
    assert got == [LQ_EMPTY]


def test_lamport_invalid_capacity():
    env = Env(SimConfig(n_cores=1))
    with pytest.raises(ValueError):
        LamportQueue(env, capacity=1)
