"""Hardware cost model tests (Section VI-E)."""

from repro.core.hwcost import HardwareCost, estimate_cost
from repro.sim.config import SimConfig


def test_paper_claim_under_80_bytes():
    """128-entry ROB + 8-entry SB + 4 FSB bits -> < 80 bytes per core."""
    cost = estimate_cost(SimConfig())
    assert cost.total_bytes < 80


def test_fsb_bits_dominate():
    cost = estimate_cost(SimConfig())
    assert cost.fsb_rob_bits == 128 * 4
    assert cost.fsb_sb_bits == 8 * 4
    assert cost.fsb_rob_bits > cost.mapping_table_bits


def test_cost_scales_with_rob():
    small = estimate_cost(SimConfig(rob_size=64))
    big = estimate_cost(SimConfig(rob_size=256))
    assert big.total_bits - small.total_bits == (256 - 64) * 4


def test_cost_scales_with_fsb_entries():
    two = estimate_cost(SimConfig(fsb_entries=2))
    eight = estimate_cost(SimConfig(fsb_entries=8))
    assert eight.total_bits > two.total_bits


def test_breakdown_sums():
    cost = estimate_cost(SimConfig())
    parts = (
        cost.fsb_rob_bits
        + cost.fsb_sb_bits
        + cost.mapping_table_bits
        + cost.fss_bits
        + cost.shadow_fss_bits
        + cost.overflow_counter_bits
    )
    assert parts == cost.total_bits
    assert cost.total_bytes == cost.total_bits / 8
