"""Tests for the workload-harness building blocks."""

import pytest

from repro.isa.instructions import Compute, Load, Store
from repro.isa.program import Program
from repro.runtime.harness import (
    COLD_CAP,
    FlaggedExchange,
    PrivateWork,
    ScratchSpill,
)
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


def drain(gen):
    """Collect every op a guest fragment yields (loads receive 0)."""
    ops = []
    try:
        op = gen.send(None)
        while True:
            ops.append(op)
            op = gen.send(0)
    except StopIteration:
        pass
    return ops


# --------------------------------------------------------------- private work
def test_level_zero_emits_nothing():
    env = Env(SimConfig())
    w = PrivateWork(env, 0, 0)
    assert drain(w.emit()) == []


def test_level_scaling():
    env = Env(SimConfig())
    w1 = PrivateWork(env, 0, 1, name="w1")
    w3 = PrivateWork(env, 1, 3, name="w3")
    ops1 = drain(w1.emit())
    ops3 = drain(w3.emit())
    assert len(ops3) > len(ops1)
    c1 = sum(op.cycles for op in ops1 if isinstance(op, Compute))
    c3 = sum(op.cycles for op in ops3 if isinstance(op, Compute))
    assert c3 == 3 * c1


def test_cold_rate_zero_at_level_one():
    env = Env(SimConfig())
    w = PrivateWork(env, 0, 1)
    assert w.cold_rate == 0.0


def test_cold_rate_saturates():
    env = Env(SimConfig())
    w = PrivateWork(env, 0, 12)
    assert w.cold_rate == float(COLD_CAP)


def test_cold_accesses_stream_distinct_lines():
    env = Env(SimConfig())
    w = PrivateWork(env, 0, 3)  # rate 2.0 at level 3
    stores = []
    for i in range(4):
        stores += [
            op.addr
            for op in drain(w.emit(i))
            if isinstance(op, Store) and w.cold.base <= op.addr < w.cold.base + len(w.cold)
        ]
    assert len(set(stores)) == len(stores)


def test_hot_set_is_warmed_into_l2():
    env = Env(SimConfig())
    w = PrivateWork(env, 0, 1)
    sim = env.simulator(Program([lambda tid: iter(())]))
    assert sim.hierarchy.resident_in_l2(w.hot.addr_of(0))


def test_invalid_level():
    env = Env(SimConfig())
    with pytest.raises(ValueError):
        PrivateWork(env, 0, -1)


# -------------------------------------------------------------- scratch spill
def test_spill_cold_every_k():
    env = Env(SimConfig())
    s = ScratchSpill(env, 0, "t", cold_every=3)
    addrs = [s.store(1).addr for _ in range(6)]
    cold = [a for a in addrs if a >= s.cold.base]
    assert len(cold) == 2  # every 3rd of 6


def test_spill_cold_every_one():
    env = Env(SimConfig())
    s = ScratchSpill(env, 0, "t1", cold_every=1)
    addrs = [s.store(1).addr for _ in range(4)]
    assert all(a >= s.cold.base for a in addrs)
    assert len(set(addrs)) == 4  # streaming, no reuse


def test_spill_invalid():
    env = Env(SimConfig())
    with pytest.raises(ValueError):
        ScratchSpill(env, 0, "t2", cold_every=0)


# ----------------------------------------------------------- flagged exchange
def test_exchange_rate_limited():
    env = Env(SimConfig())
    region = FlaggedExchange.make_region(env, "x", 2, words_per_thread=64)
    ex = FlaggedExchange(env, 0, 2, region, every=2)
    ops0 = drain(ex.emit(1))
    ops1 = drain(ex.emit(1))
    assert ops0 == []           # skipped
    assert len(ops1) == 2       # store + load


def test_exchange_ops_are_flagged_and_cross_thread():
    env = Env(SimConfig())
    region = FlaggedExchange.make_region(env, "y", 2, words_per_thread=64)
    ex = FlaggedExchange(env, 0, 2, region, every=1)
    store, load = drain(ex.emit(5))
    assert isinstance(store, Store) and store.flagged
    assert isinstance(load, Load) and load.flagged
    assert store.addr != load.addr  # own slot vs peer slot


def test_exchange_region_is_flagged():
    env = Env(SimConfig())
    region = FlaggedExchange.make_region(env, "z", 4)
    assert region.flagged
