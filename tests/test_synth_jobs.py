"""Campaign integration for ``synth`` jobs: builders, caching, keying."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    Job,
    ResultCache,
    code_fingerprint,
    execute_job,
    job_cost,
    job_key,
    run_campaign,
    synth_jobs,
)
from repro.synth.cost import SMOKE_PROBE_OFFSETS
from repro.synth.report import assemble_synth_report, write_synth_report
from repro.synth.sites import MODES

#: the cheap single-entry job list the cache tests sweep
SMALL = dict(names=["SB"], smoke=True)


# ------------------------------------------------------------------ builders
def test_synth_jobs_cover_the_corpus_in_order():
    jobs = synth_jobs(smoke=True)
    assert [j.params["name"] for j in jobs] == [
        "SB", "MP", "WRC", "IRIW", "barnes-publish", "ptc-handoff"]
    assert all(j.kind == "synth" for j in jobs)
    assert jobs[0].label() == "synth:SB"
    assert job_cost(jobs[0]) > job_cost(Job("litmus", {"name": "SB"}))


def test_synth_jobs_parameters_are_explicit():
    """Lattice and grid ride in params, never in ambient config."""
    smoke = synth_jobs(**SMALL)[0]
    full = synth_jobs(names=["SB"], smoke=False)[0]
    assert smoke.params["modes"] == list(MODES)
    assert smoke.params["offsets"] == list(SMOKE_PROBE_OFFSETS)
    assert smoke.params["offsets"] != full.params["offsets"]


def test_synth_jobs_validate_inputs():
    with pytest.raises(KeyError, match="unknown synth test"):
        synth_jobs(names=["nope"])
    with pytest.raises(KeyError, match="unknown fence mode"):
        synth_jobs(names=["SB"], modes=["mega"])


# ------------------------------------------------------------------- caching
def test_warm_synth_rerun_executes_zero_explorations(tmp_path):
    """A warm re-run serves every synth job from cache, byte-identical."""
    jobs = synth_jobs(**SMALL)
    cold = run_campaign(jobs, parallel=0, cache=ResultCache(tmp_path))
    assert (cold.executed, cold.cached) == (len(jobs), 0)
    warm = run_campaign(jobs, parallel=0, cache=ResultCache(tmp_path))
    assert (warm.executed, warm.cached) == (0, len(jobs))
    assert all(o.cached for o in warm.outcomes)
    # byte-level identity of the whole result payloads
    assert (json.dumps(warm.results(), sort_keys=True)
            == json.dumps(cold.results(), sort_keys=True))


def test_warm_rerun_report_is_byte_identical(tmp_path):
    """The assembled report file itself reproduces byte-for-byte."""
    jobs = synth_jobs(**SMALL)
    paths = []
    for i in range(2):
        result = run_campaign(jobs, parallel=0, cache=ResultCache(tmp_path / "c"))
        report = assemble_synth_report(result.outcomes, smoke=True)
        path = tmp_path / f"report{i}.json"
        write_synth_report(report, str(path))
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_changed_mode_lattice_busts_the_cache_key(tmp_path):
    """Searching a different lattice is a different job, not a cache hit."""
    fingerprint = code_fingerprint()
    full_lattice = synth_jobs(**SMALL)[0]
    restricted = synth_jobs(names=["SB"], modes=["none", "full"], smoke=True)[0]
    assert (job_key(full_lattice.kind, full_lattice.params, fingerprint)
            != job_key(restricted.kind, restricted.params, fingerprint))

    cache = ResultCache(tmp_path)
    run_campaign([full_lattice], parallel=0, cache=cache)
    rerun = run_campaign([restricted], parallel=0, cache=ResultCache(tmp_path))
    assert (rerun.executed, rerun.cached) == (1, 0)
    # and the restricted search genuinely differs: no scoped modes
    payload = rerun.results()[0]
    assert set(payload["synthesized"]["assignment"]) <= {"none", "full"}


def test_changed_offset_grid_busts_the_cache_key():
    fingerprint = code_fingerprint()
    smoke = synth_jobs(**SMALL)[0]
    full = synth_jobs(names=["SB"], smoke=False)[0]
    assert (job_key(smoke.kind, smoke.params, fingerprint)
            != job_key(full.kind, full.params, fingerprint))


# ------------------------------------------------------------------- payload
def test_synth_job_payload_shape():
    payload = execute_job(synth_jobs(**SMALL)[0])
    assert payload["name"] == "SB"
    assert payload["ok"] is True
    assert payload["synthesized"]["sound"] is True
    assert payload["handwritten"]["sound"] is True
    assert set(payload["synthesized"]["placement"]) == set(payload["sites"])
    search = payload["synthesized"]["search"]
    assert search["explorations"] > 0
    assert search["measured"] > 0
    # JSON-round-trippable (the cache stores plain JSON objects)
    assert json.loads(json.dumps(payload)) == payload


def test_synth_jobs_run_identically_inline_and_pooled(tmp_path):
    jobs = synth_jobs(**SMALL)
    inline = run_campaign(jobs, parallel=0)
    pooled = run_campaign(jobs, parallel=2)
    assert inline.results() == pooled.results()
