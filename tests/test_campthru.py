"""Campaign-throughput harness: report shape, gating, fingerprinting."""

from __future__ import annotations

import json

from repro.analysis import campthru
from repro.campaign import Job, run_campaign


def _tiny_sweeps(smoke: bool) -> dict:
    return {
        campthru.GATE_SWEEP: [
            Job("selftest", {"mode": "ok", "echo": i}) for i in range(4)
        ],
        "chaos-smoke": [Job("selftest", {"mode": "ok", "echo": 99})],
    }


def test_report_shape_and_warm_contract(monkeypatch, tmp_path):
    monkeypatch.setattr(campthru, "_sweep_jobs", _tiny_sweeps)
    report = campthru.run_campaign_perf(parallel=2, smoke=True, min_ratio=None)
    assert report["ok"]
    assert report["parallel"] == 2
    assert isinstance(report["cpus"], int)
    assert "gate" not in report  # min_ratio=None disables the gate
    for sweep in report["sweeps"].values():
        assert sweep["identical"]
        for flavour in ("legacy", "persistent"):
            assert sweep[flavour]["warm_executed"] == 0
            assert sweep[flavour]["failures"] == 0
            assert sweep[flavour]["cold_s"] >= 0
    path = tmp_path / "BENCH_campaign.json"
    campthru.write_report(report, path)
    assert json.loads(path.read_text())["sweeps"].keys() == report["sweeps"].keys()


def test_unreachable_gate_fails_the_report(monkeypatch):
    monkeypatch.setattr(campthru, "_sweep_jobs", _tiny_sweeps)
    report = campthru.run_campaign_perf(parallel=1, smoke=True, min_ratio=1e9)
    assert not report["ok"]
    gate = report["gate"]
    assert gate["sweep"] == campthru.GATE_SWEEP
    assert not gate["passed"]
    assert gate["ratio"] is not None


def test_outcome_fingerprint_tracks_payloads_not_cache_flags():
    jobs = [Job("selftest", {"mode": "ok", "echo": i}) for i in range(3)]
    a = campthru.outcome_fingerprint(run_campaign(jobs, parallel=0))
    b = campthru.outcome_fingerprint(run_campaign(jobs, parallel=2))
    assert a == b
    other = campthru.outcome_fingerprint(
        run_campaign(jobs[:2] + [Job("selftest", {"mode": "error"})],
                     parallel=0))
    assert other != a


def test_default_parallel_resolves_to_auto(monkeypatch):
    monkeypatch.setattr(campthru, "_sweep_jobs", _tiny_sweeps)
    from repro.campaign import auto_parallel

    report = campthru.run_campaign_perf(smoke=True, min_ratio=None)
    assert report["parallel"] == auto_parallel()
