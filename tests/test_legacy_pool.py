"""Legacy --fork-per-job pool lifecycle and the persistent pool's
poisoned-chunk backstop."""

from __future__ import annotations

from repro.campaign import (
    DegradationLadder,
    InfraFaultPlan,
    Job,
    NO_RETRY,
    ResultCache,
    RetryPolicy,
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    run_campaign,
)

FAST_RETRY = RetryPolicy(retries=2, backoff_base=0.01, backoff_cap=0.05)


def ok_jobs(n):
    return [Job("selftest", {"mode": "ok", "echo": i}) for i in range(n)]


# ------------------------------------------------------- fork-per-job lifecycle
def test_fork_per_job_respawns_after_crash():
    """A dead worker costs one job; the pool keeps draining the queue."""
    jobs = [Job("selftest", {"mode": "crash"})] + ok_jobs(5)
    campaign = run_campaign(jobs, parallel=2, fork_per_job=True,
                            retry=NO_RETRY)
    assert campaign.outcomes[0].status == STATUS_CRASH
    assert "exited with code 17" in campaign.outcomes[0].error
    assert all(o.status == STATUS_OK for o in campaign.outcomes[1:])
    assert [o.result["echo"] for o in campaign.outcomes[1:]] == list(range(5))


def test_fork_per_job_kills_hung_worker():
    jobs = [Job("selftest", {"mode": "hang"})] + ok_jobs(2)
    campaign = run_campaign(jobs, parallel=2, fork_per_job=True,
                            job_timeout=1.0, retry=NO_RETRY)
    assert campaign.outcomes[0].status == STATUS_TIMEOUT
    assert "no progress" in campaign.outcomes[0].error
    assert all(o.status == STATUS_OK for o in campaign.outcomes[1:])


def test_fork_per_job_mixed_failures_and_cache(tmp_path):
    jobs = [
        Job("selftest", {"mode": "ok", "echo": 0}),
        Job("selftest", {"mode": "error"}),
        Job("selftest", {"mode": "crash"}),
        Job("selftest", {"mode": "ok", "echo": 3}),
    ]
    cache = ResultCache(tmp_path, fingerprint="fp")
    campaign = run_campaign(jobs, parallel=2, fork_per_job=True,
                            retry=NO_RETRY, cache=cache)
    statuses = [o.status for o in campaign.outcomes]
    assert statuses == [STATUS_OK, STATUS_ERROR, STATUS_CRASH, STATUS_OK]
    assert len(cache) == 2  # only the ok results persist
    warm = run_campaign(jobs, parallel=2, fork_per_job=True, retry=NO_RETRY,
                        cache=ResultCache(tmp_path, fingerprint="fp"))
    assert warm.cached == 2 and warm.executed == 2


def test_fork_per_job_retry_recovers_transient_crash(tmp_path):
    jobs = ok_jobs(2) + [
        Job("selftest", {"mode": "crash-once", "marker": str(tmp_path / "m")}),
    ]
    campaign = run_campaign(jobs, parallel=2, fork_per_job=True,
                            retry=FAST_RETRY)
    assert campaign.ok
    assert campaign.outcomes[2].attempts == (STATUS_CRASH,)
    assert campaign.retried == 1


def test_fork_per_job_retry_recovers_transient_hang(tmp_path):
    jobs = ok_jobs(1) + [
        Job("selftest", {"mode": "hang-once", "marker": str(tmp_path / "m")}),
    ]
    campaign = run_campaign(jobs, parallel=2, fork_per_job=True,
                            job_timeout=1.0, retry=FAST_RETRY)
    assert campaign.ok
    assert campaign.outcomes[1].attempts == (STATUS_TIMEOUT,)


# ------------------------------------------------------ poisoned-chunk backstop
def test_poisoned_chunk_backstop_caps_requeues():
    """A chunk whose delivery kills the worker before any job starts is
    re-queued a bounded number of times, then classified -- the pool
    must not respawn-loop forever."""
    plan = InfraFaultPlan(receive_kills=((0, 0),))
    jobs = ok_jobs(4)
    campaign = run_campaign(jobs, parallel=1, chunk_cost=1e9, infra=plan,
                            retry=NO_RETRY,
                            ladder=DegradationLadder(target=1, enabled=False))
    # with retries disabled every job in the poisoned chunk is charged
    assert all(o.status == STATUS_CRASH for o in campaign.outcomes)
    assert all("chunk re-queued" in o.error for o in campaign.outcomes)


def test_poisoned_chunk_progress_resets_the_backstop():
    """A crash *after* progress (a started job) resets the re-queue
    count: only the in-flight job is charged, the rest complete."""
    plan = InfraFaultPlan(kills=((1, 0),))
    jobs = ok_jobs(4)
    campaign = run_campaign(jobs, parallel=1, chunk_cost=1e9, infra=plan,
                            retry=NO_RETRY,
                            ladder=DegradationLadder(target=1, enabled=False))
    statuses = [o.status for o in campaign.outcomes]
    assert statuses == [STATUS_OK, STATUS_CRASH, STATUS_OK, STATUS_OK]
