"""Campaign engine plumbing: caching, resume, crash isolation, keys."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    Job,
    NO_RETRY,
    ResultCache,
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    auto_parallel,
    chaos_jobs,
    code_fingerprint,
    execute_job,
    job_cost,
    job_key,
    litmus_jobs,
    plan_chunks,
    run_campaign,
    set_process_fingerprint,
)
from repro.campaign.engine import MAX_CHUNK_JOBS

SMALL = dict(algos=["lamport"], scenarios=["latency"], n_seeds=2)


# ------------------------------------------------------------------- caching
def test_warm_cache_executes_nothing(tmp_path):
    jobs = chaos_jobs(**SMALL)
    cold = run_campaign(jobs, parallel=2, cache=ResultCache(tmp_path))
    assert (cold.executed, cold.cached) == (len(jobs), 0)
    warm = run_campaign(jobs, parallel=2, cache=ResultCache(tmp_path))
    assert (warm.executed, warm.cached) == (0, len(jobs))
    assert warm.results() == cold.results()
    assert all(o.cached for o in warm.outcomes)


def test_interrupted_campaign_resumes_partially(tmp_path):
    """Only the jobs missing from the cache re-execute."""
    jobs = chaos_jobs(**SMALL)
    cache = ResultCache(tmp_path)
    run_campaign(jobs[:1], parallel=0, cache=cache)
    resumed = run_campaign(jobs, parallel=0, cache=ResultCache(tmp_path))
    assert (resumed.executed, resumed.cached) == (len(jobs) - 1, 1)


def test_cache_served_inline_and_pooled_identically(tmp_path):
    jobs = litmus_jobs()[:2]
    cold = run_campaign(jobs, parallel=0, cache=ResultCache(tmp_path))
    warm = run_campaign(jobs, parallel=2, cache=ResultCache(tmp_path))
    assert warm.results() == cold.results()


def test_manifest_records_completions(tmp_path):
    jobs = chaos_jobs(**SMALL)
    cache = ResultCache(tmp_path)
    run_campaign(jobs, parallel=0, cache=cache)
    manifest = cache.manifest()
    assert len(manifest) == len(jobs)
    assert all(entry["status"] == "ok" for entry in manifest)
    assert {entry["key"] for entry in manifest} == {cache.key_for(j) for j in jobs}


def test_cache_objects_are_plain_json(tmp_path):
    cache = ResultCache(tmp_path)
    job = chaos_jobs(**SMALL)[0]
    run_campaign([job], parallel=0, cache=cache)
    path = cache._object_path(cache.key_for(job))
    obj = json.loads(path.read_text())
    assert obj["kind"] == "chaos"
    assert obj["result"]["status"] == "ok"


def test_corrupt_cache_object_is_re_executed(tmp_path):
    cache = ResultCache(tmp_path)
    job = chaos_jobs(**SMALL)[0]
    run_campaign([job], parallel=0, cache=cache)
    cache._object_path(cache.key_for(job)).write_text("{torn write")
    rerun = run_campaign([job], parallel=0, cache=ResultCache(tmp_path))
    assert rerun.executed == 1 and rerun.ok


# ---------------------------------------------------------------------- keys
def test_job_key_depends_on_params_and_code():
    a = job_key("chaos", {"seed": 1}, "fp")
    assert a == job_key("chaos", {"seed": 1}, "fp")
    assert a != job_key("chaos", {"seed": 2}, "fp")
    assert a != job_key("chaos", {"seed": 1}, "fp2")
    assert a != job_key("probe", {"seed": 1}, "fp")


def test_engine_failures_never_cached(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = [Job("selftest", {"mode": "error"})]
    run_campaign(jobs, parallel=0, cache=cache)
    assert len(cache) == 0
    assert cache.manifest() == []


# ------------------------------------------------------------ crash isolation
def test_worker_failures_are_classified_not_fatal():
    jobs = [
        Job("selftest", {"mode": "ok", "echo": 1}),
        Job("selftest", {"mode": "crash"}),
        Job("selftest", {"mode": "error"}),
        Job("selftest", {"mode": "ok", "echo": 2}),
    ]
    # NO_RETRY pins the raw classifications (retry recovery is covered
    # in test_resilience.py) and keeps the permanently-crashing job from
    # burning its retry budget here
    campaign = run_campaign(jobs, parallel=2, retry=NO_RETRY)
    statuses = [o.status for o in campaign.outcomes]
    assert statuses == [STATUS_OK, STATUS_CRASH, STATUS_ERROR, STATUS_OK]
    assert campaign.outcomes[0].result["echo"] == 1
    assert campaign.outcomes[3].result["echo"] == 2
    assert "exited with code 17" in campaign.outcomes[1].error
    assert "selftest error job" in campaign.outcomes[2].error
    assert len(campaign.failures) == 2


def test_hung_worker_is_killed_and_classified():
    jobs = [Job("selftest", {"mode": "hang"}), Job("selftest", {"mode": "ok"})]
    campaign = run_campaign(jobs, parallel=2, job_timeout=1.0, retry=NO_RETRY)
    assert campaign.outcomes[0].status == STATUS_TIMEOUT
    assert campaign.outcomes[1].status == STATUS_OK


def test_inline_error_is_classified():
    campaign = run_campaign([Job("selftest", {"mode": "error"})], parallel=0)
    assert campaign.outcomes[0].status == STATUS_ERROR
    assert "selftest error job" in campaign.outcomes[0].error


def test_unknown_job_kind_rejected():
    with pytest.raises(KeyError):
        execute_job(Job("nope", {}))


def test_unknown_chaos_names_rejected():
    with pytest.raises(KeyError):
        chaos_jobs(algos=["nope"])
    with pytest.raises(KeyError):
        chaos_jobs(scenarios=["nope"])


# ------------------------------------------------------------------ labelling
def test_job_labels_are_informative():
    assert "wsq" in chaos_jobs(algos=["wsq"], scenarios=["scope"], n_seeds=1)[0].label()
    assert litmus_jobs()[0].label().startswith("litmus:")


# ------------------------------------------------------------- chunk planning
def test_plan_chunks_preserves_order_and_covers_everything():
    jobs = [Job("selftest", {"mode": "ok", "echo": i}) for i in range(50)]
    pending = list(range(50))
    chunks = plan_chunks(jobs, pending, parallel=3)
    assert [i for chunk in chunks for i in chunk] == pending
    assert all(len(chunk) <= MAX_CHUNK_JOBS for chunk in chunks)
    assert plan_chunks(jobs, [], parallel=3) == []


def test_plan_chunks_batches_small_and_isolates_heavy():
    light = litmus_jobs()[0]
    heavy = chaos_jobs(algos=["wsq"], scenarios=["storm"], n_seeds=1)[0]
    assert job_cost(heavy) > 4 * job_cost(light)
    jobs = [light] * 6 + [heavy] + [light] * 6
    chunks = plan_chunks(jobs, list(range(len(jobs))), parallel=1,
                         target_cost=4 * job_cost(light))
    assert [6] in chunks  # the heavy job travels alone
    assert all(len(chunk) > 1 for chunk in chunks if 6 not in chunk)


def test_auto_parallel_is_sane():
    n = auto_parallel()
    assert 1 <= n <= 8


# --------------------------------------------------------------- pool lifecycle
def test_worker_death_mid_chunk_requeues_remaining_jobs():
    """Only the in-flight job is lost; the rest of its chunk completes."""
    jobs = [
        Job("selftest", {"mode": "ok", "echo": 0}),
        Job("selftest", {"mode": "crash"}),
        Job("selftest", {"mode": "ok", "echo": 2}),
        Job("selftest", {"mode": "ok", "echo": 3}),
        Job("selftest", {"mode": "ok", "echo": 4}),
    ]
    # a huge cost target forces every job into one chunk on one worker
    campaign = run_campaign(jobs, parallel=1, chunk_cost=1e9, retry=NO_RETRY)
    statuses = [o.status for o in campaign.outcomes]
    assert statuses == [STATUS_OK, STATUS_CRASH, STATUS_OK, STATUS_OK, STATUS_OK]
    assert [o.result["echo"] for o in campaign.outcomes if o.ok] == [0, 2, 3, 4]


def test_timeout_mid_chunk_kills_only_the_wedged_job():
    jobs = [
        Job("selftest", {"mode": "ok", "echo": 0}),
        Job("selftest", {"mode": "hang"}),
        Job("selftest", {"mode": "ok", "echo": 2}),
    ]
    campaign = run_campaign(jobs, parallel=1, job_timeout=1.0, chunk_cost=1e9,
                            retry=NO_RETRY)
    statuses = [o.status for o in campaign.outcomes]
    assert statuses == [STATUS_OK, STATUS_TIMEOUT, STATUS_OK]
    assert "no progress" in campaign.outcomes[1].error


def test_submission_order_determinism_across_worker_counts():
    jobs = litmus_jobs() + [
        Job("selftest", {"mode": "ok", "echo": i}) for i in range(5)
    ]
    baseline = run_campaign(jobs, parallel=0)
    for parallel in (1, 2, 8):
        pooled = run_campaign(jobs, parallel=parallel)
        assert pooled.results() == baseline.results(), f"parallel={parallel}"
    # forcing a degenerate chunk shape must not change anything either
    for chunk_cost in (1e-9, 1e9):
        chunked = run_campaign(jobs, parallel=2, chunk_cost=chunk_cost)
        assert chunked.results() == baseline.results()


def test_persistent_and_fork_per_job_pools_agree(tmp_path):
    jobs = chaos_jobs(**SMALL)
    persistent = run_campaign(jobs, parallel=2,
                              cache=ResultCache(tmp_path / "a"))
    legacy = run_campaign(jobs, parallel=2, fork_per_job=True,
                          cache=ResultCache(tmp_path / "b"))
    assert persistent.results() == legacy.results()
    assert persistent.ok and legacy.ok


# ------------------------------------------------- fingerprints + batched cache
def test_process_fingerprint_is_installable():
    import repro.campaign.cache as cache_mod

    saved = cache_mod._process_fingerprint
    try:
        set_process_fingerprint("deadbeef")
        assert code_fingerprint() == "deadbeef"
    finally:
        cache_mod._process_fingerprint = saved


def test_put_many_batches_one_manifest_append(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="fp")
    jobs = [Job("selftest", {"mode": "ok", "echo": i}) for i in range(3)]
    cache.put_many([
        (jobs[0], STATUS_OK, {"echo": 0}),
        (jobs[1], STATUS_ERROR, "boom"),     # never persisted
        (jobs[2], STATUS_OK, {"echo": 2}),
    ])
    assert len(cache) == 2
    assert [e["status"] for e in cache.manifest()] == ["ok", "ok"]
    assert cache.get(jobs[0]) == {"echo": 0}
    assert cache.get(jobs[1]) is None
    assert cache.get(jobs[2]) == {"echo": 2}
