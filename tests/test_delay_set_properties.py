"""Property-based tests for the Shasha-Snir delay-set analysis.

Seeded random small thread programs are cross-checked against an
independent brute-force cycle enumerator written here from first
principles (plain-dict DFS, no networkx): the delay pairs the library
derives must be exactly the same-thread program edges of the critical
cycles the brute force finds.  On top of the cross-check, structural
properties that must hold for *every* program: pairs are adjacent
program-order pairs, ``fence_points`` covers exactly the first half of
every pair, private-variable programs have no pairs at all, and the
whole pipeline is deterministic.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.delay_set import (
    conflict_graph,
    delay_pairs,
    fence_points,
)

MAX_CYCLE_LEN = 8
SEEDS = range(24)


def _random_threads(seed: int):
    """A small random program: 2-3 threads, 2-4 accesses, 2-3 vars."""
    rng = random.Random(f"delay-set-prop:{seed}")
    n_threads = rng.randint(2, 3)
    n_vars = rng.randint(2, 3)
    variables = ["x", "y", "z"][:n_vars]
    return [
        [(rng.choice(variables), rng.choice("rw"))
         for _ in range(rng.randint(2, 4))]
        for _ in range(n_threads)
    ]


# ------------------------------------------------ independent brute force
def _brute_edges(threads):
    """The mixed graph as adjacency dicts, built without the library."""
    nodes = {}
    for t, ops in enumerate(threads):
        for i, (var, mode) in enumerate(ops):
            nodes[(t, i)] = (t, var, mode == "w")
    adj: dict[tuple, set] = {n: set() for n in nodes}
    for t, ops in enumerate(threads):
        for i in range(len(ops) - 1):
            adj[(t, i)].add((t, i + 1))
    for a, (ta, va, wa) in nodes.items():
        for b, (tb, vb, wb) in nodes.items():
            if ta != tb and va == vb and (wa or wb):
                adj[a].add(b)
                adj[b].add(a)
    return nodes, adj


def _brute_cycles(threads):
    """Every directed simple cycle, each exactly once (canonical start).

    Classic smallest-start DFS: a cycle is discovered only from its
    minimum node, and the walk never descends below that node, so each
    rotation class is emitted once.
    """
    nodes, adj = _brute_edges(threads)
    order = sorted(nodes)
    cycles = []

    def walk(start, node, path, on_path):
        for nxt in adj[node]:
            if nxt == start and len(path) >= 2:
                cycles.append(list(path))
            elif nxt > start and nxt not in on_path:
                path.append(nxt)
                on_path.add(nxt)
                walk(start, nxt, path, on_path)
                on_path.remove(nxt)
                path.pop()

    for start in order:
        walk(start, start, [start], {start})
    return cycles


def _brute_is_critical(cycle, nodes):
    """<= 2 accesses per thread and same-thread accesses adjacent."""
    per_thread: dict[int, list[int]] = {}
    for pos, node in enumerate(cycle):
        per_thread.setdefault(nodes[node][0], []).append(pos)
    n = len(cycle)
    for positions in per_thread.values():
        if len(positions) > 2:
            return False
        if len(positions) == 2:
            a, b = positions
            if not (b - a == 1 or (a == 0 and b == n - 1)):
                return False
    return True


def _brute_delay_pairs(threads, max_cycle_len=MAX_CYCLE_LEN):
    nodes, _ = _brute_edges(threads)
    pairs = set()
    for cycle in _brute_cycles(threads):
        if len(cycle) > max_cycle_len:
            continue
        if not _brute_is_critical(cycle, nodes):
            continue
        n = len(cycle)
        for pos, node in enumerate(cycle):
            nxt = cycle[(pos + 1) % n]
            if nodes[node][0] == nodes[nxt][0]:
                pairs.add((min(node, nxt), max(node, nxt)))
    return pairs


# ----------------------------------------------------------- cross-check
@pytest.mark.parametrize("seed", SEEDS)
def test_delay_pairs_match_brute_force(seed):
    threads = _random_threads(seed)
    assert delay_pairs(threads) == _brute_delay_pairs(threads), (
        f"library and brute-force delay sets diverge for {threads!r}")


@pytest.mark.parametrize("seed", SEEDS)
def test_pairs_are_adjacent_program_order_pairs(seed):
    threads = _random_threads(seed)
    for (t1, i), (t2, j) in delay_pairs(threads):
        assert t1 == t2, "a delay pair never spans threads"
        assert j == i + 1, (
            "critical-cycle program edges connect adjacent accesses, so "
            "every pair is (i, i+1)")
        assert 0 <= i < len(threads[t1]) - 1


@pytest.mark.parametrize("seed", SEEDS)
def test_fence_points_cover_exactly_the_pairs(seed):
    threads = _random_threads(seed)
    pairs = delay_pairs(threads)
    points = fence_points(threads)
    expected: dict[int, set[int]] = {}
    for (t, i), _ in pairs:
        expected.setdefault(t, set()).add(i)
    assert points == expected, (
        "fence_points must place one fence between each delay pair and "
        "nothing else")


@pytest.mark.parametrize("seed", SEEDS)
def test_conflict_edges_are_bidirectional(seed):
    g = conflict_graph(_random_threads(seed))
    for u, v, data in g.edges(data=True):
        if data["kind"] == "conflict":
            assert g.has_edge(v, u) and g[v][u]["kind"] == "conflict"


@pytest.mark.parametrize("seed", SEEDS)
def test_analysis_is_deterministic(seed):
    threads = _random_threads(seed)
    assert delay_pairs(threads) == delay_pairs(threads)
    assert fence_points(threads) == fence_points(threads)


# ----------------------------------------------------- directed properties
def test_private_variables_yield_no_pairs():
    """Threads touching disjoint variables can never form a cycle."""
    threads = [[("x", "w"), ("x", "r")], [("y", "w"), ("y", "r")]]
    assert delay_pairs(threads) == set()
    assert fence_points(threads) == {}


def test_store_buffering_needs_both_fences():
    """The SB shape: both threads' (w, r) pairs are delays."""
    threads = [[("x", "w"), ("y", "r")], [("y", "w"), ("x", "r")]]
    assert delay_pairs(threads) == {
        ((0, 0), (0, 1)), ((1, 0), (1, 1))}
    assert fence_points(threads) == {0: {0}, 1: {0}}


def test_read_only_sharing_yields_no_pairs():
    """Conflicts require at least one writer."""
    threads = [[("x", "r"), ("y", "r")], [("y", "r"), ("x", "r")]]
    assert delay_pairs(threads) == set()
