"""Unit tests for the Fence Scope Stack."""

import pytest

from repro.core.fss import ScopeStack


def test_push_pop_top():
    s = ScopeStack(4)
    s.push(2)
    s.push(1)
    assert s.top() == 1
    assert s.pop() == 1
    assert s.top() == 2
    assert len(s) == 1


def test_capacity_enforced():
    s = ScopeStack(2)
    s.push(0)
    s.push(1)
    assert s.full
    with pytest.raises(OverflowError):
        s.push(2)


def test_empty_errors():
    s = ScopeStack(2)
    with pytest.raises(IndexError):
        s.pop()
    with pytest.raises(IndexError):
        s.top()


def test_mask_is_union_of_entries():
    s = ScopeStack(4)
    s.push(0)
    s.push(2)
    assert s.mask() == 0b101
    s.push(0)  # duplicates collapse in the mask
    assert s.mask() == 0b101


def test_contains():
    s = ScopeStack(4)
    s.push(3)
    assert s.contains(3)
    assert not s.contains(1)


def test_restore_from_shadow():
    fss = ScopeStack(4)
    shadow = ScopeStack(4)
    shadow.push(1)
    shadow.push(2)
    fss.push(0)
    fss.restore_from(shadow)
    assert fss.items() == (1, 2)
    # the shadow is untouched and independent afterwards
    fss.pop()
    assert shadow.items() == (1, 2)


def test_items_bottom_to_top():
    s = ScopeStack(4)
    for e in (3, 1, 2):
        s.push(e)
    assert s.items() == (3, 1, 2)


def test_clear():
    s = ScopeStack(2)
    s.push(0)
    s.clear()
    assert s.empty


def test_invalid_capacity():
    with pytest.raises(ValueError):
        ScopeStack(0)
