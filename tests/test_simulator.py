"""Multicore simulator loop tests: warping, determinism, diagnostics."""

import pytest

from repro.isa.instructions import Compute, Fence, FenceKind, Load, Store
from repro.isa.program import Program, ops_program
from repro.sim.config import SimConfig
from repro.sim.simulator import CycleLimitError, Simulator, run_program


def test_more_threads_than_cores_rejected():
    prog = ops_program([[], [], []])
    with pytest.raises(ValueError):
        Simulator(SimConfig(n_cores=2), prog)


def test_idle_cores_allowed():
    prog = ops_program([[Compute(5)]])
    res = run_program(prog, SimConfig(n_cores=8))
    assert res.cycles >= 5
    assert res.stats.cores[1].instructions == 0


def test_cycle_limit():
    prog = ops_program([[Compute(10_000)]])
    with pytest.raises(CycleLimitError):
        run_program(prog, SimConfig(n_cores=1), max_cycles=100)


def test_cycle_limit_carries_diagnostic():
    prog = ops_program([[Compute(10_000)], [Compute(1)]])
    with pytest.raises(CycleLimitError) as exc_info:
        run_program(prog, SimConfig(n_cores=2), max_cycles=100)
    diag = exc_info.value.diagnostic
    assert diag is not None
    assert diag.reason == "cycle-limit" and diag.cycle == 100
    assert len(diag.cores) == 2
    assert [c.core_id for c in diag.running_cores] == [0]
    # the post-mortem is part of the exception text
    assert "cycle-limit" in str(exc_info.value)
    assert "core 0" in str(exc_info.value)


def test_diagnostic_includes_retire_log_when_enabled():
    ops = [Store(100, 1), Load(100), Compute(10_000)]
    with pytest.raises(CycleLimitError) as exc_info:
        run_program(ops_program([ops]),
                    SimConfig(n_cores=1, retire_log_len=4), max_cycles=500)
    snap = exc_info.value.diagnostic.cores[0]
    kinds = [kind for _, kind, _ in snap.last_retired]
    assert "store" in kinds and "load" in kinds
    assert "last retired" in exc_info.value.diagnostic.render()


def test_retire_log_disabled_by_default():
    prog = ops_program([[Compute(10_000)]])
    with pytest.raises(CycleLimitError) as exc_info:
        run_program(prog, SimConfig(n_cores=1), max_cycles=100)
    assert exc_info.value.diagnostic.cores[0].last_retired == ()


def test_total_cycles_is_max_over_cores():
    prog = ops_program([[Compute(50)], [Compute(500)]])
    res = run_program(prog, SimConfig(n_cores=2))
    assert res.stats.cores[1].cycles > res.stats.cores[0].cycles
    assert res.cycles == res.stats.cores[1].cycles
    assert res.cycles >= 500


def test_determinism():
    def make():
        def t0(tid):
            for i in range(10):
                yield Store(100 + i, i)
                v = yield Load(100 + i)
                yield Compute(3)

        def t1(tid):
            for i in range(10):
                v = yield Load(100 + i)
                yield Store(200 + i, v)

        return Program([t0, t1])

    r1 = run_program(make(), SimConfig(n_cores=2))
    r2 = run_program(make(), SimConfig(n_cores=2))
    assert r1.cycles == r2.cycles
    assert r1.stats.summary() == r2.stats.summary()


def test_warp_preserves_fence_stall_accounting():
    """A 300-cycle stall behind a traditional fence must be charged to
    fence_stall_cycles even though the simulator warps over the idle
    cycles."""
    ops = [Store(4096, 1), Fence(FenceKind.GLOBAL), Load(100)]
    res = run_program(ops_program([ops]), SimConfig(n_cores=1))
    core = res.stats.cores[0]
    assert core.fence_stall_cycles >= 250
    # stalls can never exceed total cycles
    assert core.fence_stall_cycles <= res.cycles


def test_spin_loop_makes_progress_across_cores():
    done = {}

    def writer(tid):
        yield Compute(200)
        yield Store(100, 1)

    def spinner(tid):
        while True:
            v = yield Load(100)
            if v:
                done["seen"] = True
                return

    res = run_program(Program([writer, spinner]), SimConfig(n_cores=2))
    assert done.get("seen")
    assert res.cycles >= 200


def test_memory_shared_between_cores():
    def producer(tid):
        yield Store(100, 42)

    def consumer(tid):
        while True:
            v = yield Load(100)
            if v == 42:
                return

    res = run_program(Program([producer, consumer]), SimConfig(n_cores=2))
    assert res.memory.read_global(100) == 42


def test_run_program_config_overrides():
    res = run_program(ops_program([[Compute(1)]]), n_cores=1, rob_size=64)
    assert res.stats.instructions == 1
