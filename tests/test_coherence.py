"""Unit tests for the directory coherence bookkeeping."""

from repro.mem.coherence import Directory


def test_read_adds_sharer():
    d = Directory()
    assert d.on_read(0, 5) is None
    assert d.sharers(5) == {0}
    assert d.dirty_owner(5) is None


def test_write_claims_exclusive_and_invalidates():
    d = Directory()
    d.on_read(0, 5)
    d.on_read(1, 5)
    victims = d.on_write(2, 5)
    assert victims == {0, 1}
    assert d.sharers(5) == {2}
    assert d.dirty_owner(5) == 2


def test_write_by_owner_invalidates_nobody():
    d = Directory()
    d.on_write(0, 5)
    assert d.on_write(0, 5) == set()


def test_read_after_dirty_downgrades_owner():
    d = Directory()
    d.on_write(0, 5)
    supplier = d.on_read(1, 5)
    assert supplier == 0
    assert d.dirty_owner(5) is None
    assert d.sharers(5) == {0, 1}


def test_owner_rereads_own_dirty_line():
    d = Directory()
    d.on_write(0, 5)
    assert d.on_read(0, 5) is None
    assert d.dirty_owner(5) == 0


def test_eviction_clears_state():
    d = Directory()
    d.on_write(0, 5)
    d.on_l1_evict(0, 5)
    assert d.sharers(5) == set()
    assert d.dirty_owner(5) is None


def test_eviction_of_one_sharer_keeps_others():
    d = Directory()
    d.on_read(0, 5)
    d.on_read(1, 5)
    d.on_l1_evict(0, 5)
    assert d.sharers(5) == {1}


def test_eviction_of_unknown_line_is_noop():
    d = Directory()
    d.on_l1_evict(0, 99)
    assert d.sharers(99) == set()
