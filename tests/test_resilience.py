"""Resilience layer: retry policy, degradation ladder, serial fallback,
and the faulted-vs-fault-free differential proof."""

from __future__ import annotations

import pytest

from repro.campaign import (
    DegradationLadder,
    Job,
    NO_RETRY,
    RetryPolicy,
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    TRANSIENT_STATUSES,
    run_campaign,
)
from repro.campaign.resilience import run_resilience_differential

FAST_RETRY = RetryPolicy(retries=2, backoff_base=0.01, backoff_cap=0.05)


def ok_jobs(n, base=0):
    return [Job("selftest", {"mode": "ok", "echo": base + i}) for i in range(n)]


# ---------------------------------------------------------------- RetryPolicy
def test_retry_policy_classification():
    policy = RetryPolicy(retries=3)
    for status in TRANSIENT_STATUSES:
        assert policy.retries_for(status) == 3
    assert policy.retries_for(STATUS_ERROR) == 0  # deterministic: never
    assert policy.retries_for(STATUS_OK) == 0
    assert NO_RETRY.retries_for(STATUS_CRASH) == 0


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(backoff_base=0.1, backoff_mult=2.0, backoff_cap=0.5,
                         backoff_jitter=0.0)
    delays = [policy.delay(0, attempt) for attempt in range(5)]
    assert delays[0] == pytest.approx(0.1)
    assert delays[1] == pytest.approx(0.2)
    assert delays[2] == pytest.approx(0.4)
    assert delays[3] == delays[4] == pytest.approx(0.5)  # capped


def test_retry_policy_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(backoff_base=0.1, backoff_jitter=0.25, seed=5)
    assert policy.delay(3, 0) == policy.delay(3, 0)  # same key, same delay
    assert policy.delay(3, 0) != policy.delay(4, 0)  # per-job streams
    assert RetryPolicy(seed=6).delay(3, 0) != policy.delay(3, 0)
    for index in range(20):
        d = policy.delay(index, 0)
        assert 0.1 <= d <= 0.1 * 1.25


# ---------------------------------------------------------- DegradationLadder
def test_ladder_halves_then_goes_serial():
    ladder = DegradationLadder(target=8, storm_deaths=3)
    events = [ladder.record_death(i) for i in range(9)]
    fired = [e for e in events if e is not None]
    assert [e["kind"] for e in fired] == ["downgrade", "downgrade",
                                         "serial-fallback"]
    assert [(e["from"], e["to"]) for e in fired] == [(8, 4), (4, 2), (2, 0)]
    assert [e["deaths"] for e in fired] == [3, 6, 9]
    assert ladder.serial
    assert ladder.events == fired
    # once serial, further deaths are absorbed silently
    assert ladder.record_death(99) is None


def test_ladder_small_pool_goes_serial_directly():
    ladder = DegradationLadder(target=2, storm_deaths=2)
    assert ladder.record_death(0) is None
    event = ladder.record_death(1)
    assert event["kind"] == "serial-fallback" and ladder.serial


def test_disabled_ladder_never_descends():
    ladder = DegradationLadder(target=4, storm_deaths=1, enabled=False)
    for i in range(10):
        assert ladder.record_death(i) is None
    assert ladder.target == 4 and not ladder.serial and ladder.events == []


# ------------------------------------------------------------- retry recovery
def test_crash_once_job_recovers_with_attempt_history(tmp_path):
    jobs = ok_jobs(2) + [
        Job("selftest", {"mode": "crash-once", "marker": str(tmp_path / "m")}),
    ] + ok_jobs(2, base=2)
    campaign = run_campaign(jobs, parallel=2, retry=FAST_RETRY)
    assert campaign.ok
    flaky = campaign.outcomes[2]
    assert flaky.status == STATUS_OK
    assert flaky.attempts == (STATUS_CRASH,)
    assert flaky.attempt_count == 2
    assert campaign.retried == 1
    assert campaign.recovered == [flaky]
    # the clean jobs carry no attempt history
    assert all(o.attempts == () for o in campaign.outcomes if o is not flaky)


def test_hang_once_job_recovers_after_timeout_kill(tmp_path):
    jobs = ok_jobs(2) + [
        Job("selftest", {"mode": "hang-once", "marker": str(tmp_path / "m")}),
    ]
    campaign = run_campaign(jobs, parallel=2, job_timeout=1.0,
                            retry=FAST_RETRY)
    assert campaign.ok
    assert campaign.outcomes[2].attempts == (STATUS_TIMEOUT,)


def test_deterministic_error_is_never_retried():
    jobs = [Job("selftest", {"mode": "error"})] + ok_jobs(2)
    campaign = run_campaign(jobs, parallel=2, retry=FAST_RETRY)
    bad = campaign.outcomes[0]
    assert bad.status == STATUS_ERROR
    assert bad.attempts == ()        # one attempt, zero retries
    assert campaign.retried == 0


def test_exhausted_retries_record_full_history():
    jobs = [Job("selftest", {"mode": "crash"})] + ok_jobs(2)
    campaign = run_campaign(jobs, parallel=2,
                            retry=RetryPolicy(retries=2, backoff_base=0.01))
    bad = campaign.outcomes[0]
    assert bad.status == STATUS_CRASH
    assert bad.attempts == (STATUS_CRASH, STATUS_CRASH)
    assert bad.attempt_count == 3    # 1 attempt + 2 retries, all crashed
    assert len(campaign.failures) == 1


def test_retry_events_are_reported():
    events = []
    jobs = [Job("selftest", {"mode": "crash"})] + ok_jobs(2)
    run_campaign(jobs, parallel=2,
                 retry=RetryPolicy(retries=1, backoff_base=0.01),
                 on_event=lambda kind, msg: events.append((kind, msg)))
    retries = [msg for kind, msg in events if kind == "retry"]
    assert len(retries) == 1
    assert "worker-crash" in retries[0] and "retry 1/1" in retries[0]


def test_fork_per_job_pool_retries_too(tmp_path):
    jobs = ok_jobs(1) + [
        Job("selftest", {"mode": "crash-once", "marker": str(tmp_path / "m")}),
    ]
    campaign = run_campaign(jobs, parallel=2, fork_per_job=True,
                            retry=FAST_RETRY)
    assert campaign.ok
    assert campaign.outcomes[1].attempts == (STATUS_CRASH,)


# ------------------------------------------------------------ serial fallback
def test_respawn_storm_falls_back_to_serial():
    """With a hair-trigger ladder, one death abandons the pool and the
    rest of the sweep still completes (serially, in-process)."""
    jobs = [Job("selftest", {"mode": "crash"})] + ok_jobs(6)
    ladder = DegradationLadder(target=2, storm_deaths=1)
    events = []
    campaign = run_campaign(jobs, parallel=2, retry=NO_RETRY, ladder=ladder,
                            chunk_cost=1e-9,
                            on_event=lambda kind, msg: events.append(kind))
    assert ladder.serial
    assert [e["kind"] for e in campaign.downgrades] == ["serial-fallback"]
    assert campaign.outcomes[0].status == STATUS_CRASH
    assert all(o.status == STATUS_OK for o in campaign.outcomes[1:])
    assert "downgrade" in events and "serial-fallback" in events


def test_serial_fallback_isolates_jobs_with_transient_history(tmp_path):
    """A job that already took a worker down re-runs in a fresh isolated
    process during serial fallback -- and still recovers."""
    jobs = [
        Job("selftest", {"mode": "crash-once", "marker": str(tmp_path / "m")}),
    ] + ok_jobs(5)
    ladder = DegradationLadder(target=2, storm_deaths=1)
    campaign = run_campaign(jobs, parallel=2, retry=FAST_RETRY, ladder=ladder,
                            chunk_cost=1e-9)
    assert campaign.ok
    assert ladder.serial
    assert campaign.outcomes[0].attempts == (STATUS_CRASH,)


def test_serial_fallback_survives_a_permanently_crashing_job():
    """Even at the last rung, a crash-on-every-attempt job must not take
    the campaign driver's own process down."""
    jobs = [Job("selftest", {"mode": "crash"})] + ok_jobs(4)
    ladder = DegradationLadder(target=2, storm_deaths=1)
    campaign = run_campaign(jobs, parallel=2, chunk_cost=1e-9, ladder=ladder,
                            retry=RetryPolicy(retries=1, backoff_base=0.01))
    assert ladder.serial
    assert campaign.outcomes[0].status == STATUS_CRASH
    assert all(o.status == STATUS_OK for o in campaign.outcomes[1:])


def test_pool_width_respects_downgraded_target():
    """After a downgrade event the pool never respawns past the new
    target -- the ladder's word is binding, not advisory."""
    ladder = DegradationLadder(target=4, storm_deaths=2)
    jobs = [Job("selftest", {"mode": "crash"}),
            Job("selftest", {"mode": "crash"})] + ok_jobs(8)
    campaign = run_campaign(jobs, parallel=4, retry=NO_RETRY, ladder=ladder,
                            chunk_cost=1e-9)
    assert [e["kind"] for e in campaign.downgrades] == ["downgrade"]
    assert ladder.target == 2 and not ladder.serial
    assert all(o.status == STATUS_OK for o in campaign.outcomes[2:])


# -------------------------------------------------------- differential proof
def test_resilience_differential_converges(tmp_path):
    """The tentpole property: a sweep under scripted infrastructure
    faults (worker kills, a poisoned chunk, a stall, cache sabotage)
    converges to the byte-identical outcome fingerprint of the
    fault-free sweep -- and the recovery is visible, not vacuous."""
    jobs = ok_jobs(12)
    report = run_resilience_differential(seed=11, parallel=2, jobs=jobs)
    assert report["ok"], report
    prints = {e["fingerprint"] for e in report["phases"].values()}
    assert len(prints) == 1
    faulted = report["phases"]["faulted"]
    assert faulted["retried"] > 0 and faulted["failures"] == 0
    recovery = report["phases"]["recovery"]
    assert recovery["quarantined"] >= 2     # corrupt + truncated blob
    assert recovery["manifest_repair"]["dropped_lines"] >= 1
    assert recovery["cached"] > 0           # surviving blobs were reused
