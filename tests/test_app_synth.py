"""Whole-program synthesis: the committed report, re-proven and policed.

Three layers of defence around ``app-synth-report.json``:

* **differential re-proof** -- the committed report must cover the full
  app corpus and satisfy the acceptance bar (sound by the designated
  oracle, no more fences than hand-written, 100% mutation kill), and
  its static claims (cycle counts, patterns, the synthesized assignment
  passing the delay-pair floor) are re-derived here from the recordings
  with **zero simulator runs**, so a stale or hand-edited report fails
  fast;
* **warm-cache regression** -- a smoke campaign served entirely from
  cache reassembles the report byte-identically with zero executions;
* **live oracle spot-checks** -- the anti-vacuity battery really kills
  a deleted fence, and a guest crash is classified as kill evidence
  rather than a harness fault.

Regenerate the committed report with ``python -m repro synth --apps``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import ResultCache, app_synth_jobs, run_campaign
from repro.chaos.supervisor import FailureKind, run_supervised
from repro.synth.programs import (
    _static_floor_holds,
    analyze_app,
    app_entry,
    app_names,
    run_mutation_battery,
    weaken_slots,
)
from repro.synth.report import assemble_app_synth_report, write_app_synth_report

REPORT = Path(__file__).resolve().parents[1] / "app-synth-report.json"


@pytest.fixture(scope="module")
def report() -> dict:
    assert REPORT.exists(), (
        "app-synth-report.json is missing -- regenerate it with "
        "`python -m repro synth --apps`")
    return json.loads(REPORT.read_text())


@pytest.fixture(scope="module")
def analyses() -> dict:
    """Static delay-set analysis per app, shared across re-proof tests."""
    return {name: analyze_app(app_entry(name)) for name in app_names()}


# -------------------------------------------------------- the acceptance bar
def test_report_covers_the_full_corpus(report):
    assert sorted(report["cases"]) == sorted(app_names())
    assert len(report["cases"]) >= 5
    assert report["smoke"] is False, "the committed report must be a full run"
    assert report["ok"] is True
    assert report["engine_failures"] == []
    assert report["rejections"] == []


def test_every_placement_is_proven_sound(report):
    for name, case in report["cases"].items():
        s = case["soundness"]
        assert case["ok"] is True, f"{name}: case rejected"
        assert s["sound"] is True, f"{name}: soundness not established"
        assert s["hand"]["ok"] and s["hand"]["failures"] == [], (
            f"{name}: the hand-written placement failed its own oracle")
        assert s["synthesized"]["ok"] and s["synthesized"]["failures"] == [], (
            f"{name}: the synthesized placement failed the oracle")
        assert s["hand"]["runs"] > 0 and s["synthesized"]["runs"] > 0
        assert s["confidence"] >= 0.9, (
            f"{name}: rejection-sampling confidence {s['confidence']} "
            f"below the reporting bar")


def test_synthesis_never_adds_fences(report):
    for name, case in report["cases"].items():
        assert case["fences"]["synthesized"] <= case["fences"]["hand"], (
            f"{name}: synthesized more fences than the hand placement")
    assert report["totals"]["synth_fences"] <= report["totals"]["hand_fences"]


def test_mutation_battery_kills_every_mutant(report):
    """The anti-vacuity bar: a 100% kill rate, app by app."""
    for name, case in report["cases"].items():
        battery = case["mutation"]["battery"]
        assert battery, f"{name}: empty mutation battery proves nothing"
        survivors = [key for key, m in battery.items() if not m["killed"]]
        assert not survivors, f"{name}: battery survivors {survivors}"
        assert case["mutation"]["kill_rate"] == 1.0
        for key, m in battery.items():
            assert m["evidence"] or m.get("kernel_admit"), (
                f"{name}/{key}: a kill with no named counterexample")


def test_totals_are_consistent_with_the_cases(report):
    cases = report["cases"].values()
    assert report["totals"] == {
        "hand_fences": sum(c["fences"]["hand"] for c in cases),
        "synth_fences": sum(c["fences"]["synthesized"] for c in cases),
        "mutants": sum(c["mutation"]["mutants"] for c in cases),
        "killed": sum(c["mutation"]["killed"] for c in cases),
        "oracle_runs": sum(
            c["soundness"]["hand"]["runs"] + c["soundness"]["synthesized"]["runs"]
            for c in cases),
    }


def test_monitor_spec_is_calibrated_subset(report):
    """monitored + calibrated_out partitions the candidate pattern set."""
    for name, case in report["cases"].items():
        mon = case["monitor"]
        assert mon["monitored"] + len(mon["calibrated_out"]) == mon["candidates"]
        candidates = {tuple(p) for p in case["analysis"]["hand_enforced"]}
        assert {tuple(p) for p in mon["calibrated_out"]} <= candidates


# -------------------------------------------- zero-simulation static re-proof
def test_static_analysis_reproduces_the_committed_numbers(report, analyses):
    """Replay the recordings; the committed analysis section must match."""
    for name, case in report["cases"].items():
        analysis = analyses[name]
        committed = case["analysis"]
        assert committed["critical_cycles"] == len(analysis.cycles), name
        assert committed["delay_pairs"] == len(analysis.pairs), name
        assert committed["components"] == analysis.components, name
        assert {tuple(p) for p in committed["patterns"]} == analysis.patterns, name
        assert ({tuple(p) for p in committed["hand_enforced"]}
                == analysis.hand_enforced), name


def test_committed_assignment_passes_the_delay_pair_floor(report, analyses):
    """Re-prove every committed placement against the static floor.

    This runs the whole soundness argument short of the chaos oracle --
    recording replay, Shasha-Snir analysis, floor check -- without a
    single Simulator run, so it is cheap enough to gate every CI push.
    """
    for name, case in report["cases"].items():
        analysis = analyses[name]
        assignment = case["synthesized"]
        assert set(assignment) == set(analysis.slots), (
            f"{name}: committed assignment names unknown slots")
        assert _static_floor_holds(analysis, assignment), (
            f"{name}: the committed placement no longer enforces "
            f"everything the hand placement enforces -- regenerate the "
            f"report")
        synth_count = sum(1 for m in assignment.values() if m != "none")
        assert case["fences"]["synthesized"] == synth_count, name


def test_static_weakening_floor_matches_or_undershoots(report, analyses):
    """The pure static floor never uses more fences than the committed
    placement (kernels can only strengthen it, never thin it)."""
    for name, case in report["cases"].items():
        entry = app_entry(name)
        floor = weaken_slots(entry, analyses[name])
        assert _static_floor_holds(analyses[name], floor), name
        floor_count = sum(1 for m in floor.values() if m != "none")
        assert floor_count <= case["fences"]["synthesized"], name


# ------------------------------------------------------ warm-cache regression
def test_warm_app_synth_rerun_executes_zero_simulations(tmp_path):
    """A warm re-run serves the app job from cache, byte-identical."""
    jobs = app_synth_jobs(names=["chase-lev"], smoke=True)
    cold = run_campaign(jobs, parallel=0, cache=ResultCache(tmp_path))
    assert (cold.executed, cold.cached) == (len(jobs), 0)
    warm = run_campaign(jobs, parallel=0, cache=ResultCache(tmp_path))
    assert (warm.executed, warm.cached) == (0, len(jobs))
    assert all(o.cached for o in warm.outcomes)
    assert (json.dumps(warm.results(), sort_keys=True)
            == json.dumps(cold.results(), sort_keys=True))
    # the smoke payload still clears the acceptance bar
    payload = warm.results()[0]
    assert payload["ok"] is True
    assert all(m["killed"] for m in payload["mutation"]["battery"].values())


def test_warm_rerun_report_is_byte_identical(tmp_path):
    jobs = app_synth_jobs(names=["chase-lev"], smoke=True)
    paths = []
    for i in range(2):
        result = run_campaign(jobs, parallel=0,
                              cache=ResultCache(tmp_path / "cache"))
        rep = assemble_app_synth_report(result.outcomes, smoke=True)
        path = tmp_path / f"report{i}.json"
        write_app_synth_report(rep, str(path))
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_app_synth_jobs_validate_inputs():
    with pytest.raises(KeyError, match="unknown app synth target"):
        app_synth_jobs(names=["nope"])
    with pytest.raises(KeyError, match="unknown scenario"):
        app_synth_jobs(names=["chase-lev"], scenarios=["mega"])


# ------------------------------------------------------ live oracle behaviour
def test_battery_really_kills_a_deleted_fence(analyses):
    """One live anti-vacuity cell: deleting chase-lev's publish fence
    must trip the chaos oracle (the committed report says the monitor
    needed no calibration for this app, so the raw hand-enforced set is
    the spec)."""
    entry = app_entry("chase-lev")
    analysis = analyses["chase-lev"]
    battery = run_mutation_battery(
        entry, analysis, analysis.hand_enforced, ("drain",), (0,))
    assert battery, "no live slots -- the battery is vacuous"
    for key, mutant in battery.items():
        assert mutant["killed"], (
            f"{key} survived: the chaos oracle cannot see the fence "
            f"it is policing")


def test_guest_crash_is_classified_not_propagated():
    """A fence-broken guest raising mid-run is kill evidence, not a
    harness fault: the supervisor classifies it instead of crashing."""
    class _Boom:
        def run(self, max_cycles):
            raise ValueError("stolen garbage value indexed the table")

    outcome = run_supervised(lambda: _Boom(), raise_on_failure=False)
    assert not outcome.ok
    assert outcome.failure.kind is FailureKind.GUEST
    assert "guest program raised ValueError" in str(outcome.failure)
    assert [a.outcome for a in outcome.attempts] == ["guest-crash"]
