"""Tests for the executable Figure 5 semantics (AbstractScopeMachine)."""

import pytest

from repro.core.semantics import AbstractScopeMachine


def test_scopeent_scopeex():
    m = AbstractScopeMachine()
    m.enter_method(1)
    m.enter_method(2)
    assert m.fseq == [1, 2]
    m.exit_method(2)
    assert m.fseq == [1]


def test_exit_must_match_top():
    m = AbstractScopeMachine()
    m.enter_method(1)
    with pytest.raises(ValueError):
        m.exit_method(2)


def test_memop_added_to_all_scopes_in_fseq():
    m = AbstractScopeMachine()
    m.enter_method(1)
    m.enter_method(2)
    op = m.mem_op()
    assert op in m.pending_in(1)
    assert op in m.pending_in(2)


def test_memop_outside_scopes():
    m = AbstractScopeMachine()
    op = m.mem_op()
    assert m.all_pending() == {op}
    assert m.scope == {}


def test_duplicate_cid_counts_once():
    """[[s]] is the *set* of methods: recursive calls add the op once."""
    m = AbstractScopeMachine()
    m.enter_method(1)
    m.enter_method(1)
    op = m.mem_op()
    assert m.pending_in(1) == {op}
    m.complete(op)
    assert m.pending_in(1) == set()


def test_fence_rule():
    m = AbstractScopeMachine()
    outside = m.mem_op()
    m.enter_method(1)
    assert m.fence_ready()  # Scope(C(f)) empty
    inside = m.mem_op()
    assert not m.fence_ready()
    assert m.fence_pending() == {inside}
    m.complete(inside)
    assert m.fence_ready()
    # the outside op never mattered for the scoped fence
    assert outside in m.all_pending()


def test_fence_outside_method_waits_for_everything():
    m = AbstractScopeMachine()
    op = m.mem_op()
    assert m.fence_pending() == {op}


def test_completion_removes_from_every_scope():
    m = AbstractScopeMachine()
    m.enter_method(1)
    m.enter_method(2)
    op = m.mem_op()
    m.exit_method(2)
    m.complete(op)
    assert m.pending_in(1) == set()
    assert m.pending_in(2) == set()
    assert m.all_pending() == set()


def test_scope_survives_method_exit_until_completion():
    """Ops stay in their scope after fs_end until the memory system
    completes them -- the reason the hardware keeps mappings alive."""
    m = AbstractScopeMachine()
    m.enter_method(1)
    op = m.mem_op()
    m.exit_method(1)
    assert m.pending_in(1) == {op}


def test_depth_and_multiplicity():
    m = AbstractScopeMachine()
    m.enter_method(1)
    m.mem_op()
    m.mem_op()
    assert m.depth() == 1
    assert m.scope_multiplicity()[1] == 2
