"""Fork-join Cilk-style fib on the work-stealing substrate."""

import pytest

from repro.apps.cilk_fib import build_cilk_fib, fib, fib_frames
from repro.isa.instructions import FenceKind
from repro.runtime.lang import Env
from repro.sim.config import MemoryModel, SimConfig


def run(n=9, scope=FenceKind.CLASS, n_threads=8, **cfg):
    env = Env(SimConfig(**cfg))
    inst = build_cilk_fib(env, n=n, scope=scope, n_threads=n_threads)
    res = env.run(inst.program, max_cycles=10_000_000)
    inst.check()
    return res, inst


def test_fib_helpers():
    assert [fib(i) for i in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]
    assert fib_frames(0) == 1 and fib_frames(2) == 3
    assert fib_frames(5) == 1 + fib_frames(4) + fib_frames(3)


@pytest.mark.parametrize("n", [0, 1, 2, 5, 9])
def test_computes_fib(n):
    run(n=n)


def test_single_thread():
    run(n=8, n_threads=1)


def test_two_threads_steal():
    res, inst = run(n=10, n_threads=2)
    assert res.stats.cores[1].instructions > 0  # thread 1 actually stole work


@pytest.mark.parametrize("scope", [FenceKind.GLOBAL, FenceKind.CLASS])
def test_correct_under_both_fence_flavours(scope):
    run(n=9, scope=scope)


def test_correct_with_speculation():
    run(n=9, in_window_speculation=True)


def test_correct_under_pso():
    run(n=9, memory_model=MemoryModel.PSO)


def test_fence_share_is_substantial():
    """The THE-protocol observation: with tiny per-task work, fences
    (deque + join protocol) eat a large share of the runtime."""
    res, _ = run(n=10, scope=FenceKind.GLOBAL)
    assert res.stats.fence_stall_fraction > 0.15


def test_scoped_fences_help():
    trad, _ = run(n=10, scope=FenceKind.GLOBAL)
    scoped, _ = run(n=10, scope=FenceKind.CLASS)
    assert scoped.stats.fence_stall_cycles <= trad.stats.fence_stall_cycles
