"""Property test: the hardware tracker against the Figure 5 semantics.

Random instruction streams drive the abstract machine (the paper's
operational semantics) and the hardware :class:`ScopeTracker` in
lockstep.  Soundness: whenever the hardware lets a class fence issue,
the abstract semantics must agree it may complete (the hardware is
allowed to be stricter -- FSB-entry sharing and overflow only ever add
ordering).  With ample hardware resources the two are exactly
equivalent.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.scope_tracker import ScopeTracker
from repro.core.semantics import AbstractScopeMachine
from repro.isa.instructions import FenceKind, WAIT_BOTH
from repro.sim.config import SimConfig

CIDS = [1, 2, 3, 4, 5]


class ScopeLockstep(RuleBasedStateMachine):
    """Drives both machines; subclasses pick the hardware sizing."""

    hw_config: SimConfig = SimConfig()
    exact: bool = True

    def __init__(self):
        super().__init__()
        self.hw = ScopeTracker(self.hw_config)
        self.abs = AbstractScopeMachine()
        self.open: list[int] = []           # cid stack
        self.pending: list[tuple[int, int, bool]] = []  # (abs op id, mask, is_load)

    @rule(cid=st.sampled_from(CIDS))
    def enter(self, cid):
        self.hw.fs_start(cid)
        self.abs.enter_method(cid)
        self.open.append(cid)

    @precondition(lambda self: self.open)
    @rule()
    def exit(self):
        cid = self.open.pop()
        self.hw.fs_end(cid)
        self.abs.exit_method(cid)

    @rule(is_load=st.booleans())
    def mem_op(self, is_load):
        mask = self.hw.dispatch_mem(is_load=is_load, flagged=False)
        op = self.abs.mem_op()
        self.pending.append((op, mask, is_load))

    @precondition(lambda self: self.pending)
    @rule(data=st.data())
    def complete(self, data):
        idx = data.draw(st.integers(0, len(self.pending) - 1))
        op, mask, is_load = self.pending.pop(idx)
        self.hw.complete_mem(mask, is_load=is_load)
        self.abs.complete(op)

    @invariant()
    def fence_soundness(self):
        hw_ready = self.hw.fence_ready(FenceKind.CLASS, WAIT_BOTH)
        abs_ready = self.abs.fence_ready()
        if hw_ready:
            assert abs_ready, (
                "hardware let a class fence issue while the abstract "
                f"semantics still has pending ops: {self.abs.fence_pending()}"
            )
        if self.exact and abs_ready:
            assert hw_ready, (
                "with ample resources the hardware must match the "
                "abstract semantics exactly"
            )

    @invariant()
    def global_fence_matches_all_pending(self):
        hw_ready = self.hw.fence_ready(FenceKind.GLOBAL, WAIT_BOTH)
        assert hw_ready == (not self.abs.all_pending())


class AmpleScopeLockstep(ScopeLockstep):
    """Enough FSB/FSS/mapping capacity that no sharing ever happens."""

    hw_config = SimConfig(
        fsb_entries=len(CIDS) + 1, fss_entries=32, mapping_entries=len(CIDS)
    )
    exact = True


class TinyScopeLockstep(ScopeLockstep):
    """Tiny hardware: sharing/overflow kick in; only soundness holds."""

    hw_config = SimConfig(fsb_entries=2, fss_entries=2, mapping_entries=1)
    exact = False


class TestAmpleResources(AmpleScopeLockstep.TestCase):
    settings = settings(max_examples=50, stateful_step_count=40)


class TestTinyResources(TinyScopeLockstep.TestCase):
    settings = settings(max_examples=50, stateful_step_count=40)
