"""Unit tests for the deterministic fault injectors."""

from repro.chaos.faults import ChaosEngine, FaultPlan
from repro.isa.instructions import Compute, Load, Store
from repro.isa.program import ops_program
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator


def _decisions(engine: ChaosEngine, n: int = 200):
    """A reproducible transcript of every injector's decision stream."""
    lat = [engine.mem_fault(0, 64 * i, i % 2 == 0, 300) for i in range(n)]
    br = [engine.force_mispredict(1, 0x100 + i) for i in range(n)]
    ovf = [engine.scope_overflow(2, i % 4) for i in range(n)]
    drain = [engine.drain_delay(3, i) for i in range(n)]
    return lat, br, ovf, drain


FULL_PLAN = FaultPlan(
    seed=11, mem_spike_prob=0.1, mem_spike_cycles=500, mem_jitter=5,
    branch_flip_prob=0.25, scope_overflow_prob=0.25,
    drain_stall_prob=0.25, drain_stall_cycles=40,
)


def test_same_seed_same_decisions():
    a = _decisions(ChaosEngine(FULL_PLAN))
    b = _decisions(ChaosEngine(FaultPlan(**FULL_PLAN.__dict__)))
    assert a == b


def test_different_seeds_differ():
    a = _decisions(ChaosEngine(FULL_PLAN))
    b = _decisions(ChaosEngine(FULL_PLAN.with_(seed=12)))
    assert a != b


def test_streams_are_independent_per_purpose_and_core():
    """Draining one stream must not perturb the others."""
    a = ChaosEngine(FULL_PLAN)
    b = ChaosEngine(FULL_PLAN)
    for i in range(500):  # consume a's mem stream heavily first
        a.mem_fault(0, i, False, 300)
    assert (
        [a.force_mispredict(1, i) for i in range(100)]
        == [b.force_mispredict(1, i) for i in range(100)]
    )


def test_mem_fault_only_adds_latency():
    engine = ChaosEngine(FULL_PLAN)
    for i in range(300):
        assert engine.mem_fault(0, i, False, 300) >= 300


def test_inactive_plan_injects_nothing():
    plan = FaultPlan(seed=3)
    assert not plan.active
    engine = ChaosEngine(plan)
    lat, br, ovf, drain = _decisions(engine)
    assert lat == [300] * len(lat)
    assert not any(br) and not any(ovf) and not any(drain)
    assert engine.total_injected == 0
    assert engine.summary() == {}


def test_counts_track_injections():
    engine = ChaosEngine(FULL_PLAN)
    _decisions(engine, n=400)
    counts = engine.summary()
    for key in ("mem_spike", "mem_jitter", "branch_flip", "scope_overflow",
                "drain_stall"):
        assert counts.get(key, 0) > 0, key
    assert engine.total_injected == sum(counts.values())


def test_install_wires_every_hook():
    prog = ops_program([[Store(64, 1), Load(64), Compute(3)]])
    sim = Simulator(SimConfig(n_cores=1), prog)
    engine = ChaosEngine(FULL_PLAN.with_(branch_flip_prob=0.0))
    assert engine.install(sim) is engine
    assert sim.hierarchy.fault == engine.mem_fault
    for core in sim.cores:
        assert core.chaos is engine
        assert core.tracker.chaos_overflow is not None
    # the hooked run still completes and the memory hook actually fired
    sim.run(max_cycles=1_000_000)
    assert engine.counts["mem_jitter"] + engine.counts["mem_spike"] >= 0


def test_hierarchy_fault_hook_changes_timing():
    def run_once(spike):
        prog = ops_program([[Store(4096 * i, 1) for i in range(6)]])
        sim = Simulator(SimConfig(n_cores=1), prog)
        if spike:
            ChaosEngine(FaultPlan(seed=1, mem_spike_prob=1.0,
                                  mem_spike_cycles=900)).install(sim)
        return sim.run(max_cycles=1_000_000).cycles

    assert run_once(spike=True) > run_once(spike=False)


# -------------------------------------------------- exact-cycle fault schedules
def test_scripted_spike_honoured_at_exact_cycle_under_fast_path():
    """A latency spike lands at precisely dispatch + base + extra.

    The event scheduler folds injected latency into the completion
    cycle it sleeps toward, so fault schedules are never stretched or
    quantised by clock jumps: the perturbed load completes at the same
    exact cycle the dense loop observes.
    """
    from repro.chaos.faults import ScriptedFault
    from repro.sim.trace import OrderEventLog

    target = 8192  # cold address -> deterministic L2-miss base latency
    extra = 123

    def run_once(dense):
        prog = ops_program([[Store(64, 1), Load(target), Compute(5)]])
        cfg = SimConfig(n_cores=1, dense_loop=dense)
        sim = Simulator(cfg, prog)
        scripted = ScriptedFault(target, extra)
        sim.hierarchy.fault = scripted.fault
        log = OrderEventLog()
        sim.cores[0].monitor = log
        sim.run(max_cycles=1_000_000)
        assert scripted.hits == [(0, False, cfg.mem_latency + extra)]
        dispatch = next(e for e in log.events
                        if e.kind == "mem_dispatch" and e.addr == target)
        complete = next(e for e in log.events
                        if e.kind == "mem_complete" and e.seq == dispatch.seq)
        assert complete.cycle == dispatch.cycle + cfg.mem_latency + extra
        return log.events

    assert run_once(dense=False) == run_once(dense=True)


def test_scripted_fault_from_nth_skips_early_accesses():
    from repro.chaos.faults import ScriptedFault

    scripted = ScriptedFault(64, 50, from_nth=2)
    assert scripted.fault(0, 64, False, 300) == 300
    assert scripted.fault(0, 128, False, 300) == 300  # other addr: not counted
    assert scripted.fault(0, 64, True, 300) == 300
    assert scripted.fault(0, 64, False, 300) == 350
    assert scripted.hits == [(0, False, 350)]
