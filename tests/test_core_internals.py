"""Edge-case tests of the core's internal mechanics."""

from repro.isa.instructions import Compute, Fence, FenceKind, Load, Probe, Store
from repro.isa.program import Program, ops_program
from repro.sim.config import MemoryModel, SimConfig
from repro.sim.simulator import Simulator, run_program


def test_retire_width_bounds_throughput():
    # 40 already-done ops (stores to the same warm line) retire at most
    # retire_width per cycle
    narrow = run_program(
        ops_program([[Probe() for _ in range(64)]]),
        SimConfig(n_cores=1, retire_width=1, dispatch_width=1),
    )
    wide = run_program(
        ops_program([[Probe() for _ in range(64)]]),
        SimConfig(n_cores=1, retire_width=4, dispatch_width=4),
    )
    assert narrow.cycles > wide.cycles


def test_dispatch_width_bounds_throughput():
    ops = [Probe() for _ in range(64)]
    one = run_program(ops_program([list(ops)]), SimConfig(n_cores=1, dispatch_width=1))
    four = run_program(ops_program([list(ops)]), SimConfig(n_cores=1, dispatch_width=4))
    assert one.cycles >= four.cycles * 2


def test_sb_capacity_blocks_dispatch_under_rmo():
    # more cold-miss stores than SB entries: issue must throttle
    ops = [Store(4096 + i * 64, 1) for i in range(12)]
    res = run_program(ops_program([ops]), SimConfig(n_cores=1, sb_size=4))
    assert res.stats.cores[0].sb_full_stalls > 0


def test_sb_capacity_blocks_retire_under_tso():
    ops = [Store(4096 + i * 64, 1) for i in range(12)]
    res = run_program(
        ops_program([ops]),
        SimConfig(n_cores=1, sb_size=2, memory_model=MemoryModel.TSO),
    )
    assert res.stats.cores[0].sb_full_stalls > 0
    assert res.memory.read_global(4096) == 1


def test_next_event_cycle_reports_future_events():
    cfg = SimConfig(n_cores=1)
    sim = Simulator(cfg, ops_program([[Load(4096), Compute(5)]]))
    core = sim.cores[0]
    gens = sim.program.spawn()
    core.bind(gens[0])
    core.tick(0)
    nxt = core.next_event_cycle(0)
    assert nxt is not None and nxt > 0


def test_account_idle_attributes_fence_stalls():
    from repro.sim.stats import CoreStats

    cfg = SimConfig(n_cores=1)
    sim = Simulator(cfg, ops_program([[Store(4096, 1), Fence(FenceKind.GLOBAL), Load(64)]]))
    res = sim.run()
    core_stats = res.stats.cores[0]
    # the ~300-cycle wait is fully attributed even though it was warped
    assert core_stats.fence_stall_cycles >= 295


def test_fence_stall_not_counted_after_partial_dispatch():
    """A fence blocked mid-cycle after other ops dispatched does not
    count that cycle as a stall (only full-issue-blocked cycles do)."""
    ops = [Store(4096, 1), Fence(FenceKind.GLOBAL), Load(64)]
    res = run_program(ops_program([ops]), SimConfig(n_cores=1))
    core = res.stats.cores[0]
    assert core.fence_stall_cycles <= res.cycles


def test_generator_return_value_ignored():
    def body(tid):
        yield Compute(1)
        return 42  # return values of top-level threads are dropped

    res = run_program(Program([body]), SimConfig(n_cores=1))
    assert res.stats.instructions == 1


def test_probe_payload_untouched():
    seen = []
    payload = {"k": 1}

    def body(tid):
        yield Probe(fn=lambda c: seen.append(c), payload=payload)

    run_program(Program([body]), SimConfig(n_cores=1))
    assert len(seen) == 1 and payload == {"k": 1}


def test_stats_cycles_set_once_per_core():
    res = run_program(ops_program([[Compute(10)], [Compute(100)]]), SimConfig(n_cores=2))
    assert res.stats.cores[0].cycles < res.stats.cores[1].cycles