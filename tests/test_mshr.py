"""MSHR (outstanding-miss limit) behaviour tests."""

from repro.isa.instructions import Compute, Load
from repro.isa.program import ops_program
from repro.sim.config import SimConfig
from repro.sim.simulator import run_program


def run_loads(n_loads, **cfg):
    cfg.setdefault("n_cores", 1)
    ops = [Load(4096 + i * 64) for i in range(n_loads)]
    return run_program(ops_program([ops]), SimConfig(**cfg))


def test_unlimited_misses_overlap_fully():
    res = run_loads(16, mshrs=0)
    # 16 independent cold misses pipelined: roughly one miss latency total
    assert res.cycles < 400
    assert res.stats.cores[0].mshr_stalls == 0


def test_mshr_limit_serializes_miss_bursts():
    free = run_loads(16, mshrs=0)
    tight = run_loads(16, mshrs=2)
    assert tight.cycles > free.cycles * 2
    assert tight.stats.cores[0].mshr_stalls > 0


def test_l1_hits_need_no_mshr():
    # same line over and over: first access misses, the rest hit
    ops = [Load(4096) for _ in range(12)]
    res = run_program(ops_program([ops]), SimConfig(n_cores=1, mshrs=1))
    assert res.stats.cores[0].mshr_stalls == 0
    assert res.cycles < 400


def test_forwarded_loads_need_no_mshr():
    from repro.isa.instructions import Store

    ops = [Store(4096, 1)] + [Load(4096) for _ in range(8)]
    res = run_program(ops_program([ops]), SimConfig(n_cores=1, mshrs=1))
    # every load forwards from the store buffer: no MSHR pressure
    assert res.stats.cores[0].sb_forwards == 8


def test_default_mshrs_do_not_change_calibrated_workloads():
    """The default (16) is wide enough that the Figure-12 harness is
    unaffected; this pins the calibration."""
    from repro.algorithms.workloads import build_wsq_workload
    from repro.runtime.lang import Env

    cycles = {}
    for mshrs in (0, 16):
        env = Env(SimConfig(mshrs=mshrs))
        handle = build_wsq_workload(env, iterations=10, workload_level=2)
        cycles[mshrs] = env.run(handle.program).cycles
        handle.check()
    assert abs(cycles[0] - cycles[16]) / cycles[0] < 0.02
