"""Tests for the textual litmus format."""

import pytest

from repro.litmus.dsl import (
    LitmusParseError,
    build_program,
    parse_litmus,
    run_litmus,
)
from repro.runtime.lang import Env
from repro.sim.config import MemoryModel, SimConfig

FAST = [0, 1, 40, 150, 320]

SB = """
name SB
flag x y
init x=0 y=0

x = 1        | y = 1
{fence}      | {fence}
r0 = y       | r1 = x

exists r0 == 0 and r1 == 0
"""

MP = """
name MP
init data=0 flag=0

data = 42    | r0 = flag
fence.ss     | r1 = data

exists r0 == 1 and r1 == 0
"""


# ------------------------------------------------------------------- parsing
def test_parse_basic_structure():
    t = parse_litmus(SB.format(fence="fence"))
    assert t.name == "SB"
    assert t.n_threads == 2
    assert t.flagged == {"x", "y"}
    assert t.init == {"x": 0, "y": 0}
    assert t.threads[0] == ["x = 1", "fence", "r0 = y"]
    assert t.condition == "r0 == 0 and r1 == 0"


def test_parse_comments_and_blanks_ignored():
    t = parse_litmus("""
        name c
        # a comment
        x = 1 | r0 = x   # trailing comment
    """)
    assert t.threads == [["x = 1"], ["r0 = x"]]


def test_parse_uneven_columns():
    t = parse_litmus("""
        x = 1 | y = 1
        r0 = y
    """)
    assert t.threads[0] == ["x = 1", "r0 = y"]
    assert t.threads[1] == ["y = 1"]


def test_parse_rejects_empty():
    with pytest.raises(LitmusParseError):
        parse_litmus("name only\n")


def test_bad_statement_rejected_at_run_time():
    t = parse_litmus("x <- 1 | r0 = x")
    env = Env(SimConfig(n_cores=2))
    program, _ = build_program(t, env, [0, 0])
    with pytest.raises(LitmusParseError):
        env.run(program)


def test_bad_fence_suffix():
    t = parse_litmus("fence.bogus | r0 = x")
    env = Env(SimConfig(n_cores=2))
    program, _ = build_program(t, env, [0, 0])
    with pytest.raises(LitmusParseError):
        env.run(program)


# ------------------------------------------------------------------- running
def test_sb_without_fence_observes_condition():
    t = parse_litmus("""
        name SBnofence
        x = 1  | y = 1
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
    """)
    run = run_litmus(t, MemoryModel.RMO, FAST)
    assert run.condition_observed
    assert (0, 0) in run.outcomes


def test_sb_with_full_fence_forbidden():
    run = run_litmus(parse_litmus(SB.format(fence="fence")), MemoryModel.RMO, FAST)
    assert not run.condition_observed


def test_sb_with_set_fence_forbidden():
    run = run_litmus(parse_litmus(SB.format(fence="fence.set")), MemoryModel.RMO, FAST)
    assert not run.condition_observed


def test_mp_storestore_fence_forbids_stale_data():
    run = run_litmus(parse_litmus(MP), MemoryModel.RMO, FAST)
    assert not run.condition_observed


def test_init_values_respected():
    t = parse_litmus("""
        init x=7
        r0 = x | x = 9
        exists r0 == 7 or r0 == 9
    """)
    run = run_litmus(t, MemoryModel.RMO, [0, 50])
    assert run.condition_observed
    assert all(out[0] in (7, 9) for out in run.outcomes)


def test_register_names():
    run = run_litmus(parse_litmus(SB.format(fence="fence")), MemoryModel.RMO, [0])
    assert run.register_names == ["r0", "r1"]
