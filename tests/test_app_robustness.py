"""Cross-cutting robustness tests for the full applications."""

import pytest

from repro.apps.barnes import build_barnes
from repro.apps.pst import build_pst
from repro.apps.ptc import build_ptc
from repro.apps.radiosity import build_radiosity
from repro.isa.instructions import FenceKind
from repro.runtime.lang import Env
from repro.sim.config import MemoryModel, SimConfig

SMALL = {
    "pst": (build_pst, dict(n_vertices=48, extra_edges=32), FenceKind.CLASS),
    "ptc": (build_ptc, dict(n_vertices=24), FenceKind.CLASS),
    "barnes": (build_barnes, dict(n_bodies=48), FenceKind.SET),
    "radiosity": (build_radiosity, dict(n_patches=32), FenceKind.SET),
}


def run(name, scope=None, **cfg_overrides):
    builder, kwargs, default_scope = SMALL[name]
    env = Env(SimConfig(**cfg_overrides))
    inst = builder(env, scope=scope or default_scope, **kwargs)
    res = env.run(inst.program, max_cycles=5_000_000)
    inst.check()
    return res


@pytest.mark.parametrize("name", sorted(SMALL))
def test_deterministic_across_runs(name):
    a = run(name)
    b = run(name)
    assert a.cycles == b.cycles
    assert a.stats.summary() == b.stats.summary()


@pytest.mark.parametrize("name", sorted(SMALL))
def test_correct_under_tso(name):
    run(name, memory_model=MemoryModel.TSO)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_correct_under_pso(name):
    run(name, memory_model=MemoryModel.PSO)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_correct_with_speculation(name):
    run(name, in_window_speculation=True)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_correct_with_tiny_scope_hardware(name):
    """FSB/FSS/mapping pressure must never break correctness."""
    run(name, fsb_entries=2, fss_entries=1, mapping_entries=1)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_correct_with_small_rob_and_sb(name):
    run(name, rob_size=16, sb_size=2)


def test_pst_without_app_fence_still_terminates():
    """Dropping pst's application-level full fence (ablation only) must
    not deadlock; the spanning tree remains valid because the color
    CAS already serialises claims in this simulator."""
    env = Env(SimConfig())
    inst = build_pst(env, n_vertices=48, extra_edges=32, app_full_fence=False)
    env.run(inst.program, max_cycles=5_000_000)
    inst.check()
