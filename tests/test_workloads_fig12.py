"""Figure 12 behaviours: the workload harnesses' speedup structure.

Small-scale versions of the Figure 12 runs (the full sweep lives in
``benchmarks/bench_fig12_workload.py``); these check the *qualitative*
claims: S-Fence never loses, the benefit exists at moderate workload,
and all safety checkers pass under both fence flavours.
"""

import pytest

from repro.algorithms.dekker import build_workload as build_dekker_workload
from repro.algorithms.workloads import (
    build_harris_workload,
    build_msn_workload,
    build_wsq_workload,
)
from repro.runtime.lang import Env
from repro.sim.config import SimConfig

BUILDERS = {
    "dekker": lambda env, lvl: build_dekker_workload(env, workload_level=lvl, iterations=10),
    "wsq": lambda env, lvl: build_wsq_workload(env, workload_level=lvl, iterations=12),
    "msn": lambda env, lvl: build_msn_workload(env, workload_level=lvl, iterations=8),
    "harris": lambda env, lvl: build_harris_workload(env, workload_level=lvl, iterations=8),
}


def run(name, level, scoped):
    env = Env(SimConfig(scoped_fences=scoped))
    handle = BUILDERS[name](env, level)
    res = env.run(handle.program, max_cycles=3_000_000)
    handle.check()
    return res


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_safe_under_both_fence_flavours(name):
    for scoped in (False, True):
        run(name, 1, scoped)  # the checker inside run() validates safety


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_sfence_never_slower(name):
    trad = run(name, 2, scoped=False)
    scoped = run(name, 2, scoped=True)
    assert scoped.cycles <= trad.cycles


@pytest.mark.parametrize("name", ["wsq", "dekker"])
def test_sfence_benefit_at_moderate_workload(name):
    trad = run(name, 2, scoped=False)
    scoped = run(name, 2, scoped=True)
    assert trad.cycles / scoped.cycles > 1.05


@pytest.mark.parametrize("name", ["wsq"])
def test_speedup_rises_from_level_one(name):
    s1 = run(name, 1, scoped=False).cycles / run(name, 1, scoped=True).cycles
    s2 = run(name, 2, scoped=False).cycles / run(name, 2, scoped=True).cycles
    assert s2 > s1


def test_fence_stalls_shrink_with_scoping():
    trad = run("wsq", 2, scoped=False)
    scoped = run("wsq", 2, scoped=True)
    assert scoped.stats.fence_stall_cycles < trad.stats.fence_stall_cycles
