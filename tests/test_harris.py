"""Harris lock-free set functional tests."""

import pytest

from repro.algorithms.harris_set import HarrisSet
from repro.algorithms.workloads import build_harris_workload
from repro.isa.program import Program
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


def run_single(body_fn, pool=64):
    env = Env(SimConfig(n_cores=1))
    s = HarrisSet(env, pool_size=pool)
    out = []

    def body(tid):
        yield from body_fn(s, out)

    env.run(Program([body]))
    return s, out


def test_insert_and_contains():
    def body(s, out):
        out.append((yield from s.insert(5)))
        out.append((yield from s.contains(5)))
        out.append((yield from s.contains(6)))

    s, out = run_single(body)
    assert out == [True, True, False]
    assert s.keys_host() == [5]


def test_duplicate_insert_rejected():
    def body(s, out):
        out.append((yield from s.insert(5)))
        out.append((yield from s.insert(5)))

    s, out = run_single(body)
    assert out == [True, False]
    assert s.keys_host() == [5]


def test_sorted_order_maintained():
    def body(s, out):
        for k in (9, 3, 7, 1):
            yield from s.insert(k)

    s, _ = run_single(body)
    assert s.keys_host() == [1, 3, 7, 9]


def test_delete():
    def body(s, out):
        for k in (1, 2, 3):
            yield from s.insert(k)
        out.append((yield from s.delete(2)))
        out.append((yield from s.delete(2)))
        out.append((yield from s.contains(2)))

    s, out = run_single(body)
    assert out == [True, False, False]
    assert s.keys_host() == [1, 3]


def test_delete_absent_key():
    def body(s, out):
        out.append((yield from s.delete(42)))

    _, out = run_single(body)
    assert out == [False]


def test_reinsert_after_delete():
    def body(s, out):
        yield from s.insert(5)
        yield from s.delete(5)
        out.append((yield from s.insert(5)))
        out.append((yield from s.contains(5)))

    s, out = run_single(body)
    assert out == [True, True]
    assert s.keys_host() == [5]


def test_concurrent_inserts_distinct_keys():
    env = Env(SimConfig(n_cores=4))
    s = HarrisSet(env, pool_size=128)

    def worker(tid):
        for i in range(6):
            yield from s.insert(tid * 10 + i)

    env.run(Program([worker] * 4), max_cycles=2_000_000)
    expected = sorted(t * 10 + i for t in range(4) for i in range(6))
    assert s.keys_host() == expected


def test_concurrent_same_key_single_winner():
    env = Env(SimConfig(n_cores=4))
    s = HarrisSet(env, pool_size=64)
    wins = []

    def worker(tid):
        ok = yield from s.insert(7)
        if ok:
            wins.append(tid)

    env.run(Program([worker] * 4), max_cycles=2_000_000)
    assert len(wins) == 1
    assert s.keys_host() == [7]


def test_workload_harness_invariants():
    env = Env(SimConfig())
    handle = build_harris_workload(env, iterations=10, workload_level=1)
    env.run(handle.program)
    handle.check()
