"""Michael-Scott queue functional tests."""

import pytest

from repro.algorithms.ms_queue import EMPTY, MichaelScottQueue
from repro.algorithms.workloads import build_msn_workload
from repro.isa.program import Program
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


def test_fifo_single_thread():
    env = Env(SimConfig(n_cores=1))
    q = MichaelScottQueue(env, pool_size=32)
    got = []

    def body(tid):
        for v in (10, 20, 30):
            yield from q.enqueue(v)
        for _ in range(4):
            got.append((yield from q.dequeue()))

    env.run(Program([body]))
    assert got == [10, 20, 30, EMPTY]


def test_dequeue_empty_queue():
    env = Env(SimConfig(n_cores=1))
    q = MichaelScottQueue(env, pool_size=8)
    got = []

    def body(tid):
        got.append((yield from q.dequeue()))

    env.run(Program([body]))
    assert got == [EMPTY]


def test_interleaved_producers_consumers():
    env = Env(SimConfig(n_cores=4))
    q = MichaelScottQueue(env, pool_size=128)
    consumed = []

    def producer(tid):
        for i in range(10):
            yield from q.enqueue(tid * 100 + i)

    def consumer(tid):
        empties = 0
        while empties < 50:
            v = yield from q.dequeue()
            if v == EMPTY:
                empties += 1
            else:
                empties = 0
                consumed.append(v)

    env.run(Program([producer, producer, consumer, consumer]), max_cycles=3_000_000)
    remaining = q.drain_host()
    produced = {t * 100 + i for t in (0, 1) for i in range(10)}
    assert sorted(consumed + remaining) == sorted(produced)
    assert len(set(consumed)) == len(consumed)  # no duplicates


def test_per_producer_fifo():
    """Values from one producer come out in their enqueue order."""
    env = Env(SimConfig(n_cores=2))
    q = MichaelScottQueue(env, pool_size=64)
    consumed = []

    def producer(tid):
        for i in range(8):
            yield from q.enqueue(i + 1)

    def consumer(tid):
        while len(consumed) < 8:
            v = yield from q.dequeue()
            if v != EMPTY:
                consumed.append(v)

    env.run(Program([producer, consumer]), max_cycles=1_000_000)
    assert consumed == sorted(consumed)


def test_pool_exhaustion_raises():
    env = Env(SimConfig(n_cores=1))
    q = MichaelScottQueue(env, pool_size=3)

    def body(tid):
        yield from q.enqueue(1)
        yield from q.enqueue(2)  # pool: null + dummy + 1 -> exhausted

    with pytest.raises(MemoryError):
        env.run(Program([body]))


def test_workload_harness_accounting():
    env = Env(SimConfig())
    handle = build_msn_workload(env, iterations=8, workload_level=1)
    env.run(handle.program)
    handle.check()
