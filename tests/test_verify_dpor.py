"""The DPOR explorer against brute force, per corpus test and fence mode.

Every corpus litmus test is small enough to enumerate *every*
interleaving naively, so the sleep-set explorer can be held to the
strongest possible standard: identical outcome sets on every (test,
fence-mode) cell -- against the naive DFS *and* against the
independently implemented permutation enumerator in
:mod:`repro.core.semantics` -- while walking strictly fewer
interleavings wherever independent operations exist to commute.
"""

from __future__ import annotations

import pytest

from repro.core.semantics import reference_allowed_outcomes
from repro.litmus.corpus import CORPUS
from repro.litmus.dsl import abstract_threads, parse_litmus
from repro.verify.explorer import explore_allowed_outcomes
from repro.verify.modes import FENCE_MODES, apply_fence_mode

CELLS = [(entry, mode) for entry in CORPUS for mode in FENCE_MODES]
IDS = [f"{entry.name}-{mode}" for entry, mode in CELLS]


def _threads(entry, mode):
    variant = apply_fence_mode(parse_litmus(entry.source), mode)
    return abstract_threads(variant), dict(variant.init)


@pytest.mark.parametrize("entry,mode", CELLS, ids=IDS)
def test_dpor_equals_naive_enumeration(entry, mode):
    threads, init = _threads(entry, mode)
    dpor = explore_allowed_outcomes(threads, init)
    naive = explore_allowed_outcomes(threads, init, dpor=False)
    assert dpor.outcomes == naive.outcomes
    assert dpor.registers == naive.registers
    # sleep sets may only ever prune; completeness is the assert above
    assert dpor.interleavings <= naive.interleavings


@pytest.mark.parametrize("entry,mode", CELLS, ids=IDS)
def test_dpor_equals_reference_model(entry, mode):
    """Same outcome set as the permutation-based reference enumerator."""
    threads, init = _threads(entry, mode)
    dpor = explore_allowed_outcomes(threads, init)
    assert dpor.outcomes == reference_allowed_outcomes(threads, init)


def test_dpor_actually_prunes():
    """The reduction is real: strictly fewer interleavings on tests with
    independent operations, down to the known trace counts for SB."""
    threads, init = _threads(CORPUS[0], "none")  # SB, fences stripped
    dpor = explore_allowed_outcomes(threads, init)
    naive = explore_allowed_outcomes(threads, init, dpor=False)
    # 4 mutually unordered ops -> 4! = 24 naive interleavings; the
    # dependence relation (store x/load x, store y/load y) leaves 4
    # Mazurkiewicz traces
    assert naive.interleavings == 24
    assert dpor.interleavings == 4

    total_dpor = total_naive = 0
    for entry, mode in CELLS:
        threads, init = _threads(entry, mode)
        total_dpor += explore_allowed_outcomes(threads, init).interleavings
        total_naive += explore_allowed_outcomes(
            threads, init, dpor=False).interleavings
    assert total_dpor < total_naive / 3, (
        f"DPOR walked {total_dpor} interleavings vs {total_naive} naive -- "
        f"the reduction stopped reducing"
    )


def test_explorer_respects_init_values():
    threads, init = _threads(CORPUS[0], "none")
    shifted = explore_allowed_outcomes(threads, {"x": 7, "y": 9})
    # loads that miss the peer store now return the init values
    assert any(7 in o or 9 in o for o in shifted.outcomes)


def test_explorer_empty_thread_and_no_loads():
    stores_only = [[("store", "x", 1, False)], []]
    result = explore_allowed_outcomes(stores_only)
    assert result.outcomes == {()}
    assert result.interleavings == 1
