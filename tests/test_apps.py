"""Full-application tests: pst, ptc, barnes, radiosity."""

import pytest

from repro.apps.barnes import build_barnes
from repro.apps.pst import build_pst
from repro.apps.ptc import build_ptc
from repro.apps.radiosity import build_radiosity
from repro.isa.instructions import FenceKind
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


# ----------------------------------------------------------------------- pst
@pytest.mark.parametrize("scope", [FenceKind.GLOBAL, FenceKind.CLASS, FenceKind.SET])
def test_pst_builds_spanning_tree(scope):
    env = Env(SimConfig())
    inst = build_pst(env, n_vertices=64, extra_edges=64, scope=scope)
    env.run(inst.program, max_cycles=2_000_000)
    inst.check()


def test_pst_scoped_not_slower():
    cyc = {}
    for scope in (FenceKind.GLOBAL, FenceKind.CLASS):
        env = Env(SimConfig())
        inst = build_pst(env, scope=scope)
        cyc[scope] = env.run(inst.program, max_cycles=2_000_000).cycles
        inst.check()
    assert cyc[FenceKind.CLASS] <= cyc[FenceKind.GLOBAL]


def test_pst_single_thread():
    env = Env(SimConfig(n_cores=1))
    inst = build_pst(env, n_vertices=32, extra_edges=16, n_threads=1)
    env.run(inst.program, max_cycles=2_000_000)
    inst.check()


def test_pst_different_seeds_give_different_graphs():
    env1, env2 = Env(SimConfig()), Env(SimConfig())
    i1 = build_pst(env1, n_vertices=48, extra_edges=32, seed=1)
    i2 = build_pst(env2, n_vertices=48, extra_edges=32, seed=2)
    assert i1.graph.neighbors != i2.graph.neighbors


# ----------------------------------------------------------------------- ptc
@pytest.mark.parametrize("scope", [FenceKind.GLOBAL, FenceKind.CLASS])
def test_ptc_computes_exact_closure(scope):
    env = Env(SimConfig())
    inst = build_ptc(env, n_vertices=32, scope=scope)
    env.run(inst.program, max_cycles=2_000_000)
    inst.check()


def test_ptc_rejects_oversized_graphs():
    env = Env(SimConfig())
    with pytest.raises(ValueError):
        build_ptc(env, n_vertices=64)


def test_ptc_closure_reference_is_sane():
    env = Env(SimConfig())
    inst = build_ptc(env, n_vertices=16, avg_out_degree=1.5, seed=3)
    masks = inst.expected_closure()
    for v in range(16):
        assert masks[v] & (1 << v)  # every vertex reaches itself
        for s in inst.graph.neighbors_of(v):
            assert masks[v] & masks[s] == masks[s]  # closure containment


# -------------------------------------------------------------------- barnes
@pytest.mark.parametrize("scope", [FenceKind.GLOBAL, FenceKind.SET])
def test_barnes_updates_every_body(scope):
    env = Env(SimConfig())
    inst = build_barnes(env, n_bodies=64, scope=scope)
    env.run(inst.program, max_cycles=2_000_000)
    inst.check()


def test_barnes_set_scope_reduces_stalls():
    frac = {}
    for scope in (FenceKind.GLOBAL, FenceKind.SET):
        env = Env(SimConfig())
        inst = build_barnes(env, n_bodies=128, scope=scope)
        res = env.run(inst.program, max_cycles=4_000_000)
        inst.check()
        frac[scope] = res.stats.fence_stall_fraction
    assert frac[FenceKind.SET] < frac[FenceKind.GLOBAL]


def test_barnes_flags_follow_scope():
    env = Env(SimConfig())
    inst = build_barnes(env, n_bodies=32, scope=FenceKind.SET)
    assert inst.pos_x.flagged and inst.pos_y.flagged
    env2 = Env(SimConfig())
    inst2 = build_barnes(env2, n_bodies=32, scope=FenceKind.GLOBAL)
    assert not inst2.pos_x.flagged


# ------------------------------------------------------------------ radiosity
@pytest.mark.parametrize("scope", [FenceKind.GLOBAL, FenceKind.SET])
def test_radiosity_converges_every_patch(scope):
    env = Env(SimConfig())
    inst = build_radiosity(env, n_patches=48, scope=scope)
    env.run(inst.program, max_cycles=2_000_000)
    inst.check()


def test_radiosity_energy_grows_with_rounds():
    totals = []
    for rounds in (1, 2):
        env = Env(SimConfig())
        inst = build_radiosity(env, n_patches=48, rounds=rounds)
        env.run(inst.program, max_cycles=2_000_000)
        inst.check()
        totals.append(sum(inst.radiosity.peek(p) for p in range(48)))
    assert totals[1] > totals[0]


def test_radiosity_scoped_is_faster():
    cyc = {}
    for scope in (FenceKind.GLOBAL, FenceKind.SET):
        env = Env(SimConfig())
        inst = build_radiosity(env, scope=scope)
        cyc[scope] = env.run(inst.program, max_cycles=2_000_000).cycles
        inst.check()
    assert cyc[FenceKind.SET] < cyc[FenceKind.GLOBAL]
