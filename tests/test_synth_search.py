"""Unit tests for the fence-synthesis lattice and search core."""

from __future__ import annotations

import pytest

from repro.core.semantics import reference_allowed_outcomes
from repro.litmus.dsl import abstract_threads, outcomes_matching, parse_litmus
from repro.synth import SynthesisError, synthesize
from repro.synth.corpus import SYNTH_CORPUS, _check_shared_spec, synth_entry
from repro.synth.cost import SMOKE_PROBE_OFFSETS
from repro.synth.sites import (
    MODES,
    abstract_signature,
    apply_placement,
    dominated_by,
    fence_sites,
    strip_test,
    weakened_neighbors,
)
from repro.verify.explorer import explore_allowed_outcomes

SB = """
name SB
x = 1  | y = 1
r0 = y | r1 = x
exists r0 == 0 and r1 == 0
"""


def _synth(source: str, **kw):
    kw.setdefault("offsets", SMOKE_PROBE_OFFSETS)
    return synthesize(parse_litmus(source), **kw)


# ------------------------------------------------------------------- lattice
def test_strip_removes_fences_and_flags_everything():
    test = parse_litmus("""
        name t
        x = 1     | y = 1
        fence.set | fence
        r0 = y    | r1 = x
    """)
    stripped = strip_test(test)
    assert all("fence" not in s for stmts in stripped.threads for s in stmts)
    assert stripped.flagged == {"x", "y"}


def test_strip_keeps_declared_flags():
    test = parse_litmus("""
        name t
        flag x
        x = 1  | y = 1
        r0 = y | r1 = x
    """)
    assert strip_test(test).flagged == {"x"}


def test_fence_sites_skip_trailing_positions():
    stripped = strip_test(parse_litmus(SB))
    sites = fence_sites(stripped)
    # one site per thread: after the store, before the load; never
    # after a thread's final memory op
    assert [s.label for s in sites] == ["T0:x = 1", "T1:y = 1"]


def test_delay_is_not_a_site():
    stripped = strip_test(parse_litmus("""
        name t
        x = 1 | rw = y
        y = 1 | delay
              | r0 = x
    """))
    labels = [s.label for s in fence_sites(stripped)]
    assert labels == ["T0:x = 1", "T1:rw = y"]


def test_apply_placement_inserts_mode_statements():
    stripped = strip_test(parse_litmus(SB))
    sites = fence_sites(stripped)
    variant = apply_placement(stripped, sites, ("sfence-set", "full"))
    assert variant.threads[0] == ["x = 1", "fence.set", "r0 = y"]
    assert variant.threads[1] == ["y = 1", "fence", "r1 = x"]
    none = apply_placement(stripped, sites, ("none", "none"))
    assert none.threads == stripped.threads


def test_apply_placement_validates():
    stripped = strip_test(parse_litmus(SB))
    sites = fence_sites(stripped)
    with pytest.raises(ValueError):
        apply_placement(stripped, sites, ("full",))
    with pytest.raises(KeyError):
        apply_placement(stripped, sites, ("full", "mega"))


def test_dominance_is_pointwise_strength():
    full = abstract_signature(("full", "full"))
    klass = abstract_signature(("sfence-class", "full"))
    mixed = abstract_signature(("sfence-set", "full"))
    assert klass == full  # class and full merge abstractly
    assert dominated_by(mixed, full)
    assert not dominated_by(full, mixed)
    assert dominated_by(abstract_signature(("none", "sfence-set")), mixed)


def test_weakened_neighbors_walk_the_chain():
    neighbors = dict(weakened_neighbors(("full", "sfence-set")))
    assert neighbors == {
        0: ("sfence-class", "sfence-set"),
        1: ("full", "none"),
    }
    assert list(weakened_neighbors(("none", "none"))) == []


# -------------------------------------------------------------------- search
def test_synthesized_sb_placement_is_sound_per_both_oracles():
    result = _synth(SB)
    assert result.forbidden == [(0, 0)]
    variant = apply_placement(
        strip_test(parse_litmus(SB)), result.sites, result.assignment)
    threads = abstract_threads(variant)
    init = dict(variant.init)
    explored = explore_allowed_outcomes(threads, init).outcomes
    reference = reference_allowed_outcomes(threads, init)
    assert (0, 0) not in explored
    assert (0, 0) not in reference
    assert explored == reference
    assert result.stall_cycles <= result.all_full_stall
    assert result.fence_count == 2  # one fence per thread is necessary


def test_counterexamples_name_the_admitted_outcomes():
    result = _synth(SB)
    assert result.counterexamples, "the scan must reject weaker candidates"
    for ce in result.counterexamples:
        assert [0, 0] in ce["admits"]
        # placement keys are the human-readable site labels
        assert all(label.startswith("T") for label in ce["placement"])


def test_counterexamples_share_the_matching_outcomes_code_path():
    """Counterexample tuples are outcomes_matching output, verbatim."""
    test = parse_litmus(SB)
    result = _synth(SB)
    stripped = strip_test(test)
    for ce in result.counterexamples[:2]:
        assignment = tuple(
            ce["placement"].get(site.label, "none") for site in result.sites)
        variant = apply_placement(stripped, result.sites, assignment)
        allowed = explore_allowed_outcomes(
            abstract_threads(variant), dict(variant.init)).outcomes
        expected = outcomes_matching(
            test.condition, result.registers, allowed)
        assert ce["admits"] == [list(o) for o in expected[:4]]


def test_unsound_dominance_prunes_without_oracles():
    result = _synth(SB)
    assert result.candidates_pruned > 0
    assert (result.candidates_checked + result.candidates_pruned
            < result.candidates_total)


def test_trivial_spec_synthesizes_the_empty_placement():
    result = _synth("""
        name free
        x = 1  | y = 1
        r0 = y | r1 = x
        exists r0 == 5 and r1 == 5
    """)
    assert result.fence_count == 0
    assert result.stall_cycles == 0
    assert result.forbidden == []


def test_explicit_forbidden_set_overrides_the_exists_clause():
    # forbid the SB relaxation directly, no exists needed
    source = SB.replace("exists r0 == 0 and r1 == 0", "")
    result = _synth(source, forbidden={(0, 0)})
    assert result.forbidden == [(0, 0)]
    assert result.fence_count == 2
    # a forbidden outcome the fence-free program can't produce is vacuous
    vacuous = _synth(source, forbidden={(7, 7)})
    assert vacuous.fence_count == 0


def test_restricted_lattice_still_synthesizes():
    result = _synth(SB, modes=("none", "full"))
    assert set(result.assignment) <= {"none", "full"}
    assert result.fence_count == 2


def test_lattice_validation():
    with pytest.raises(KeyError):
        _synth(SB, modes=("none", "mega"))
    with pytest.raises(SynthesisError):
        _synth(SB, modes=("none", "sfence-set"))  # no global-scope mode


def test_reduced_lattice_without_none_searches_strengths_only():
    """The whole-program path passes a lattice with no ``none``: every
    site keeps at least some fence, and the search still lands on the
    cheapest sound strength assignment."""
    result = _synth(SB, modes=("full",))
    assert set(result.assignment) == {"full"}
    assert result.fence_count == len(result.assignment)
    assert result.counterexamples == []


def test_unenforceable_spec_raises():
    # (1, 1) is SC-reachable: no fence placement can forbid it
    with pytest.raises(SynthesisError, match="cannot enforce"):
        _synth("""
            name hopeless
            x = 1  | y = 1
            r0 = y | r1 = x
            exists r0 == 1 and r1 == 1
        """)


def test_local_minimality_of_synthesized_placements():
    """No one-step-weakened neighbour is both sound and strictly cheaper."""
    from repro.synth.cost import placement_cycles

    for name in ("SB", "barnes-publish"):
        entry = synth_entry(name)
        result = _synth(entry.source)
        stripped = strip_test(parse_litmus(entry.source))
        bad = set(result.forbidden)
        for _, neighbor in weakened_neighbors(result.assignment):
            variant = apply_placement(stripped, result.sites, neighbor)
            allowed = explore_allowed_outcomes(
                abstract_threads(variant), dict(variant.init)).outcomes
            if allowed & bad:
                continue  # unsound neighbour: may cost anything
            cycles = placement_cycles(variant, result.offsets)
            assert cycles >= result.cycles, (
                f"{name}: sound neighbour {neighbor} measures {cycles} < "
                f"chosen {result.assignment} at {result.cycles}")


# -------------------------------------------------------------------- corpus
def test_corpus_pairs_share_one_spec():
    _check_shared_spec()


def test_corpus_names_are_unique_and_resolvable():
    names = [e.name for e in SYNTH_CORPUS]
    assert len(names) == len(set(names))
    assert synth_entry("SB").name == "SB"
    with pytest.raises(KeyError):
        synth_entry("nope")


def test_corpus_covers_classics_and_app_kernels():
    names = {e.name for e in SYNTH_CORPUS}
    assert {"SB", "MP", "WRC", "IRIW"} <= names
    assert {"barnes-publish", "ptc-handoff"} <= names
