"""Mixed-structure workload tests: many scoped classes at once."""

import pytest

from repro.algorithms.mixed import build_mixed_workload
from repro.isa.instructions import FenceKind
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


def run(scoped=True, **cfg_overrides):
    env = Env(SimConfig(scoped_fences=scoped, **cfg_overrides))
    handle = build_mixed_workload(env, iterations=6, workload_level=1)
    res = env.run(handle.program, max_cycles=5_000_000)
    handle.check()
    return res


def test_mixed_safe_with_full_hardware():
    run(scoped=True)


def test_mixed_safe_with_traditional_fences():
    run(scoped=False)


def test_mixed_safe_under_fsb_sharing():
    """Two FSB entries leave one class entry for four active classes:
    maximal sharing, still correct."""
    run(scoped=True, fsb_entries=2, mapping_entries=1, fss_entries=2)


def test_mixed_safe_under_overflow_counter():
    """A single mapping slot forces the overflow-counter fallback."""
    res = run(scoped=True, mapping_entries=1)
    assert res.cycles > 0


def test_mixed_safe_with_speculation():
    run(scoped=True, in_window_speculation=True)


def test_sharing_is_only_slower_not_wrong():
    full = run(scoped=True)
    shared = run(scoped=True, fsb_entries=2, mapping_entries=1, fss_entries=2)
    trad = run(scoped=False)
    assert shared.cycles >= full.cycles * 0.98
    assert shared.cycles <= trad.cycles * 1.05
