"""Differential re-verification of the committed synth-report.json.

The report commits real claims: for every corpus entry, a concrete
placement, its measured cycle numbers, and the assertion that both
oracles proved it sound.  These tests re-derive each claim from
scratch -- **independently of the synthesizer**: the placement is
re-applied to the stripped program, both oracles recompute its allowed
set, the simulator re-measures its cycles on the committed offset
grid, and a seeded minimality fuzzer re-walks the one-step-weakened
neighbourhood asserting no strictly-cheaper sound neighbour exists.

If the simulator, the oracles or the corpus change in a way that moves
any number, the committed report must be regenerated
(``python -m repro synth``) -- these tests are the tripwire.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

import pytest

from repro.core.semantics import reference_allowed_outcomes
from repro.litmus.dsl import abstract_threads, outcomes_matching, parse_litmus
from repro.synth.corpus import SYNTH_CORPUS, synth_entry
from repro.synth.cost import placement_cycles
from repro.synth.sites import (
    apply_placement,
    fence_sites,
    strip_test,
    weakened_neighbors,
)
from repro.verify.explorer import explore_allowed_outcomes

REPORT = Path(__file__).resolve().parents[1] / "synth-report.json"

#: seed for the minimality fuzzer's neighbourhood walk order
MINIMALITY_SEED = int(os.environ.get("SYNTH_MINIMALITY_SEED", "0"))


@pytest.fixture(scope="module")
def report() -> dict:
    assert REPORT.exists(), (
        "synth-report.json is a committed artifact; regenerate it with "
        "`python -m repro synth`"
    )
    return json.loads(REPORT.read_text())


def _case(report: dict, name: str) -> dict:
    assert name in report["cases"], (
        f"committed report lacks corpus entry {name}; regenerate it")
    return report["cases"][name]


def _rebuild(name: str, case: dict):
    """(stripped test, sites, committed assignment) for one case."""
    stripped = strip_test(parse_litmus(synth_entry(name).source))
    sites = fence_sites(stripped)
    assert [s.label for s in sites] == case["sites"], (
        f"{name}: site enumeration moved; regenerate synth-report.json")
    assignment = tuple(case["synthesized"]["assignment"])
    assert len(assignment) == len(sites)
    return stripped, sites, assignment


def _both_allowed(variant) -> tuple[set, list]:
    threads = abstract_threads(variant)
    init = dict(variant.init)
    exploration = explore_allowed_outcomes(threads, init)
    reference = reference_allowed_outcomes(threads, init)
    assert exploration.outcomes == reference, "oracle disagreement"
    return exploration.outcomes, exploration.registers


_NAMES = [entry.name for entry in SYNTH_CORPUS]


@pytest.mark.parametrize("name", _NAMES)
def test_committed_placement_reproven_by_both_oracles(name, report):
    """Each committed placement independently re-checked, both oracles."""
    case = _case(report, name)
    stripped, sites, assignment = _rebuild(name, case)
    variant = apply_placement(stripped, sites, assignment)
    allowed, registers = _both_allowed(variant)
    assert registers == case["registers"]

    forbidden = {tuple(o) for o in case["forbidden"]}
    leaked = allowed & forbidden
    assert not leaked, (
        f"{name}: committed placement {case['synthesized']['placement']} "
        f"admits forbidden outcome(s) {sorted(leaked)}"
    )
    # the forbidden set is exactly the exists-clause hits of the
    # fence-free program -- same code path as litmus mismatch messages
    allowed_none, _ = _both_allowed(stripped)
    condition = parse_litmus(synth_entry(name).source).condition
    derived = outcomes_matching(condition, registers, allowed_none)
    assert [list(o) for o in derived] == case["forbidden"]


@pytest.mark.parametrize("name", _NAMES)
def test_committed_cycle_numbers_reproduce(name, report):
    """The simulator re-measures the committed numbers exactly."""
    case = _case(report, name)
    stripped, sites, assignment = _rebuild(name, case)
    offsets = list(case["offsets"])
    baseline = placement_cycles(stripped, offsets)
    assert baseline == case["baseline_cycles"]
    chosen = placement_cycles(
        apply_placement(stripped, sites, assignment), offsets)
    assert chosen == case["synthesized"]["cycles"]
    assert chosen - baseline == case["synthesized"]["stall_cycles"]


@pytest.mark.parametrize("name", _NAMES)
def test_minimality_no_cheaper_weakened_neighbor_is_sound(name, report):
    """Seeded fuzz over the one-step-weakened neighbourhood.

    Every neighbour is visited (the walk order is seeded, the coverage
    is total): a neighbour that stays sound must not measure strictly
    cheaper than the committed placement, else synthesis under-searched
    and the committed claim of local minimality is false.
    """
    case = _case(report, name)
    stripped, sites, assignment = _rebuild(name, case)
    forbidden = {tuple(o) for o in case["forbidden"]}
    offsets = list(case["offsets"])
    chosen_cycles = case["synthesized"]["cycles"]

    neighbors = list(weakened_neighbors(assignment))
    random.Random(f"synth-minimality:{MINIMALITY_SEED}:{name}").shuffle(
        neighbors)
    sound_neighbors = 0
    for _, neighbor in neighbors:
        variant = apply_placement(stripped, sites, neighbor)
        allowed, _ = _both_allowed(variant)
        if allowed & forbidden:
            continue  # unsound: its cost is irrelevant
        sound_neighbors += 1
        cycles = placement_cycles(variant, offsets)
        assert cycles >= chosen_cycles, (
            f"{name}: one-step-weakened neighbour {neighbor} is sound and "
            f"strictly cheaper ({cycles} < {chosen_cycles} cycles) -- the "
            f"committed placement is not locally minimal"
        )
    if forbidden:
        assert neighbors, f"{name}: committed placement has no fences"


def test_report_totals_are_consistent(report):
    t = report["totals"]
    cases = report["cases"].values()
    assert t["synth_stall"] == sum(
        c["synthesized"]["stall_cycles"] for c in cases)
    assert t["hand_stall"] == sum(
        c["handwritten"]["stall_cycles"] for c in cases)
    assert t["synth_fences"] == sum(
        c["synthesized"]["fence_count"] for c in cases)
    assert t["hand_fences"] == sum(
        c["handwritten"]["fence_count"] for c in cases)
    assert report["ok"] is True
    assert report["regressions"] == []
    assert report["engine_failures"] == []


def test_report_covers_the_whole_corpus(report):
    assert sorted(report["cases"]) == sorted(_NAMES)
    assert report["smoke"] is False


@pytest.mark.parametrize("name", _NAMES)
def test_synthesized_never_costlier_than_handwritten(name, report):
    """The committed acceptance bar, re-read from the artifact."""
    case = _case(report, name)
    assert case["ok"] is True
    assert case["handwritten"]["sound"] is True
    assert (case["synthesized"]["stall_cycles"]
            <= case["handwritten"]["stall_cycles"])
    assert (case["synthesized"]["stall_cycles"] <= case["all_full_stall"])
