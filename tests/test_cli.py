"""Tests for the ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import main


def test_hwcost_command(capsys):
    assert main(["hwcost"]) == 0
    out = capsys.readouterr().out
    assert "hardware cost" in out
    assert "77.5 bytes" in out


def test_litmus_command(tmp_path, capsys):
    f = tmp_path / "sb.litmus"
    f.write_text(
        """
        name SBdemo
        x = 1  | y = 1
        fence  | fence
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """
    )
    assert main(["litmus", str(f)]) == 0
    out = capsys.readouterr().out
    assert "SBdemo" in out
    assert "never observed" in out


def test_litmus_observes_relaxed_outcome(tmp_path, capsys):
    f = tmp_path / "sb_nofence.litmus"
    f.write_text(
        """
        x = 1  | y = 1
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """
    )
    assert main(["litmus", str(f)]) == 0
    assert "OBSERVED" in capsys.readouterr().out


def test_litmus_requires_file():
    with pytest.raises(SystemExit):
        main(["litmus"])


def test_litmus_missing_file_clean_error(capsys):
    """A missing file exits non-zero with a message, not a traceback."""
    assert main(["litmus", "/no/such/file.litmus"]) == 2
    err = capsys.readouterr().err
    assert "cannot read" in err
    assert "Traceback" not in err


def test_litmus_unparseable_file_clean_error(tmp_path, capsys):
    f = tmp_path / "bad.litmus"
    f.write_text("x = 1 | garbage {{{\n")
    assert main(["litmus", str(f)]) == 2
    err = capsys.readouterr().err
    assert "garbage" in err
    assert "Traceback" not in err


def test_chaos_command_smoke(capsys):
    assert main(["chaos", "--seeds", "1", "--algos", "lamport",
                 "--scenarios", "latency,scope"]) == 0
    out = capsys.readouterr().out
    assert "chaos sweep" in out
    assert "all 2 cases passed" in out
    assert "1/1" in out


def test_chaos_unknown_algo_rejected(capsys):
    assert main(["chaos", "--seeds", "1", "--algos", "nope"]) == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["figNaN"])


def test_fig14_command_small(capsys):
    assert main(["fig14", "--scale", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "class vs set" in out
    for name in ("msn", "harris", "pst", "ptc"):
        assert name in out


def test_dense_loop_escape_hatch_changes_nothing(tmp_path, capsys):
    """--dense-loop runs the reference engine with identical output."""
    f = tmp_path / "sb.litmus"
    f.write_text(
        """
        name SBdemo
        x = 1  | y = 1
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """
    )
    assert main(["litmus", str(f)]) == 0
    fast_out = capsys.readouterr().out
    assert main(["litmus", str(f), "--dense-loop"]) == 0
    dense_out = capsys.readouterr().out
    assert dense_out == fast_out
