"""Tests for the ``python -m repro`` command-line driver."""

import json

import pytest

import repro.litmus.corpus as corpus_mod
from repro.__main__ import main
from repro.litmus.corpus import CorpusEntry


def test_hwcost_command(capsys):
    assert main(["hwcost"]) == 0
    out = capsys.readouterr().out
    assert "hardware cost" in out
    assert "77.5 bytes" in out


def test_litmus_command(tmp_path, capsys):
    f = tmp_path / "sb.litmus"
    f.write_text(
        """
        name SBdemo
        x = 1  | y = 1
        fence  | fence
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """
    )
    assert main(["litmus", str(f)]) == 0
    out = capsys.readouterr().out
    assert "SBdemo" in out
    assert "never observed" in out


def test_litmus_observes_relaxed_outcome(tmp_path, capsys):
    f = tmp_path / "sb_nofence.litmus"
    f.write_text(
        """
        x = 1  | y = 1
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """
    )
    assert main(["litmus", str(f)]) == 0
    assert "OBSERVED" in capsys.readouterr().out


def test_litmus_requires_file():
    with pytest.raises(SystemExit):
        main(["litmus"])


def test_litmus_missing_file_clean_error(capsys):
    """A missing file exits non-zero with a message, not a traceback."""
    assert main(["litmus", "/no/such/file.litmus"]) == 2
    err = capsys.readouterr().err
    assert "cannot read" in err
    assert "Traceback" not in err


def test_litmus_unparseable_file_clean_error(tmp_path, capsys):
    f = tmp_path / "bad.litmus"
    f.write_text("x = 1 | garbage {{{\n")
    assert main(["litmus", str(f)]) == 2
    err = capsys.readouterr().err
    assert "garbage" in err
    assert "Traceback" not in err


def test_litmus_observed_condition_names_matching_outcome(tmp_path, capsys):
    """An observed exists clause lists the exact matching tuples."""
    f = tmp_path / "sb_nofence.litmus"
    f.write_text(
        """
        x = 1  | y = 1
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """
    )
    assert main(["litmus", str(f)]) == 0
    out = capsys.readouterr().out
    assert "matching outcome: (0, 0)" in out


def _rigged_corpus(expect_observable: bool):
    """A one-entry corpus whose expectation can be forced wrong."""
    return [CorpusEntry(
        "SB-rigged",
        """
        name SB-rigged
        x = 1  | y = 1
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """,
        observable_rmo=expect_observable,
    )]


def test_campaign_litmus_mismatch_names_offending_outcome(monkeypatch, capsys):
    """A forbidden-but-observed litmus failure exits non-zero and names
    the offending outcome tuple, not just the test."""
    monkeypatch.setattr(corpus_mod, "CORPUS", _rigged_corpus(False))
    assert main(["campaign", "--litmus", "--no-cache"]) == 1
    captured = capsys.readouterr()
    assert "MISMATCH" in captured.out
    assert "forbidden outcome observed" in captured.err
    assert "('r0', 'r1') = (0, 0)" in captured.err


def test_campaign_litmus_vacuous_expectation_reports_observed_set(
        monkeypatch, capsys):
    """The inverse mismatch (expected outcome never seen) lists what
    *was* observed so the vacuity is debuggable."""
    monkeypatch.setattr(corpus_mod, "CORPUS", [CorpusEntry(
        "CoWR-rigged",
        """
        name CoWR-rigged
        x = 1  | r0 = x
        x = 2  | r1 = x
        exists r0 == 2 and r1 == 1
        """,
        observable_rmo=True,  # coherence forbids it: expectation is wrong
    )])
    assert main(["campaign", "--litmus", "--no-cache"]) == 1
    err = capsys.readouterr().err
    assert "expected-observable outcome never seen" in err
    assert "observed only" in err


def test_campaign_litmus_happy_path_exits_zero(monkeypatch, capsys):
    monkeypatch.setattr(corpus_mod, "CORPUS", _rigged_corpus(True))
    assert main(["campaign", "--litmus", "--no-cache"]) == 0
    assert "ok" in capsys.readouterr().out


def test_verify_command_smoke(tmp_path, capsys):
    out_path = tmp_path / "verify-report.json"
    assert main(["verify", "--smoke", "--no-cache",
                 "--engines", "event",
                 "--verify-modes", "none,sfence-set",
                 "--verify-out", str(out_path)]) == 0
    captured = capsys.readouterr()
    assert "exhaustive allowed sets vs simulator coverage" in captured.out
    assert "zero soundness violations" in captured.err
    report = json.loads(out_path.read_text())
    assert report["ok"] is True
    assert report["soundness_violations"] == []
    sb = report["tests"]["SB"]["modes"]
    assert [0, 0] in sb["none"]["allowed"]
    assert [0, 0] not in sb["sfence-set"]["allowed"]
    covered, total = sb["none"]["engines"]["event"]["coverage"]
    assert 0 < covered <= total


def test_verify_rejects_unknown_mode(capsys):
    assert main(["verify", "--verify-modes", "nope", "--no-cache"]) == 2
    assert "unknown fence mode" in capsys.readouterr().err


def test_chaos_command_smoke(capsys):
    assert main(["chaos", "--seeds", "1", "--algos", "lamport",
                 "--scenarios", "latency,scope"]) == 0
    out = capsys.readouterr().out
    assert "chaos sweep" in out
    assert "all 2 cases passed" in out
    assert "1/1" in out


def test_chaos_unknown_algo_rejected(capsys):
    assert main(["chaos", "--seeds", "1", "--algos", "nope"]) == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["figNaN"])


def test_parallel_accepts_auto_and_counts(monkeypatch, capsys):
    monkeypatch.setattr(corpus_mod, "CORPUS", _rigged_corpus(True))
    assert main(["campaign", "--litmus", "--no-cache",
                 "--parallel", "auto"]) == 0
    capsys.readouterr()
    assert main(["campaign", "--litmus", "--no-cache", "--parallel", "2",
                 "--fork-per-job"]) == 0
    assert "ok" in capsys.readouterr().out


def test_parallel_rejects_garbage():
    with pytest.raises(SystemExit):
        main(["chaos", "--parallel", "lots"])


def test_implicit_auto_parallel_never_creates_cache_dir(monkeypatch, tmp_path,
                                                        capsys):
    """The auto default must not start writing .campaign-cache unasked;
    an explicit --parallel keeps opting into the shared resume cache."""
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(corpus_mod, "CORPUS", _rigged_corpus(True))
    assert main(["campaign", "--litmus"]) == 0
    assert not (tmp_path / ".campaign-cache").exists()
    assert main(["campaign", "--litmus", "--parallel", "1"]) == 0
    assert (tmp_path / ".campaign-cache").exists()


def test_perf_campaign_writes_gated_report(monkeypatch, tmp_path, capsys):
    from repro.analysis import campthru
    from repro.campaign import Job

    monkeypatch.setattr(campthru, "_sweep_jobs", lambda smoke: {
        campthru.GATE_SWEEP: [
            Job("selftest", {"mode": "ok", "echo": i}) for i in range(3)
        ],
    })
    out_path = tmp_path / "BENCH_campaign.json"
    assert main(["perf", "--campaign", "--smoke",
                 "--campaign-out", str(out_path),
                 "--min-jobs-ratio", "0"]) == 0
    captured = capsys.readouterr()
    assert "campaign throughput" in captured.out
    assert "report written" in captured.err
    report = json.loads(out_path.read_text())
    assert report["ok"] is True
    assert report["gate"]["passed"] is True
    assert report["sweeps"][campthru.GATE_SWEEP]["identical"] is True


def test_perf_campaign_gate_failure_exits_nonzero(monkeypatch, tmp_path,
                                                  capsys):
    from repro.analysis import campthru
    from repro.campaign import Job

    monkeypatch.setattr(campthru, "_sweep_jobs", lambda smoke: {
        campthru.GATE_SWEEP: [Job("selftest", {"mode": "ok"})],
    })
    out_path = tmp_path / "BENCH_campaign.json"
    assert main(["perf", "--campaign", "--smoke",
                 "--campaign-out", str(out_path),
                 "--min-jobs-ratio", "1e9"]) == 1
    assert "cold speedup" in capsys.readouterr().err


def test_fig14_command_small(capsys):
    assert main(["fig14", "--scale", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "class vs set" in out
    for name in ("msn", "harris", "pst", "ptc"):
        assert name in out


def test_dense_loop_escape_hatch_changes_nothing(tmp_path, capsys):
    """--dense-loop runs the reference engine with identical output."""
    f = tmp_path / "sb.litmus"
    f.write_text(
        """
        name SBdemo
        x = 1  | y = 1
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """
    )
    assert main(["litmus", str(f)]) == 0
    fast_out = capsys.readouterr().out
    assert main(["litmus", str(f), "--dense-loop"]) == 0
    dense_out = capsys.readouterr().out
    assert dense_out == fast_out

# ---------------------------------------------------------- resilience surface
def test_campaign_unrecovered_failures_exit_nonzero(monkeypatch, capsys):
    """Jobs still crash-classified after the retry budget produce a
    per-classification summary line and a non-zero exit."""
    import repro.campaign as campaign_mod
    from repro.campaign import Job

    monkeypatch.setattr(
        campaign_mod, "litmus_jobs",
        lambda **kw: [Job("selftest", {"mode": "crash", "name": "crasher"})])
    assert main(["campaign", "--litmus", "--no-cache", "--parallel", "1",
                 "--retries", "1", "--retry-backoff", "0.01"]) == 1
    captured = capsys.readouterr()
    assert "unrecovered failures after retries: worker-crash=1" in captured.err
    assert "retry 1/1" in captured.err   # the retry itself was reported
    assert "1 retried" in captured.err
    assert "FAIL" in captured.out        # and the litmus table shows it


def test_campaign_retries_disabled_on_request(monkeypatch, capsys):
    import repro.campaign as campaign_mod
    from repro.campaign import Job

    monkeypatch.setattr(
        campaign_mod, "litmus_jobs",
        lambda **kw: [Job("selftest", {"mode": "crash", "name": "crasher"})])
    assert main(["campaign", "--litmus", "--no-cache", "--parallel", "1",
                 "--retries", "0"]) == 1
    err = capsys.readouterr().err
    assert "retry" not in err.split("unrecovered")[0]  # no retry happened
    assert "worker-crash=1" in err


def _fake_differential_report(ok: bool) -> dict:
    phase = {"executed": 5, "cached": 0, "failures": 0, "retried": 2,
             "recovered": 2, "downgrades": [], "quarantined": 0,
             "manifest_repair": None, "fingerprint": "f" * 64}
    recovery = dict(phase, quarantined=2,
                    manifest_repair={"dropped_lines": 1, "recovered_blobs": 0})
    return {"seed": 3, "jobs": 5, "parallel": 2, "smoke": True,
            "identical": ok, "ok": ok, "sabotage": {},
            "phases": {"baseline": dict(phase, retried=0, recovered=0),
                       "faulted": phase, "recovery": recovery}}


def test_campaign_chaos_infra_reports_phases(monkeypatch, capsys):
    import repro.campaign as campaign_mod

    seen = {}

    def fake(seed, parallel, smoke, progress):
        seen.update(seed=seed, parallel=parallel, smoke=smoke)
        return _fake_differential_report(True)

    monkeypatch.setattr(campaign_mod, "run_resilience_differential", fake)
    assert main(["campaign", "--chaos-infra", "3", "--smoke",
                 "--parallel", "2"]) == 0
    assert seen == {"seed": 3, "parallel": 2, "smoke": True}
    captured = capsys.readouterr()
    assert "campaign resilience differential" in captured.out
    assert "baseline" in captured.out and "recovery" in captured.out
    assert "byte-identical outcome fingerprint" in captured.out
    assert "manifest repair: 1 torn line(s) dropped" in captured.err


def test_campaign_chaos_infra_divergence_fails(monkeypatch, capsys):
    import repro.campaign as campaign_mod

    monkeypatch.setattr(
        campaign_mod, "run_resilience_differential",
        lambda seed, parallel, smoke, progress: _fake_differential_report(False))
    assert main(["campaign", "--chaos-infra", "3"]) == 1
    assert "fingerprints diverged" in capsys.readouterr().err


def test_synth_command_smoke(tmp_path, capsys):
    out_path = tmp_path / "synth-report.json"
    assert main(["synth", "--smoke", "--no-cache",
                 "--synth-tests", "SB,barnes-publish",
                 "--synth-out", str(out_path)]) == 0
    captured = capsys.readouterr()
    assert "hand-written vs synthesized placements" in captured.out
    assert "proven sound by both oracles" in captured.err
    report = json.loads(out_path.read_text())
    assert report["ok"] is True
    assert sorted(report["cases"]) == ["SB", "barnes-publish"]
    barnes = report["cases"]["barnes-publish"]
    # the headline: scoped fences beat the hand-written bracketing
    assert barnes["stall_savings"] > 0
    assert barnes["synthesized"]["mode_mix"] == {"sfence-set": 2}


def test_synth_rejects_unknown_test(capsys):
    assert main(["synth", "--synth-tests", "nope", "--no-cache"]) == 2
    assert "unknown synth test" in capsys.readouterr().err


def test_synth_rejects_unknown_mode(capsys):
    assert main(["synth", "--synth-modes", "mega", "--no-cache"]) == 2
    assert "unknown fence mode" in capsys.readouterr().err


# ------------------------------------------------------------- synth --apps
def _fake_app_payload(ok=True, hand_failures=(), mutation_survivor=False):
    """A minimal but shape-complete run_app_synth_case payload."""
    battery = {
        "put.publish:delete": {
            "kind": "delete", "slot": "put.publish",
            "killed": not mutation_survivor, "runs": 2,
            "kills": 0 if mutation_survivor else 2,
            "evidence": [] if mutation_survivor else [
                {"scenario": "drain", "seed": 0, "status": "violations",
                 "detail": "[delay-pair-ww] reordered publish"}],
        },
    }
    failures = list(hand_failures)
    return {
        "ok": ok, "app": "chase-lev", "oracle": "chaos",
        "schedule": "sequential", "note": "",
        "recording": {"accesses": 8, "fences": 2, "steps": 20},
        "analysis": {"critical_cycles": 1, "delay_pairs": 1,
                     "components": 1, "patterns": [], "hand_enforced": []},
        "monitor": {"candidates": 0, "monitored": 0, "calibrated_out": []},
        "slots": {}, "synthesized": {"put.publish": "sfence-set"},
        "scope": "set", "kernels": None,
        "fences": {"hand": 2, "synthesized": 1},
        "soundness": {
            "method": "chaos", "sound": not failures,
            "hand": {"runs": 2, "failures": failures, "ok": not failures},
            "synthesized": {"runs": 2, "failures": [], "ok": True},
            "confidence": 0.0 if failures else 1.0,
        },
        "mutation": {"battery": battery, "mutants": 1,
                     "killed": 0 if mutation_survivor else 1,
                     "kill_rate": 0.0 if mutation_survivor else 1.0,
                     "p_floor": 0.0 if mutation_survivor else 1.0},
        "cost": None,
    }


def test_synth_apps_command_smoke(tmp_path, capsys):
    out_path = tmp_path / "app-synth-report.json"
    assert main(["synth", "--apps", "--smoke", "--no-cache", "--parallel", "0",
                 "--synth-tests", "chase-lev",
                 "--app-synth-out", str(out_path)]) == 0
    captured = capsys.readouterr()
    assert "whole-program fence synthesis" in captured.out
    assert "(smoke)" in captured.out
    assert "proven sound by their designated oracles" in captured.err
    report = json.loads(out_path.read_text())
    assert report["ok"] is True
    assert report["smoke"] is True
    assert sorted(report["cases"]) == ["chase-lev"]
    case = report["cases"]["chase-lev"]
    assert case["soundness"]["sound"] is True
    assert all(m["killed"] for m in case["mutation"]["battery"].values())


def test_synth_apps_rejects_unknown_app(capsys):
    assert main(["synth", "--apps", "--synth-tests", "nope",
                 "--no-cache"]) == 2
    assert "unknown app synth target" in capsys.readouterr().err


def test_synth_apps_hand_rejection_names_the_counterexample(
        monkeypatch, tmp_path, capsys):
    """A rejected hand placement exits non-zero and prints the exact
    (scenario, seed) chaos counterexample that condemned it."""
    import repro.synth.programs as programs_mod

    payload = _fake_app_payload(ok=False, hand_failures=[
        {"scenario": "drain", "seed": 1, "status": "violations",
         "detail": "[delay-pair-ww] store became visible early"}])
    monkeypatch.setattr(programs_mod, "run_app_synth_case",
                        lambda name, **kw: payload)
    out_path = tmp_path / "app-synth-report.json"
    assert main(["synth", "--apps", "--no-cache", "--parallel", "0",
                 "--synth-tests", "chase-lev",
                 "--app-synth-out", str(out_path)]) == 1
    err = capsys.readouterr().err
    assert "HAND-WRITTEN REJECTED chase-lev" in err
    assert "scenario=drain seed=1 status=violations" in err
    assert "FAIL -- see report" in err
    assert json.loads(out_path.read_text())["ok"] is False


def test_synth_apps_mutation_survivor_fails_the_run(
        monkeypatch, tmp_path, capsys):
    """A battery survivor is an anti-vacuity failure: the oracle cannot
    see the fences it polices, so the run must not pass."""
    import repro.synth.programs as programs_mod

    payload = _fake_app_payload(ok=False, mutation_survivor=True)
    monkeypatch.setattr(programs_mod, "run_app_synth_case",
                        lambda name, **kw: payload)
    assert main(["synth", "--apps", "--no-cache", "--parallel", "0",
                 "--synth-tests", "chase-lev",
                 "--app-synth-out", str(tmp_path / "r.json")]) == 1
    err = capsys.readouterr().err
    assert "MUTATION SURVIVORS chase-lev" in err
    assert "put.publish:delete" in err


def test_synth_apps_oracle_disagreement_aborts(monkeypatch, tmp_path, capsys):
    """An oracle disagreement (static floor accepts, chaos rejects) is
    an engine failure, never a silently-dropped case."""
    import repro.synth.programs as programs_mod
    from repro.synth.search import SynthesisError

    def boom(name, **kw):
        raise SynthesisError(
            f"{name}: oracle disagreement: the static delay-set floor "
            f"accepts the synthesized placement but chaos run "
            f"scenario=drain seed=0 reports violations")

    monkeypatch.setattr(programs_mod, "run_app_synth_case", boom)
    assert main(["synth", "--apps", "--no-cache", "--parallel", "0",
                 "--retries", "0", "--synth-tests", "chase-lev",
                 "--app-synth-out", str(tmp_path / "r.json")]) == 1
    err = capsys.readouterr().err
    assert "ENGINE FAILURE app-synth:chase-lev" in err
    assert "oracle disagreement" in err
