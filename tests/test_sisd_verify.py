"""The full verify matrix and the three-way figure under SiSd.

The soundness claim the tentpole rests on: with the SiSd backend
selected, every outcome either simulator engine observes on every
(test, fence-mode) cell of the litmus corpus still lies inside that
cell's exhaustively-explored allowed set.  The backend only re-times
the machine -- SI/SD work at sync points, no invalidation traffic --
so any outcome leak here is a backend bug, not a model change.

On top of the matrix: the assembled verify report carries the backend
axis (composite ``engine@backend`` keys, plain keys for the default
backend so committed artifacts stay stable), and the ``figbackend``
three-way comparison (S-Fence vs full fence vs SiSd) is cache-keyed by
backend, reproduces byte-identically on a warm cache, and matches the
committed report at the committed scale.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import (
    ResultCache,
    backend_compare_report,
    figure_jobs,
    run_campaign,
    verify_jobs,
    write_backend_compare_report,
)
from repro.litmus.corpus import CORPUS
from repro.verify.modes import FENCE_MODES
from repro.verify.runner import assemble_verify_report, engine_key, verify_case

ENTRY = {e.name: e for e in CORPUS}
REPO_ROOT = Path(__file__).resolve().parents[1]


# ------------------------------------------------------------ the 35-cell matrix
@pytest.mark.parametrize("entry", CORPUS, ids=[e.name for e in CORPUS])
@pytest.mark.parametrize("engine", ["event", "dense"])
def test_sisd_sound_on_full_matrix(entry, engine):
    """All 35 (test, mode) cells, both engines, zero soundness leaks."""
    for mode in FENCE_MODES:
        result = verify_case({
            "name": entry.name, "source": entry.source, "mode": mode,
            "engine": engine, "seeds": 1, "smoke": True, "backend": "sisd",
        })
        assert result["backend"] == "sisd"
        assert result["reference_match"], (
            f"{entry.name}[{mode}] under sisd: explorer/reference split: "
            f"explorer-only {result['explorer_only']}, "
            f"reference-only {result['reference_only']}"
        )
        assert result["sound"], (
            f"{entry.name}[{mode}] on {engine}@sisd: outcomes outside the "
            f"allowed set: {result['violations']} "
            f"(registers {result['registers']})"
        )


def test_engine_key_scheme():
    """Default-backend cells keep their legacy plain engine keys."""
    assert engine_key("event", "mesi") == "event"
    assert engine_key("dense", "mesi") == "dense"
    assert engine_key("event", "sisd") == "event@sisd"


def test_verify_report_carries_the_backend_axis():
    jobs = verify_jobs(modes=["none"], engines=["event"],
                       backends=["mesi", "sisd"], smoke=True)
    assert len(jobs) == 2 * len(CORPUS)
    result = run_campaign(jobs, parallel=0)
    assert result.ok
    report = assemble_verify_report(result.outcomes,
                                    seeds=jobs[0].params["seeds"], smoke=True)
    assert report["ok"] and not report["soundness_violations"]
    assert report["backends"] == ["mesi", "sisd"]
    assert report["engines"] == ["event", "event@sisd"]
    for cell in report["tests"].values():
        for mode_slot in cell["modes"].values():
            assert set(mode_slot["engines"]) == {"event", "event@sisd"}


def test_verify_jobs_reject_unknown_backend():
    with pytest.raises(KeyError, match="backend"):
        verify_jobs(backends=["mesi", "token-coherence"])


# --------------------------------------------------------- three-way figure
def _three_way(tmp_path, scale: float, cache_name: str):
    jobs = figure_jobs("figbackend", scale=scale)
    cache = ResultCache(tmp_path / cache_name)
    result = run_campaign(jobs, parallel=0, cache=cache)
    assert result.ok
    return jobs, result


def test_figbackend_jobs_sweep_three_configs_per_app(tmp_path):
    jobs = figure_jobs("figbackend", scale=0.3)
    assert len(jobs) == 12  # 4 apps x (S-Fence, full-fence, SiSd)
    labels = {j.params["label"] for j in jobs}
    assert labels == {"S-Fence", "full-fence", "SiSd"}
    backends = {j.params["label"]: j.params["backend"] for j in jobs}
    assert backends == {"S-Fence": "mesi", "full-fence": "mesi",
                        "SiSd": "sisd"}


def test_three_way_report_reproduces_byte_identically_warm(tmp_path):
    jobs, cold = _three_way(tmp_path, 0.3, "bc")
    report = backend_compare_report(jobs, cold.results())
    assert report["complete"]
    for app, entry in report["apps"].items():
        cfgs = entry["configs"]
        assert set(cfgs) == {"S-Fence", "full-fence", "SiSd"}
        assert entry["sfence_speedup_vs_full"] == pytest.approx(
            cfgs["full-fence"]["cycles"] / cfgs["S-Fence"]["cycles"]
        )
        assert entry["sfence_speedup_vs_sisd"] == pytest.approx(
            cfgs["SiSd"]["cycles"] / cfgs["S-Fence"]["cycles"]
        )
    cold_path = tmp_path / "cold.json"
    write_backend_compare_report(report, cold_path)

    # the warm pass serves every cell from cache and must not move a byte
    warm = run_campaign(jobs, parallel=0,
                        cache=ResultCache(tmp_path / "bc"))
    assert warm.executed == 0 and warm.cached == len(jobs)
    warm_path = tmp_path / "warm.json"
    write_backend_compare_report(
        backend_compare_report(jobs, warm.results()), warm_path)
    assert warm_path.read_bytes() == cold_path.read_bytes()


def test_committed_three_way_report_is_current(tmp_path):
    """Regenerating at the committed scale reproduces the artifact."""
    committed = REPO_ROOT / "backend-compare-report.json"
    scale = json.loads(committed.read_text())["scale"]
    jobs = figure_jobs("figbackend", scale=scale)
    result = run_campaign(jobs, parallel=0)
    assert result.ok
    fresh = tmp_path / "fresh.json"
    write_backend_compare_report(
        backend_compare_report(jobs, result.results()), fresh)
    assert fresh.read_bytes() == committed.read_bytes(), (
        "backend-compare-report.json is stale -- regenerate with "
        "`python -m repro figbackend`"
    )
