"""Extension workloads (Treiber stack, Lamport queue) behave like the
paper's lock-free group: safe under both fence flavours, S-Fence helps."""

import pytest

from repro.algorithms.workloads import build_lamport_workload, build_treiber_workload
from repro.runtime.lang import Env
from repro.sim.config import SimConfig

BUILDERS = {
    "treiber": lambda env, lvl: build_treiber_workload(env, workload_level=lvl, iterations=10),
    "lamport": lambda env, lvl: build_lamport_workload(env, workload_level=lvl, iterations=20),
}


def run(name, level, scoped):
    env = Env(SimConfig(scoped_fences=scoped))
    handle = BUILDERS[name](env, level)
    res = env.run(handle.program, max_cycles=5_000_000)
    handle.check()
    return res


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_safe_under_both_flavours(name):
    for scoped in (False, True):
        run(name, 1, scoped)


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_sfence_never_slower(name):
    trad = run(name, 2, scoped=False)
    scoped = run(name, 2, scoped=True)
    assert scoped.cycles <= trad.cycles


def test_lamport_benefit_at_moderate_workload():
    trad = run("lamport", 2, scoped=False)
    scoped = run("lamport", 2, scoped=True)
    assert trad.cycles / scoped.cycles > 1.1
