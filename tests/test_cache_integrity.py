"""ResultCache integrity: checksums on every blob, quarantine of corrupt
entries, tolerant manifest loading, startup manifest repair."""

from __future__ import annotations

import json

from repro.campaign import (
    Job,
    ResultCache,
    STATUS_OK,
    result_checksum,
    run_campaign,
)


def make_cache(tmp_path, n=3):
    cache = ResultCache(tmp_path, fingerprint="fp")
    jobs = [Job("selftest", {"mode": "ok", "echo": i}) for i in range(n)]
    for job in jobs:
        cache.put(job, STATUS_OK, {"echo": job.params["echo"]})
    return cache, jobs


def blob_path(cache, job):
    return cache._object_path(cache.key_for(job))


# ------------------------------------------------------------------ checksums
def test_result_checksum_is_canonical():
    assert result_checksum({"a": 1, "b": 2}) == result_checksum({"b": 2, "a": 1})
    assert result_checksum({"a": 1}) != result_checksum({"a": 2})


def test_every_blob_carries_its_checksum(tmp_path):
    cache, jobs = make_cache(tmp_path)
    for job in jobs:
        obj = json.loads(blob_path(cache, job).read_text())
        assert obj["sha256"] == result_checksum(obj["result"])


def test_clean_roundtrip_still_hits(tmp_path):
    cache, jobs = make_cache(tmp_path)
    assert cache.get(jobs[1]) == {"echo": 1}
    assert cache.quarantined == 0


# ----------------------------------------------------------------- quarantine
def test_tampered_blob_is_quarantined_not_served(tmp_path):
    """Valid JSON with altered payload: only the checksum catches it."""
    cache, jobs = make_cache(tmp_path)
    path = blob_path(cache, jobs[0])
    obj = json.loads(path.read_text())
    obj["result"] = {"echo": 999}  # plausible but wrong
    path.write_text(json.dumps(obj, sort_keys=True))
    assert cache.get(jobs[0]) is None
    assert cache.quarantined == 1
    assert not path.exists()
    assert (cache.root / "corrupt" / path.name).exists()


def test_truncated_blob_is_quarantined(tmp_path):
    cache, jobs = make_cache(tmp_path)
    path = blob_path(cache, jobs[0])
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    assert cache.get(jobs[0]) is None
    assert cache.quarantined == 1


def test_pre_checksum_blob_is_quarantined(tmp_path):
    """Objects written before checksums existed are not trusted."""
    cache, jobs = make_cache(tmp_path)
    path = blob_path(cache, jobs[0])
    obj = json.loads(path.read_text())
    del obj["sha256"]
    path.write_text(json.dumps(obj, sort_keys=True))
    assert cache.get(jobs[0]) is None
    assert cache.quarantined == 1


def test_plain_miss_is_not_a_quarantine(tmp_path):
    cache, _ = make_cache(tmp_path)
    assert cache.get(Job("selftest", {"mode": "ok", "echo": 99})) is None
    assert cache.quarantined == 0 and cache.misses == 1


def test_corrupt_entry_is_recomputed_and_reusable(tmp_path):
    """The never-served property end to end: corrupt, recompute, rehit."""
    cache = ResultCache(tmp_path, fingerprint="fp")
    jobs = [Job("selftest", {"mode": "ok", "echo": 7})]
    run_campaign(jobs, parallel=0, cache=cache)
    blob_path(cache, jobs[0]).write_text('{"half": "a torn wr')
    rerun = run_campaign(jobs, parallel=0, cache=ResultCache(tmp_path, fingerprint="fp"))
    assert rerun.executed == 1 and rerun.ok
    warm = run_campaign(jobs, parallel=0, cache=ResultCache(tmp_path, fingerprint="fp"))
    assert warm.cached == 1 and warm.results() == rerun.results()


# ----------------------------------------------------------- manifest healing
def test_manifest_skips_torn_trailing_line(tmp_path, caplog):
    cache, jobs = make_cache(tmp_path)
    with open(cache.root / "manifest.jsonl", "a") as fh:
        fh.write('{"key": "deadbeef", "kin')  # torn mid-append
    with caplog.at_level("WARNING", logger="repro.campaign.cache"):
        entries = cache.manifest()
    assert len(entries) == len(jobs)  # the torn line is dropped, not fatal
    assert any("torn manifest" in rec.message for rec in caplog.records)


def test_manifest_skips_garbage_and_non_record_lines(tmp_path):
    cache, jobs = make_cache(tmp_path)
    with open(cache.root / "manifest.jsonl", "a") as fh:
        fh.write("not json at all\n")
        fh.write('"a json string, not a record"\n')
        fh.write('{"no_key_field": true}\n')
    assert len(cache.manifest()) == len(jobs)


def test_startup_repair_rewrites_torn_manifest(tmp_path):
    cache, jobs = make_cache(tmp_path)
    with open(cache.root / "manifest.jsonl", "a") as fh:
        fh.write('{"key": "deadbeef", "kin')
    reopened = ResultCache(tmp_path, fingerprint="fp")
    assert reopened.repaired == {"dropped_lines": 1, "recovered_blobs": 0}
    # the rewritten manifest is clean: every line parses
    text = (tmp_path / "manifest.jsonl").read_text()
    assert all(json.loads(line) for line in text.splitlines())
    assert len(reopened.manifest()) == len(jobs)
    # a third open sees a healthy manifest and repairs nothing
    assert ResultCache(tmp_path, fingerprint="fp").repaired is None


def test_startup_repair_reindexes_orphaned_blobs(tmp_path):
    """Blobs whose manifest lines were lost to the tear are re-indexed
    from disk -- the cache serves them again without recomputation."""
    cache, jobs = make_cache(tmp_path)
    manifest = tmp_path / "manifest.jsonl"
    lines = manifest.read_text().splitlines()
    # lose the last record to the torn append that replaced it
    manifest.write_text("\n".join(lines[:-1]) + "\n" + '{"key": "dead')
    reopened = ResultCache(tmp_path, fingerprint="fp")
    assert reopened.repaired == {"dropped_lines": 1, "recovered_blobs": 1}
    assert len(reopened.manifest()) == len(jobs)
    assert {e["key"] for e in reopened.manifest()} == \
        {cache.key_for(j) for j in jobs}
    assert reopened.get(jobs[-1]) == {"echo": len(jobs) - 1}


def test_clean_cache_needs_no_repair(tmp_path):
    make_cache(tmp_path)
    assert ResultCache(tmp_path, fingerprint="fp").repaired is None
    # an empty directory (no manifest yet) is also clean
    assert ResultCache(tmp_path / "fresh", fingerprint="fp").repaired is None
