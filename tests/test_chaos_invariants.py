"""Ordering-invariant checker: synthetic streams + mutation smoke tests.

The synthetic tests drive the monitor protocol by hand to pin down each
rule; the mutation tests break the real scope tracker and assert the
checker (not the algorithm checkers) notices -- the acceptance bar for
the chaos harness being non-tautological.
"""

from unittest import mock

import pytest

from repro.chaos.invariants import OrderingChecker, OrderingViolationError
from repro.chaos.runner import run_chaos_case
from repro.core.scope_tracker import ScopeTracker
from repro.isa.instructions import FenceKind, WAIT_BOTH, WAIT_STORES
from repro.sim.config import SimConfig

GLOBAL = ScopeTracker.GLOBAL_SCOPE
OVERFLOWED = ScopeTracker.OVERFLOWED


def make(**overrides) -> OrderingChecker:
    return OrderingChecker(SimConfig(**overrides))


def rules(checker):
    return {v.rule for v in checker.violations}


# ----------------------------------------------------------- scope-mask rule
def test_clean_scoped_dispatch_passes():
    c = make()
    c.on_scope(0, 1, "start", 7, 1)
    c.on_mem_dispatch(0, 2, 1, "store", 100, 1 << 1, False)
    c.on_mem_complete(0, 9, 1, False)
    assert c.ok
    c.assert_ok()  # no raise


def test_missing_scope_bit_flagged():
    c = make()
    c.on_scope(0, 1, "start", 7, 1)
    c.on_mem_dispatch(0, 2, 1, "store", 100, 0, False)
    assert rules(c) == {"scope-mask"}


def test_overflow_requires_all_class_bits():
    c = make()
    c.on_scope(0, 1, "start", 7, OVERFLOWED)
    c.on_mem_dispatch(0, 2, 1, "load", 100, 0b001, False)  # needs 0b111
    assert rules(c) == {"scope-mask"}
    c2 = make()
    c2.on_scope(0, 1, "start", 7, OVERFLOWED)
    c2.on_mem_dispatch(0, 2, 1, "load", 100, c2._all_class_mask, False)
    assert c2.ok


def test_set_flagged_op_needs_set_bit():
    c = make()
    c.on_mem_dispatch(0, 1, 1, "store", 100, 0, True)
    assert rules(c) == {"scope-mask"}
    c2 = make()
    c2.on_mem_dispatch(0, 1, 1, "store", 100, c2._set_bit, True)
    assert c2.ok


def test_scope_mask_rule_off_when_unscoped():
    c = make(scoped_fences=False)
    c.on_scope(0, 1, "start", 7, 1)
    c.on_mem_dispatch(0, 2, 1, "store", 100, 0, False)
    assert c.ok


# ----------------------------------------------------------- fence-order rule
def test_blocking_fence_past_older_store_flagged():
    c = make()
    c.on_scope(0, 1, "start", 7, 0)
    c.on_mem_dispatch(0, 2, 1, "store", 100, 0b1, False)
    c.on_fence_pass(0, 3, "class", WAIT_BOTH, 0, 2)
    assert rules(c) == {"fence-order"}


def test_fence_ignores_out_of_scope_ops():
    c = make()
    c.on_mem_dispatch(0, 2, 1, "store", 100, 0b10, False)  # entry 1 only
    c.on_fence_pass(0, 3, "class", WAIT_BOTH, 0, 2)        # watches entry 0
    assert c.ok


def test_fence_ignores_younger_ops():
    c = make()
    c.on_fence_pass(0, 3, "class", WAIT_BOTH, 0, 2)
    c.on_mem_dispatch(0, 4, 5, "store", 100, 0b1, False)   # seq 5 > fence seq 2
    assert c.ok


def test_fence_wait_mask_respected():
    c = make()
    c.on_mem_dispatch(0, 2, 1, "load", 100, 0b1, False)
    c.on_fence_pass(0, 3, "class", WAIT_STORES, 0, 2)      # ignores loads
    assert c.ok


def test_global_fence_watches_everything():
    c = make()
    c.on_mem_dispatch(0, 2, 1, "store", 100, 0, False)     # unscoped op
    c.on_fence_pass(0, 3, "global", WAIT_BOTH, GLOBAL, 2)
    assert rules(c) == {"fence-order"}


def test_speculative_fence_checked_at_completion():
    c = make()
    c.on_mem_dispatch(0, 2, 1, "store", 100, 0b1, False)
    c.on_fence_open(0, 3, 0, "class", WAIT_BOTH, 0, 2)
    assert c.ok                                   # open alone is fine
    c.on_fence_complete(0, 10, 0)                 # store still in flight
    assert rules(c) == {"fence-order"}


def test_speculative_fence_clean_completion():
    c = make()
    c.on_mem_dispatch(0, 2, 1, "store", 100, 0b1, False)
    c.on_fence_open(0, 3, 0, "class", WAIT_BOTH, 0, 2)
    c.on_mem_complete(0, 8, 1, False)
    c.on_fence_complete(0, 10, 0)
    assert c.ok


# ------------------------------------------------------- overflow-degrade rule
def test_class_fence_must_degrade_under_overflow():
    c = make()
    c.on_scope(0, 1, "start", 7, OVERFLOWED)
    c.on_fence_pass(0, 3, "class", WAIT_BOTH, 0, 0)
    assert "overflow-degrade" in rules(c)


def test_degraded_fence_under_overflow_ok():
    c = make()
    c.on_scope(0, 1, "start", 7, OVERFLOWED)
    c.on_fence_pass(0, 3, "class", WAIT_BOTH, GLOBAL, 0)
    c.on_scope(0, 4, "end", 7, OVERFLOWED)
    c.on_fence_pass(0, 5, "class", WAIT_BOTH, 0, 0)  # overflow over: scoped ok
    assert c.ok


def test_set_fence_exempt_from_degrade():
    """Set fences keep their dedicated FSB column during overflow."""
    c = make()
    c.on_scope(0, 1, "start", 7, OVERFLOWED)
    c.on_fence_pass(0, 3, "set", WAIT_BOTH, 3, 0)
    assert c.ok


# -------------------------------------------------- store/cas-past-fence rules
def test_store_drain_past_open_fence_flagged():
    c = make()
    c.on_fence_open(0, 3, 0, "class", WAIT_STORES, 0, 2)
    c.on_mem_dispatch(0, 4, 5, "store", 100, 0, False)
    c.on_store_drain(0, 9, 5)
    assert "store-past-fence" in rules(c)


def test_store_drain_after_fence_completion_ok():
    c = make()
    c.on_fence_open(0, 3, 0, "class", WAIT_STORES, 0, 2)
    c.on_fence_complete(0, 8, 0)
    c.on_mem_dispatch(0, 9, 5, "store", 100, 0, False)
    c.on_store_drain(0, 12, 5)
    assert c.ok


def test_cas_past_open_fence_flagged():
    c = make()
    c.on_fence_open(0, 3, 0, "class", WAIT_BOTH, 0, 2)
    c.on_mem_dispatch(0, 4, 5, "cas", 100, 0, False)
    assert "cas-past-fence" in rules(c)


# ----------------------------------------------------------- stream sanity
def test_orphan_completion_flagged():
    c = make()
    c.on_mem_complete(0, 5, 9, True)
    c.on_store_drain(0, 6, 10)
    c.on_fence_complete(0, 7, 3)
    assert rules(c) == {"stream-sanity"}
    assert c.violation_count == 3


def test_mismatched_fs_end_flagged():
    c = make()
    c.on_scope(0, 1, "start", 7, 1)
    c.on_scope(0, 2, "end", 7, 2)  # pops entry 2, FSS top is 1
    assert rules(c) == {"stream-sanity"}


def test_squash_resyncs_mirror():
    c = make()
    c.on_scope(0, 1, "start", 7, 1)
    c.on_scope(0, 2, "start", 8, 2)
    c.on_squash(0, 3, (1,), 0)     # wrong-path push of entry 2 undone
    c.on_scope(0, 4, "end", 7, 1)
    assert c.ok


# ------------------------------------------------------------- reporting
def test_assert_ok_raises_with_details():
    c = make()
    c.on_mem_complete(0, 5, 9, True)
    with pytest.raises(OrderingViolationError, match="stream-sanity"):
        c.assert_ok()
    assert c.report() == {
        "events": 1, "fences_checked": 0, "violations": 1, "coherence_syncs": 0,
    }


def test_violation_recording_is_bounded():
    c = make()
    for seq in range(c.MAX_RECORDED + 50):
        c.on_mem_complete(0, 1, seq, True)
    assert c.violation_count == c.MAX_RECORDED + 50
    assert len(c.violations) == c.MAX_RECORDED


# ------------------------------------------------------- mutation smoke tests
def test_mutant_losing_scope_bits_is_caught():
    """A tracker that stops stamping FSB bits on dispatched ops must be
    caught by the checker, not only by downstream symptoms."""
    orig = ScopeTracker.dispatch_mem

    def broken(self, is_load, flagged):
        orig(self, is_load, flagged)
        return 0

    with mock.patch.object(ScopeTracker, "dispatch_mem", broken):
        report = run_chaos_case("msn", "latency", 3)
    assert not report.ok
    assert report.violations > 0


def test_mutant_fences_never_wait_is_caught():
    with mock.patch.object(ScopeTracker, "fence_ready",
                           lambda self, kind, waits: True):
        report = run_chaos_case("treiber", "latency", 3)
    assert report.status == "violations"
    assert "fence-order" in report.detail


def test_mutant_overflow_never_degrades_is_caught():
    """A tracker that keeps resolving class fences to a stale FSB entry
    during overflow-counter mode violates overflow-degrade."""
    orig = ScopeTracker.resolve_fence_scope

    def broken(self, kind):
        scope = orig(self, kind)
        if (kind is FenceKind.CLASS and scope == self.GLOBAL_SCOPE
                and self.config.scoped_fences and self.overflow_count > 0):
            return 0  # pretend entry 0 is still the right column
        return scope

    with mock.patch.object(ScopeTracker, "resolve_fence_scope", broken):
        report = run_chaos_case("msn", "scope", 4)
    assert not report.ok
    assert "overflow-degrade" in report.detail or report.violations > 0
