"""The litmus corpus: every entry's expectation holds under RMO."""

import pytest

from repro.litmus.corpus import CORPUS, run_corpus
from repro.litmus.dsl import parse_litmus, run_litmus
from repro.sim.config import MemoryModel

FAST = [0, 1, 40, 150, 320]


@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
def test_corpus_expectation_under_rmo(entry):
    run = run_litmus(parse_litmus(entry.source), MemoryModel.RMO, FAST)
    assert run.condition_observed == entry.observable_rmo, (
        f"{entry.name}: expected observable={entry.observable_rmo}, "
        f"outcomes {sorted(run.outcomes, key=str)}"
    )


def test_every_relaxation_vanishes_under_sc():
    runs = run_corpus(MemoryModel.SC, FAST)
    for entry in CORPUS:
        assert not runs[entry.name].condition_observed, entry.name


def test_run_corpus_covers_everything():
    runs = run_corpus(offsets=[0, 150])
    assert set(runs) == {e.name for e in CORPUS}
