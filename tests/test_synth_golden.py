"""Golden synthesized placements for the classic litmus tests.

Pins the exact site -> mode mapping synthesis produces for SB, MP, WRC
and IRIW on the default probe grid.  A change in the search, the cost
model or the oracles that moves any placement fails with a readable
unified diff of the golden-vs-actual JSON, not a bare assert.

The goldens encode the paper's story: SB and IRIW flag every variable,
so scoping buys nothing and full fences win the tie only by being
cheaper to drive; MP's synthesized set fences match full-fence cost
with weaker hardware; WRC drops the traditional third fence on the
lone-store thread entirely (it orders nothing).
"""

from __future__ import annotations

import difflib
import json

import pytest

from repro.litmus.dsl import parse_litmus
from repro.synth import synthesize
from repro.synth.corpus import synth_entry

GOLDEN_PLACEMENTS = {
    "SB": {
        "T0:x = 1": "full",
        "T1:y = 1": "full",
    },
    "MP": {
        "T0:x = 1": "sfence-set",
        "T1:rw = y": "none",
        "T1:r0 = y": "sfence-set",
    },
    "WRC": {
        "T1:r0 = x": "full",
        "T2:r1 = y": "full",
    },
    "IRIW": {
        "T2:r0 = x": "full",
        "T3:r2 = y": "full",
    },
}

#: forbidden outcomes each synthesis must derive from its exists clause
GOLDEN_FORBIDDEN = {
    "SB": [[0, 0]],
    # registers (r0, r1, rw): the poll register is free in the spec
    "MP": [[1, 0, 0], [1, 0, 1]],
    "WRC": [[1, 1, 0]],      # registers (r0, r1, r2)
    "IRIW": [[1, 0, 1, 0]],  # registers (r0, r1, r2, r3)
}


def _diff(name: str, golden: dict, actual: dict) -> str:
    golden_text = json.dumps(golden, indent=2, sort_keys=True)
    actual_text = json.dumps(actual, indent=2, sort_keys=True)
    diff = "\n".join(difflib.unified_diff(
        golden_text.splitlines(), actual_text.splitlines(),
        fromfile=f"golden/{name}", tofile=f"synthesized/{name}", lineterm="",
    ))
    return (f"synthesized placement for {name} moved off its golden:\n"
            f"{diff}\n"
            f"(if the new placement is an intentional improvement, update "
            f"GOLDEN_PLACEMENTS and regenerate synth-report.json)")


def _synthesize(name: str):
    return synthesize(parse_litmus(synth_entry(name).source))


@pytest.mark.parametrize("name", sorted(GOLDEN_PLACEMENTS))
def test_golden_placement(name):
    result = _synthesize(name)
    actual = result.placement()
    golden = GOLDEN_PLACEMENTS[name]
    assert actual == golden, _diff(name, golden, actual)
    assert [list(o) for o in result.forbidden] == GOLDEN_FORBIDDEN[name]
    # the cost invariant behind every golden: never beyond all-full
    assert result.stall_cycles <= result.all_full_stall


def test_wrc_drops_the_paid_for_nothing_fence():
    """The hand version fences all three threads; synthesis fences two."""
    result = _synthesize("WRC")
    assert result.fence_count == 2
    hand_fence_count = 3
    assert result.fence_count < hand_fence_count


def test_mp_uses_scoped_fences():
    result = _synthesize("MP")
    assert result.mode_mix == {"sfence-set": 2}


def test_diff_rendering_is_readable():
    """The failure message is a real unified diff, not repr soup."""
    message = _diff("SB", GOLDEN_PLACEMENTS["SB"],
                    {"T0:x = 1": "none", "T1:y = 1": "full"})
    assert '-  "T0:x = 1": "full"' in message
    assert '+  "T0:x = 1": "none"' in message
    assert "golden/SB" in message and "synthesized/SB" in message
    assert "update" in message  # tells the reader how to re-pin
