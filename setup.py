"""Legacy setup shim for offline editable installs (no wheel package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Fence Scoping (S-Fence, SC'14) reproduction: scoped fences on an "
        "approximate multicore out-of-order timing simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
