#!/usr/bin/env python
"""Quickstart: scoped fences in 60 lines.

Builds a tiny producer whose publication fence either orders *all* of
its in-flight accesses (traditional fence) or only the accesses of its
own class (S-Fence with class scope), and shows the stall difference
on the simulated 8-core machine of the paper's Table III.

Run:  python examples/quickstart.py
"""

from repro import Env, FenceKind, Program, SimConfig, WAIT_STORES
from repro.runtime.lang import ScopedStructure, scoped_method


class MessageBox(ScopedStructure):
    """A one-slot mailbox: write the payload, fence, raise the flag."""

    def __init__(self, env, scope):
        super().__init__(env, "mbox", scope)
        self.payload = self.svar("payload")
        self.flag = self.svar("flag")

    @scoped_method
    def publish(self, value):
        yield self.payload.store(value)
        # the fence only needs to order the mailbox's own accesses;
        # with scope=CLASS that is exactly what it does
        yield self.fence(WAIT_STORES)
        yield self.flag.store(1)


def run(scope: FenceKind):
    env = Env(SimConfig())
    box = MessageBox(env, scope)
    # steady state: the mailbox is hot in the producer's cache
    env.request_warm(box.payload, 0, into_l1=True)
    env.request_warm(box.flag, 0, into_l1=True)
    scratch = env.private_array("scratch", 0, 4096)

    def producer(tid):
        # long-latency private work the fence should NOT have to wait for
        # (6 cold-miss stores: they fit the 8-entry store buffer and are
        # still draining when the publication fence executes)
        for i in range(6):
            yield scratch.store(i * 8, i)
        yield from box.publish(42)

    def consumer(tid):
        while not (yield box.flag.load()):
            pass
        value = yield box.payload.load()
        assert value == 42, "the fence kept the mailbox consistent"

    result = env.run(Program([producer, consumer], name="quickstart"))
    return result


def main():
    trad = run(FenceKind.GLOBAL)
    scoped = run(FenceKind.CLASS)
    print("Fence Scoping quickstart (Table III machine)")
    print(f"  traditional fence: {trad.cycles:5d} cycles, "
          f"{trad.stats.fence_stall_cycles} stall cycles")
    print(f"  class-scope fence: {scoped.cycles:5d} cycles, "
          f"{scoped.stats.fence_stall_cycles} stall cycles")
    print(f"  speedup: {trad.cycles / scoped.cycles:.2f}x "
          f"(the scoped fence skipped the private scratch stores)")


if __name__ == "__main__":
    main()
