#!/usr/bin/env python
"""The paper's motivating application: parallel spanning tree over a
work-stealing deque (Figure 3), with traditional vs class-scope fences.

Run:  python examples/work_stealing_tree.py [n_vertices]
"""

import sys

from repro import Env, FenceKind, SimConfig
from repro.apps.pst import build_pst


def run(scope: FenceKind, n_vertices: int):
    env = Env(SimConfig())
    inst = build_pst(env, n_vertices=n_vertices, extra_edges=n_vertices, scope=scope)
    result = env.run(inst.program)
    inst.check()  # validates the spanning tree
    return result, inst


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 192
    trad, _ = run(FenceKind.GLOBAL, n)
    scoped, inst = run(FenceKind.CLASS, n)

    print(f"Parallel spanning tree over {n} vertices, "
          f"{inst.graph.n_edges // 2} edges, 8 cores")
    print(f"  traditional fences in the deque: {trad.cycles:6d} cycles "
          f"({trad.stats.fence_stall_fraction:.0%} fence stalls)")
    print(f"  class-scope S-Fences:            {scoped.cycles:6d} cycles "
          f"({scoped.stats.fence_stall_fraction:.0%} fence stalls)")
    print(f"  speedup: {trad.cycles / scoped.cycles:.3f}x")
    print()
    print("The deque's fences no longer wait for the graph application's")
    print("long-latency color/parent accesses -- only the application's own")
    print("full fence (between the color claim and the parent store) remains,")
    print("which is why pst profits less than barnes/radiosity in the paper.")


if __name__ == "__main__":
    main()
