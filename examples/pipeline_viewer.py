#!/usr/bin/env python
"""Pipeline timeline of the Figure 10 example.

Renders per-cycle core states for the paper's St A / St X / FENCE /
Ld Y / St B sequence under a traditional and a class-scope fence -- the
fence-stall segment visibly shrinks.

Run:  python examples/pipeline_viewer.py
"""

from repro.isa.instructions import Fence, FenceKind, FsEnd, FsStart, Load, Store, WAIT_STORES
from repro.isa.program import ops_program
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator
from repro.sim.timeline import TimelineRecorder


def stream(kind: FenceKind):
    return [
        Store(4096, 1, name="St A"),   # out of scope, cache miss
        FsStart(1),
        Store(64, 2, name="St X"),     # in scope (warmed below)
        Fence(kind, WAIT_STORES),
        Load(128, name="Ld Y"),
        Store(65, 3, name="St B"),
        FsEnd(1),
    ]


def run(kind: FenceKind):
    timeline = TimelineRecorder()
    sim = Simulator(SimConfig(n_cores=1), ops_program([stream(kind)]), timeline=timeline)
    sim.hierarchy.warm(0, 64, 128, into_l1=True)  # in-scope data is hot
    result = sim.run()
    return result, timeline


def main():
    print("Figure 10: St A (out-of-scope miss); St X (in-scope); FENCE; Ld Y; St B")
    for kind, label in ((FenceKind.GLOBAL, "traditional fence"),
                        (FenceKind.CLASS, "class-scope S-Fence")):
        result, timeline = run(kind)
        print(f"\n{label}: {result.cycles} cycles, "
              f"{result.stats.fence_stall_cycles} stalled at the fence")
        print(timeline.render())


if __name__ == "__main__":
    main()
