#!/usr/bin/env python
"""Dekker's algorithm with set-scope fences (the paper's Figure 11).

Three runs on the relaxed (RMO) simulator:

1. no fences        -> mutual exclusion genuinely breaks,
2. traditional      -> correct, but stalls on unrelated accesses,
3. S-FENCE[set,...] -> correct AND skips the unrelated accesses.

Run:  python examples/dekker_mutex.py
"""

from repro import Env, FenceKind, SimConfig
from repro.algorithms.dekker import build_workload


def run(use_fences: bool, scoped: bool):
    env = Env(SimConfig(scoped_fences=scoped))
    handle = build_workload(
        env,
        scope=FenceKind.SET,
        iterations=25,
        workload_level=2,
        use_fences=use_fences,
    )
    result = env.run(handle.program)
    checker = handle.meta["checker"]
    return result, checker


def main():
    print("Dekker mutual exclusion under RMO (2 threads, Table III machine)")

    _, broken = run(use_fences=False, scoped=True)
    print(f"  without fences:      max {broken.max_inside} thread(s) in the "
          f"critical section {'-> VIOLATED' if broken.max_inside > 1 else ''}")

    trad, c1 = run(use_fences=True, scoped=False)
    assert c1.max_inside == 1
    print(f"  traditional fences:  mutual exclusion holds, "
          f"{trad.cycles} cycles ({trad.stats.fence_stall_cycles} stalled)")

    scoped, c2 = run(use_fences=True, scoped=True)
    assert c2.max_inside == 1
    print(f"  S-FENCE[set,{{flag0,flag1,turn}}]: mutual exclusion holds, "
          f"{scoped.cycles} cycles ({scoped.stats.fence_stall_cycles} stalled)")

    print(f"  -> set scope speedup: {trad.cycles / scoped.cycles:.3f}x")


if __name__ == "__main__":
    main()
