#!/usr/bin/env python
"""Litmus-test tour of the simulator's memory models.

Shows which classic relaxed outcomes each model permits and how fences
-- including *scoped* fences -- forbid them again.

Run:  python examples/memory_model_tour.py
"""

from repro import FenceKind, MemoryModel
from repro.litmus.tests import explore, message_passing, store_buffering

OFFSETS = [0, 1, 5, 40, 150, 320]


def observed(build, model):
    return explore(build, "t", model, OFFSETS).outcomes


def main():
    print("Store buffering (SB): can both threads read 0?")
    for model in (MemoryModel.SC, MemoryModel.TSO, MemoryModel.RMO):
        seen = (0, 0) in observed(store_buffering(fenced=False), model)
        print(f"  {model.value:>4}, no fence:        {'YES (relaxed!)' if seen else 'no'}")
    for kind in (FenceKind.GLOBAL, FenceKind.SET):
        seen = (0, 0) in observed(
            store_buffering(fenced=True, fence_kind=kind), MemoryModel.RMO
        )
        print(f"   rmo, {kind.value:>6} fence:    {'YES' if seen else 'no (forbidden)'}")

    print()
    print("Message passing (MP): can the reader see the flag but stale data?")
    for model in (MemoryModel.TSO, MemoryModel.PSO, MemoryModel.RMO):
        seen = (1, 0) in observed(message_passing(fenced=False), model)
        print(f"  {model.value:>4}, no fence:        {'YES (relaxed!)' if seen else 'no'}")
    for kind in (FenceKind.GLOBAL, FenceKind.SET):
        seen = (1, 0) in observed(
            message_passing(fenced=True, fence_kind=kind), MemoryModel.RMO
        )
        print(f"   rmo, {kind.value:>6} fence:    {'YES' if seen else 'no (forbidden)'}")

    print()
    print("A set-scope fence forbids exactly the same outcomes as a full")
    print("fence here because the racing variables are in its set -- the")
    print("paper's point: scoping loses no correctness, only false waiting.")


if __name__ == "__main__":
    main()
