#!/usr/bin/env python
"""The paper's Figure 6: nested class scopes.

Class A holds a member of class B; A's method calls B's.  The fence
inside B orders only B's accesses; the fence inside A orders accesses
to both A's and B's data (B was touched from within A's method).  The
scope tracker's FSB masks make this visible directly.

Run:  python examples/nested_scopes.py
"""

from repro import Env, FenceKind, Program, SimConfig, WAIT_BOTH
from repro.core.scope_tracker import ScopeTracker
from repro.isa.instructions import Fence, FsEnd, FsStart, Store
from repro.runtime.lang import ScopedStructure, scoped_method


class B(ScopedStructure):
    def __init__(self, env):
        super().__init__(env, "B", FenceKind.CLASS)
        self.n1 = self.svar("n1")
        self.n2 = self.svar("n2")

    @scoped_method
    def funcB(self):
        yield self.n1.store(2)       # Figure 6 line 15
        yield self.fence(WAIT_BOTH)  # line 16: orders only B's data
        yield self.n2.store(3)       # line 17


class A(ScopedStructure):
    def __init__(self, env):
        super().__init__(env, "A", FenceKind.CLASS)
        self.b = B(env)
        self.m1 = self.svar("m1")

    @scoped_method
    def funcA1(self):
        yield from self.b.funcB()    # line 5
        yield self.fence(WAIT_BOTH)  # line 6: orders A's AND B's data
        yield self.m1.store(10)      # line 7


def main():
    env = Env(SimConfig(n_cores=1))
    a = A(env)
    tracker = ScopeTracker(env.config)
    pending = []

    gen = a.funcA1()
    print("op stream of a.funcA1() and what each fence watches:\n")
    try:
        op = gen.send(None)
        while True:
            if isinstance(op, FsStart):
                tracker.fs_start(op.cid)
                print(f"  fs_start cid={op.cid}   FSS={tracker.fss.items()}")
            elif isinstance(op, FsEnd):
                tracker.fs_end(op.cid)
                print(f"  fs_end   cid={op.cid}   FSS={tracker.fss.items()}")
            elif isinstance(op, Store):
                mask = tracker.dispatch_mem(is_load=False, flagged=False)
                pending.append((op.name, mask))
                print(f"  store {op.name:<6} FSB mask={mask:#06b}")
            elif isinstance(op, Fence):
                entry = tracker.fss.top()
                watched = [n for n, m in pending if m & (1 << entry)]
                print(f"  FENCE (scope entry {entry}) waits for: {watched}")
            op = gen.send(None)
    except StopIteration:
        pass

    print("\nThe inner fence watched only B.n1; the outer fence watched")
    print("B's accesses too -- exactly the Figure 6 semantics.")

    # and the whole thing runs on the full simulator:
    def body(tid):
        yield from a.funcA1()

    env.run(Program([body]))
    print(f"\nfull run: m1={a.m1.peek()}  n1={a.b.n1.peek()}  n2={a.b.n2.peek()}")


if __name__ == "__main__":
    main()
