"""Figure 15: sensitivity to memory access latency (200/300/500 cycles).

Paper: barnes and radiosity improve more as latency grows (S-Fence
keeps removing 40-50% of ever-larger stalls); pst does *not* improve
with latency -- its full fence outside the work-stealing queue eats the
benefit; ptc stays modest.
"""

from conftest import scaled

from repro.analysis.report import format_table
from repro.analysis.speedup import measure
from repro.apps.barnes import build_barnes
from repro.apps.pst import build_pst
from repro.apps.ptc import build_ptc
from repro.apps.radiosity import build_radiosity
from repro.isa.instructions import FenceKind
from repro.sim.config import SimConfig

LATENCIES = [200, 300, 500]

APPS = {
    "pst": (lambda env, k: build_pst(env, scope=k, n_vertices=scaled(128)), FenceKind.CLASS),
    "ptc": (lambda env, k: build_ptc(env, scope=k, n_vertices=scaled(48)), FenceKind.CLASS),
    "barnes": (lambda env, k: build_barnes(env, scope=k, n_bodies=scaled(128)), FenceKind.SET),
    "radiosity": (lambda env, k: build_radiosity(env, scope=k, n_patches=scaled(96)), FenceKind.SET),
}


def speedup_at(name, latency):
    builder, kind = APPS[name]
    cfg = SimConfig(mem_latency=latency)
    t = measure(lambda env: builder(env, FenceKind.GLOBAL), cfg, "T", max_cycles=30_000_000)
    s = measure(lambda env: builder(env, kind), cfg, "S", max_cycles=30_000_000)
    return t, s


def test_fig15_memory_latency_sweep(benchmark, report):
    rows = []
    curves = {}
    for name in APPS:
        speedups = []
        for lat in LATENCIES:
            t, s = speedup_at(name, lat)
            speedups.append(t.cycles / s.cycles)
        curves[name] = speedups
        rows.append(
            (
                name,
                " ".join(f"{x:.3f}" for x in speedups),
                "grows with latency" if name in ("barnes", "radiosity") else "flat",
            )
        )
    report(format_table(
        ["app", f"S-Fence speedup @ {LATENCIES} cycles", "paper trend"],
        rows,
        title="Figure 15 -- varying memory access latency",
    ))

    # barnes & radiosity: improvement increases with latency
    for name in ("barnes", "radiosity"):
        c = curves[name]
        assert c[2] > c[0], f"{name}: speedup should grow with latency ({c})"
    # pst: no such growth (the external full fence offsets the benefit)
    c = curves["pst"]
    assert c[2] - c[0] < 0.10, f"pst: unexpectedly latency-sensitive ({c})"

    benchmark.pedantic(lambda: speedup_at("radiosity", 300), rounds=1, iterations=1)
