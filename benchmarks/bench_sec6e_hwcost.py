"""Section VI-E: hardware cost of the S-Fence structures."""

from repro.analysis.report import format_table
from repro.core.hwcost import estimate_cost
from repro.sim.config import SimConfig


def test_sec6e_hardware_cost(benchmark, report):
    cfg = SimConfig()
    cost = benchmark(estimate_cost, cfg)
    rows = [
        ("FSB bits on ROB entries", f"{cost.fsb_rob_bits} bits"),
        ("FSB bits on SB entries", f"{cost.fsb_sb_bits} bits"),
        ("mapping table", f"{cost.mapping_table_bits} bits"),
        ("FSS + FSS'", f"{cost.fss_bits + cost.shadow_fss_bits} bits"),
        ("overflow counter", f"{cost.overflow_counter_bits} bits"),
        ("total", f"{cost.total_bytes:.1f} bytes / core"),
        ("paper claim", "< 80 bytes / core"),
    ]
    report(format_table(["structure", "cost"], rows,
                        title="Section VI-E -- hardware cost per core"))
    assert cost.total_bytes < 80
