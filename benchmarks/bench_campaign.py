"""Campaign throughput regression: persistent pool vs fork-per-job.

Not a paper figure -- this benchmark guards the campaign *engine*.  It
races the persistent chunk-pulling worker pool against the legacy
one-process-per-job pool over the combined litmus + verify sweep and a
truncated chaos sweep (:mod:`repro.analysis.campthru`), asserts the two
pools produce byte-identical outcomes, that warm cache re-runs execute
zero jobs, and that the persistent pool's cold-sweep speedup stays
above the gate.

The gate is deliberately the 1-CPU floor: on a single-core runner only
per-process overhead (fork, copy-on-write GC traffic, module warm-up)
is recoverable, so the required ratio is far below the multi-core
headline.  ``REPRO_SCALE`` < 1 maps to the harness's smoke sizing, same
as the CI ``campaign-throughput-smoke`` job
(``python -m repro perf --campaign --smoke``).
"""

from conftest import SCALE

from repro.analysis.campthru import DEFAULT_MIN_RATIO, GATE_SWEEP, run_campaign_perf
from repro.analysis.report import format_table


def test_campaign_throughput_regression(benchmark, report):
    perf = run_campaign_perf(smoke=SCALE < 1.0, min_ratio=DEFAULT_MIN_RATIO)

    rows = [
        (name, s["jobs"], s["legacy"]["cold_s"], s["persistent"]["cold_s"],
         s["persistent"]["warm_s"], f"{s['ratio']}x",
         "yes" if s["identical"] else "DIVERGED")
        for name, s in perf["sweeps"].items()
    ]
    report(format_table(
        ["sweep", "jobs", "fork-per-job s", "persistent s", "warm s",
         "speedup", "identical"],
        rows,
        title=f"campaign throughput -- persistent pool vs fork-per-job "
              f"({perf['parallel']} workers, {perf['cpus']} cpu(s))",
    ))

    for name, s in perf["sweeps"].items():
        assert s["identical"], f"{name}: pool outcomes diverged"
        assert s["legacy"]["warm_executed"] == 0, f"{name}: legacy warm ran jobs"
        assert s["persistent"]["warm_executed"] == 0, (
            f"{name}: persistent warm ran jobs")
    gate = perf["sweeps"][GATE_SWEEP]
    assert gate["ratio"] >= DEFAULT_MIN_RATIO, (
        f"{GATE_SWEEP}: persistent pool only {gate['ratio']}x over "
        f"fork-per-job (required >= {DEFAULT_MIN_RATIO}x)"
    )
    assert perf["ok"]
