"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure from the paper's
evaluation section and registers a paper-vs-measured report that is
printed in the terminal summary (so it survives pytest's output
capture).  ``REPRO_SCALE`` (default 1.0) scales workload sizes: 0.5
halves iteration counts for quick smoke runs, 2.0 doubles them.
"""

from __future__ import annotations

import os

import pytest

_REPORTS: list[str] = []

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(n: int, minimum: int = 2) -> int:
    """Scale an iteration count by REPRO_SCALE."""
    return max(minimum, int(round(n * SCALE)))


@pytest.fixture
def report():
    """Register a report block printed in the terminal summary."""

    def add(text: str) -> None:
        _REPORTS.append(text)
        print("\n" + text)  # also visible with -s

    return add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("Fence Scoping reproduction: paper vs measured")
    for block in _REPORTS:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
