"""Figure 16: sensitivity to reorder-buffer size (64/128/256 entries).

Paper: barnes benefits from a larger ROB (more instructions issue past
a non-stalling S-Fence); radiosity, pst and ptc stay flat -- their
average ROB occupancy is below 80 entries even with a 256-entry ROB.
"""

from conftest import scaled

from repro.analysis.report import format_table
from repro.analysis.speedup import measure
from repro.apps.barnes import build_barnes
from repro.apps.pst import build_pst
from repro.apps.ptc import build_ptc
from repro.apps.radiosity import build_radiosity
from repro.isa.instructions import FenceKind
from repro.sim.config import SimConfig

ROB_SIZES = [64, 128, 256]

APPS = {
    "pst": (lambda env, k: build_pst(env, scope=k, n_vertices=scaled(128)), FenceKind.CLASS),
    "ptc": (lambda env, k: build_ptc(env, scope=k, n_vertices=scaled(48)), FenceKind.CLASS),
    "barnes": (lambda env, k: build_barnes(env, scope=k, n_bodies=scaled(128)), FenceKind.SET),
    "radiosity": (lambda env, k: build_radiosity(env, scope=k, n_patches=scaled(96)), FenceKind.SET),
}


def run_at(name, rob_size):
    builder, kind = APPS[name]
    cfg = SimConfig(rob_size=rob_size)
    t = measure(lambda env: builder(env, FenceKind.GLOBAL), cfg, "T", max_cycles=30_000_000)
    s = measure(lambda env: builder(env, kind), cfg, "S", max_cycles=30_000_000)
    return t, s


def test_fig16_rob_size_sweep(benchmark, report):
    rows = []
    data = {}
    for name in APPS:
        speedups = []
        occupancies = []
        for rob in ROB_SIZES:
            t, s = run_at(name, rob)
            speedups.append(t.cycles / s.cycles)
            occupancies.append(s.stats_summary["avg_rob_occupancy"])
        data[name] = (speedups, occupancies)
        rows.append(
            (
                name,
                " ".join(f"{x:.3f}" for x in speedups),
                f"{occupancies[-1]:.0f}",
                "barnes grows; others stable" if name == "barnes" else "stable",
            )
        )
    report(format_table(
        ["app", f"S-Fence speedup @ ROB {ROB_SIZES}", "avg ROB occupancy @256", "paper trend"],
        rows,
        title="Figure 16 -- varying ROB size",
    ))

    # stability claim: relative change across ROB sizes stays bounded for
    # the flat apps (paper: 'performance of S-Fence remains stable')
    for name in ("radiosity", "pst", "ptc"):
        speedups, _ = data[name]
        assert max(speedups) - min(speedups) < 0.15, (name, speedups)
    # the paper's explanation: the flat apps use < 80 ROB entries on average
    for name in ("radiosity", "pst", "ptc"):
        _, occ = data[name]
        assert occ[-1] < 80, (name, occ)

    benchmark.pedantic(lambda: run_at("barnes", 128), rounds=1, iterations=1)
