"""Ablation benches for design choices DESIGN.md calls out.

A1: number of FSB entries (overflow/entry-sharing cost, Section IV-A3).
A2: CAS ordering semantics (MIPS LL/SC-style vs x86 full-fence CAS).
A3: memory model (TSO/PSO/RMO) effect on fence stalls.
"""

from conftest import scaled

from repro.algorithms.mixed import build_mixed_workload
from repro.algorithms.workloads import build_wsq_workload
from repro.analysis.report import format_table
from repro.analysis.speedup import measure
from repro.isa.instructions import FenceKind
from repro.runtime.lang import Env
from repro.sim.config import MemoryModel, SimConfig


def wsq_cycles(cfg: SimConfig, scoped: bool = True) -> int:
    env = Env(cfg.with_(scoped_fences=scoped))
    handle = build_wsq_workload(env, iterations=scaled(20), workload_level=2)
    res = env.run(handle.program, max_cycles=10_000_000)
    handle.check()
    return res.cycles


def mixed_cycles(cfg: SimConfig, scoped: bool = True) -> int:
    env = Env(cfg.with_(scoped_fences=scoped))
    handle = build_mixed_workload(env, iterations=scaled(10), workload_level=2)
    res = env.run(handle.program, max_cycles=10_000_000)
    handle.check()
    return res.cycles


def test_a1_fsb_entry_count(benchmark, report):
    """The mixed workload keeps four scoped classes in flight at once,
    so a small FSB forces entry sharing (and a 1-slot mapping table
    forces the overflow counter).  Sharing only ever *adds* ordering,
    so correctness holds at every size and more entries can only help."""
    rows = []
    cycles = {}
    configs = {
        2: SimConfig(fsb_entries=2, mapping_entries=1, fss_entries=2),
        4: SimConfig(fsb_entries=4, mapping_entries=4, fss_entries=4),
        8: SimConfig(fsb_entries=8, mapping_entries=8, fss_entries=8),
    }
    for entries, cfg in configs.items():
        cycles[entries] = mixed_cycles(cfg)
        rows.append((entries, cycles[entries]))
    trad = mixed_cycles(SimConfig(), scoped=False)
    rows.append(("traditional", trad))
    report(format_table(["FSB entries", "mixed-workload scoped cycles"], rows,
                        title="Ablation A1 -- FSB entry count (sharing cost)"))
    # sharing degrades gracefully: small FSB sits between the fully
    # scoped and the traditional configuration
    assert cycles[8] <= cycles[2] * 1.02
    assert cycles[2] <= trad * 1.02
    benchmark.pedantic(lambda: mixed_cycles(SimConfig()), rounds=1, iterations=1)


def test_a2_cas_ordering_semantics(benchmark, report):
    """x86-style full-fence CAS serialises far more than LL/SC-style."""
    rows = []
    cyc = {}
    for cas_fence in (False, True):
        cfg = SimConfig(cas_fence=cas_fence)
        cyc[cas_fence] = wsq_cycles(cfg)
        rows.append(("fence CAS" if cas_fence else "LL/SC CAS", cyc[cas_fence]))
    report(format_table(["CAS semantics", "wsq scoped cycles"], rows,
                        title="Ablation A2 -- CAS ordering semantics"))
    assert cyc[True] >= cyc[False]
    benchmark.pedantic(lambda: wsq_cycles(SimConfig(cas_fence=True)), rounds=1, iterations=1)


def test_a4_speculation_interaction(benchmark, report):
    """How much does in-window speculation add on top of scoping?

    The four cells of Figure 13 for the wsq harness: scoped fences and
    speculation attack the same stalls from different angles, so their
    gains overlap rather than add.
    """
    rows = []
    cells = {}
    for scoped in (False, True):
        for spec in (False, True):
            cfg = SimConfig(in_window_speculation=spec)
            cells[(scoped, spec)] = wsq_cycles(cfg, scoped=scoped)
            rows.append(
                (
                    "S-Fence" if scoped else "traditional",
                    "yes" if spec else "no",
                    cells[(scoped, spec)],
                )
            )
    report(format_table(
        ["fences", "in-window speculation", "wsq cycles"],
        rows,
        title="Ablation A4 -- scoping x speculation",
    ))
    base = cells[(False, False)]
    assert cells[(True, False)] <= base
    assert cells[(False, True)] <= base * 1.02
    # the combination is at least as good as scoping alone
    assert cells[(True, True)] <= cells[(True, False)] * 1.02
    benchmark.pedantic(
        lambda: wsq_cycles(SimConfig(in_window_speculation=True)),
        rounds=1,
        iterations=1,
    )


def test_a5_false_sharing(benchmark, report):
    """Substrate sanity: two cores ping-ponging on the *same* cache
    line pay coherence latency that separate lines do not.  This is the
    effect that motivates the line-per-record layouts of the apps."""
    from repro.isa.instructions import Load, Store
    from repro.isa.program import Program
    from repro.sim.simulator import Simulator

    def run(shared_line: bool) -> int:
        cfg = SimConfig(n_cores=2)
        env = Env(cfg)
        wpl = cfg.words_per_line
        region = env.array("fs.region", 2 * wpl)
        a_idx = 0
        b_idx = 1 if shared_line else wpl  # same line vs next line

        def t0(tid):
            for i in range(scaled(150)):
                yield region.store(a_idx, i)
                yield region.load(a_idx)

        def t1(tid):
            for i in range(scaled(150)):
                yield region.store(b_idx, i)
                yield region.load(b_idx)

        return Simulator(cfg, Program([t0, t1]), memory=env.memory).run().cycles

    packed = run(shared_line=True)
    padded = run(shared_line=False)
    rows = [
        ("same line (false sharing)", packed),
        ("separate lines (padded)", padded),
        ("slowdown", f"{packed / padded:.2f}x"),
    ]
    report(format_table(["layout", "cycles"], rows,
                        title="Ablation A5 -- false sharing cost in the substrate"))
    assert packed > padded * 1.2
    benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)


def test_a3_memory_models(benchmark, report):
    """Weaker models relax more, so traditional fences stall more and
    S-Fence recovers more."""
    rows = []
    speedups = {}
    for model in (MemoryModel.TSO, MemoryModel.PSO, MemoryModel.RMO):
        cfg = SimConfig(memory_model=model)
        trad = wsq_cycles(cfg, scoped=False)
        scoped = wsq_cycles(cfg, scoped=True)
        speedups[model] = trad / scoped
        rows.append((model.value, trad, scoped, f"{trad / scoped:.3f}"))
    report(format_table(
        ["memory model", "traditional cycles", "S-Fence cycles", "speedup"],
        rows,
        title="Ablation A3 -- memory model",
    ))
    assert all(s >= 0.99 for s in speedups.values())
    # RMO leaves the most ordering on the table for S-Fence to recover
    assert speedups[MemoryModel.RMO] >= speedups[MemoryModel.TSO] - 0.02
    benchmark.pedantic(
        lambda: wsq_cycles(SimConfig(memory_model=MemoryModel.TSO)),
        rounds=1,
        iterations=1,
    )
