"""Extension: the Cilk-5 THE-protocol observation (paper Section II-A).

Frigo et al. report that Cilk-5's THE protocol "spends half of its
time executing a memory fence" on fine-grained workloads.  The
fork-join fib runtime reproduces the regime: with tiny per-task work,
fence stalls dominate, and class-scope S-Fences on the deques recover
part of it (the join-protocol full fences remain, as in pst).
"""

from conftest import scaled

from repro.analysis.report import format_table
from repro.apps.cilk_fib import build_cilk_fib
from repro.isa.instructions import FenceKind
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


def run(n, scope, work):
    env = Env(SimConfig())
    inst = build_cilk_fib(env, n=n, scope=scope, work_per_task=work)
    res = env.run(inst.program, max_cycles=30_000_000)
    inst.check()
    return res


def test_cilk_the_protocol_fence_share(benchmark, report):
    n = 10 if scaled(10) >= 10 else 9
    rows = []
    results = {}
    for work, label in ((5, "fine-grained"), (800, "coarse-grained")):
        trad = run(n, FenceKind.GLOBAL, work)
        scoped = run(n, FenceKind.CLASS, work)
        results[label] = (trad, scoped)
        rows.append(
            (
                label,
                f"{trad.stats.fence_stall_fraction:.0%}",
                f"{scoped.stats.fence_stall_fraction:.0%}",
                f"{trad.cycles / scoped.cycles:.3f}",
            )
        )
    report(format_table(
        ["task grain", "T fence-stall share", "S share", "S-Fence speedup"],
        rows,
        title=(
            "Extension -- Cilk THE protocol (paper Sec. II-A: fences eat "
            "~half the time at fine grain)"
        ),
    ))
    fine_t, fine_s = results["fine-grained"]
    coarse_t, _ = results["coarse-grained"]
    # fine-grained tasks spend a large share of time at fences ...
    assert fine_t.stats.fence_stall_fraction > 0.15
    # ... more than coarse-grained ones
    assert fine_t.stats.fence_stall_fraction > coarse_t.stats.fence_stall_fraction
    # and scoping helps the deque part
    assert fine_s.stats.fence_stall_cycles <= fine_t.stats.fence_stall_cycles

    benchmark.pedantic(lambda: run(9, FenceKind.CLASS, 5), rounds=1, iterations=1)
