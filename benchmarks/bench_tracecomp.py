"""Trace-compiler micro-benchmark: block admission vs per-op interpretation.

Not a paper figure -- this isolates the mechanism the ``perf`` gate
measures end-to-end.  A synthetic straight-line guest (10k ops of
line-strided loads/stores/short computes, no fences, no cut points) is
the trace compiler's best case: the whole program compiles to a
handful of memoised blocks, so the compiled engine's per-op cost is a
tuple index + batched bookkeeping while the event engine pays the full
generator-pull + ``_dispatch_one`` case analysis per op.

The assertion is deliberately loose (compiled must not be *slower*):
the headline ratio with a real workload mix and a CI-calibrated bound
lives in ``bench_simperf.py`` / the ``perf`` command; this bench
reports the mechanism's isolated ceiling and guards the cycle-identity
of the two engines on the synthetic program.
"""

import time

from conftest import SCALE

from repro.analysis.report import format_table
from repro.isa.instructions import Compute, Load, Store
from repro.isa.program import ops_program
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator
from repro.sim.tracecomp import compile_ops, memo_stats

N_OPS = max(600, int(10_000 * SCALE))
LINE = 8  # words per line at the default config
REPS = 3


def _straight_line_ops(n: int):
    """n ops with no cut point: load/store/compute over a strided array."""
    ops = []
    base = 4096
    i = 0
    while len(ops) < n:
        addr = base + (i % 64) * LINE
        ops.append(Load(addr))
        ops.append(Store(addr, i))
        ops.append(Compute(1 + (i % 3)))
        i += 1
    return ops[:n]


def _run(trace_compile: bool):
    cfg = SimConfig(n_cores=1, trace_compile=trace_compile)
    sim = Simulator(cfg, ops_program([_straight_line_ops(N_OPS)]))
    t0 = time.perf_counter()
    res = sim.run(max_cycles=50_000_000)
    return time.perf_counter() - t0, res.cycles


def test_block_admission_vs_interpretation(benchmark, report):
    units = compile_ops(_straight_line_ops(N_OPS))
    # one straight-line run -> one block (memoised process-wide)
    assert len(units) == 1 and units[0].n == N_OPS

    walls = {"event": [], "compiled": []}
    cycles = {}
    for _ in range(REPS):
        for engine, tc in (("event", False), ("compiled", True)):
            wall, cyc = _run(tc)
            walls[engine].append(wall)
            cycles.setdefault(engine, cyc)

    assert cycles["event"] == cycles["compiled"]
    event_s = min(walls["event"])
    compiled_s = min(walls["compiled"])
    ratio = event_s / compiled_s if compiled_s else float("inf")
    memo = memo_stats()

    report(format_table(
        ["ops", "sim cycles", "event s", "compiled s", "ratio",
         "memo blocks"],
        [(N_OPS, cycles["event"], round(event_s, 4), round(compiled_s, 4),
          f"{ratio:.2f}x", memo["blocks"])],
        title="trace compiler -- block admission vs per-op interpretation",
    ))

    assert ratio >= 1.0, (
        f"compiled engine slower than interpretation on its best case "
        f"({ratio:.2f}x)"
    )
