"""Table III: architectural parameters of the simulated machine."""

from repro.analysis.report import format_table
from repro.sim.config import TABLE_III
from repro.sim.simulator import run_program
from repro.isa.instructions import Compute
from repro.isa.program import ops_program


def test_table3_architectural_parameters(benchmark, report):
    cfg = TABLE_III
    rows = [
        ("Processor", "8 core CMP, out-of-order", f"{cfg.n_cores} core CMP, out-of-order"),
        ("ROB size", 128, cfg.rob_size),
        ("L1 Cache", "private 32 KB, 4 way, 2-cycle", f"private {cfg.l1_kb} KB, {cfg.l1_assoc} way, {cfg.l1_latency}-cycle"),
        ("L2 Cache", "shared 1 MB, 8 way, 10-cycle", f"shared {cfg.l2_kb // 1024} MB, {cfg.l2_assoc} way, {cfg.l2_latency}-cycle"),
        ("Memory", "300-cycle latency", f"{cfg.mem_latency}-cycle latency"),
        ("# of FSB entries", 4, cfg.fsb_entries),
        ("# of FSS entries", 4, cfg.fss_entries),
    ]
    assert cfg.n_cores == 8 and cfg.rob_size == 128 and cfg.mem_latency == 300
    assert cfg.fsb_entries == 4 and cfg.fss_entries == 4

    report(format_table(["parameter", "paper (Table III)", "this config"], rows,
                        title="Table III -- architectural parameters"))

    # benchmark the bare simulator overhead under this configuration
    def tick_empty():
        return run_program(ops_program([[Compute(1000)]]), cfg)

    result = benchmark.pedantic(tick_empty, rounds=3, iterations=1)
    assert result.cycles >= 1000
