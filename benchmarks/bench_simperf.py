"""Simulator perf regression: the three execution engines head to head.

Not a paper figure -- this benchmark guards the simulator itself.  It
times the :mod:`repro.analysis.simperf` workloads under the dense
reference loop, the event-driven fast path and the trace-compiled
engine, reports wall time / simulated-cycles-per-second / speedups, and
fails if the event engine regresses below 2x over the dense loop on the
high-memory-latency workload (where event skipping has the most to
win), if the trace-compiled engine fails to beat the event engine by
1.5x there, or if any engine's results ever diverge.

``REPRO_SCALE`` < 1 maps to the harness's smoke sizing, same as the CI
``perf-smoke`` job (``python -m repro perf --smoke``).
"""

from conftest import SCALE

from repro.analysis.report import format_table
from repro.analysis.simperf import GATE_WORKLOAD, run_perf

MIN_GATE_SPEEDUP = 2.0
MIN_COMPILE_RATIO = 1.5


def test_fastpath_perf_regression(benchmark, report):
    perf = run_perf(smoke=SCALE < 1.0, min_speedup=MIN_GATE_SPEEDUP,
                    min_compile_ratio=MIN_COMPILE_RATIO)

    rows = [
        (name, w["sim_cycles"], w["dense_wall_s"], w["event_wall_s"],
         w["compiled_wall_s"], f"{w['event_speedup']}x",
         f"{w['compiled_speedup']}x", f"{w['compile_ratio']}x",
         "yes" if w["identical"] else "DIVERGED")
        for name, w in perf["workloads"].items()
    ]
    report(format_table(
        ["workload", "sim cycles", "dense s", "event s", "compiled s",
         "event x", "compiled x", "vs event", "identical"],
        rows,
        title="simulator perf -- dense loop vs event vs trace-compiled",
    ))

    for name, w in perf["workloads"].items():
        assert w["identical"], f"{name}: engine results diverged"
    gate = perf["workloads"][GATE_WORKLOAD]
    assert gate["event_speedup"] >= MIN_GATE_SPEEDUP, (
        f"{GATE_WORKLOAD}: event engine only {gate['event_speedup']}x over "
        f"dense (required >= {MIN_GATE_SPEEDUP}x)"
    )
    assert gate["compile_ratio"] >= MIN_COMPILE_RATIO, (
        f"{GATE_WORKLOAD}: compiled engine only {gate['compile_ratio']}x "
        f"over event (required >= {MIN_COMPILE_RATIO}x)"
    )
    assert perf["ok"]
