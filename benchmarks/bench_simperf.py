"""Simulator perf regression: event-driven fast path vs dense loop.

Not a paper figure -- this benchmark guards the simulator itself.  It
times the :mod:`repro.analysis.simperf` workloads under both execution
engines, reports wall time / simulated-cycles-per-second / speedup, and
fails if the fast path regresses below 2x on the high-memory-latency
workload (where event skipping has the most to win) or if the two
engines' results ever diverge.

``REPRO_SCALE`` < 1 maps to the harness's smoke sizing, same as the CI
``perf-smoke`` job (``python -m repro perf --smoke``).
"""

from conftest import SCALE

from repro.analysis.report import format_table
from repro.analysis.simperf import GATE_WORKLOAD, run_perf

MIN_GATE_SPEEDUP = 2.0


def test_fastpath_perf_regression(benchmark, report):
    perf = run_perf(smoke=SCALE < 1.0, min_speedup=MIN_GATE_SPEEDUP)

    rows = [
        (name, w["sim_cycles"], w["dense_wall_s"], w["fast_wall_s"],
         f"{w['speedup']}x", "yes" if w["identical"] else "DIVERGED")
        for name, w in perf["workloads"].items()
    ]
    report(format_table(
        ["workload", "sim cycles", "dense s", "fast s", "speedup", "identical"],
        rows,
        title="simulator perf -- dense loop vs event-driven fast path",
    ))

    for name, w in perf["workloads"].items():
        assert w["identical"], f"{name}: dense and fast-path results diverged"
    gate = perf["workloads"][GATE_WORKLOAD]
    assert gate["speedup"] >= MIN_GATE_SPEEDUP, (
        f"{GATE_WORKLOAD}: fast path only {gate['speedup']}x over dense "
        f"(required >= {MIN_GATE_SPEEDUP}x)"
    )
    assert perf["ok"]
