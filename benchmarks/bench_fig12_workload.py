"""Figure 12: S-Fence speedup vs workload level for the lock-free group.

The paper reports a rise-then-fall speedup curve per benchmark with
peaks between 1.13x and 1.34x.  This bench sweeps workload levels 1-6
for dekker/wsq/msn/harris and prints the measured curves next to the
paper's qualitative expectations.
"""

from conftest import scaled

from repro.algorithms.dekker import build_workload as build_dekker_workload
from repro.algorithms.workloads import (
    build_harris_workload,
    build_msn_workload,
    build_wsq_workload,
)
from repro.analysis.report import format_table
from repro.runtime.lang import Env
from repro.sim.config import SimConfig

LEVELS = [1, 2, 3, 4, 5, 6]

BUILDERS = {
    "dekker": lambda env, lvl: build_dekker_workload(
        env, workload_level=lvl, iterations=scaled(25)
    ),
    "wsq": lambda env, lvl: build_wsq_workload(
        env, workload_level=lvl, iterations=scaled(30)
    ),
    "msn": lambda env, lvl: build_msn_workload(
        env, workload_level=lvl, iterations=scaled(15)
    ),
    "harris": lambda env, lvl: build_harris_workload(
        env, workload_level=lvl, iterations=scaled(15)
    ),
}

#: paper peak speedups read off Figure 12 (approximate)
PAPER_PEAKS = {"dekker": 1.14, "wsq": 1.30, "msn": 1.20, "harris": 1.26}


def _speedup(name, level):
    cycles = {}
    for scoped in (False, True):
        env = Env(SimConfig(scoped_fences=scoped))
        handle = BUILDERS[name](env, level)
        res = env.run(handle.program, max_cycles=10_000_000)
        handle.check()
        cycles[scoped] = res.cycles
    return cycles[False] / cycles[True]


def test_fig12_impact_of_workload(benchmark, report):
    curves = {name: [_speedup(name, lvl) for lvl in LEVELS] for name in BUILDERS}

    rows = []
    for name, curve in curves.items():
        peak = max(curve)
        rows.append(
            (
                name,
                " ".join(f"{s:.3f}" for s in curve),
                f"{peak:.2f}x @L{LEVELS[curve.index(peak)]}",
                f"~{PAPER_PEAKS[name]:.2f}x",
            )
        )
    report(format_table(
        ["benchmark", "speedup @ workload 1..6", "measured peak", "paper peak"],
        rows,
        title="Figure 12 -- impact of workload (S-Fence speedup over traditional)",
    ))

    # shape assertions: every curve peaks strictly after level 1 and
    # declines from its peak to level 6 (the paper's rise-then-fall)
    for name, curve in curves.items():
        peak_idx = curve.index(max(curve))
        assert peak_idx >= 1, f"{name}: no rise from level 1"
        assert curve[-1] < max(curve), f"{name}: no fall toward level 6"
        assert 1.05 <= max(curve) <= 1.5, f"{name}: peak {max(curve):.3f} out of band"
        assert min(curve) >= 0.99, f"{name}: S-Fence must never lose"

    benchmark.pedantic(lambda: _speedup("wsq", 2), rounds=1, iterations=1)
