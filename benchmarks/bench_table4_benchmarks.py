"""Table IV: the benchmark inventory -- every program runs and validates."""

from conftest import scaled

from repro.algorithms.dekker import build_workload as build_dekker_workload
from repro.algorithms.workloads import (
    build_harris_workload,
    build_msn_workload,
    build_wsq_workload,
)
from repro.analysis.report import format_table
from repro.apps.barnes import build_barnes
from repro.apps.pst import build_pst
from repro.apps.ptc import build_ptc
from repro.apps.radiosity import build_radiosity
from repro.isa.instructions import FenceKind
from repro.runtime.lang import Env
from repro.sim.config import SimConfig

INVENTORY = [
    # name, paper scope type, description, builder, scoped kind
    ("dekker", "set", "Dekker algorithm [12]",
     lambda env, k: build_dekker_workload(env, scope=k, iterations=scaled(10)), FenceKind.SET),
    ("wsq", "class", "Work-stealing queue [10]",
     lambda env, k: build_wsq_workload(env, scope=k, iterations=scaled(15)), FenceKind.CLASS),
    ("msn", "class", "Non-blocking Queue [33]",
     lambda env, k: build_msn_workload(env, scope=k, iterations=scaled(8)), FenceKind.CLASS),
    ("harris", "class", "Harris's set [20]",
     lambda env, k: build_harris_workload(env, scope=k, iterations=scaled(8)), FenceKind.CLASS),
    ("barnes", "set", "Barnes-Hut n-body [43]",
     lambda env, k: build_barnes(env, scope=k, n_bodies=scaled(96)), FenceKind.SET),
    ("radiosity", "set", "Diffuse radiosity method [43]",
     lambda env, k: build_radiosity(env, scope=k, n_patches=scaled(64)), FenceKind.SET),
    ("pst", "class", "Parallel spanning tree [5]",
     lambda env, k: build_pst(env, scope=k, n_vertices=scaled(96)), FenceKind.CLASS),
    ("ptc", "class", "Parallel transitive closure [15]",
     lambda env, k: build_ptc(env, scope=k, n_vertices=scaled(40)), FenceKind.CLASS),
]


def _run_one(name, builder, kind):
    env = Env(SimConfig())
    inst = builder(env, kind)
    res = env.run(inst.program, max_cycles=5_000_000)
    inst.check()
    return res


def test_table4_benchmark_inventory(benchmark, report):
    rows = []
    for name, scope_type, description, builder, kind in INVENTORY:
        res = _run_one(name, builder, kind)
        rows.append((name, scope_type, description, res.cycles))
    report(format_table(
        ["benchmark", "type", "description", "cycles (scoped run)"],
        rows,
        title="Table IV -- benchmark description (all validated)",
    ))

    # benchmark one representative entry end-to-end
    name, _, _, builder, kind = INVENTORY[1]  # wsq
    benchmark.pedantic(lambda: _run_one(name, builder, kind), rounds=1, iterations=1)
