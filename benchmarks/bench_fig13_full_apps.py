"""Figure 13: normalized execution time of the full applications.

Four bars per application: T (traditional), S (S-Fence), T+ and S+
(with in-window speculation), each split into fence stalls and the
rest.  Paper headlines: pst stalls >50% under T with 1.11x S speedup;
ptc small stalls, ~1.04x; barnes 38.8% stalls, S removes 40-50% of
them (1.24x); radiosity 34.5% stalls, 1.19x; speculation shrinks
stalls for both fence flavours.
"""

from conftest import scaled

from repro.analysis.report import format_table
from repro.analysis.speedup import RunPoint, measure, normalized_series
from repro.apps.barnes import build_barnes
from repro.apps.pst import build_pst
from repro.apps.ptc import build_ptc
from repro.apps.radiosity import build_radiosity
from repro.isa.instructions import FenceKind
from repro.sim.config import SimConfig

APPS = {
    "pst": (lambda env, k: build_pst(env, scope=k, n_vertices=scaled(160)), FenceKind.CLASS),
    "ptc": (lambda env, k: build_ptc(env, scope=k, n_vertices=scaled(48)), FenceKind.CLASS),
    "barnes": (lambda env, k: build_barnes(env, scope=k, n_bodies=scaled(192)), FenceKind.SET),
    "radiosity": (lambda env, k: build_radiosity(env, scope=k, n_patches=scaled(128)), FenceKind.SET),
}

PAPER = {
    "pst": {"S": 0.90, "T_stall": ">0.50"},
    "ptc": {"S": 0.957, "T_stall": "small"},
    "barnes": {"S": 0.805, "T_stall": "0.388"},
    "radiosity": {"S": 0.842, "T_stall": "0.345"},
}


def run_four(name):
    builder, kind = APPS[name]
    points = []
    for label, scope, spec in (
        ("T", FenceKind.GLOBAL, False),
        ("S", kind, False),
        ("T+", FenceKind.GLOBAL, True),
        ("S+", kind, True),
    ):
        cfg = SimConfig(in_window_speculation=spec)
        points.append(
            measure(lambda env: builder(env, scope), cfg, label=label,
                    max_cycles=20_000_000)
        )
    return points


def test_fig13_normalized_execution_time(benchmark, report):
    all_rows = []
    results = {}
    for name in APPS:
        points = run_four(name)
        results[name] = points
        series = normalized_series(points, points[0])
        for s in series:
            all_rows.append(
                (
                    name,
                    s["label"],
                    f"{s['normalized_time']:.3f}",
                    f"{s['fence_stalls']:.3f}",
                    f"{s['others']:.3f}",
                )
            )
        all_rows.append(("", "", "", "", ""))
    report(format_table(
        ["app", "config", "normalized time", "fence stalls", "others"],
        all_rows,
        title=(
            "Figure 13 -- normalized execution time "
            "(paper: pst S=0.90, ptc S=0.957, barnes S=0.805, radiosity S=0.842)"
        ),
    ))

    for name, points in results.items():
        t, s, tp, sp = points
        # S-Fence wins over the traditional fence (pst/ptc steal
        # schedules diverge between runs, so allow 2% noise there)
        slack = 1.02 if name in ("pst", "ptc") else 1.0
        assert s.cycles <= t.cycles * slack, name
        # scoped fences always reduce fence stalls
        assert s.fence_stall_cycles <= t.fence_stall_cycles, name
        # speculation never makes the traditional baseline slower
        assert tp.cycles <= t.cycles * 1.05, name
    # headline shapes
    t, s, *_ = results["barnes"]
    assert 0.30 <= t.fence_stall_fraction <= 0.50  # paper: 0.388
    assert s.fence_stall_fraction <= 0.6 * t.fence_stall_fraction
    t, s, *_ = results["radiosity"]
    assert 1.10 <= t.cycles / s.cycles <= 1.35  # paper: 1.19x
    t, s, *_ = results["ptc"]
    assert t.cycles / s.cycles <= 1.15  # paper: small (1.045x)

    benchmark.pedantic(lambda: run_four("ptc"), rounds=1, iterations=1)
