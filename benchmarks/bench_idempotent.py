"""Fence *scoping* vs fence *removal* (Section VII, [34]).

Michael et al.'s idempotent work stealing removes the take fence by
relaxing semantics to at-least-once; S-Fence keeps exactly-once and
makes the fence cheap.  The paper calls the approaches complementary.
This bench runs pst (whose CAS-deduplicated claims tolerate duplicate
task delivery) four ways:

    Chase-Lev + traditional   |  Chase-Lev + S-Fence
    idempotent + traditional  |  idempotent + S-Fence
"""

from conftest import scaled

from repro.algorithms.idempotent_wsq import IdempotentLifo
from repro.analysis.report import format_table
from repro.apps.pst import build_pst
from repro.isa.instructions import FenceKind
from repro.runtime.lang import Env
from repro.sim.config import SimConfig


def run(scope, idempotent):
    env = Env(SimConfig())
    factory = None
    if idempotent:
        factory = lambda env, name, cap, sc: IdempotentLifo(env, name, cap, sc)  # noqa: E731
    inst = build_pst(
        env, n_vertices=scaled(128), extra_edges=scaled(128),
        scope=scope, deque_factory=factory,
    )
    res = env.run(inst.program, max_cycles=30_000_000)
    inst.check()
    return res


def test_scoping_vs_idempotent_removal(benchmark, report):
    cells = {}
    rows = []
    for idem, deque_name in ((False, "Chase-Lev"), (True, "idempotent")):
        for scope, fence_name in ((FenceKind.GLOBAL, "traditional"), (FenceKind.CLASS, "S-Fence")):
            res = run(scope, idem)
            cells[(idem, scope)] = res
            rows.append(
                (
                    deque_name,
                    fence_name,
                    res.cycles,
                    res.stats.fences,
                    f"{res.stats.fence_stall_fraction:.0%}",
                )
            )
    report(format_table(
        ["deque", "fences", "cycles", "fence count", "stall share"],
        rows,
        title="Scoping vs removal -- pst over two work-stealing designs",
    ))

    cl_t = cells[(False, FenceKind.GLOBAL)]
    cl_s = cells[(False, FenceKind.CLASS)]
    id_t = cells[(True, FenceKind.GLOBAL)]
    id_s = cells[(True, FenceKind.CLASS)]
    # removing the take fence executes fewer fences ...
    assert id_t.stats.fences < cl_t.stats.fences
    # ... and scoping helps whichever deque is used (complementary)
    assert cl_s.cycles <= cl_t.cycles * 1.02
    assert id_s.cycles <= id_t.cycles * 1.02

    benchmark.pedantic(lambda: run(FenceKind.CLASS, True), rounds=1, iterations=1)
