"""Figure 14: class scope vs set scope.

Paper: for msn, harris, pst and ptc, set scope is slightly better than
class scope (it orders fewer accesses), but the difference is not
significant -- so programmers may prefer the easier class scope.
"""

from conftest import scaled

from repro.algorithms.workloads import build_harris_workload, build_msn_workload
from repro.analysis.report import format_table
from repro.analysis.speedup import measure
from repro.apps.pst import build_pst
from repro.apps.ptc import build_ptc
from repro.isa.instructions import FenceKind
from repro.sim.config import SimConfig

BUILDERS = {
    "msn": lambda env, k: build_msn_workload(
        env, scope=k, iterations=scaled(12), workload_level=2
    ),
    "harris": lambda env, k: build_harris_workload(
        env, scope=k, iterations=scaled(12), workload_level=2
    ),
    "pst": lambda env, k: build_pst(env, scope=k, n_vertices=scaled(128)),
    "ptc": lambda env, k: build_ptc(env, scope=k, n_vertices=scaled(48)),
}


def run_scopes(name):
    builder = BUILDERS[name]
    out = {}
    for label, kind in (("C.S.", FenceKind.CLASS), ("S.S.", FenceKind.SET)):
        out[label] = measure(
            lambda env: builder(env, kind), SimConfig(), label=label,
            max_cycles=20_000_000,
        )
    return out


def test_fig14_class_vs_set_scope(benchmark, report):
    rows = []
    results = {}
    for name in BUILDERS:
        pts = run_scopes(name)
        results[name] = pts
        ratio = pts["S.S."].cycles / pts["C.S."].cycles
        rows.append(
            (
                name,
                pts["C.S."].cycles,
                pts["S.S."].cycles,
                f"{ratio:.3f}",
                "set <= class, difference small",
            )
        )
    report(format_table(
        ["benchmark", "class-scope cycles", "set-scope cycles", "set/class", "paper"],
        rows,
        title="Figure 14 -- class scope vs set scope",
    ))

    for name, pts in results.items():
        ratio = pts["S.S."].cycles / pts["C.S."].cycles
        # set scope is at least as good ...
        assert ratio <= 1.02, f"{name}: set scope slower than class scope"
        # ... but not dramatically better (the paper's 'not significant')
        assert ratio >= 0.85, f"{name}: implausibly large set-scope gain"

    benchmark.pedantic(lambda: run_scopes("msn"), rounds=1, iterations=1)
