"""Extension benchmarks: algorithms beyond the paper's Table IV.

Treiber stack, Lamport SPSC queue, the mixed multi-class workload and
the Cilk-style fork-join runtime all follow the same law as the
paper's group: scoped fences skip the out-of-scope latency and never
lose.
"""

from conftest import scaled

from repro.algorithms.mixed import build_mixed_workload
from repro.algorithms.workloads import build_lamport_workload, build_treiber_workload
from repro.analysis.report import format_table
from repro.apps.cilk_fib import build_cilk_fib
from repro.isa.instructions import FenceKind
from repro.runtime.lang import Env
from repro.sim.config import SimConfig

BUILDERS = {
    "treiber": lambda env, scoped: build_treiber_workload(
        env, workload_level=2, iterations=scaled(15)
    ),
    "lamport": lambda env, scoped: build_lamport_workload(
        env, workload_level=2, iterations=scaled(30)
    ),
    "mixed": lambda env, scoped: build_mixed_workload(
        env, workload_level=2, iterations=scaled(10)
    ),
    "cilk_fib": lambda env, scoped: build_cilk_fib(env, n=10),
}


def run(name, scoped):
    env = Env(SimConfig(scoped_fences=scoped))
    handle = BUILDERS[name](env, scoped)
    res = env.run(handle.program, max_cycles=20_000_000)
    handle.check()
    return res


def test_extension_benchmarks(benchmark, report):
    rows = []
    speedups = {}
    for name in BUILDERS:
        trad = run(name, scoped=False)
        scoped = run(name, scoped=True)
        speedups[name] = trad.cycles / scoped.cycles
        rows.append(
            (
                name,
                trad.cycles,
                scoped.cycles,
                f"{speedups[name]:.3f}",
                f"{trad.stats.fence_stall_fraction:.0%} -> {scoped.stats.fence_stall_fraction:.0%}",
            )
        )
    report(format_table(
        ["benchmark", "traditional", "S-Fence", "speedup", "fence-stall share"],
        rows,
        title="Extensions -- algorithms beyond Table IV",
    ))
    for name, s in speedups.items():
        assert s >= 0.97, f"{name}: S-Fence lost ({s:.3f})"
    assert speedups["lamport"] > 1.1  # SPSC ring profits like wsq

    benchmark.pedantic(lambda: run("treiber", True), rounds=1, iterations=1)
