"""Stateless exhaustive interleaving explorer with sleep-set DPOR.

The reference model in :mod:`repro.core.semantics` enumerates every
per-thread linear order and then every order-preserving merge -- exact,
but factorially wasteful: most merges differ only in the order of
*independent* operations (different locations, or two loads) and land
in the same final state.  This module explores the identical outcome
space as a transition system and prunes that redundancy with dynamic
partial-order reduction, so the full litmus corpus x fence-mode matrix
completes in well under a second.

The transition system
---------------------

Each thread is the *partial order* of its memory operations returned by
:func:`repro.core.semantics.thread_order_constraints` -- same-location
program order plus fence-induced edges.  A state is (per-thread set of
executed ops, memory, register bindings); a transition executes one op
whose intra-thread predecessors have all executed.  The set of complete
executions is exactly the set of interleavings of the per-thread linear
extensions that the reference model enumerates, so both implementations
compute the same allowed-outcome set by construction of the shared
constraint function -- and :mod:`tests.test_verify_dpor` checks it
anyway, per corpus test and fence mode.

The reduction
-------------

Two transitions are *dependent* iff they touch the same location and at
least one is a store; everything else commutes (same final state, and
enabledness here is monotone -- executing an op never disables another,
it only unlocks intra-thread successors).  The explorer runs a DFS with
**sleep sets** (Godefroid): after fully exploring transition ``a`` from
a state, ``a`` is put to sleep for the remaining siblings, and a child
reached via ``b`` inherits the sleeping transitions independent of
``b``.  Every Mazurkiewicz trace is explored exactly once, so the
outcome set is preserved while the number of walked interleavings drops
from "all linear extensions" to "one per trace" -- the counts are
reported in :class:`Exploration` and asserted in the tests to prove the
pruning is real.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.semantics import thread_order_constraints


@dataclass
class Exploration:
    """Result of one exhaustive exploration."""

    outcomes: set[tuple] = field(default_factory=set)
    registers: list[str] = field(default_factory=list)
    interleavings: int = 0    # complete executions reached
    transitions: int = 0      # DFS edges walked
    dpor: bool = True


def _dependent(op_a: tuple, op_b: tuple) -> bool:
    """Same location with a store involved: the pair must not commute."""
    return op_a[1] == op_b[1] and (op_a[0] == "store" or op_b[0] == "store")


def explore_allowed_outcomes(
    threads: list[list[tuple]],
    init: dict | None = None,
    dpor: bool = True,
) -> Exploration:
    """All register outcomes reachable in the reference memory model.

    ``threads`` uses the abstract-op tuples of
    :func:`repro.litmus.dsl.abstract_threads`.  With ``dpor=False`` the
    DFS degenerates to naive full enumeration of every interleaving --
    the brute-force baseline the DPOR tests compare against.  Outcomes
    are tuples in sorted register-name order, the same shape both
    :func:`repro.core.semantics.reference_allowed_outcomes` and
    :func:`repro.litmus.dsl.run_litmus` report.
    """
    init = init or {}
    per_thread = [thread_order_constraints(ops) for ops in threads]
    mems = [mems for mems, _ in per_thread]
    preds: list[list[int]] = []
    for t, (ops, before) in enumerate(per_thread):
        masks = [0] * len(ops)
        for a, b in before:
            masks[b] |= 1 << a
        preds.append(masks)

    regs = sorted(op[2] for ops in mems for op in ops if op[0] == "load")
    result = Exploration(registers=regs, dpor=dpor)

    n_threads = len(mems)
    done = [0] * n_threads                       # executed-op bitmask per thread
    full = [(1 << len(ops)) - 1 for ops in mems]
    memory: dict[str, int] = dict(init)
    values: dict[str, int] = {}

    def enabled() -> list[tuple[int, int]]:
        out = []
        for t in range(n_threads):
            mask = done[t]
            for i, need in enumerate(preds[t]):
                if not mask >> i & 1 and mask & need == need:
                    out.append((t, i))
        return out

    def walk(sleep: set[tuple[int, int]]) -> None:
        choices = enabled()
        if not choices:
            result.interleavings += 1
            result.outcomes.add(tuple(values[r] for r in regs))
            return
        asleep: set[tuple[int, int]] = set(sleep) if dpor else set()
        for t, i in choices:
            if (t, i) in asleep:
                continue
            op = mems[t][i]
            result.transitions += 1
            done[t] |= 1 << i
            if op[0] == "store":
                undo = ("mem", op[1], memory.get(op[1]))
                memory[op[1]] = op[2]
            else:
                undo = ("reg", op[2], values.get(op[2]))
                values[op[2]] = memory.get(op[1], 0)
            child_sleep = (
                {s for s in asleep if not _dependent(mems[s[0]][s[1]], op)}
                if dpor else asleep
            )
            walk(child_sleep)
            done[t] &= ~(1 << i)
            kind, key, old = undo
            store = memory if kind == "mem" else values
            if old is None:
                store.pop(key, None)
            else:
                store[key] = old
            if dpor:
                asleep.add((t, i))

    walk(set())
    return result
