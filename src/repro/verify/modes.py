"""Fence-mode variants of a litmus test.

The verifier certifies each corpus test not just as written but across
a matrix of fence placements, so every fence implementation path gets
the same exhaustive treatment:

* ``orig``         -- the test exactly as the corpus wrote it (its own
  fence kinds, masks and placements);
* ``none``         -- every fence stripped: the maximally relaxed
  baseline whose allowed set the others must shrink;
* ``full``         -- traditional ``fence`` (WAIT_BOTH, global scope)
  inserted after every memory operation;
* ``sfence-class`` -- ``fence.class`` at the same points: the S-Fence
  class-scope hardware path (ScopeTracker); a litmus program runs
  outside any method, so the FENCE rule's conservative empty-``FSeq``
  interpretation applies and the *allowed set* must equal ``full``;
* ``sfence-set``   -- ``fence.set`` at the same points with **every**
  variable set-scope-flagged: the FSB/mapping-table set-scope path,
  again with an allowed set equal to ``full``.

``full`` / ``sfence-class`` / ``sfence-set`` being reference-equivalent
is the point, not an accident: the three modes drive three different
hardware mechanisms through identical ordering obligations, so a
simulator outcome that leaks past one of them indicts that mechanism
specifically.  Insertion is canonical -- after each store/load, with a
trailing fence (nothing left to order) dropped -- so the matrix is
well-defined even for tests the corpus wrote fence-free.

``delay`` statements survive every rewrite: they are timing-only but
give the simulator sweep its schedule diversity.
"""

from __future__ import annotations

from ..litmus.dsl import LitmusTest, litmus_variables, stmt_kind
from ..sim.config import MEM_BACKENDS

#: the verification matrix, in report order
FENCE_MODES = ("orig", "none", "full", "sfence-class", "sfence-set")

#: coherence-backend axis of the verification matrix (report order).
#: Every fence mode x engine cell can run on every backend; ``mesi`` is
#: the default and its cells keep their historical report keys, while
#: other backends report under ``<engine>@<backend>`` columns.  A
#: backend is *sound* when observed stays within the same DPOR/reference
#: allowed sets -- the backend never appears in the allowed-set
#: computation, only in the simulator sweep, because coherence backends
#: are timing-only by contract (repro.mem.backend).
BACKENDS = MEM_BACKENDS

_MODE_FENCE = {
    "none": None,
    "full": "fence",
    "sfence-class": "fence.class",
    "sfence-set": "fence.set",
}


def apply_fence_mode(test: LitmusTest, mode: str) -> LitmusTest:
    """The ``mode`` variant of ``test`` (a fresh :class:`LitmusTest`)."""
    if mode == "orig":
        return test
    if mode not in _MODE_FENCE:
        raise KeyError(f"unknown fence mode {mode!r} (have {FENCE_MODES})")
    fence_stmt = _MODE_FENCE[mode]
    threads: list[list[str]] = []
    for stmts in test.threads:
        rewritten: list[str] = []
        for stmt in stmts:
            kind = stmt_kind(stmt)
            if kind == "fence":
                continue
            rewritten.append(stmt)
            if fence_stmt is not None and kind in ("store", "load"):
                rewritten.append(fence_stmt)
        while rewritten and rewritten[-1] == fence_stmt:
            rewritten.pop()
        threads.append(rewritten)
    flagged = set(test.flagged)
    if mode == "sfence-set":
        flagged |= litmus_variables(test)
    return LitmusTest(test.name, threads, dict(test.init), flagged, test.condition)
