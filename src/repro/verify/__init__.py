"""Exhaustive litmus model checking and simulator outcome verification.

Three layers (see ``docs/architecture.md`` §10):

* :mod:`~repro.verify.explorer` -- a stateless exhaustive interleaving
  explorer with sleep-set dynamic partial-order reduction over the
  abstract thread programs of :func:`repro.litmus.dsl.abstract_threads`;
* :mod:`~repro.verify.modes` -- the fence-mode matrix (original / no
  fences / full fence / S-Fence class / S-Fence set) each corpus test
  is verified under;
* :mod:`~repro.verify.runner` -- per-case soundness/coverage scoring
  against both simulator engines and the ``verify-report.json``
  assembly behind ``python -m repro verify``.
"""

from .explorer import Exploration, explore_allowed_outcomes
from .modes import BACKENDS, FENCE_MODES, apply_fence_mode
from .runner import (
    DEFAULT_SEEDS,
    ENGINES,
    REPORT_PATH,
    assemble_verify_report,
    engine_key,
    format_verify_failures,
    format_verify_report,
    seed_offsets,
    verify_case,
    write_verify_report,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_SEEDS",
    "ENGINES",
    "Exploration",
    "FENCE_MODES",
    "REPORT_PATH",
    "apply_fence_mode",
    "assemble_verify_report",
    "engine_key",
    "explore_allowed_outcomes",
    "format_verify_failures",
    "format_verify_report",
    "seed_offsets",
    "verify_case",
    "write_verify_report",
]
