"""Per-case verification drivers and the verify report.

One *case* is ``(litmus test, fence mode, simulator engine)``.  For
each case the driver:

1. rewrites the test for the fence mode (:mod:`repro.verify.modes`),
2. computes the **complete** allowed-outcome set with the DPOR
   explorer (:mod:`repro.verify.explorer`),
3. cross-checks it against the independently implemented
   :func:`repro.core.semantics.reference_allowed_outcomes`,
4. sweeps the simulator over seeded timing-offset grids on the chosen
   engine (event-driven or dense reference loop) and collects every
   observed outcome, then
5. scores **soundness** (``observed - allowed`` must be empty; anything
   in it is a fence-semantics bug with the offending tuples named) and
   **coverage** (``allowed - observed``: outcomes the simulator never
   reached, so a "forbidden outcome not observed" test would pass
   vacuously if it were also failing to reach the *allowed* ones).

Soundness and reference agreement gate the exit status; coverage is
reported, never gated -- the simulator is deliberately stronger than
the reference model (DESIGN.md), so some allowed outcomes (LB-style
load reorderings, for one) are unreachable by construction.

Cases run as campaign ``verify`` jobs
(:func:`repro.campaign.jobs.verify_jobs`), so ``python -m repro
verify`` gets parallel fan-out, crash isolation and the on-disk result
cache for free; :func:`assemble_verify_report` folds the job outcomes
back into one machine-readable report (``verify-report.json``).
"""

from __future__ import annotations

import json
import random

from ..analysis.report import format_table
from ..core.semantics import reference_allowed_outcomes
from ..litmus.dsl import (
    abstract_threads,
    outcomes_matching,
    parse_litmus,
    run_litmus,
)
from ..sim.config import MemoryModel
from .explorer import explore_allowed_outcomes
from .modes import BACKENDS, FENCE_MODES, apply_fence_mode

#: simulator engines every case is verified on
ENGINES = ("event", "dense")


def engine_key(engine: str, backend: str) -> str:
    """Report column key for one (engine, coherence backend) cell.

    ``mesi`` cells keep the plain engine name -- the schema (and the
    committed report) predates the backend axis -- while other backends
    report under ``<engine>@<backend>``.
    """
    return engine if backend == "mesi" else f"{engine}@{backend}"

#: seed-0 timing-offset grid (the corpus sweep's grid); later seeds
#: draw randomised grids of the same size
DEFAULT_OFFSETS = [0, 1, 40, 150, 320]
SMOKE_OFFSETS = [0, 1, 150]

DEFAULT_SEEDS = 2
REPORT_PATH = "verify-report.json"


def seed_offsets(name: str, mode: str, seed: int, smoke: bool = False) -> list[int]:
    """The timing-offset grid for one sweep seed (deterministic).

    Seed 0 is the fixed corpus grid; seed ``n > 0`` draws a fresh grid
    from an rng keyed on (test, mode, seed) -- engine-independent, so
    the dense and event engines see identical schedules and their
    coverage can only differ through engine behaviour.
    """
    base = SMOKE_OFFSETS if smoke else DEFAULT_OFFSETS
    if seed == 0:
        return list(base)
    rng = random.Random(f"verify:{name}:{mode}:{seed}")
    return sorted({rng.randint(0, 400) for _ in range(len(base))})


def _case_products(source: str, mode: str):
    """Parse/rewrite/explore products for one (test source, fence mode).

    Everything here is a pure function of the two key components and
    independent of engine, seeds and smoke, so the engine axis of the
    verify matrix -- and every sweep seed -- shares one DPOR exploration
    per (test, mode).  Memoised per process via the campaign warm slot:
    persistent pool workers walking the matrix pay the exploration once,
    while one-shot processes behave exactly as before.
    """
    from ..campaign.jobs import warm_slot

    memo = warm_slot("verify-products")
    entry = memo.get((source, mode))
    if entry is None:
        test = parse_litmus(source)
        variant = apply_fence_mode(test, mode)
        threads = abstract_threads(variant)
        init = dict(variant.init)
        exploration = explore_allowed_outcomes(threads, init)
        reference = reference_allowed_outcomes(threads, init)
        entry = memo[(source, mode)] = (test, variant, exploration, reference)
    return entry


def verify_case(params: dict) -> dict:
    """Run one (test, mode, engine) case; returns the JSON-safe payload."""
    test, variant, exploration, reference = _case_products(
        params["source"], params["mode"])
    allowed = exploration.outcomes

    dense = params["engine"] == "dense"
    backend = params.get("backend", "mesi")
    smoke = bool(params.get("smoke", False))
    observed: set[tuple] = set()
    registers: list[str] = exploration.registers
    # the offset grids stay keyed on (test, mode, seed) only: every
    # backend sweeps identical schedules, so coverage differences can
    # only come from backend timing, never from a different sample
    for seed in range(params.get("seeds", DEFAULT_SEEDS)):
        run = run_litmus(
            variant, MemoryModel.RMO,
            seed_offsets(test.name, params["mode"], seed, smoke),
            dense_loop=dense, mem_backend=backend,
            trace_compile=params.get("trace_compile", True),
        )
        observed |= run.outcomes
        registers = run.register_names
    # one shared code path names the condition-matching tuples (the
    # same one litmus mismatch messages and synthesis counterexample
    # logs use), applied once to the union instead of per sweep seed
    condition_hits = outcomes_matching(variant.condition, registers, observed)

    violations = sorted(observed - allowed)
    unreached = sorted(allowed - observed)
    return {
        "name": test.name,
        "mode": params["mode"],
        "engine": params["engine"],
        "backend": backend,
        "registers": registers,
        "allowed": sorted(list(o) for o in allowed),
        "observed": sorted(list(o) for o in observed),
        "violations": [list(o) for o in violations],
        "unreached": [list(o) for o in unreached],
        "coverage": [len(allowed & observed), len(allowed)],
        "sound": not violations,
        "reference_match": allowed == reference,
        "reference_only": sorted(list(o) for o in reference - allowed),
        "explorer_only": sorted(list(o) for o in allowed - reference),
        "interleavings": exploration.interleavings,
        "transitions": exploration.transitions,
        "condition": variant.condition,
        "condition_observed": bool(condition_hits),
        "condition_outcomes": sorted(list(o) for o in condition_hits),
    }


# ------------------------------------------------------------------ the report
def assemble_verify_report(outcomes, seeds: int, smoke: bool) -> dict:
    """Fold campaign job outcomes into the verify report.

    ``outcomes`` is the submission-ordered
    :class:`~repro.campaign.engine.JobOutcome` list of a ``verify``
    campaign.  The report is ``ok`` iff every case ran, was sound, and
    the explorer agreed with the reference enumeration.
    """
    tests: dict[str, dict] = {}
    engine_failures = []
    soundness_violations = []
    reference_mismatches = []
    present = {
        engine_key(o.job.params["engine"], o.job.params.get("backend", "mesi"))
        for o in outcomes
    }
    engines = [k for k in (engine_key(e, b) for b in BACKENDS for e in ENGINES)
               if k in present]
    backends = [b for b in BACKENDS
                if any(o.job.params.get("backend", "mesi") == b
                       for o in outcomes)]
    modes = [m for m in FENCE_MODES
             if any(o.job.params["mode"] == m for o in outcomes)]
    for outcome in outcomes:
        p = outcome.job.params
        cell_key = engine_key(p["engine"], p.get("backend", "mesi"))
        if not outcome.ok:
            engine_failures.append({
                "name": p["name"], "mode": p["mode"], "engine": cell_key,
                "status": outcome.status, "error": outcome.error,
            })
            continue
        r = outcome.result
        mode_slot = (
            tests.setdefault(r["name"], {"modes": {}})["modes"]
            .setdefault(r["mode"], {
                "registers": r["registers"],
                "allowed": r["allowed"],
                "interleavings": r["interleavings"],
                "transitions": r["transitions"],
                "engines": {},
            })
        )
        mode_slot["engines"][cell_key] = {
            "observed": r["observed"],
            "unreached": r["unreached"],
            "coverage": r["coverage"],
            "sound": r["sound"],
            "violations": r["violations"],
            "condition_observed": r["condition_observed"],
            "condition_outcomes": r["condition_outcomes"],
        }
        if not r["sound"]:
            soundness_violations.append({
                "name": r["name"], "mode": r["mode"], "engine": cell_key,
                "registers": r["registers"], "violations": r["violations"],
            })
        if not r["reference_match"]:
            reference_mismatches.append({
                "name": r["name"], "mode": r["mode"],
                "explorer_only": r["explorer_only"],
                "reference_only": r["reference_only"],
            })
    return {
        "seeds": seeds,
        "smoke": smoke,
        "engines": engines,
        "backends": backends,
        "modes": modes,
        "tests": tests,
        "engine_failures": engine_failures,
        "soundness_violations": soundness_violations,
        "reference_mismatches": reference_mismatches,
        "ok": not (engine_failures or soundness_violations
                   or reference_mismatches),
    }


def format_verify_report(report: dict) -> str:
    """The per-test coverage tables, one row per (test, mode)."""
    rows = []
    for name, entry in report["tests"].items():
        for mode, slot in entry["modes"].items():
            row = [name, mode, len(slot["allowed"]), slot["interleavings"]]
            for engine in report["engines"]:
                eng = slot["engines"].get(engine)
                if eng is None:
                    row.append("FAILED")
                    continue
                covered, total = eng["coverage"]
                cell = f"{covered}/{total}"
                if not eng["sound"]:
                    cell += " UNSOUND"
                row.append(cell)
            rows.append(tuple(row))
    title = "litmus verify -- exhaustive allowed sets vs simulator coverage"
    if report["smoke"]:
        title += " (smoke)"
    return format_table(
        ["test", "fence mode", "allowed", "interleavings"]
        + [f"{e} coverage" for e in report["engines"]],
        rows, title=title,
    )


def format_verify_failures(report: dict) -> list[str]:
    """Human-readable lines for everything that gates the exit status."""
    lines = []
    for v in report["soundness_violations"]:
        regs = tuple(v["registers"])
        tuples = ", ".join(str(tuple(o)) for o in v["violations"])
        lines.append(
            f"UNSOUND {v['name']}[{v['mode']}] on {v['engine']}: "
            f"simulator reached outcome(s) outside the exhaustive allowed "
            f"set -- registers {regs}, offending outcome(s): {tuples}"
        )
    for m in report["reference_mismatches"]:
        lines.append(
            f"REFERENCE MISMATCH {m['name']}[{m['mode']}]: "
            f"explorer-only {m['explorer_only']}, "
            f"reference-only {m['reference_only']}"
        )
    for f in report["engine_failures"]:
        lines.append(
            f"ENGINE FAILURE {f['name']}[{f['mode']}] on {f['engine']}: "
            f"{f['status']}\n{f['error']}"
        )
    return lines


def write_verify_report(report: dict, path: str = REPORT_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
