"""Deterministic *infrastructure* fault injection for the campaign engine.

PR 1's chaos harness perturbs the simulated hardware; this module aims
the same discipline at the execution infrastructure itself -- the
worker pool and the result cache that every reported number flows
through.  An :class:`InfraFaultPlan` is a seeded, scripted set of
faults in two categories:

* **live pool faults**, keyed by ``(job index, attempt)`` so they are
  deterministic regardless of which worker happens to pull which chunk:
  a SIGKILL-style exit mid-job (after the ``start`` message -- the
  parent classifies exactly that job ``worker-crash``), a pre-start
  exit (the parent cannot attribute the death, so the whole remaining
  chunk re-queues -- the poisoned-chunk path), a heartbeat stall long
  enough to trip the job timeout, and seeded slow-worker jitter
  (timing-only; must change nothing).
* **at-rest cache faults**, applied between campaigns by
  :func:`sabotage_cache`: result blobs overwritten with garbage or
  truncated mid-JSON, and a torn (fsync-interrupted) trailing line
  appended to ``manifest.jsonl``.

Keying live faults by *attempt* is what makes fault scripts terminate:
a job killed at attempt 0 runs clean at attempt 1, so any plan whose
per-job fault count stays within the retry budget is recoverable by
construction.  Hooks are installed only in persistent pool workers --
the serial fallback path deliberately runs fault-free, it is the
recovery of last resort.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from random import Random

#: exit code of an injected worker kill -- distinctive in error strings
INFRA_EXIT_CODE = 86


@dataclass(frozen=True)
class InfraFaultPlan:
    """A scripted, seeded set of infrastructure faults."""

    seed: int = 0
    #: (job index, attempt) pairs killed after the job's ``start``
    #: message -- classified ``worker-crash`` for exactly that job
    kills: tuple = ()
    #: (job index, attempt) pairs killed on chunk receipt, *before*
    #: ``start`` -- the parent re-queues the whole remaining chunk
    #: (and the poisoned-chunk backstop caps the loop)
    receive_kills: tuple = ()
    #: (job index, attempt) pairs that sleep ``stall_seconds`` without
    #: heartbeating -- tripping the per-job timeout, classified
    #: ``worker-timeout``.  Plans must keep ``stall_seconds`` above the
    #: engine's ``job_timeout`` or the stall degrades to mere jitter.
    stalls: tuple = ()
    stall_seconds: float = 6.0
    #: seeded per-(index, attempt) chance of a short pre-job sleep --
    #: the timing-only fault that must change no outcome at all
    jitter_prob: float = 0.0
    jitter_max_s: float = 0.0
    #: at-rest sabotage counts for :func:`sabotage_cache`
    corrupt_blobs: int = 0
    truncate_blobs: int = 0
    tear_manifest: bool = False

    @property
    def live(self) -> bool:
        """Whether any in-worker fault is scripted."""
        return bool(self.kills or self.receive_kills or self.stalls
                    or self.jitter_prob)

    def describe(self) -> dict:
        """Compact JSON-ready summary for reports."""
        return {
            "seed": self.seed,
            "kills": sorted(self.kills),
            "receive_kills": sorted(self.receive_kills),
            "stalls": sorted(self.stalls),
            "stall_seconds": self.stall_seconds,
            "jitter_prob": self.jitter_prob,
            "corrupt_blobs": self.corrupt_blobs,
            "truncate_blobs": self.truncate_blobs,
            "tear_manifest": self.tear_manifest,
        }


# ------------------------------------------------------------- worker-side hooks
def fault_on_receive(plan: InfraFaultPlan, index: int, attempt: int) -> None:
    """Worker hook before the ``start`` message for job ``index``."""
    if (index, attempt) in plan.receive_kills:
        os._exit(INFRA_EXIT_CODE)


def fault_pre_job(plan: InfraFaultPlan, index: int, attempt: int) -> None:
    """Worker hook after ``start``, before the job executes."""
    if (index, attempt) in plan.kills:
        os._exit(INFRA_EXIT_CODE)
    if (index, attempt) in plan.stalls:
        # no heartbeat during the sleep: the parent's deadline lapses
        # and the worker is killed mid-stall
        time.sleep(plan.stall_seconds)
    if plan.jitter_prob:
        rng = Random(f"{plan.seed}:jitter:{index}:{attempt}")
        if rng.random() < plan.jitter_prob:
            time.sleep(rng.uniform(0.0, plan.jitter_max_s))


# --------------------------------------------------------------- scripted plans
def scripted_plan(
    seed: int,
    n_jobs: int,
    retries: int = 2,
    stall_seconds: float = 6.0,
) -> InfraFaultPlan:
    """A recoverable fault script over ``n_jobs`` jobs, from one seed.

    Four distinct target jobs are drawn: one killed mid-job at attempt
    0, one killed at attempts 0 *and* 1 when the retry budget allows
    (exercising repeated backoff), one killed pre-start (the chunk
    re-queue path), and one stalled past the timeout.  Per-job fault
    counts stay within ``retries``, so a policy with that budget heals
    every fault.  Cache sabotage (one corrupted blob, one truncated
    blob, a torn manifest tail) rides along for
    :func:`sabotage_cache`.
    """
    if n_jobs < 4:
        raise ValueError(f"need >= 4 jobs to script distinct faults, "
                         f"have {n_jobs}")
    rng = Random(f"infra:{seed}")
    kill_a, kill_b, poison, stall = rng.sample(range(n_jobs), 4)
    kills = [(kill_a, 0), (kill_b, 0)]
    if retries >= 2:
        kills.append((kill_b, 1))
    return InfraFaultPlan(
        seed=seed,
        kills=tuple(sorted(kills)),
        receive_kills=((poison, 0),),
        stalls=((stall, 0),),
        stall_seconds=stall_seconds,
        jitter_prob=0.3,
        jitter_max_s=0.02,
        corrupt_blobs=1,
        truncate_blobs=1,
        tear_manifest=True,
    )


# --------------------------------------------------------------- cache sabotage
def sabotage_cache(cache_root: str | os.PathLike,
                   plan: InfraFaultPlan) -> dict:
    """Apply the plan's at-rest faults to a populated cache directory.

    Deterministic given the plan seed and the cache contents: victim
    blobs are drawn from the sorted object list.  Returns a record of
    exactly what was damaged so the differential report can show the
    recovery path account for every injected fault.
    """
    root = Path(cache_root)
    objects = sorted((root / "objects").rglob("*.json"))
    rng = Random(f"sabotage:{plan.seed}")
    wanted = plan.corrupt_blobs + plan.truncate_blobs
    victims = rng.sample(objects, min(wanted, len(objects)))
    report: dict = {"corrupted": [], "truncated": [], "manifest_torn": False}
    for path in victims[:plan.corrupt_blobs]:
        # valid-JSON-but-wrong bytes: only the checksum can catch this
        obj = json.loads(path.read_text())
        obj["result"] = {"tampered": True}
        path.write_text(json.dumps(obj, sort_keys=True))
        report["corrupted"].append(path.name)
    for path in victims[plan.corrupt_blobs:]:
        data = path.read_bytes()
        path.write_bytes(data[:max(1, len(data) // 2)])
        report["truncated"].append(path.name)
    if plan.tear_manifest:
        manifest = root / "manifest.jsonl"
        with open(manifest, "a") as fh:
            fh.write('{"key": "deadbeef", "kin')  # no newline: torn fsync
        report["manifest_torn"] = True
    return report
