"""Campaign resilience: retries, graceful degradation, differential proof.

The campaign engine's contract is that infrastructure failures never
change *what* a sweep computes -- only whether and how fast it
completes.  This module supplies the recovery machinery behind that
contract and the harness that proves it:

* :class:`RetryPolicy` -- exponential backoff with deterministic
  jitter for the *transient* failure classifications
  (``worker-crash``, ``worker-timeout``).  A deterministic job
  ``error`` (an exception inside the job) is never retried: re-running
  the same pure function on the same inputs reproduces the same
  exception, so a retry would only launder a real bug into wasted
  cycles.  Final outcomes record the full attempt history.
* :class:`DegradationLadder` -- the pool-shrinking response to respawn
  storms.  A worker death is normal (that is what crash isolation is
  for); a *stream* of deaths means the host is hostile -- fork bombs
  out of memory, an OOM killer picking off children -- and respawning
  at full width feeds the fire.  Every :data:`STORM_DEATHS` deaths the
  ladder halves the worker target (8 -> 4 -> 2) and finally abandons
  the pool for serial fallback execution, completing the sweep slowly
  rather than failing it.
* :func:`run_resilience_differential` -- the proof harness behind
  ``python -m repro campaign --chaos-infra <seed>``: one fault-free
  sweep and one sweep under a scripted
  :class:`~repro.campaign.chaosinfra.InfraFaultPlan` (worker SIGKILLs,
  heartbeat stalls, slow-worker jitter, then at-rest cache corruption
  and a torn manifest) must produce byte-identical outcome
  fingerprints, with every retry, downgrade and quarantine visible in
  the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

#: failure classifications that may be environment-caused and are
#: therefore worth retrying.  ``error`` is deliberately absent: job
#: payloads are pure functions of their parameters, so an in-job
#: exception is deterministic and a retry cannot change it.
TRANSIENT_STATUSES = ("worker-crash", "worker-timeout")

#: worker deaths per degradation rung: every this-many deaths the pool
#: target halves, and below two workers the pool is abandoned for
#: serial fallback.  High enough that a single poisoned chunk burning
#: its re-queue budget does not shrink a healthy pool.
STORM_DEATHS = 6


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-run transient failures, and how patiently.

    ``retries`` caps the *re*-runs: a job always gets one attempt, plus
    up to ``retries`` more while its failures stay transient.  Delays
    grow exponentially (``backoff_base * backoff_mult**attempt``,
    capped at ``backoff_cap``) with a deterministic jitter fraction
    drawn from a ``(seed, job index, attempt)``-keyed stream -- two
    jobs whose first attempts die together do not hammer the pool in
    lockstep, yet the schedule is reproducible run to run.
    """

    retries: int = 2
    backoff_base: float = 0.05
    backoff_mult: float = 2.0
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.25
    seed: int = 0

    def retries_for(self, status: str) -> int:
        """Re-runs allowed after a failure of ``status``."""
        return self.retries if status in TRANSIENT_STATUSES else 0

    def delay(self, index: int, attempt: int) -> float:
        """Backoff before re-running job ``index`` after failed ``attempt``."""
        base = min(self.backoff_cap,
                   self.backoff_base * self.backoff_mult ** attempt)
        rng = Random(f"{self.seed}:backoff:{index}:{attempt}")
        return base * (1.0 + self.backoff_jitter * rng.random())


#: retries disabled -- the pre-resilience engine behaviour, used by
#: tests that assert raw failure classification
NO_RETRY = RetryPolicy(retries=0)


@dataclass
class DegradationLadder:
    """Shrink the pool under respawn storms instead of failing the sweep.

    ``target`` is the number of workers the pool may keep alive; the
    engine consults it before every (re)spawn.  :meth:`record_death`
    counts every worker death -- crash, timeout kill, chunk poisoning
    -- and on each :attr:`storm_deaths` multiple descends one rung:
    halve ``target`` while it is above two, then flip :attr:`serial`,
    telling the engine to drain the pool and finish the sweep with
    serial fallback execution.  Every descent is recorded in
    :attr:`events` (and surfaced by the campaign driver); a ladder
    with ``enabled=False`` never descends, which tests use to pin
    pool-width-sensitive behaviour.
    """

    target: int
    storm_deaths: int = STORM_DEATHS
    enabled: bool = True
    deaths: int = 0
    serial: bool = False
    events: list[dict] = field(default_factory=list)

    def record_death(self, jobs_done: int) -> dict | None:
        """Count one worker death; returns the descent event, if any."""
        self.deaths += 1
        if not self.enabled or self.serial or self.deaths % self.storm_deaths:
            return None
        if self.target > 2:
            event = {"kind": "downgrade", "from": self.target,
                     "to": self.target // 2, "deaths": self.deaths,
                     "jobs_done": jobs_done}
            self.target //= 2
        else:
            event = {"kind": "serial-fallback", "from": self.target, "to": 0,
                     "deaths": self.deaths, "jobs_done": jobs_done}
            self.serial = True
        self.events.append(event)
        return event


# ----------------------------------------------------------- differential proof
def resilience_jobs(smoke: bool = False) -> list:
    """The job set the differential harness sweeps.

    Real simulation work (the litmus corpus, a couple of chaos cells)
    plus a spread of trivial selftest jobs -- enough indices that the
    scripted fault plan has distinct targets for each fault kind.
    """
    from .jobs import Job, chaos_jobs, litmus_jobs

    jobs = litmus_jobs()
    if not smoke:
        jobs += chaos_jobs(algos=["lamport", "wsq"], scenarios=["latency"],
                           n_seeds=1)
    jobs += [Job("selftest", {"mode": "ok", "echo": i}) for i in range(8)]
    return jobs


def run_resilience_differential(
    seed: int,
    parallel: int = 2,
    smoke: bool = False,
    jobs: list | None = None,
    job_timeout: float | None = None,
    progress=None,
) -> dict:
    """Prove fault-free and faulted sweeps converge byte-identically.

    Three campaigns over the same job list:

    1. **baseline** -- fresh cache, no faults, retries disabled;
    2. **faulted** -- fresh cache, scripted live infrastructure faults
       (worker kills, a pre-start chunk poisoning, a heartbeat stall
       that trips the job timeout, slow-worker jitter) healed by the
       retry policy; then the populated cache is sabotaged at rest
       (corrupted + truncated blobs, torn manifest append);
    3. **recovery** -- a warm re-run over the damaged cache: the torn
       manifest is repaired at startup, corrupt blobs are caught by
       checksum, quarantined and recomputed.

    The report's ``ok`` requires all three outcome fingerprints to be
    byte-identical and every job to end ``ok``.  Retry counts,
    degradation events, quarantines and the manifest repair are all
    recorded -- recovery must be visible, never silent.
    """
    import tempfile

    from ..analysis.campthru import outcome_fingerprint
    from .cache import ResultCache
    from .chaosinfra import sabotage_cache, scripted_plan
    from .engine import run_campaign

    def say(line: str) -> None:
        if progress is not None:
            progress(line)

    jobs = resilience_jobs(smoke) if jobs is None else jobs
    policy = RetryPolicy(retries=2, seed=seed)
    plan = scripted_plan(seed, len(jobs), retries=policy.retries)
    if job_timeout is None:
        # the scripted stall must reliably out-sleep the timeout, with
        # margin for slow CI hosts on the legitimate jobs
        job_timeout = plan.stall_seconds / 4.0

    report: dict = {
        "seed": seed, "jobs": len(jobs), "parallel": parallel,
        "smoke": smoke, "phases": {}, "plan": plan.describe(),
    }

    def phase(name: str, campaign, cache) -> dict:
        entry = {
            "executed": campaign.executed,
            "cached": campaign.cached,
            "failures": len(campaign.failures),
            "retried": campaign.retried,
            "recovered": len(campaign.recovered),
            "downgrades": list(campaign.downgrades),
            "quarantined": cache.quarantined,
            "manifest_repair": cache.repaired,
            "fingerprint": outcome_fingerprint(campaign),
        }
        report["phases"][name] = entry
        say(f"[chaos-infra] {name}: {entry['executed']} executed, "
            f"{entry['cached']} cached, {entry['retried']} retried, "
            f"{entry['failures']} failed, "
            f"fingerprint {entry['fingerprint'][:12]}")
        return entry

    with tempfile.TemporaryDirectory(prefix="resil-base-") as base_dir, \
            tempfile.TemporaryDirectory(prefix="resil-fault-") as fault_dir:
        say(f"[chaos-infra] seed {seed}: {len(jobs)} jobs, "
            f"{parallel} workers, plan {plan.describe()}")
        base_cache = ResultCache(base_dir)
        baseline = run_campaign(jobs, parallel=parallel, cache=base_cache,
                                retry=NO_RETRY)
        phase("baseline", baseline, base_cache)

        fault_cache = ResultCache(fault_dir)
        faulted = run_campaign(jobs, parallel=parallel, cache=fault_cache,
                               retry=policy, infra=plan,
                               job_timeout=job_timeout)
        phase("faulted", faulted, fault_cache)

        report["sabotage"] = sabotage_cache(fault_dir, plan)
        say(f"[chaos-infra] sabotage: {report['sabotage']}")

        recovery_cache = ResultCache(fault_dir)  # init repairs the manifest
        recovered = run_campaign(jobs, parallel=parallel,
                                 cache=recovery_cache, retry=policy)
        phase("recovery", recovered, recovery_cache)

    fingerprints = {p: e["fingerprint"] for p, e in report["phases"].items()}
    report["identical"] = len(set(fingerprints.values())) == 1
    report["ok"] = bool(
        report["identical"]
        and all(e["failures"] == 0 for e in report["phases"].values())
        # the faults must have actually fired and been healed -- a
        # vacuous pass (nothing injected, nothing quarantined) fails
        and report["phases"]["faulted"]["retried"] > 0
        and report["phases"]["recovery"]["quarantined"] > 0
        and report["phases"]["recovery"]["manifest_repair"] is not None
    )
    return report
