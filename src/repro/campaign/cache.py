"""Content-addressed on-disk result cache for campaign jobs.

A campaign must be resumable: killing a sweep half-way and re-invoking
it should re-execute only the cells that never completed.  The cache
keys every job by a SHA-256 over its *content* -- the job kind, its
full parameter payload, and a fingerprint of the ``repro`` source tree
-- so a result is reused only while both the inputs and the code that
produced it are unchanged.  Editing any simulator source invalidates
every key at once (coarse, but sound: there is no per-module dependency
tracking that could silently serve stale numbers).

Layout under the cache root::

    objects/<key[:2]>/<key>.json   one completed job result each
    manifest.jsonl                 append-only log of completed jobs

Object files carry no timestamps or host data, so a warm re-run is
byte-identical to the run that populated it -- the campaign engine's
determinism contract extends to the cache.  Writes go through a
temp-file + ``os.replace`` so a killed campaign never leaves a torn
object behind (a partial temp file is simply ignored and overwritten).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

#: result statuses worth persisting.  Worker crashes and timeouts are
#: environment-dependent (host load, wall clocks) and must be retried,
#: never resumed from cache.
CACHEABLE_STATUSES = ("ok",)

#: a fingerprint handed down by the parent process (campaign workers
#: never hash the tree themselves; the parent installs its value here)
_process_fingerprint: str | None = None


def set_process_fingerprint(fingerprint: str | None) -> None:
    """Install a parent-computed fingerprint for this whole process.

    The campaign engine calls this inside every persistent worker with
    the value the parent computed once, so forked children never pay
    the full-tree SHA-256 walk -- and never disagree with the parent
    about what code version they are running (a worker that outlived a
    source edit keeps the fingerprint of the code it actually loaded).
    """
    global _process_fingerprint
    _process_fingerprint = fingerprint


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + content).

    Any change to the package -- scenario presets, simulator timing,
    workload builders -- yields a new fingerprint and therefore a cold
    cache.  The walk runs at most once per process: the parent computes
    it (once, when it builds its first :class:`ResultCache`) and hands
    the value to workers via :func:`set_process_fingerprint`.
    """
    global _process_fingerprint
    if _process_fingerprint is None:
        root = Path(__file__).resolve().parents[1]
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _process_fingerprint = h.hexdigest()
    return _process_fingerprint


def job_key(kind: str, params: dict, fingerprint: str) -> str:
    """Deterministic content hash of one job."""
    payload = json.dumps(
        {"kind": kind, "params": params, "code": fingerprint},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Directory-backed store of completed job results."""

    def __init__(self, root: str | os.PathLike, fingerprint: str | None = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ keys
    def key_for(self, job) -> str:
        return job_key(job.kind, job.params, self.fingerprint)

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    # ---------------------------------------------------------------- lookup
    def get(self, job) -> dict | None:
        """The cached result payload for ``job``, or None."""
        path = self._object_path(self.key_for(job))
        try:
            with open(path) as fh:
                obj = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return obj["result"]

    # ----------------------------------------------------------------- store
    def _write_object(self, job, status: str, result: dict) -> str:
        """Atomically write one result object; returns its key."""
        key = self.key_for(job)
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        obj = {"key": key, "kind": job.kind, "params": job.params,
               "status": status, "result": result}
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(obj, fh, sort_keys=True)
        os.replace(tmp, path)
        return key

    def put(self, job, status: str, result: dict) -> None:
        if status not in CACHEABLE_STATUSES:
            return
        key = self._write_object(job, status, result)
        with open(self.root / "manifest.jsonl", "a") as fh:
            fh.write(json.dumps(
                {"key": key, "kind": job.kind, "status": status},
                sort_keys=True) + "\n")

    def put_many(self, entries) -> None:
        """Store a batch of ``(job, status, result)`` completions.

        The persistent pool flushes one batch per worker *chunk*:
        object files are written individually (still atomic), but the
        manifest gets a single append -- followed by one ``fsync``, so
        a chunk that was acknowledged to the campaign driver survives a
        host crash.  Per-job ``put`` skips the fsync; batching is what
        makes durability affordable.
        """
        lines = []
        for job, status, result in entries:
            if status not in CACHEABLE_STATUSES:
                continue
            key = self._write_object(job, status, result)
            lines.append(json.dumps(
                {"key": key, "kind": job.kind, "status": status},
                sort_keys=True) + "\n")
        if not lines:
            return
        with open(self.root / "manifest.jsonl", "a") as fh:
            fh.write("".join(lines))
            fh.flush()
            os.fsync(fh.fileno())

    # ------------------------------------------------------------- inventory
    def manifest(self) -> list[dict]:
        """Every completed-job record, in completion order."""
        path = self.root / "manifest.jsonl"
        if not path.exists():
            return []
        out = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    def __len__(self) -> int:
        return sum(1 for _ in (self.root / "objects").rglob("*.json"))
