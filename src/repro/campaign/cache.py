"""Content-addressed on-disk result cache for campaign jobs.

A campaign must be resumable: killing a sweep half-way and re-invoking
it should re-execute only the cells that never completed.  The cache
keys every job by a SHA-256 over its *content* -- the job kind, its
full parameter payload, and a fingerprint of the ``repro`` source tree
-- so a result is reused only while both the inputs and the code that
produced it are unchanged.  Editing any simulator source invalidates
every key at once (coarse, but sound: there is no per-module dependency
tracking that could silently serve stale numbers).

Layout under the cache root::

    objects/<key[:2]>/<key>.json   one completed job result each
    manifest.jsonl                 append-only log of completed jobs

Object files carry no timestamps or host data, so a warm re-run is
byte-identical to the run that populated it -- the campaign engine's
determinism contract extends to the cache.  Writes go through a
temp-file + ``os.replace`` so a killed campaign never leaves a torn
object behind (a partial temp file is simply ignored and overwritten).

Integrity: every object embeds a SHA-256 over its canonical result
JSON (:func:`result_checksum`), verified on every read.  An object
that fails to parse, fails the checksum, or predates checksums is
*quarantined* -- moved to ``corrupt/`` for post-mortem -- and reported
as a miss, so a corrupted result is recomputed, never served.  The
manifest is self-healing: a torn trailing line (a crash mid-append,
even mid-fsync) is dropped with one warning at load, and construction
runs a repair pass that rewrites a damaged manifest from its surviving
lines plus a re-index of any intact blobs the torn tail lost.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path

log = logging.getLogger("repro.campaign.cache")

#: result statuses worth persisting.  Worker crashes and timeouts are
#: environment-dependent (host load, wall clocks) and must be retried,
#: never resumed from cache.
CACHEABLE_STATUSES = ("ok",)

#: a fingerprint handed down by the parent process (campaign workers
#: never hash the tree themselves; the parent installs its value here)
_process_fingerprint: str | None = None


def set_process_fingerprint(fingerprint: str | None) -> None:
    """Install a parent-computed fingerprint for this whole process.

    The campaign engine calls this inside every persistent worker with
    the value the parent computed once, so forked children never pay
    the full-tree SHA-256 walk -- and never disagree with the parent
    about what code version they are running (a worker that outlived a
    source edit keeps the fingerprint of the code it actually loaded).
    """
    global _process_fingerprint
    _process_fingerprint = fingerprint


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + content).

    Any change to the package -- scenario presets, simulator timing,
    workload builders -- yields a new fingerprint and therefore a cold
    cache.  The walk runs at most once per process: the parent computes
    it (once, when it builds its first :class:`ResultCache`) and hands
    the value to workers via :func:`set_process_fingerprint`.
    """
    global _process_fingerprint
    if _process_fingerprint is None:
        root = Path(__file__).resolve().parents[1]
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _process_fingerprint = h.hexdigest()
    return _process_fingerprint


def job_key(kind: str, params: dict, fingerprint: str) -> str:
    """Deterministic content hash of one job."""
    payload = json.dumps(
        {"kind": kind, "params": params, "code": fingerprint},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def result_checksum(result) -> str:
    """SHA-256 over the canonical JSON of one result payload.

    Stored inside every object file and re-verified on read: bit rot,
    a torn write that still parses, or any out-of-band edit of the
    blob changes the digest and the entry is quarantined instead of
    served.
    """
    payload = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Directory-backed store of completed job results."""

    def __init__(self, root: str | os.PathLike, fingerprint: str | None = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        #: repair-pass summary dict, or None when the manifest was clean
        self.repaired: dict | None = None
        self._repair_manifest()

    # ------------------------------------------------------------------ keys
    def key_for(self, job) -> str:
        return job_key(job.kind, job.params, self.fingerprint)

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    # ---------------------------------------------------------------- lookup
    def get(self, job) -> dict | None:
        """The checksum-verified result payload for ``job``, or None.

        Any unreadable, unparsable, checksum-less or checksum-failing
        object is quarantined to ``corrupt/`` and reported as a miss,
        so the campaign recomputes it transparently.
        """
        path = self._object_path(self.key_for(job))
        try:
            with open(path) as fh:
                obj = json.load(fh)
            if obj["sha256"] != result_checksum(obj["result"]):
                raise ValueError("checksum mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return obj["result"]

    def _quarantine(self, path: Path, reason: Exception) -> None:
        """Move a corrupt object out of ``objects/`` for post-mortem."""
        corrupt = self.root / "corrupt"
        corrupt.mkdir(exist_ok=True)
        try:
            os.replace(path, corrupt / path.name)
        except OSError:  # pragma: no cover - racing deletion
            pass
        self.quarantined += 1
        log.warning("cache: quarantined corrupt object %s (%s); "
                    "the job will be recomputed", path.name, reason)

    # ----------------------------------------------------------------- store
    def _write_object(self, job, status: str, result: dict) -> str:
        """Atomically write one result object; returns its key."""
        key = self.key_for(job)
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        obj = {"key": key, "kind": job.kind, "params": job.params,
               "status": status, "result": result,
               "sha256": result_checksum(result)}
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(obj, fh, sort_keys=True)
        os.replace(tmp, path)
        return key

    def put(self, job, status: str, result: dict) -> None:
        if status not in CACHEABLE_STATUSES:
            return
        key = self._write_object(job, status, result)
        with open(self.root / "manifest.jsonl", "a") as fh:
            fh.write(json.dumps(
                {"key": key, "kind": job.kind, "status": status},
                sort_keys=True) + "\n")

    def put_many(self, entries) -> None:
        """Store a batch of ``(job, status, result)`` completions.

        The persistent pool flushes one batch per worker *chunk*:
        object files are written individually (still atomic), but the
        manifest gets a single append -- followed by one ``fsync``, so
        a chunk that was acknowledged to the campaign driver survives a
        host crash.  Per-job ``put`` skips the fsync; batching is what
        makes durability affordable.
        """
        lines = []
        for job, status, result in entries:
            if status not in CACHEABLE_STATUSES:
                continue
            key = self._write_object(job, status, result)
            lines.append(json.dumps(
                {"key": key, "kind": job.kind, "status": status},
                sort_keys=True) + "\n")
        if not lines:
            return
        with open(self.root / "manifest.jsonl", "a") as fh:
            fh.write("".join(lines))
            fh.flush()
            os.fsync(fh.fileno())

    # ------------------------------------------------------------- inventory
    @staticmethod
    def _parse_manifest_line(line: str) -> dict | None:
        """One manifest record, or None for a torn/garbage line."""
        try:
            obj = json.loads(line)
        except ValueError:
            return None
        return obj if isinstance(obj, dict) and "key" in obj else None

    def manifest(self) -> list[dict]:
        """Every completed-job record, in completion order.

        Tolerant of a truncated or garbage trailing line (a torn
        fsync): bad lines are skipped with one warning, never raised --
        a half-written append must not brick a warm cache.
        """
        path = self.root / "manifest.jsonl"
        if not path.exists():
            return []
        out, dropped = [], 0
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                entry = self._parse_manifest_line(line)
                if entry is None:
                    dropped += 1
                else:
                    out.append(entry)
        if dropped:
            log.warning("cache: skipped %d torn manifest line(s) in %s",
                        dropped, path)
        return out

    def _repair_manifest(self) -> None:
        """Startup repair: drop torn lines, re-index surviving blobs.

        Runs once at construction.  A clean manifest is left untouched
        (and unread blobs unscanned); a damaged one is atomically
        rewritten from its parseable lines plus entries rebuilt from
        any intact object blobs the torn tail lost track of.
        """
        path = self.root / "manifest.jsonl"
        if not path.exists():
            return
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        entries = [self._parse_manifest_line(l) for l in lines]
        dropped = sum(1 for e in entries if e is None)
        if not dropped:
            return
        survivors = [e for e in entries if e is not None]
        known = {e["key"] for e in survivors}
        recovered = 0
        for obj_path in sorted((self.root / "objects").rglob("*.json")):
            if obj_path.stem in known:
                continue
            try:
                obj = json.loads(obj_path.read_text())
                entry = {"key": obj["key"], "kind": obj["kind"],
                         "status": obj["status"]}
            except (OSError, ValueError, KeyError, TypeError):
                continue  # corrupt blob: get() will quarantine it
            survivors.append(entry)
            recovered += 1
        tmp = path.with_suffix(".tmp")
        tmp.write_text("".join(json.dumps(e, sort_keys=True) + "\n"
                               for e in survivors))
        os.replace(tmp, path)
        self.repaired = {"dropped_lines": dropped,
                         "recovered_blobs": recovered}
        log.warning("cache: repaired manifest %s (%d torn line(s) dropped, "
                    "%d blob(s) re-indexed)", path, dropped, recovered)

    def __len__(self) -> int:
        return sum(1 for _ in (self.root / "objects").rglob("*.json"))
