"""Content-addressed on-disk result cache for campaign jobs.

A campaign must be resumable: killing a sweep half-way and re-invoking
it should re-execute only the cells that never completed.  The cache
keys every job by a SHA-256 over its *content* -- the job kind, its
full parameter payload, and a fingerprint of the ``repro`` source tree
-- so a result is reused only while both the inputs and the code that
produced it are unchanged.  Editing any simulator source invalidates
every key at once (coarse, but sound: there is no per-module dependency
tracking that could silently serve stale numbers).

Layout under the cache root::

    objects/<key[:2]>/<key>.json   one completed job result each
    manifest.jsonl                 append-only log of completed jobs

Object files carry no timestamps or host data, so a warm re-run is
byte-identical to the run that populated it -- the campaign engine's
determinism contract extends to the cache.  Writes go through a
temp-file + ``os.replace`` so a killed campaign never leaves a torn
object behind (a partial temp file is simply ignored and overwritten).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

#: result statuses worth persisting.  Worker crashes and timeouts are
#: environment-dependent (host load, wall clocks) and must be retried,
#: never resumed from cache.
CACHEABLE_STATUSES = ("ok",)

_fingerprint_cache: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + content).

    Computed once per process; any change to the package -- scenario
    presets, simulator timing, workload builders -- yields a new
    fingerprint and therefore a cold cache.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        root = Path(__file__).resolve().parents[1]
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _fingerprint_cache = h.hexdigest()
    return _fingerprint_cache


def job_key(kind: str, params: dict, fingerprint: str) -> str:
    """Deterministic content hash of one job."""
    payload = json.dumps(
        {"kind": kind, "params": params, "code": fingerprint},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Directory-backed store of completed job results."""

    def __init__(self, root: str | os.PathLike, fingerprint: str | None = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ keys
    def key_for(self, job) -> str:
        return job_key(job.kind, job.params, self.fingerprint)

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    # ---------------------------------------------------------------- lookup
    def get(self, job) -> dict | None:
        """The cached result payload for ``job``, or None."""
        path = self._object_path(self.key_for(job))
        try:
            with open(path) as fh:
                obj = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return obj["result"]

    # ----------------------------------------------------------------- store
    def put(self, job, status: str, result: dict) -> None:
        if status not in CACHEABLE_STATUSES:
            return
        key = self.key_for(job)
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        obj = {"key": key, "kind": job.kind, "params": job.params,
               "status": status, "result": result}
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(obj, fh, sort_keys=True)
        os.replace(tmp, path)
        with open(self.root / "manifest.jsonl", "a") as fh:
            fh.write(json.dumps(
                {"key": key, "kind": job.kind, "status": status},
                sort_keys=True) + "\n")

    # ------------------------------------------------------------- inventory
    def manifest(self) -> list[dict]:
        """Every completed-job record, in completion order."""
        path = self.root / "manifest.jsonl"
        if not path.exists():
            return []
        out = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    def __len__(self) -> int:
        return sum(1 for _ in (self.root / "objects").rglob("*.json"))
