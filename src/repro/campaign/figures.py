"""Figure 12-16 as declarative campaign cells.

Each paper figure is a table whose cells are independent simulations --
exactly the shape the campaign engine wants.  :func:`figure_jobs`
enumerates a figure into picklable cell jobs, :func:`run_figure_cell`
executes one cell (in whatever process the engine chose), and
:func:`assemble_figure` folds the cell results back into the same
ASCII table the serial CLI has always printed.  The enumeration order
is the serial loop order, so ``--parallel`` changes wall-clock time and
nothing else.

Cell parameters are plain data (names, levels, scale factors); the
builder callables live in module-level registries and are resolved
inside the executing process, never pickled.
"""

from __future__ import annotations

from ..analysis.report import format_table
from ..analysis.speedup import measure, normalized_series, ratio
from ..isa.instructions import FenceKind
from ..runtime.lang import Env
from ..sim.config import SimConfig
from .jobs import Job

FIGURES = ("fig12", "fig13", "fig14", "fig15", "fig16", "figbackend")

#: the parameter each sweep figure varies, and the values it takes
_SWEEPS = {
    "fig15": ("mem_latency", [200, 300, 500], "Figure 15 -- varying memory latency"),
    "fig16": ("rob_size", [64, 128, 256], "Figure 16 -- varying ROB size"),
}

_FIG12_LEVELS = range(1, 7)
_FIG13_CONFIGS = (
    ("T", "global", False),
    ("S", None, False),       # None -> the app's native scoped kind
    ("T+", "global", True),
    ("S+", None, True),
)

#: the three-way coherence comparison (label, fence scope, backend):
#: the paper's S-Fence scoping and the traditional full fence both run
#: on invalidation-based coherence, against the SiSd rival design that
#: needs no invalidation traffic but pays SI/SD work at every sync point
_BACKEND_CONFIGS = (
    ("S-Fence", None, "mesi"),       # None -> the app's native scoped kind
    ("full-fence", "global", "mesi"),
    ("SiSd", None, "sisd"),
)


def _scaled(n: int, scale: float) -> int:
    return max(2, int(round(n * scale)))


# ------------------------------------------------------------------ registries
def _fig12_builders(scale: float):
    from ..algorithms.dekker import build_workload as dekker
    from ..algorithms.workloads import (
        build_harris_workload,
        build_msn_workload,
        build_wsq_workload,
    )

    return {
        "dekker": lambda env, lvl: dekker(env, workload_level=lvl, iterations=_scaled(25, scale)),
        "wsq": lambda env, lvl: build_wsq_workload(env, workload_level=lvl, iterations=_scaled(30, scale)),
        "msn": lambda env, lvl: build_msn_workload(env, workload_level=lvl, iterations=_scaled(15, scale)),
        "harris": lambda env, lvl: build_harris_workload(env, workload_level=lvl, iterations=_scaled(15, scale)),
    }


def _app_builders(scale: float):
    from ..apps.barnes import build_barnes
    from ..apps.pst import build_pst
    from ..apps.ptc import build_ptc
    from ..apps.radiosity import build_radiosity

    return {
        "pst": (lambda env, k: build_pst(env, scope=k, n_vertices=_scaled(160, scale)), FenceKind.CLASS),
        "ptc": (lambda env, k: build_ptc(env, scope=k, n_vertices=_scaled(48, min(scale, 1.3))), FenceKind.CLASS),
        "barnes": (lambda env, k: build_barnes(env, scope=k, n_bodies=_scaled(192, scale)), FenceKind.SET),
        "radiosity": (lambda env, k: build_radiosity(env, scope=k, n_patches=_scaled(128, scale)), FenceKind.SET),
    }


def _fig14_builders(scale: float):
    from ..algorithms.workloads import build_harris_workload, build_msn_workload
    from ..apps.pst import build_pst
    from ..apps.ptc import build_ptc

    return {
        "msn": lambda env, k: build_msn_workload(env, scope=k, iterations=_scaled(12, scale), workload_level=2),
        "harris": lambda env, k: build_harris_workload(env, scope=k, iterations=_scaled(12, scale), workload_level=2),
        "pst": lambda env, k: build_pst(env, scope=k, n_vertices=_scaled(128, scale)),
        "ptc": lambda env, k: build_ptc(env, scope=k, n_vertices=_scaled(48, min(scale, 1.3))),
    }


# ---------------------------------------------------------------- enumeration
def figure_jobs(
    figure: str,
    scale: float = 1.0,
    dense_loop: bool = False,
    mem_backend: str = "mesi",
    trace_compile: bool = True,
) -> list[Job]:
    """All cell jobs of one figure, in serial loop order.

    ``mem_backend`` is the coherence backend every cell of a fig12-16
    table runs on -- part of each job's parameters, hence of its
    result-cache key.  ``figbackend`` ignores it: that figure's whole
    point is a per-cell backend axis (:data:`_BACKEND_CONFIGS`).
    """
    common = {"figure": figure, "scale": scale, "dense_loop": dense_loop,
              "mem_backend": mem_backend, "trace_compile": trace_compile}
    if figure == "figbackend":
        common.pop("mem_backend")
        return [
            Job("figure", {**common, "app": app, "label": label,
                           "scope": scope, "backend": backend})
            for app in _app_builders(scale)
            for label, scope, backend in _BACKEND_CONFIGS
        ]
    if figure == "fig12":
        return [
            Job("figure", {**common, "bench": bench, "level": level,
                           "scoped": scoped})
            for bench in _fig12_builders(scale)
            for level in _FIG12_LEVELS
            for scoped in (False, True)
        ]
    if figure == "fig13":
        return [
            Job("figure", {**common, "app": app, "label": label,
                           "scope": scope, "spec": spec})
            for app in _app_builders(scale)
            for label, scope, spec in _FIG13_CONFIGS
        ]
    if figure == "fig14":
        return [
            Job("figure", {**common, "bench": bench, "scope": scope.value})
            for bench in _fig14_builders(scale)
            for scope in (FenceKind.CLASS, FenceKind.SET)
        ]
    if figure in _SWEEPS:
        param, values, _title = _SWEEPS[figure]
        return [
            Job("figure", {**common, "app": app, "param": param,
                           "value": value, "scope": scope})
            for app in _app_builders(scale)
            for value in values
            for scope in ("global", None)
        ]
    raise KeyError(f"unknown figure {figure!r} (have {FIGURES})")


#: relative chunk-cost base per figure kind (fig13 apps run 4 configs of
#: full applications; fig12 workload cells are small algorithm loops)
_FIGURE_COST = {"fig12": 3.0, "fig13": 14.0, "fig14": 8.0,
                "fig15": 10.0, "fig16": 10.0, "figbackend": 12.0}


def cell_cost(params: dict) -> float:
    """Chunk-shaping weight of one figure cell (see campaign.jobs.job_cost)."""
    cost = _FIGURE_COST.get(params.get("figure", ""), 8.0)
    return cost * max(float(params.get("scale", 1.0)), 0.1)


# ------------------------------------------------------------------ execution
def _resolve_scope(spec: str | None, native: FenceKind) -> FenceKind:
    return FenceKind(spec) if spec is not None else native


def run_figure_cell(params: dict) -> dict:
    """Execute one figure cell; returns the cell's headline numbers."""
    figure = params["figure"]
    scale = params["scale"]
    dense = params.get("dense_loop", False)
    tc = params.get("trace_compile", True)
    backend = params.get("mem_backend", "mesi")
    if figure == "figbackend":
        builder, native = _app_builders(scale)[params["app"]]
        scope = _resolve_scope(params["scope"], native)
        point = measure(
            lambda env: builder(env, scope),
            SimConfig(mem_backend=params["backend"], dense_loop=dense,
                      trace_compile=tc),
            label=params["label"],
        )
        return {"cycles": point.cycles,
                "fence_stall_cycles": point.fence_stall_cycles,
                "fence_stall_fraction": point.fence_stall_fraction}
    if figure == "fig12":
        build = _fig12_builders(scale)[params["bench"]]
        env = Env(SimConfig(scoped_fences=params["scoped"], dense_loop=dense,
                            mem_backend=backend, trace_compile=tc))
        handle = build(env, params["level"])
        res = env.run(handle.program)
        handle.check()
        return {"cycles": res.cycles}
    if figure == "fig13":
        builder, native = _app_builders(scale)[params["app"]]
        scope = _resolve_scope(params["scope"], native)
        point = measure(
            lambda env: builder(env, scope),
            SimConfig(in_window_speculation=params["spec"], dense_loop=dense,
                      mem_backend=backend, trace_compile=tc),
            label=params["label"],
        )
        return {"cycles": point.cycles,
                "fence_stall_cycles": point.fence_stall_cycles,
                "fence_stall_fraction": point.fence_stall_fraction}
    if figure == "fig14":
        build = _fig14_builders(scale)[params["bench"]]
        point = measure(lambda env: build(env, FenceKind(params["scope"])),
                        SimConfig(dense_loop=dense, mem_backend=backend,
                                  trace_compile=tc),
                        label=params["scope"])
        return {"cycles": point.cycles}
    if figure in _SWEEPS:
        builder, native = _app_builders(scale)[params["app"]]
        scope = _resolve_scope(params["scope"], native)
        cfg = SimConfig(**{params["param"]: params["value"],
                           "dense_loop": dense, "mem_backend": backend,
                           "trace_compile": tc})
        point = measure(lambda env: builder(env, scope), cfg,
                        label=params["scope"] or "scoped")
        return {"cycles": point.cycles}
    raise KeyError(f"unknown figure {figure!r}")


# ------------------------------------------------------------------- assembly
def _cell_map(jobs: list[Job], results: list[dict | None]) -> dict[tuple, dict | None]:
    """Index results by the identifying parameters of each job."""
    out = {}
    for job, result in zip(jobs, results):
        key = tuple(sorted(
            (k, v) for k, v in job.params.items()
            if k not in ("figure", "scale", "dense_loop", "mem_backend",
                         "trace_compile")
        ))
        out[key] = result
    return out


def _get(cells: dict, **params) -> dict | None:
    return cells.get(tuple(sorted(params.items())))


def _fmt_ratio(value: float | None) -> str:
    return f"{value:.3f}" if value is not None else "n/a"


def assemble_figure(figure: str, jobs: list[Job], results: list[dict | None]) -> str:
    """Fold cell results into the figure's table (missing cells -> n/a)."""
    scale = jobs[0].params["scale"] if jobs else 1.0
    cells = _cell_map(jobs, results)
    if figure == "figbackend":
        rows = []
        for app in _app_builders(scale):
            by_label = {}
            for label, scope, backend in _BACKEND_CONFIGS:
                cell = _get(cells, app=app, label=label, scope=scope,
                            backend=backend)
                by_label[label] = cell
            sfence = by_label.get("S-Fence")
            row = [app]
            for label, _scope, _backend in _BACKEND_CONFIGS:
                cell = by_label.get(label)
                row.append(cell["cycles"] if cell else "n/a")
            row.append(_fmt_ratio(ratio(
                by_label.get("full-fence") and by_label["full-fence"]["cycles"],
                sfence and sfence["cycles"])))
            row.append(_fmt_ratio(ratio(
                by_label.get("SiSd") and by_label["SiSd"]["cycles"],
                sfence and sfence["cycles"])))
            rows.append(tuple(row))
        return format_table(
            ["app", "S-Fence", "full-fence", "SiSd",
             "S-Fence speedup vs full", "S-Fence speedup vs SiSd"],
            rows,
            title="Backend comparison -- S-Fence vs full fence vs SiSd",
        )
    if figure == "fig12":
        rows = []
        for bench in _fig12_builders(scale):
            curve = []
            for level in _FIG12_LEVELS:
                trad = _get(cells, bench=bench, level=level, scoped=False)
                scoped = _get(cells, bench=bench, level=level, scoped=True)
                curve.append(ratio(trad and trad["cycles"], scoped and scoped["cycles"]))
            peak = max((s for s in curve if s is not None), default=None)
            rows.append((bench, " ".join(_fmt_ratio(s) for s in curve),
                         f"{peak:.2f}x" if peak is not None else "n/a"))
        return format_table(["benchmark", "speedup @ workload 1..6", "peak"], rows,
                            title="Figure 12 -- impact of workload")
    if figure == "fig13":
        rows = []
        for app in _app_builders(scale):
            points = []
            for label, scope, spec in _FIG13_CONFIGS:
                cell = _get(cells, app=app, label=label, scope=scope, spec=spec)
                if cell is None:
                    continue
                points.append(_point_from_cell(label, cell))
            if not points:
                rows.append((app, "n/a", "n/a", "n/a", "n/a"))
                continue
            for s in normalized_series(points, points[0]):
                rows.append((app, s["label"], s["normalized_time"],
                             s["fence_stalls"], s["others"]))
        return format_table(["app", "config", "normalized", "fence stalls", "others"],
                            rows, title="Figure 13 -- normalized execution time")
    if figure == "fig14":
        rows = []
        for bench in _fig14_builders(scale):
            cs = _get(cells, bench=bench, scope="class")
            ss = _get(cells, bench=bench, scope="set")
            rows.append((
                bench,
                cs["cycles"] if cs else "n/a",
                ss["cycles"] if ss else "n/a",
                _fmt_ratio(ratio(ss and ss["cycles"], cs and cs["cycles"])),
            ))
        return format_table(["benchmark", "class scope", "set scope", "set/class"],
                            rows, title="Figure 14 -- class vs set scope")
    if figure in _SWEEPS:
        param, values, title = _SWEEPS[figure]
        rows = []
        for app in _app_builders(scale):
            speedups = []
            for value in values:
                t = _get(cells, app=app, param=param, value=value, scope="global")
                s = _get(cells, app=app, param=param, value=value, scope=None)
                speedups.append(ratio(t and t["cycles"], s and s["cycles"]))
            rows.append((app, " ".join(_fmt_ratio(x) for x in speedups)))
        return format_table(["app", f"S-Fence speedup @ {param} {values}"], rows,
                            title=title)
    raise KeyError(f"unknown figure {figure!r}")


def _point_from_cell(label: str, cell: dict):
    from ..analysis.speedup import RunPoint

    return RunPoint(
        label=label,
        cycles=cell["cycles"],
        fence_stall_cycles=cell["fence_stall_cycles"],
        fence_stall_fraction=cell["fence_stall_fraction"],
    )


# ---------------------------------------------- backend comparison report
BACKEND_REPORT_PATH = "backend-compare-report.json"


def backend_compare_report(jobs: list[Job], results: list[dict | None]) -> dict:
    """Machine-readable three-way comparison from ``figbackend`` cells.

    The committed artifact (:data:`BACKEND_REPORT_PATH`): per app, the
    raw cycles/stalls of every config plus the two headline ratios
    (full-fence / S-Fence and SiSd / S-Fence -- values above 1 mean
    S-Fence is faster).  Pure function of the cell results, so a warm
    cache reproduces it byte-identically.
    """
    scale = jobs[0].params["scale"] if jobs else 1.0
    dense = bool(jobs[0].params.get("dense_loop", False)) if jobs else False
    tc = bool(jobs[0].params.get("trace_compile", True)) if jobs else True
    cells = _cell_map(jobs, results)
    apps: dict[str, dict] = {}
    for app in _app_builders(scale):
        entry: dict = {"configs": {}}
        for label, scope, backend in _BACKEND_CONFIGS:
            cell = _get(cells, app=app, label=label, scope=scope,
                        backend=backend)
            entry["configs"][label] = cell and {
                "backend": backend,
                "cycles": cell["cycles"],
                "fence_stall_cycles": cell["fence_stall_cycles"],
                "fence_stall_fraction": cell["fence_stall_fraction"],
            }
        sfence = entry["configs"].get("S-Fence")
        full = entry["configs"].get("full-fence")
        sisd = entry["configs"].get("SiSd")
        entry["sfence_speedup_vs_full"] = ratio(
            full and full["cycles"], sfence and sfence["cycles"])
        entry["sfence_speedup_vs_sisd"] = ratio(
            sisd and sisd["cycles"], sfence and sfence["cycles"])
        apps[app] = entry
    return {
        "figure": "figbackend",
        "scale": scale,
        "dense_loop": dense,
        "trace_compile": tc,
        "configs": [
            {"label": label, "scope": scope or "native", "backend": backend}
            for label, scope, backend in _BACKEND_CONFIGS
        ],
        "apps": apps,
        "complete": all(
            c is not None for e in apps.values() for c in e["configs"].values()
        ),
    }


def write_backend_compare_report(report: dict,
                                 path: str = BACKEND_REPORT_PATH) -> None:
    import json

    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
