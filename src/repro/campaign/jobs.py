"""Declarative campaign jobs and their runners.

A :class:`Job` is a picklable, JSON-serialisable description of one
unit of work -- ``(kind, params)`` -- with no live objects attached, so
it can cross a process boundary and be content-hashed for the result
cache.  :func:`execute_job` is the single entry point both the inline
path and the worker processes use: it resets per-process lazy state
(class-id assignment) and dispatches to the kind's runner, so a job's
result is a pure function of its parameters and the code version --
never of which jobs ran before it in the same process.

Job kinds:

* ``chaos``  -- one supervised fault-injection case
  (:func:`repro.chaos.runner.run_chaos_case`); result is the flattened
  :class:`~repro.chaos.runner.ChaosReport`.
* ``figure`` -- one cell of a Figure 12-16 table
  (:mod:`repro.campaign.figures`).
* ``litmus`` -- one corpus litmus test checked against its expected
  RMO observability.
* ``probe``  -- a chaos case that additionally records the full
  monitor event stream; used by the determinism regression tests to
  prove in-process, subprocess and pool execution are byte-identical.
* ``verify`` -- one (litmus test, fence mode, engine) cell of the
  exhaustive model-checking matrix (:mod:`repro.verify`): DPOR allowed
  set, reference cross-check, simulator soundness and coverage.
* ``synth`` -- one fence-synthesis corpus entry: search the placement
  x mode lattice for the cheapest placement both oracles prove sound,
  then compare against the hand-written placement
  (:mod:`repro.synth`).
* ``app-synth`` -- whole-program synthesis for one ``apps/`` or
  ``algorithms/`` workload: delay-set-derived slots, kernel or
  chaos-campaign soundness oracle, anti-vacuity mutation battery
  (:mod:`repro.synth.programs`).
* ``selftest`` -- engine plumbing checks (crash/hang/error on demand;
  the ``*-once`` variants fault only until their marker file exists,
  which is how the retry tests stage a transient failure).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class Job:
    """One schedulable, cacheable unit of campaign work."""

    kind: str
    params: dict = field(default_factory=dict)

    def label(self) -> str:
        p = self.params
        if self.kind == "chaos" or self.kind == "probe":
            return f"{self.kind}:{p['algo']}/{p['scenario']}#{p['seed']}"
        if self.kind == "figure":
            return f"{p['figure']}:{p.get('bench') or p.get('app')}"
        if self.kind == "litmus":
            return f"litmus:{p['name']}"
        if self.kind == "verify":
            eng = p["engine"]
            if p.get("backend", "mesi") != "mesi":
                eng = f"{eng}@{p['backend']}"
            return f"verify:{p['name']}[{p['mode']}]@{eng}"
        if self.kind == "synth":
            return f"synth:{p['name']}"
        if self.kind == "app-synth":
            return f"app-synth:{p['name']}"
        return self.kind


#: relative cost units per kind, roughly "one litmus corpus job = 1".
#: Chunking hints only -- they shape how many jobs share a worker
#: chunk, never what a job computes.
_KIND_COST = {
    "chaos": 12.0,
    "probe": 12.0,
    "figure": 8.0,
    "verify": 1.0,
    "litmus": 1.0,
    "synth": 8.0,  # lattice scan: many explorations + cost probes per job
    "app-synth": 24.0,  # chaos batteries + moderate-scale cost sweeps
    "selftest": 0.1,
}


def job_cost(job: Job) -> float:
    """Estimated relative wall-clock weight of one job.

    The persistent pool batches jobs until a chunk reaches its cost
    target, so tiny litmus/verify cells travel together while one
    chaos storm rung -- an order of magnitude heavier -- fills a chunk
    alone.  Estimates only feed chunk shaping; a wrong estimate costs
    balance, never correctness.
    """
    cost = _KIND_COST.get(job.kind, 1.0)
    if job.kind in ("chaos", "probe"):
        from ..chaos.runner import SCENARIOS

        scenario = SCENARIOS.get(job.params.get("scenario", ""))
        if scenario is not None:
            cost *= scenario.cost
        cost *= max(job.params.get("base_budget", 400_000) / 400_000, 0.1)
    elif job.kind == "figure":
        from .figures import cell_cost

        cost = cell_cost(job.params)
    elif job.kind == "verify" and job.params.get("engine") == "dense":
        cost *= 3.0  # the dense reference loop pays per-cycle ticks
    if job.params.get("dense_loop"):
        cost *= 3.0
    return cost


# ------------------------------------------------------------- warm worker state
#: per-process memo for pure, param-keyed intermediate products (parsed
#: litmus tests, DPOR explorations).  Persistent pool workers keep this
#: warm across the jobs of a campaign; entries are keyed by the full
#: defining content, so within one process a hit can never be stale --
#: the campaign's code cannot change under a running worker, and a new
#: campaign (new fingerprint) starts new workers.
_WARM: dict[str, dict] = {}


def warm_slot(name: str) -> dict:
    """The named per-process warm-cache dict (created on first use)."""
    return _WARM.setdefault(name, {})


def clear_warm_state() -> None:
    """Drop every warm memo (tests use this to measure cold paths)."""
    _WARM.clear()


# --------------------------------------------------------------------- builders
def chaos_jobs(
    algos=None,
    scenarios=None,
    n_seeds: int = 20,
    seed_base: int = 0,
    base_budget: int = 400_000,
    escalations: int = 3,
    dense_loop: bool = False,
    mem_backend: str = "mesi",
    trace_compile: bool = True,
) -> list[Job]:
    """The chaos sweep cross product, in the serial sweep's exact order."""
    from ..chaos.runner import ALGORITHMS, SCENARIOS

    algos = list(ALGORITHMS) if algos is None else list(algos)
    scenarios = list(SCENARIOS) if scenarios is None else list(scenarios)
    for name in algos:
        if name not in ALGORITHMS:
            raise KeyError(f"unknown algorithm {name!r} (have {sorted(ALGORITHMS)})")
    for name in scenarios:
        if name not in SCENARIOS:
            raise KeyError(f"unknown scenario {name!r} (have {sorted(SCENARIOS)})")
    return [
        Job("chaos", {
            "algo": algo, "scenario": scenario, "seed": seed_base + s,
            "base_budget": base_budget, "escalations": escalations,
            "dense_loop": dense_loop, "mem_backend": mem_backend,
            "trace_compile": trace_compile,
        })
        for scenario in scenarios
        for algo in algos
        for s in range(n_seeds)
    ]


def litmus_jobs(
    model: str = "rmo",
    offsets: list[int] | None = None,
    dense_loop: bool = False,
    mem_backend: str = "mesi",
    trace_compile: bool = True,
) -> list[Job]:
    """One job per litmus-corpus entry."""
    from ..litmus.corpus import CORPUS

    offsets = offsets or [0, 1, 40, 150, 320]
    return [
        Job("litmus", {
            "name": entry.name, "source": entry.source, "model": model,
            "offsets": list(offsets), "expect_observable": entry.observable_rmo,
            "dense_loop": dense_loop, "mem_backend": mem_backend,
            "trace_compile": trace_compile,
        })
        for entry in CORPUS
    ]


def verify_jobs(
    modes: list[str] | None = None,
    engines: list[str] | None = None,
    seeds: int | None = None,
    smoke: bool = False,
    backends: list[str] | None = None,
    trace_compile: bool = True,
) -> list[Job]:
    """The verification matrix: corpus x fence mode x engine x backend.

    The coherence backend is an explicit job parameter (default
    ``mesi``), so it participates in the result-cache content hash:
    switching ``--mem-backend`` can never serve a payload swept on a
    different backend.
    """
    from ..litmus.corpus import CORPUS
    from ..verify.modes import BACKENDS, FENCE_MODES
    from ..verify.runner import DEFAULT_SEEDS, ENGINES

    modes = list(FENCE_MODES) if modes is None else list(modes)
    engines = list(ENGINES) if engines is None else list(engines)
    backends = ["mesi"] if backends is None else list(backends)
    for mode in modes:
        if mode not in FENCE_MODES:
            raise KeyError(f"unknown fence mode {mode!r} (have {list(FENCE_MODES)})")
    for engine in engines:
        if engine not in ENGINES:
            raise KeyError(f"unknown engine {engine!r} (have {list(ENGINES)})")
    for backend in backends:
        if backend not in BACKENDS:
            raise KeyError(f"unknown backend {backend!r} (have {list(BACKENDS)})")
    if seeds is None:
        seeds = 1 if smoke else DEFAULT_SEEDS
    return [
        Job("verify", {
            "name": entry.name, "source": entry.source, "mode": mode,
            "engine": engine, "seeds": seeds, "smoke": smoke,
            "backend": backend, "trace_compile": trace_compile,
        })
        for entry in CORPUS
        for mode in modes
        for engine in engines
        for backend in backends
    ]


def synth_jobs(
    names: list[str] | None = None,
    modes: list[str] | None = None,
    offsets: list[int] | None = None,
    smoke: bool = False,
    mem_backend: str = "mesi",
) -> list[Job]:
    """One fence-synthesis job per synthesis-corpus entry.

    The mode lattice and the offset grid are job parameters (not
    ambient configuration), so changing either busts the result-cache
    key and a cached payload can never describe a different search.
    """
    from ..synth.corpus import SYNTH_CORPUS, synth_entry
    from ..synth.cost import PROBE_OFFSETS, SMOKE_PROBE_OFFSETS
    from ..synth.sites import MODES

    names = [e.name for e in SYNTH_CORPUS] if names is None else list(names)
    for name in names:
        synth_entry(name)  # raises KeyError on an unknown test
    modes = list(MODES) if modes is None else list(modes)
    for mode in modes:
        if mode not in MODES:
            raise KeyError(f"unknown fence mode {mode!r} (have {list(MODES)})")
    if offsets is None:
        offsets = list(SMOKE_PROBE_OFFSETS if smoke else PROBE_OFFSETS)
    return [
        Job("synth", {
            "name": name, "modes": list(modes), "offsets": list(offsets),
            "smoke": smoke, "mem_backend": mem_backend,
        })
        for name in names
    ]


def app_synth_jobs(
    names: list[str] | None = None,
    scenarios: list[str] | None = None,
    seeds: list[int] | None = None,
    base_budget: int = 600_000,
    smoke: bool = False,
) -> list[Job]:
    """One whole-program synthesis job per app corpus entry.

    The chaos-oracle battery (scenarios x seeds) is part of the job
    parameters so a cached payload always names the exact rejection
    sample it was judged by; ``smoke`` shrinks the battery to one cell
    and skips the moderate-scale cost sweeps.
    """
    from ..chaos.runner import SCENARIOS
    from ..synth.programs import (
        CHAOS_SCENARIOS,
        CHAOS_SEEDS,
        app_entry,
        app_names,
    )

    names = app_names() if names is None else list(names)
    for name in names:
        app_entry(name)  # raises KeyError on an unknown app
    if scenarios is None:
        scenarios = ["drain"] if smoke else list(CHAOS_SCENARIOS)
    for name in scenarios:
        if name not in SCENARIOS:
            raise KeyError(f"unknown scenario {name!r} (have {sorted(SCENARIOS)})")
    if seeds is None:
        seeds = [0] if smoke else list(CHAOS_SEEDS)
    return [
        Job("app-synth", {
            "name": name, "scenarios": list(scenarios), "seeds": list(seeds),
            "base_budget": base_budget, "smoke": smoke,
        })
        for name in names
    ]


def probe_jobs(
    cases: list[tuple[str, str, int]],
    base_budget: int = 400_000,
    dense_loop: bool = False,
    mem_backend: str = "mesi",
    trace_compile: bool = True,
) -> list[Job]:
    """Determinism probes over (algo, scenario, seed) cases."""
    return [
        Job("probe", {"algo": a, "scenario": sc, "seed": s,
                      "base_budget": base_budget, "dense_loop": dense_loop,
                      "mem_backend": mem_backend,
                      "trace_compile": trace_compile})
        for a, sc, s in cases
    ]


# ---------------------------------------------------------------------- runners
def _run_chaos_job(params: dict, heartbeat=None) -> dict:
    from ..chaos.runner import run_chaos_case

    report = run_chaos_case(
        params["algo"], params["scenario"], params["seed"],
        base_budget=params.get("base_budget", 400_000),
        escalations=params.get("escalations", 3),
        on_attempt=None if heartbeat is None else (lambda _attempt: heartbeat()),
        dense_loop=params.get("dense_loop", False),
        mem_backend=params.get("mem_backend", "mesi"),
        trace_compile=params.get("trace_compile", True),
    )
    return asdict(report)


def _run_figure_job(params: dict, heartbeat=None) -> dict:
    from .figures import run_figure_cell

    return run_figure_cell(params)


def _run_litmus_job(params: dict, heartbeat=None) -> dict:
    from ..litmus.dsl import parse_litmus, run_litmus
    from ..sim.config import MemoryModel

    # parse products are pure functions of the source text; persistent
    # pool workers running many offsets/modes of the same test parse once
    memo = warm_slot("litmus-parse")
    test = memo.get(params["source"])
    if test is None:
        test = memo[params["source"]] = parse_litmus(params["source"])
    run = run_litmus(
        test, MemoryModel(params["model"]), list(params["offsets"]),
        dense_loop=params.get("dense_loop", False),
        mem_backend=params.get("mem_backend", "mesi"),
        trace_compile=params.get("trace_compile", True),
    )
    expected = params["expect_observable"]
    return {
        "name": test.name,
        "registers": run.register_names,
        "outcomes": sorted(list(o) for o in run.outcomes),
        "condition": test.condition,
        "condition_observed": run.condition_observed,
        # the outcome tuples satisfying the exists clause: on a
        # forbidden-but-observed mismatch these are the offending
        # tuples the error message must name
        "condition_outcomes": sorted(list(o) for o in run.matching_outcomes()),
        "expect_observable": expected,
        "ok": run.condition_observed == expected,
    }


def _run_verify_job(params: dict, heartbeat=None) -> dict:
    from ..verify.runner import verify_case

    return verify_case(params)


def _run_synth_job(params: dict, heartbeat=None) -> dict:
    from ..synth.report import run_synth_case

    return run_synth_case(params, on_progress=heartbeat)


def _run_app_synth_job(params: dict, heartbeat=None) -> dict:
    from ..synth.programs import run_app_synth_case

    scenarios = tuple(params.get("scenarios") or ("drain",))
    seeds = tuple(params.get("seeds") or (0,))
    return run_app_synth_case(
        params["name"],
        scenarios=scenarios,
        seeds=seeds,
        base_budget=params.get("base_budget", 600_000),
        measure_costs=not params.get("smoke", False),
        on_progress=heartbeat,
    )


def _run_probe_job(params: dict, heartbeat=None) -> dict:
    """A chaos case that also digests the full monitor event stream.

    The digest (not the raw stream -- storms produce hundreds of
    thousands of events) is what the determinism regression compares
    across execution modes: any divergence in any field of any event
    changes the hash.
    """
    from ..chaos.faults import ChaosEngine
    from ..chaos.invariants import OrderingChecker
    from ..chaos.runner import ALGORITHMS, SCENARIOS
    from ..chaos.supervisor import run_supervised
    from ..isa.instructions import FenceKind
    from ..runtime.lang import Env
    from ..sim.config import SimConfig
    from ..sim.trace import MonitorFanout, OrderEventLog

    scen = SCENARIOS[params["scenario"]]
    build_algo = ALGORITHMS[params["algo"]]
    seed = params["seed"]
    scope = FenceKind.SET if seed % 2 else FenceKind.CLASS
    state: dict = {}

    def build():
        cfg = SimConfig(
            n_cores=4, retire_log_len=16,
            dense_loop=params.get("dense_loop", False),
            mem_backend=params.get("mem_backend", "mesi"),
            trace_compile=params.get("trace_compile", True), **scen.config,
        )
        env = Env(cfg)
        handle = build_algo(env, scope, scen.emit_branches)
        sim = env.simulator(handle.program)
        ChaosEngine(scen.plan.with_(seed=seed)).install(sim)
        log = OrderEventLog()
        checker = OrderingChecker(cfg)
        for core in sim.cores:
            core.monitor = MonitorFanout(log, checker)
        state.update(log=log, checker=checker)
        return sim

    outcome = run_supervised(
        build, base_budget=params.get("base_budget", 400_000),
        raise_on_failure=False,
    )
    log: OrderEventLog = state["log"]
    digest = hashlib.sha256()
    for ev in log.events:
        digest.update(repr(ev).encode())
    return {
        "status": "ok" if outcome.ok else outcome.failure.kind.value,
        "stats": outcome.result.stats.summary() if outcome.ok else None,
        "cycles": outcome.result.cycles if outcome.ok else -1,
        "events": len(log.events),
        "events_sha": digest.hexdigest(),
        "violations": state["checker"].violation_count,
    }


def _run_selftest_job(params: dict, heartbeat=None) -> dict:
    mode = params.get("mode", "ok")
    if mode == "crash":
        os._exit(17)
    if mode == "hang":
        while True:  # killed by the engine's job timeout
            time.sleep(0.05)
    if mode == "error":
        raise RuntimeError("selftest error job")
    if mode in ("crash-once", "hang-once"):
        # transient-failure stand-ins for the retry tests: fault on the
        # first execution (marker file absent), succeed on the re-run.
        # The marker makes the job impure, so these are test-only and
        # must never meet a result cache.
        marker = params["marker"]
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            if mode == "crash-once":
                os._exit(17)
            while True:  # killed by the engine's job timeout
                time.sleep(0.05)
        return {"mode": mode, "echo": params.get("echo")}
    return {"mode": mode, "echo": params.get("echo")}


_RUNNERS = {
    "app-synth": _run_app_synth_job,
    "chaos": _run_chaos_job,
    "figure": _run_figure_job,
    "litmus": _run_litmus_job,
    "probe": _run_probe_job,
    "synth": _run_synth_job,
    "verify": _run_verify_job,
    "selftest": _run_selftest_job,
}


def execute_job(job: Job, heartbeat=None) -> dict:
    """Run one job in the current process; returns its result payload.

    Resets lazily assigned class ids first so the result is independent
    of whatever ran earlier in this process -- the property that lets a
    pool worker, a fresh subprocess and the inline path all produce the
    identical payload for the same job.
    """
    from ..runtime.lang import reset_cids

    runner = _RUNNERS.get(job.kind)
    if runner is None:
        raise KeyError(f"unknown job kind {job.kind!r} (have {sorted(_RUNNERS)})")
    reset_cids()
    return runner(job.params, heartbeat=heartbeat)
