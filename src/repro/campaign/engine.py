"""The campaign executor: cached, resumable, crash-isolated fan-out.

``run_campaign`` takes a declarative job list and executes it either
inline (``parallel=0``) or on a pool of worker *processes*
(``parallel>=1``).  Four properties are the contract:

* **Determinism** -- results are returned in job-submission order and
  each job's payload is a pure function of its parameters (see
  :func:`repro.campaign.jobs.execute_job`), so a campaign produces the
  identical outcome list whether it ran inline, on one worker, or on
  sixteen.  Nothing host- or wall-clock-dependent enters a payload.
* **Crash isolation** -- a worker that dies is respawned and only the
  job it was executing is classified ``worker-crash``; one that stops
  heartbeating past the job timeout is killed and its job classified
  ``worker-timeout``; an exception inside a job is ``error`` with the
  traceback.  None of them abort the campaign or poison other jobs.
* **Resilience** -- transient failures (``worker-crash``,
  ``worker-timeout``) are re-run under a
  :class:`~repro.campaign.resilience.RetryPolicy` with exponential
  backoff and deterministic jitter; a deterministic job ``error`` is
  never retried.  Final outcomes record their attempt history.  Under
  a respawn storm the :class:`~repro.campaign.resilience.DegradationLadder`
  shrinks the pool (8 -> 4 -> 2) and ultimately abandons it for serial
  fallback execution, completing the sweep rather than failing it --
  every downgrade is reported through ``on_event``.
* **Resumability** -- with a :class:`~repro.campaign.cache.ResultCache`
  attached, completed jobs are served from disk (checksum-verified;
  corrupt entries are quarantined and recomputed) and *zero*
  simulations re-execute; an interrupted campaign continues from
  wherever its manifest left off.

Two pool implementations share that contract:

* The default **persistent pool** forks each of the ``parallel``
  workers once per campaign.  Workers pull *chunks* of jobs (size-aware
  chunking via :func:`repro.campaign.jobs.job_cost`: many tiny
  litmus/verify cells batch together, long chaos rungs stay solo),
  stream per-job results and heartbeats back over their pipe, and keep
  warm state between jobs -- the source-tree fingerprint computed once
  in the parent and installed into each worker
  (:func:`repro.campaign.cache.set_process_fingerprint`), memoised
  parse/exploration products keyed by job parameters, and a quiesced
  garbage collector (the inherited module heap is frozen out of
  collection traversal, which also keeps forked pages copy-on-write
  clean).  Completed results are flushed to the cache one manifest
  append + fsync per *chunk* instead of per job.  A worker that dies
  mid-chunk is respawned; only its in-flight job is classified
  ``worker-crash`` and the unstarted remainder of the chunk is
  re-queued at the front of the queue.
* The legacy **fork-per-job pool** (``fork_per_job=True``, CLI
  ``--fork-per-job``) spawns one process per job, at most ``parallel``
  alive at once.  It is kept as the throughput-regression baseline --
  ``python -m repro perf --campaign`` races the two pools and fails if
  the persistent pool stops beating it -- and as a maximally isolated
  escape hatch.  It shares the retry policy, but not the degradation
  ladder (its blast radius is already one job per process).

Workers are forked (POSIX) so they inherit the loaded simulator modules
instead of re-importing them; the spawn fallback keeps the engine
functional on platforms without ``fork``.  The chaos supervisor's
escalation ladder runs entirely inside the worker -- each budget rung
sends a heartbeat over the result pipe, which resets the parent's
deadline so a legitimately escalating case is never confused with a
hung one.  Timeouts are therefore *per job* even when jobs travel in
chunks: any message from a worker (job start, heartbeat, result)
resets its deadline.

For fault-injection testing, an
:class:`~repro.campaign.chaosinfra.InfraFaultPlan` (``infra=``) arms
scripted worker kills, stalls and jitter inside persistent pool
workers; the serial fallback path deliberately runs fault-free.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from multiprocessing.connection import wait as _conn_wait

from .cache import ResultCache, set_process_fingerprint
from .chaosinfra import InfraFaultPlan, fault_on_receive, fault_pre_job
from .jobs import Job, execute_job, job_cost
from .resilience import DegradationLadder, RetryPolicy, TRANSIENT_STATUSES

#: outcome statuses (job-level; a chaos job whose *case* deadlocked is
#: still status "ok" here -- the classification is in its payload)
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_CRASH = "worker-crash"
STATUS_TIMEOUT = "worker-timeout"

FAILURE_STATUSES = (STATUS_ERROR, STATUS_CRASH, STATUS_TIMEOUT)

assert set(TRANSIENT_STATUSES) == {STATUS_CRASH, STATUS_TIMEOUT}

#: default per-job wall-clock budget between heartbeats (seconds).
#: Generous: a single escalation rung of a storm case is well under a
#: minute; only a genuinely wedged worker trips this.
DEFAULT_JOB_TIMEOUT = 600.0

#: ``--parallel auto`` resolves to the host's CPU count, capped here --
#: beyond this the grids in this repo are IPC-bound, not compute-bound
AUTO_PARALLEL_CAP = 8

#: chunking targets: aim for this many chunks per worker so stragglers
#: rebalance, and never put more than this many jobs in one chunk (the
#: re-queue blast radius when a worker dies mid-chunk)
CHUNKS_PER_WORKER = 4
MAX_CHUNK_JOBS = 16

#: a chunk re-queued this many times without any job *starting* is
#: declared poisoned and its jobs classified worker-crash -- the
#: backstop that keeps a worker crashing on chunk receipt from looping
MAX_CHUNK_REQUEUES = 3

#: the retry policy ``run_campaign`` uses when none is passed
DEFAULT_RETRY = RetryPolicy()


def auto_parallel() -> int:
    """The worker count ``--parallel auto`` resolves to."""
    return max(1, min(os.cpu_count() or 1, AUTO_PARALLEL_CAP))


@dataclass
class JobOutcome:
    """One job's terminal state.

    ``attempts`` is the status of every *failed attempt that was
    retried*, oldest first; the final attempt's status is ``status``
    itself, so a job that crashed twice and then succeeded has
    ``status == "ok"`` and ``attempts == ("worker-crash",
    "worker-crash")``.
    """

    job: Job
    status: str
    result: dict | None = None
    cached: bool = False
    error: str = ""
    attempts: tuple = ()

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def attempt_count(self) -> int:
        """Total executions of this job (retries included)."""
        return len(self.attempts) + 1


@dataclass
class CampaignResult:
    """All outcomes, in job-submission order, plus execution counters."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    executed: int = 0     # jobs that actually ran (not cache hits)
    cached: int = 0       # jobs served from the result cache
    downgrades: list[dict] = field(default_factory=list)

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def retried(self) -> int:
        """Total re-executions across the campaign."""
        return sum(len(o.attempts) for o in self.outcomes)

    @property
    def recovered(self) -> list[JobOutcome]:
        """Jobs that failed transiently but ended ``ok`` after retries."""
        return [o for o in self.outcomes if o.ok and o.attempts]

    def results(self) -> list[dict | None]:
        return [o.result for o in self.outcomes]


# ------------------------------------------------------------------- chunking
def plan_chunks(
    jobs: list[Job],
    pending: list[int],
    parallel: int,
    target_cost: float | None = None,
) -> list[list[int]]:
    """Contiguous, size-aware chunks of the pending job indices.

    Submission order is preserved inside and across chunks (adjacent
    verify cells of the same test share a worker's warm parse), the
    per-chunk cost aims at ``total / (parallel * CHUNKS_PER_WORKER)``
    so many tiny jobs batch together while a single expensive job --
    one chaos storm rung costs an order of magnitude more than a litmus
    cell -- fills a chunk by itself, and no chunk exceeds
    :data:`MAX_CHUNK_JOBS` jobs (the re-queue blast radius).
    """
    if not pending:
        return []
    costs = [job_cost(jobs[i]) for i in pending]
    if target_cost is None:
        target_cost = sum(costs) / max(1, parallel * CHUNKS_PER_WORKER)
    target_cost = max(target_cost, 1e-9)
    chunks: list[list[int]] = []
    cur: list[int] = []
    acc = 0.0
    for index, cost in zip(pending, costs):
        if cur and acc + cost > target_cost:
            chunks.append(cur)
            cur, acc = [], 0.0
        cur.append(index)
        acc += cost
        if acc >= target_cost or len(cur) >= MAX_CHUNK_JOBS:
            chunks.append(cur)
            cur, acc = [], 0.0
    if cur:
        chunks.append(cur)
    return chunks


# ------------------------------------------------------------- worker bodies
def _worker_entry(conn, job: Job) -> None:
    """Fork-per-job worker body: run one job, ship the payload back."""
    try:
        result = execute_job(job, heartbeat=lambda: conn.send(("heartbeat",)))
        conn.send(("done", STATUS_OK, result))
    except Exception:
        conn.send(("done", STATUS_ERROR, traceback.format_exc()))
    finally:
        conn.close()


def _quiesce_worker_gc() -> None:
    """Freeze the inherited heap in a freshly forked persistent worker.

    The parent's module graph is immortal for the worker's lifetime;
    freezing it moves it out of cyclic-GC traversal, so the frequent
    young-generation collections a simulation triggers stop touching
    (and copy-on-write duplicating) the shared pages.  The raised
    generation-0 threshold trades a little peak memory for not running
    the collector thousands of times per job; per-job state is torn
    down by refcounting regardless, so results are unaffected.
    """
    gc.freeze()
    gc.set_threshold(100_000, 50, 50)


def _pool_worker_entry(conn, fingerprint: str,
                       infra: InfraFaultPlan | None = None) -> None:
    """Persistent-worker body: drain job chunks until told to exit.

    Protocol (all over one duplex pipe):

    * parent -> worker: ``("chunk", [(index, job, attempt), ...])`` or
      ``("exit",)``
    * worker -> parent: ``("start", index)`` before each job,
      ``("heartbeat",)`` while one runs, ``("done", index, status,
      payload)`` after it, ``("chunk-done",)`` after the chunk.

    ``attempt`` is the number of prior failed attempts of that job --
    it never influences the payload (results are pure functions of the
    job parameters), only the scripted infrastructure fault hooks,
    which key on ``(index, attempt)`` so an injected fault fires on a
    specific attempt and the retry runs clean.

    The parent's source-tree fingerprint is installed so nothing in
    this process ever re-hashes the tree (see
    :func:`repro.campaign.cache.set_process_fingerprint`).
    """
    if fingerprint:
        set_process_fingerprint(fingerprint)
    _quiesce_worker_gc()
    try:
        while True:
            message = conn.recv()
            if message[0] != "chunk":
                break
            for index, job, attempt in message[1]:
                if infra is not None:
                    fault_on_receive(infra, index, attempt)
                conn.send(("start", index))
                if infra is not None:
                    fault_pre_job(infra, index, attempt)
                try:
                    result = execute_job(
                        job, heartbeat=lambda: conn.send(("heartbeat",)))
                    conn.send(("done", index, STATUS_OK, result))
                except Exception:
                    conn.send(("done", index, STATUS_ERROR,
                               traceback.format_exc()))
            conn.send(("chunk-done",))
    except (EOFError, OSError):  # pragma: no cover - parent went away
        pass
    finally:
        conn.close()


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


# --------------------------------------------------------------- entry point
def run_campaign(
    jobs: list[Job],
    parallel: int = 0,
    cache: ResultCache | None = None,
    progress=None,
    job_timeout: float = DEFAULT_JOB_TIMEOUT,
    fork_per_job: bool = False,
    chunk_cost: float | None = None,
    retry: RetryPolicy | None = None,
    infra: InfraFaultPlan | None = None,
    ladder: DegradationLadder | None = None,
    on_event=None,
) -> CampaignResult:
    """Execute ``jobs``; see the module docstring for the contract.

    ``parallel=0`` runs inline in this process (still cache-aware and
    still per-job isolated from lazy global state); ``parallel>=1``
    uses that many worker processes -- persistent chunk-pulling workers
    by default, one process per job with ``fork_per_job=True``.
    ``progress(outcome, done, total)`` is invoked once per job as it
    completes (cache hits first, then executions in *completion* order
    -- the returned list is always in submission order regardless).
    ``chunk_cost`` overrides the persistent pool's per-chunk cost
    target (tests use it to force exact chunk shapes).

    ``retry`` defaults to :data:`DEFAULT_RETRY` (pass
    :data:`~repro.campaign.resilience.NO_RETRY` to disable); ``ladder``
    defaults to a fresh degradation ladder sized to ``parallel``;
    ``infra`` arms scripted infrastructure faults in pool workers;
    ``on_event(kind, message)`` receives ``"retry"``, ``"downgrade"``
    and ``"serial-fallback"`` notifications as they happen.
    """
    retry = DEFAULT_RETRY if retry is None else retry
    campaign = CampaignResult(outcomes=[None] * len(jobs))  # type: ignore[list-item]
    done = 0

    def finish(index: int, outcome: JobOutcome) -> None:
        nonlocal done
        campaign.outcomes[index] = outcome
        done += 1
        if outcome.cached:
            campaign.cached += 1
        else:
            campaign.executed += 1
        if progress is not None:
            progress(outcome, done, len(jobs))

    # ---------------------------------------------------------- cache pass
    pending: list[int] = []
    for i, job in enumerate(jobs):
        hit = cache.get(job) if cache is not None else None
        if hit is not None:
            finish(i, JobOutcome(job, STATUS_OK, hit, cached=True))
        else:
            pending.append(i)

    # ---------------------------------------------------------- inline mode
    if parallel <= 0:
        for i in pending:
            job = jobs[i]
            try:
                result = execute_job(job)
                outcome = JobOutcome(job, STATUS_OK, result)
            except Exception:
                outcome = JobOutcome(job, STATUS_ERROR, None,
                                     error=traceback.format_exc())
            if cache is not None:
                cache.put(job, outcome.status, outcome.result)
            finish(i, outcome)
        return campaign

    if fork_per_job:
        _run_fork_per_job(jobs, pending, parallel, cache, finish, job_timeout,
                          retry, on_event)
        return campaign

    if ladder is None:
        ladder = DegradationLadder(target=parallel)
    leftover, attempts = _run_persistent_pool(
        jobs, pending, parallel, cache, finish, job_timeout, chunk_cost,
        retry, infra, ladder, on_event)
    campaign.downgrades = list(ladder.events)
    if leftover:
        if on_event is not None:
            on_event("serial-fallback",
                     f"pool abandoned; running {len(leftover)} remaining "
                     f"job(s) serially")
        _run_serial_fallback(jobs, sorted(set(leftover)), cache, finish,
                             attempts, job_timeout)
    return campaign


# ------------------------------------------------------------ persistent pool
class _PoolWorker:
    """Parent-side state of one persistent worker."""

    __slots__ = ("process", "conn", "deadline", "timeout",
                 "remaining", "in_flight", "batch", "requeues", "idle")

    def __init__(self, process, conn, timeout):
        self.process = process
        self.conn = conn
        self.timeout = timeout
        self.remaining: list[int] = []   # chunk jobs not yet started
        self.in_flight: int | None = None  # started, no result yet
        self.batch: list[tuple[Job, str, dict]] = []  # ok results to flush
        self.requeues = 0                # the current chunk's requeue count
        self.idle = True                 # alive but holding no chunk
        self.beat()

    def beat(self) -> None:
        self.deadline = time.monotonic() + self.timeout


def _run_persistent_pool(
    jobs, pending, parallel, cache, finish, job_timeout, chunk_cost,
    retry, infra, ladder, on_event,
) -> tuple[list[int], dict[int, list[str]]]:
    """The chunk-pulling pool; returns (unstarted leftovers, attempts).

    Leftovers are non-empty only when the degradation ladder abandoned
    the pool (serial fallback) -- the caller finishes them in-process.
    """
    ctx = _mp_context()
    fingerprint = cache.fingerprint if cache is not None else ""
    # chunks carry their requeue count so a chunk that repeatedly kills
    # its worker before starting any job cannot re-queue forever
    chunks: deque[tuple[list[int], int]] = deque(
        (chunk, 0) for chunk in plan_chunks(jobs, pending, parallel, chunk_cost)
    )
    active: dict[object, _PoolWorker] = {}
    attempts: dict[int, list[str]] = {}   # retried-failure statuses per job
    retry_at: list[tuple[float, int]] = []  # heap of (ready time, index)
    serial_pending: list[int] = []
    completed = 0
    # drop garbage now so every fork starts from a clean heap and the
    # workers' gc.freeze() pins live objects only
    gc.collect()

    def emit(kind: str, message: str) -> None:
        if on_event is not None:
            on_event(kind, message)

    def settle_ok(index: int, payload) -> None:
        nonlocal completed
        completed += 1
        finish(index, JobOutcome(jobs[index], STATUS_OK, payload,
                                 attempts=tuple(attempts.get(index, ()))))

    def settle_failure(index: int, status: str, error: str) -> None:
        """Retry a transient failure with backoff, or finish the job."""
        nonlocal completed
        history = attempts.setdefault(index, [])
        if len(history) < retry.retries_for(status):
            history.append(status)
            if ladder.serial:
                serial_pending.append(index)
                emit("retry", f"{jobs[index].label()}: {status}; retry "
                              f"{len(history)}/{retry.retries} via serial "
                              f"fallback")
            else:
                delay = retry.delay(index, len(history) - 1)
                heappush(retry_at, (time.monotonic() + delay, index))
                emit("retry", f"{jobs[index].label()}: {status}; retry "
                              f"{len(history)}/{retry.retries} "
                              f"in {delay:.2f}s")
            return
        completed += 1
        finish(index, JobOutcome(jobs[index], status, None, error=error,
                                 attempts=tuple(history)))

    def flush(worker: _PoolWorker) -> None:
        if cache is not None and worker.batch:
            cache.put_many(worker.batch)
        worker.batch.clear()

    def assign(worker: _PoolWorker) -> bool:
        """Hand ``worker`` the next chunk or ready retry; False if none."""
        if chunks:
            chunk, requeues = chunks.popleft()
        elif retry_at and retry_at[0][0] <= time.monotonic():
            chunk, requeues = [heappop(retry_at)[1]], 0
        else:
            return False
        worker.remaining = list(chunk)
        worker.in_flight = None
        worker.requeues = requeues
        worker.idle = False
        worker.beat()
        worker.conn.send(("chunk", [
            (i, jobs[i], len(attempts.get(i, ()))) for i in chunk]))
        return True

    def spawn() -> None:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_pool_worker_entry,
                           args=(child_conn, fingerprint, infra), daemon=True)
        proc.start()
        child_conn.close()
        worker = _PoolWorker(proc, parent_conn, job_timeout)
        active[parent_conn] = worker
        assign(worker)

    def retire(worker: _PoolWorker) -> None:
        """Clean shutdown of an idle worker (no work for it)."""
        flush(worker)
        try:
            worker.conn.send(("exit",))
        except (BrokenPipeError, OSError):  # pragma: no cover - racing death
            pass
        worker.conn.close()
        del active[worker.conn]
        worker.process.join()

    def go_serial() -> None:
        """Abandon the pool: queue everything for in-process execution."""
        while chunks:
            chunk, _ = chunks.popleft()
            serial_pending.extend(chunk)
        while retry_at:
            serial_pending.append(heappop(retry_at)[1])
        for worker in [w for w in active.values() if w.idle]:
            retire(worker)

    def reap(worker: _PoolWorker, status: str, error: str, kill: bool) -> None:
        """A worker died or was killed: classify, re-queue, replace.

        Only the in-flight job gets ``status``; chunk jobs that never
        started are pushed back to the *front* of the queue so overall
        ordering stays as close to submission order as a crash allows.
        Every death feeds the degradation ladder.
        """
        if kill:
            worker.process.terminate()
        worker.process.join()
        worker.conn.close()
        del active[worker.conn]
        flush(worker)
        if worker.in_flight is not None:
            settle_failure(worker.in_flight, status, error)
            worker.requeues = 0  # progress was made; reset the backstop
        if worker.remaining:
            if worker.requeues + 1 > MAX_CHUNK_REQUEUES:
                for i in worker.remaining:
                    settle_failure(i, STATUS_CRASH,
                                   f"chunk re-queued {worker.requeues} times "
                                   f"without progress; giving up ({error})")
            else:
                chunks.appendleft((list(worker.remaining), worker.requeues + 1))
        event = ladder.record_death(completed)
        if event is not None:
            if ladder.serial:
                emit("downgrade",
                     f"respawn storm ({event['deaths']} worker deaths): "
                     f"abandoning the pool for serial execution")
                go_serial()
            else:
                emit("downgrade",
                     f"respawn storm ({event['deaths']} worker deaths): "
                     f"shrinking pool {event['from']} -> {event['to']} "
                     f"worker(s)")
        if (not ladder.serial and (chunks or retry_at)
                and len(active) < ladder.target):
            spawn()

    for _ in range(min(parallel, len(chunks))):
        spawn()

    while active:
        now = time.monotonic()
        waits = [w.deadline - now for w in active.values() if not w.idle]
        if retry_at:
            waits.append(retry_at[0][0] - now)
        wait_for = max(0.01, min(waits)) if waits else 0.05
        ready = _conn_wait(list(active), timeout=wait_for)

        for conn in ready:
            worker = active.get(conn)
            if worker is None:  # reaped earlier in this same batch
                continue
            try:
                message = conn.recv()
            except (EOFError, OSError):
                worker.process.join()  # reap first so exitcode is real
                code = worker.process.exitcode
                reap(worker, STATUS_CRASH,
                     f"worker exited with code {code} before reporting",
                     kill=False)
                continue
            worker.beat()
            tag = message[0]
            if tag == "heartbeat":
                continue
            if tag == "start":
                index = message[1]
                worker.in_flight = index
                if index in worker.remaining:
                    worker.remaining.remove(index)
                continue
            if tag == "done":
                _tag, index, status, payload = message
                worker.in_flight = None
                worker.requeues = 0
                if status == STATUS_OK:
                    worker.batch.append((jobs[index], status, payload))
                    settle_ok(index, payload)
                else:
                    settle_failure(index, status, str(payload))
                continue
            if tag == "chunk-done":
                flush(worker)
                if not assign(worker):
                    if chunks or retry_at:
                        worker.idle = True  # a retry will ready up soon
                    else:
                        retire(worker)
                continue

        now = time.monotonic()
        for worker in [w for w in active.values()
                       if not w.idle and w.deadline <= now]:
            reap(worker, STATUS_TIMEOUT,
                 f"no progress for {worker.timeout:.0f}s; worker killed",
                 kill=True)

        # idle workers: hand out retries that became ready, retire the
        # rest once no further work can materialise
        for worker in [w for w in active.values() if w.idle]:
            if chunks or retry_at:
                assign(worker)  # no-op while the retry backoff runs
            else:
                retire(worker)

    # whatever never started belongs to the serial fallback (non-empty
    # only when the ladder bottomed out or the whole pool died)
    while chunks:
        chunk, _ = chunks.popleft()
        serial_pending.extend(chunk)
    while retry_at:
        serial_pending.append(heappop(retry_at)[1])
    return serial_pending, attempts


# ------------------------------------------------------------ serial fallback
def _run_one_isolated(ctx, job: Job, job_timeout: float) -> tuple[str, object]:
    """Run one job in a fresh single-shot process; (status, payload)."""
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_worker_entry, args=(child_conn, job),
                       daemon=True)
    proc.start()
    child_conn.close()
    deadline = time.monotonic() + job_timeout
    try:
        while True:
            remain = deadline - time.monotonic()
            if remain <= 0:
                proc.terminate()
                proc.join()
                return (STATUS_TIMEOUT,
                        f"no progress for {job_timeout:.0f}s; worker killed")
            if not parent_conn.poll(remain):
                continue
            try:
                message = parent_conn.recv()
            except (EOFError, OSError):
                proc.join()
                return (STATUS_CRASH,
                        f"worker exited with code {proc.exitcode} "
                        f"before reporting")
            if message[0] == "heartbeat":
                deadline = time.monotonic() + job_timeout
                continue
            _tag, status, payload = message
            proc.join()
            return status, payload
    finally:
        parent_conn.close()


def _run_serial_fallback(jobs, indices, cache, finish, attempts,
                         job_timeout) -> None:
    """The ladder's last rung: finish the sweep without a pool.

    Jobs with a clean history run in-process (serial, no fork); a job
    that has already taken a worker down -- any transient failure in
    its history -- is never brought into the campaign driver's own
    process and re-runs in a fresh single-shot isolated process
    instead, still under the job timeout.  No further retries: this is
    the recovery of last resort, and infrastructure fault hooks are
    deliberately not installed here.
    """
    ctx = _mp_context()
    for index in indices:
        job = jobs[index]
        history = attempts.get(index, [])
        if history:
            status, payload = _run_one_isolated(ctx, job, job_timeout)
        else:
            try:
                payload = execute_job(job)
                status = STATUS_OK
            except Exception:
                status, payload = STATUS_ERROR, traceback.format_exc()
        if status == STATUS_OK:
            if cache is not None:
                cache.put(job, status, payload)
            finish(index, JobOutcome(job, STATUS_OK, payload,
                                     attempts=tuple(history)))
        else:
            finish(index, JobOutcome(job, status, None, error=str(payload),
                                     attempts=tuple(history)))


# ---------------------------------------------------- legacy fork-per-job pool
class _ActiveWorker:
    __slots__ = ("index", "process", "conn", "deadline", "timeout")

    def __init__(self, index, process, conn, timeout):
        self.index = index
        self.process = process
        self.conn = conn
        self.timeout = timeout
        self.deadline = time.monotonic() + timeout

    def beat(self) -> None:
        self.deadline = time.monotonic() + self.timeout


def _run_fork_per_job(jobs, pending, parallel, cache, finish, job_timeout,
                      retry, on_event) -> None:
    ctx = _mp_context()
    queue = deque(pending)
    active: dict[object, _ActiveWorker] = {}
    attempts: dict[int, list[str]] = {}
    retry_at: list[tuple[float, int]] = []  # heap of (ready time, index)

    def settle_ok(index: int, payload) -> None:
        if cache is not None:
            cache.put(jobs[index], STATUS_OK, payload)
        finish(index, JobOutcome(jobs[index], STATUS_OK, payload,
                                 attempts=tuple(attempts.get(index, ()))))

    def settle_failure(index: int, status: str, error: str) -> None:
        history = attempts.setdefault(index, [])
        if len(history) < retry.retries_for(status):
            history.append(status)
            delay = retry.delay(index, len(history) - 1)
            heappush(retry_at, (time.monotonic() + delay, index))
            if on_event is not None:
                on_event("retry", f"{jobs[index].label()}: {status}; retry "
                                  f"{len(history)}/{retry.retries} "
                                  f"in {delay:.2f}s")
            return
        finish(index, JobOutcome(jobs[index], status, None, error=error,
                                 attempts=tuple(history)))

    def reap(worker: _ActiveWorker, kill: bool, status: str, error: str) -> None:
        if kill:
            worker.process.terminate()
        worker.process.join()
        worker.conn.close()
        del active[worker.conn]
        settle_failure(worker.index, status, error)

    while queue or active or retry_at:
        now = time.monotonic()
        while retry_at and retry_at[0][0] <= now:
            queue.append(heappop(retry_at)[1])
        while queue and len(active) < parallel:
            index = queue.popleft()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_worker_entry, args=(child_conn, jobs[index]),
                               daemon=True)
            proc.start()
            child_conn.close()
            active[parent_conn] = _ActiveWorker(index, proc, parent_conn, job_timeout)

        if not active:
            # nothing running: sleep out the earliest retry backoff
            if retry_at:
                time.sleep(max(0.0, retry_at[0][0] - time.monotonic()))
            continue

        now = time.monotonic()
        waits = [w.deadline - now for w in active.values()]
        if retry_at:
            waits.append(retry_at[0][0] - now)
        wait_for = max(0.01, min(waits))
        ready = _conn_wait(list(active), timeout=wait_for)

        for conn in ready:
            worker = active[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # pipe closed without a "done": the worker died mid-job
                worker.process.join()
                code = worker.process.exitcode
                conn.close()
                del active[conn]
                settle_failure(worker.index, STATUS_CRASH,
                               f"worker exited with code {code} before reporting")
                continue
            if message[0] == "heartbeat":
                worker.beat()
                continue
            _tag, status, payload = message
            worker.process.join()
            conn.close()
            del active[conn]
            if status == STATUS_OK:
                settle_ok(worker.index, payload)
            else:
                settle_failure(worker.index, status, str(payload))

        now = time.monotonic()
        for worker in [w for w in active.values() if w.deadline <= now]:
            reap(worker, kill=True, status=STATUS_TIMEOUT,
                 error=f"no progress for {worker.timeout:.0f}s; worker killed")
