"""The campaign executor: cached, resumable, crash-isolated fan-out.

``run_campaign`` takes a declarative job list and executes it either
inline (``parallel=0``) or on a pool of worker *processes*
(``parallel>=1``).  Three properties are the contract:

* **Determinism** -- results are returned in job-submission order and
  each job's payload is a pure function of its parameters (see
  :func:`repro.campaign.jobs.execute_job`), so a campaign produces the
  identical outcome list whether it ran inline, on one worker, or on
  sixteen.  Nothing host- or wall-clock-dependent enters a payload.
* **Crash isolation** -- a worker that dies is respawned and only the
  job it was executing is classified ``worker-crash``; one that stops
  heartbeating past the job timeout is killed and its job classified
  ``worker-timeout``; an exception inside a job is ``error`` with the
  traceback.  None of them abort the campaign or poison other jobs.
* **Resumability** -- with a :class:`~repro.campaign.cache.ResultCache`
  attached, completed jobs are served from disk and *zero* simulations
  re-execute; an interrupted campaign continues from wherever its
  manifest left off.

Two pool implementations share that contract:

* The default **persistent pool** forks each of the ``parallel``
  workers once per campaign.  Workers pull *chunks* of jobs (size-aware
  chunking via :func:`repro.campaign.jobs.job_cost`: many tiny
  litmus/verify cells batch together, long chaos rungs stay solo),
  stream per-job results and heartbeats back over their pipe, and keep
  warm state between jobs -- the source-tree fingerprint computed once
  in the parent and installed into each worker
  (:func:`repro.campaign.cache.set_process_fingerprint`), memoised
  parse/exploration products keyed by job parameters, and a quiesced
  garbage collector (the inherited module heap is frozen out of
  collection traversal, which also keeps forked pages copy-on-write
  clean).  Completed results are flushed to the cache one manifest
  append + fsync per *chunk* instead of per job.  A worker that dies
  mid-chunk is respawned; only its in-flight job is classified
  ``worker-crash`` and the unstarted remainder of the chunk is
  re-queued at the front of the queue.
* The legacy **fork-per-job pool** (``fork_per_job=True``, CLI
  ``--fork-per-job``) spawns one process per job, at most ``parallel``
  alive at once.  It is kept as the throughput-regression baseline --
  ``python -m repro perf --campaign`` races the two pools and fails if
  the persistent pool stops beating it -- and as a maximally isolated
  escape hatch.

Workers are forked (POSIX) so they inherit the loaded simulator modules
instead of re-importing them; the spawn fallback keeps the engine
functional on platforms without ``fork``.  The chaos supervisor's
escalation ladder runs entirely inside the worker -- each budget rung
sends a heartbeat over the result pipe, which resets the parent's
deadline so a legitimately escalating case is never confused with a
hung one.  Timeouts are therefore *per job* even when jobs travel in
chunks: any message from a worker (job start, heartbeat, result)
resets its deadline.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait

from .cache import ResultCache, set_process_fingerprint
from .jobs import Job, execute_job, job_cost

#: outcome statuses (job-level; a chaos job whose *case* deadlocked is
#: still status "ok" here -- the classification is in its payload)
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_CRASH = "worker-crash"
STATUS_TIMEOUT = "worker-timeout"

FAILURE_STATUSES = (STATUS_ERROR, STATUS_CRASH, STATUS_TIMEOUT)

#: default per-job wall-clock budget between heartbeats (seconds).
#: Generous: a single escalation rung of a storm case is well under a
#: minute; only a genuinely wedged worker trips this.
DEFAULT_JOB_TIMEOUT = 600.0

#: ``--parallel auto`` resolves to the host's CPU count, capped here --
#: beyond this the grids in this repo are IPC-bound, not compute-bound
AUTO_PARALLEL_CAP = 8

#: chunking targets: aim for this many chunks per worker so stragglers
#: rebalance, and never put more than this many jobs in one chunk (the
#: re-queue blast radius when a worker dies mid-chunk)
CHUNKS_PER_WORKER = 4
MAX_CHUNK_JOBS = 16

#: a chunk re-queued this many times without any job *starting* is
#: declared poisoned and its jobs classified worker-crash -- the
#: backstop that keeps a worker crashing on chunk receipt from looping
MAX_CHUNK_REQUEUES = 3


def auto_parallel() -> int:
    """The worker count ``--parallel auto`` resolves to."""
    return max(1, min(os.cpu_count() or 1, AUTO_PARALLEL_CAP))


@dataclass
class JobOutcome:
    """One job's terminal state."""

    job: Job
    status: str
    result: dict | None = None
    cached: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class CampaignResult:
    """All outcomes, in job-submission order, plus execution counters."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    executed: int = 0     # jobs that actually ran (not cache hits)
    cached: int = 0       # jobs served from the result cache

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def results(self) -> list[dict | None]:
        return [o.result for o in self.outcomes]


# ------------------------------------------------------------------- chunking
def plan_chunks(
    jobs: list[Job],
    pending: list[int],
    parallel: int,
    target_cost: float | None = None,
) -> list[list[int]]:
    """Contiguous, size-aware chunks of the pending job indices.

    Submission order is preserved inside and across chunks (adjacent
    verify cells of the same test share a worker's warm parse), the
    per-chunk cost aims at ``total / (parallel * CHUNKS_PER_WORKER)``
    so many tiny jobs batch together while a single expensive job --
    one chaos storm rung costs an order of magnitude more than a litmus
    cell -- fills a chunk by itself, and no chunk exceeds
    :data:`MAX_CHUNK_JOBS` jobs (the re-queue blast radius).
    """
    if not pending:
        return []
    costs = [job_cost(jobs[i]) for i in pending]
    if target_cost is None:
        target_cost = sum(costs) / max(1, parallel * CHUNKS_PER_WORKER)
    target_cost = max(target_cost, 1e-9)
    chunks: list[list[int]] = []
    cur: list[int] = []
    acc = 0.0
    for index, cost in zip(pending, costs):
        if cur and acc + cost > target_cost:
            chunks.append(cur)
            cur, acc = [], 0.0
        cur.append(index)
        acc += cost
        if acc >= target_cost or len(cur) >= MAX_CHUNK_JOBS:
            chunks.append(cur)
            cur, acc = [], 0.0
    if cur:
        chunks.append(cur)
    return chunks


# ------------------------------------------------------------- worker bodies
def _worker_entry(conn, job: Job) -> None:
    """Fork-per-job worker body: run one job, ship the payload back."""
    try:
        result = execute_job(job, heartbeat=lambda: conn.send(("heartbeat",)))
        conn.send(("done", STATUS_OK, result))
    except Exception:
        conn.send(("done", STATUS_ERROR, traceback.format_exc()))
    finally:
        conn.close()


def _quiesce_worker_gc() -> None:
    """Freeze the inherited heap in a freshly forked persistent worker.

    The parent's module graph is immortal for the worker's lifetime;
    freezing it moves it out of cyclic-GC traversal, so the frequent
    young-generation collections a simulation triggers stop touching
    (and copy-on-write duplicating) the shared pages.  The raised
    generation-0 threshold trades a little peak memory for not running
    the collector thousands of times per job; per-job state is torn
    down by refcounting regardless, so results are unaffected.
    """
    gc.freeze()
    gc.set_threshold(100_000, 50, 50)


def _pool_worker_entry(conn, fingerprint: str) -> None:
    """Persistent-worker body: drain job chunks until told to exit.

    Protocol (all over one duplex pipe):

    * parent -> worker: ``("chunk", [(index, job), ...])`` or
      ``("exit",)``
    * worker -> parent: ``("start", index)`` before each job,
      ``("heartbeat",)`` while one runs, ``("done", index, status,
      payload)`` after it, ``("chunk-done",)`` after the chunk.

    The parent's source-tree fingerprint is installed so nothing in
    this process ever re-hashes the tree (see
    :func:`repro.campaign.cache.set_process_fingerprint`).
    """
    if fingerprint:
        set_process_fingerprint(fingerprint)
    _quiesce_worker_gc()
    try:
        while True:
            message = conn.recv()
            if message[0] != "chunk":
                break
            for index, job in message[1]:
                conn.send(("start", index))
                try:
                    result = execute_job(
                        job, heartbeat=lambda: conn.send(("heartbeat",)))
                    conn.send(("done", index, STATUS_OK, result))
                except Exception:
                    conn.send(("done", index, STATUS_ERROR,
                               traceback.format_exc()))
            conn.send(("chunk-done",))
    except (EOFError, OSError):  # pragma: no cover - parent went away
        pass
    finally:
        conn.close()


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


# --------------------------------------------------------------- entry point
def run_campaign(
    jobs: list[Job],
    parallel: int = 0,
    cache: ResultCache | None = None,
    progress=None,
    job_timeout: float = DEFAULT_JOB_TIMEOUT,
    fork_per_job: bool = False,
    chunk_cost: float | None = None,
) -> CampaignResult:
    """Execute ``jobs``; see the module docstring for the contract.

    ``parallel=0`` runs inline in this process (still cache-aware and
    still per-job isolated from lazy global state); ``parallel>=1``
    uses that many worker processes -- persistent chunk-pulling workers
    by default, one process per job with ``fork_per_job=True``.
    ``progress(outcome, done, total)`` is invoked once per job as it
    completes (cache hits first, then executions in *completion* order
    -- the returned list is always in submission order regardless).
    ``chunk_cost`` overrides the persistent pool's per-chunk cost
    target (tests use it to force exact chunk shapes).
    """
    campaign = CampaignResult(outcomes=[None] * len(jobs))  # type: ignore[list-item]
    done = 0

    def finish(index: int, outcome: JobOutcome) -> None:
        nonlocal done
        campaign.outcomes[index] = outcome
        done += 1
        if outcome.cached:
            campaign.cached += 1
        else:
            campaign.executed += 1
        if progress is not None:
            progress(outcome, done, len(jobs))

    # ---------------------------------------------------------- cache pass
    pending: list[int] = []
    for i, job in enumerate(jobs):
        hit = cache.get(job) if cache is not None else None
        if hit is not None:
            finish(i, JobOutcome(job, STATUS_OK, hit, cached=True))
        else:
            pending.append(i)

    # ---------------------------------------------------------- inline mode
    if parallel <= 0:
        for i in pending:
            job = jobs[i]
            try:
                result = execute_job(job)
                outcome = JobOutcome(job, STATUS_OK, result)
            except Exception:
                outcome = JobOutcome(job, STATUS_ERROR, None,
                                     error=traceback.format_exc())
            if cache is not None:
                cache.put(job, outcome.status, outcome.result)
            finish(i, outcome)
        return campaign

    if fork_per_job:
        _run_fork_per_job(jobs, pending, parallel, cache, finish, job_timeout)
    else:
        _run_persistent_pool(jobs, pending, parallel, cache, finish,
                             job_timeout, chunk_cost)
    return campaign


# ------------------------------------------------------------ persistent pool
class _PoolWorker:
    """Parent-side state of one persistent worker."""

    __slots__ = ("process", "conn", "deadline", "timeout",
                 "remaining", "in_flight", "batch", "requeues")

    def __init__(self, process, conn, timeout):
        self.process = process
        self.conn = conn
        self.timeout = timeout
        self.remaining: list[int] = []   # chunk jobs not yet started
        self.in_flight: int | None = None  # started, no result yet
        self.batch: list[tuple[Job, str, dict]] = []  # ok results to flush
        self.requeues = 0                # the current chunk's requeue count
        self.beat()

    def beat(self) -> None:
        self.deadline = time.monotonic() + self.timeout


def _run_persistent_pool(
    jobs, pending, parallel, cache, finish, job_timeout, chunk_cost,
) -> None:
    ctx = _mp_context()
    fingerprint = cache.fingerprint if cache is not None else ""
    # chunks carry their requeue count so a chunk that repeatedly kills
    # its worker before starting any job cannot re-queue forever
    chunks: deque[tuple[list[int], int]] = deque(
        (chunk, 0) for chunk in plan_chunks(jobs, pending, parallel, chunk_cost)
    )
    active: dict[object, _PoolWorker] = {}
    # drop garbage now so every fork starts from a clean heap and the
    # workers' gc.freeze() pins live objects only
    gc.collect()

    def flush(worker: _PoolWorker) -> None:
        if cache is not None and worker.batch:
            cache.put_many(worker.batch)
        worker.batch.clear()

    def assign(worker: _PoolWorker) -> bool:
        """Send the next chunk to ``worker``; False when none are left."""
        if not chunks:
            return False
        chunk, requeues = chunks.popleft()
        worker.remaining = list(chunk)
        worker.in_flight = None
        worker.requeues = requeues
        worker.beat()
        worker.conn.send(("chunk", [(i, jobs[i]) for i in chunk]))
        return True

    def spawn() -> None:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_pool_worker_entry,
                           args=(child_conn, fingerprint), daemon=True)
        proc.start()
        child_conn.close()
        worker = _PoolWorker(proc, parent_conn, job_timeout)
        active[parent_conn] = worker
        assign(worker)

    def retire(worker: _PoolWorker) -> None:
        """Clean shutdown of an idle worker (no chunks left)."""
        flush(worker)
        try:
            worker.conn.send(("exit",))
        except (BrokenPipeError, OSError):  # pragma: no cover - racing death
            pass
        worker.conn.close()
        del active[worker.conn]
        worker.process.join()

    def reap(worker: _PoolWorker, status: str, error: str, kill: bool) -> None:
        """A worker died or was killed: classify, re-queue, replace.

        Only the in-flight job gets ``status``; chunk jobs that never
        started are pushed back to the *front* of the queue so overall
        ordering stays as close to submission order as a crash allows.
        """
        if kill:
            worker.process.terminate()
        worker.process.join()
        worker.conn.close()
        del active[worker.conn]
        flush(worker)
        if worker.in_flight is not None:
            finish(worker.in_flight,
                   JobOutcome(jobs[worker.in_flight], status, None, error=error))
            worker.requeues = 0  # progress was made; reset the backstop
        if worker.remaining:
            if worker.requeues + 1 > MAX_CHUNK_REQUEUES:
                for i in worker.remaining:
                    finish(i, JobOutcome(
                        jobs[i], STATUS_CRASH, None,
                        error=f"chunk re-queued {worker.requeues} times "
                              f"without progress; giving up ({error})"))
            else:
                chunks.appendleft((list(worker.remaining), worker.requeues + 1))
        if chunks:
            spawn()

    for _ in range(min(parallel, len(chunks))):
        spawn()

    while active:
        now = time.monotonic()
        wait_for = max(0.01, min(w.deadline for w in active.values()) - now)
        ready = _conn_wait(list(active), timeout=wait_for)

        for conn in ready:
            worker = active.get(conn)
            if worker is None:  # reaped earlier in this same batch
                continue
            try:
                message = conn.recv()
            except (EOFError, OSError):
                worker.process.join()  # reap first so exitcode is real
                code = worker.process.exitcode
                reap(worker, STATUS_CRASH,
                     f"worker exited with code {code} before reporting",
                     kill=False)
                continue
            worker.beat()
            tag = message[0]
            if tag == "heartbeat":
                continue
            if tag == "start":
                index = message[1]
                worker.in_flight = index
                if index in worker.remaining:
                    worker.remaining.remove(index)
                continue
            if tag == "done":
                _tag, index, status, payload = message
                worker.in_flight = None
                worker.requeues = 0
                if status == STATUS_OK:
                    worker.batch.append((jobs[index], status, payload))
                    finish(index, JobOutcome(jobs[index], STATUS_OK, payload))
                else:
                    finish(index, JobOutcome(jobs[index], status, None,
                                             error=str(payload)))
                continue
            if tag == "chunk-done":
                flush(worker)
                if not assign(worker):
                    retire(worker)
                continue

        now = time.monotonic()
        for worker in [w for w in active.values() if w.deadline <= now]:
            reap(worker, STATUS_TIMEOUT,
                 f"no progress for {worker.timeout:.0f}s; worker killed",
                 kill=True)


# ---------------------------------------------------- legacy fork-per-job pool
class _ActiveWorker:
    __slots__ = ("index", "process", "conn", "deadline", "timeout")

    def __init__(self, index, process, conn, timeout):
        self.index = index
        self.process = process
        self.conn = conn
        self.timeout = timeout
        self.deadline = time.monotonic() + timeout

    def beat(self) -> None:
        self.deadline = time.monotonic() + self.timeout


def _run_fork_per_job(jobs, pending, parallel, cache, finish, job_timeout) -> None:
    ctx = _mp_context()
    queue = list(pending)
    active: dict[object, _ActiveWorker] = {}

    def settle(outcome_index: int, outcome: JobOutcome) -> None:
        if cache is not None and outcome.ok:
            cache.put(jobs[outcome_index], outcome.status, outcome.result)
        finish(outcome_index, outcome)

    def reap(worker: _ActiveWorker, kill: bool, status: str, error: str) -> None:
        if kill:
            worker.process.terminate()
        worker.process.join()
        worker.conn.close()
        del active[worker.conn]
        settle(worker.index, JobOutcome(jobs[worker.index], status, None, error=error))

    while queue or active:
        while queue and len(active) < parallel:
            index = queue.pop(0)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_worker_entry, args=(child_conn, jobs[index]),
                               daemon=True)
            proc.start()
            child_conn.close()
            active[parent_conn] = _ActiveWorker(index, proc, parent_conn, job_timeout)

        now = time.monotonic()
        wait_for = max(0.01, min(w.deadline for w in active.values()) - now)
        ready = _conn_wait(list(active), timeout=wait_for)

        for conn in ready:
            worker = active[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # pipe closed without a "done": the worker died mid-job
                worker.process.join()
                code = worker.process.exitcode
                conn.close()
                del active[conn]
                settle(worker.index, JobOutcome(
                    jobs[worker.index], STATUS_CRASH, None,
                    error=f"worker exited with code {code} before reporting"))
                continue
            if message[0] == "heartbeat":
                worker.beat()
                continue
            _tag, status, payload = message
            worker.process.join()
            conn.close()
            del active[conn]
            if status == STATUS_OK:
                settle(worker.index, JobOutcome(jobs[worker.index], STATUS_OK, payload))
            else:
                settle(worker.index, JobOutcome(jobs[worker.index], status, None,
                                                error=str(payload)))

        now = time.monotonic()
        for worker in [w for w in active.values() if w.deadline <= now]:
            reap(worker, kill=True, status=STATUS_TIMEOUT,
                 error=f"no progress for {worker.timeout:.0f}s; worker killed")
