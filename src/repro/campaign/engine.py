"""The campaign executor: cached, resumable, crash-isolated fan-out.

``run_campaign`` takes a declarative job list and executes it either
inline (``parallel=0``) or on a pool of worker *processes*
(``parallel>=1``).  Three properties are the contract:

* **Determinism** -- results are returned in job-submission order and
  each job's payload is a pure function of its parameters (see
  :func:`repro.campaign.jobs.execute_job`), so a campaign produces the
  identical outcome list whether it ran inline, on one worker, or on
  sixteen.  Nothing host- or wall-clock-dependent enters a payload.
* **Crash isolation** -- every job runs in its own worker process (one
  process per job, at most ``parallel`` alive at once).  A worker that
  dies is classified ``worker-crash``; one that stops heartbeating past
  the job timeout is killed and classified ``worker-timeout``; an
  exception inside the job is ``error`` with the traceback.  None of
  them abort the campaign.
* **Resumability** -- with a :class:`~repro.campaign.cache.ResultCache`
  attached, completed jobs are served from disk and *zero* simulations
  re-execute; an interrupted campaign continues from wherever its
  manifest left off.

Workers are forked (POSIX) so they inherit the loaded simulator modules
instead of re-importing them; the spawn fallback keeps the engine
functional on platforms without ``fork``.  The chaos supervisor's
escalation ladder runs entirely inside the worker -- each budget rung
sends a heartbeat over the result pipe, which resets the parent's
deadline so a legitimately escalating case is never confused with a
hung one.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait

from .cache import ResultCache
from .jobs import Job, execute_job

#: outcome statuses (job-level; a chaos job whose *case* deadlocked is
#: still status "ok" here -- the classification is in its payload)
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_CRASH = "worker-crash"
STATUS_TIMEOUT = "worker-timeout"

FAILURE_STATUSES = (STATUS_ERROR, STATUS_CRASH, STATUS_TIMEOUT)

#: default per-job wall-clock budget between heartbeats (seconds).
#: Generous: a single escalation rung of a storm case is well under a
#: minute; only a genuinely wedged worker trips this.
DEFAULT_JOB_TIMEOUT = 600.0


@dataclass
class JobOutcome:
    """One job's terminal state."""

    job: Job
    status: str
    result: dict | None = None
    cached: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class CampaignResult:
    """All outcomes, in job-submission order, plus execution counters."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    executed: int = 0     # jobs that actually ran (not cache hits)
    cached: int = 0       # jobs served from the result cache

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def results(self) -> list[dict | None]:
        return [o.result for o in self.outcomes]


def _worker_entry(conn, job: Job) -> None:
    """Worker-process body: run one job, ship the payload back."""
    try:
        result = execute_job(job, heartbeat=lambda: conn.send(("heartbeat",)))
        conn.send(("done", STATUS_OK, result))
    except Exception:
        conn.send(("done", STATUS_ERROR, traceback.format_exc()))
    finally:
        conn.close()


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class _ActiveWorker:
    __slots__ = ("index", "process", "conn", "deadline", "timeout")

    def __init__(self, index, process, conn, timeout):
        self.index = index
        self.process = process
        self.conn = conn
        self.timeout = timeout
        self.deadline = time.monotonic() + timeout

    def beat(self) -> None:
        self.deadline = time.monotonic() + self.timeout


def run_campaign(
    jobs: list[Job],
    parallel: int = 0,
    cache: ResultCache | None = None,
    progress=None,
    job_timeout: float = DEFAULT_JOB_TIMEOUT,
) -> CampaignResult:
    """Execute ``jobs``; see the module docstring for the contract.

    ``parallel=0`` runs inline in this process (still cache-aware and
    still per-job isolated from lazy global state); ``parallel>=1``
    uses that many worker processes.  ``progress(outcome, done, total)``
    is invoked once per job as it completes (cache hits first, then
    executions in *completion* order -- the returned list is always in
    submission order regardless).
    """
    campaign = CampaignResult(outcomes=[None] * len(jobs))  # type: ignore[list-item]
    done = 0

    def finish(index: int, outcome: JobOutcome) -> None:
        nonlocal done
        campaign.outcomes[index] = outcome
        done += 1
        if outcome.cached:
            campaign.cached += 1
        else:
            campaign.executed += 1
        if progress is not None:
            progress(outcome, done, len(jobs))

    # ---------------------------------------------------------- cache pass
    pending: list[int] = []
    for i, job in enumerate(jobs):
        hit = cache.get(job) if cache is not None else None
        if hit is not None:
            finish(i, JobOutcome(job, STATUS_OK, hit, cached=True))
        else:
            pending.append(i)

    # ---------------------------------------------------------- inline mode
    if parallel <= 0:
        for i in pending:
            job = jobs[i]
            try:
                result = execute_job(job)
                outcome = JobOutcome(job, STATUS_OK, result)
            except Exception:
                outcome = JobOutcome(job, STATUS_ERROR, None,
                                     error=traceback.format_exc())
            if cache is not None:
                cache.put(job, outcome.status, outcome.result)
            finish(i, outcome)
        return campaign

    # ------------------------------------------------------------ pool mode
    ctx = _mp_context()
    queue = list(pending)
    active: dict[object, _ActiveWorker] = {}

    def settle(outcome_index: int, outcome: JobOutcome) -> None:
        if cache is not None and outcome.ok:
            cache.put(jobs[outcome_index], outcome.status, outcome.result)
        finish(outcome_index, outcome)

    def reap(worker: _ActiveWorker, kill: bool, status: str, error: str) -> None:
        if kill:
            worker.process.terminate()
        worker.process.join()
        worker.conn.close()
        del active[worker.conn]
        settle(worker.index, JobOutcome(jobs[worker.index], status, None, error=error))

    while queue or active:
        while queue and len(active) < parallel:
            index = queue.pop(0)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_worker_entry, args=(child_conn, jobs[index]),
                               daemon=True)
            proc.start()
            child_conn.close()
            active[parent_conn] = _ActiveWorker(index, proc, parent_conn, job_timeout)

        now = time.monotonic()
        wait_for = max(0.01, min(w.deadline for w in active.values()) - now)
        ready = _conn_wait(list(active), timeout=wait_for)

        for conn in ready:
            worker = active[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # pipe closed without a "done": the worker died mid-job
                worker.process.join()
                code = worker.process.exitcode
                conn.close()
                del active[conn]
                settle(worker.index, JobOutcome(
                    jobs[worker.index], STATUS_CRASH, None,
                    error=f"worker exited with code {code} before reporting"))
                continue
            if message[0] == "heartbeat":
                worker.beat()
                continue
            _tag, status, payload = message
            worker.process.join()
            conn.close()
            del active[conn]
            if status == STATUS_OK:
                settle(worker.index, JobOutcome(jobs[worker.index], STATUS_OK, payload))
            else:
                settle(worker.index, JobOutcome(jobs[worker.index], status, None,
                                                error=str(payload)))

        now = time.monotonic()
        for worker in [w for w in active.values() if w.deadline <= now]:
            reap(worker, kill=True, status=STATUS_TIMEOUT,
                 error=f"no progress for {worker.timeout:.0f}s; worker killed")

    return campaign
