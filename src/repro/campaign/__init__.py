"""Parallel campaign engine: cached, resumable, crash-isolated sweeps.

The evaluation surfaces of this repo -- chaos sweeps, the Figure 12-16
benchmark tables, the litmus corpus -- are all embarrassingly parallel
grids of independent simulations.  This package turns each of them into
a declarative job list (:mod:`~repro.campaign.jobs`), executes the list
on a pool of crash-isolated worker processes
(:mod:`~repro.campaign.engine`), and memoises every completed cell in a
content-addressed on-disk cache (:mod:`~repro.campaign.cache`) so
re-runs and interrupted campaigns resume without re-simulating
anything.  Determinism is the contract throughout: the same job list
with the same seeds produces byte-identical results inline, on one
worker, or on many.

A resilience layer (:mod:`~repro.campaign.resilience`,
:mod:`~repro.campaign.chaosinfra`) extends that contract to a hostile
substrate: transient worker failures retry with backoff, respawn
storms degrade the pool gracefully down to serial execution, cached
results are checksum-verified (corrupt entries quarantined and
recomputed), and a scripted infrastructure fault injector plus a
differential harness prove a faulted sweep converges to the
byte-identical outcome fingerprint of a fault-free one.
"""

from .cache import (
    ResultCache,
    code_fingerprint,
    job_key,
    result_checksum,
    set_process_fingerprint,
)
from .chaosinfra import InfraFaultPlan, sabotage_cache, scripted_plan
from .engine import (
    CampaignResult,
    DEFAULT_JOB_TIMEOUT,
    FAILURE_STATUSES,
    JobOutcome,
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    auto_parallel,
    plan_chunks,
    run_campaign,
)
from .resilience import (
    DegradationLadder,
    NO_RETRY,
    RetryPolicy,
    TRANSIENT_STATUSES,
    run_resilience_differential,
)
from .figures import (
    BACKEND_REPORT_PATH,
    FIGURES,
    assemble_figure,
    backend_compare_report,
    figure_jobs,
    run_figure_cell,
    write_backend_compare_report,
)
from .jobs import (
    Job,
    chaos_jobs,
    execute_job,
    job_cost,
    litmus_jobs,
    app_synth_jobs,
    probe_jobs,
    synth_jobs,
    verify_jobs,
)

__all__ = [
    "BACKEND_REPORT_PATH",
    "CampaignResult",
    "DEFAULT_JOB_TIMEOUT",
    "DegradationLadder",
    "FAILURE_STATUSES",
    "FIGURES",
    "InfraFaultPlan",
    "Job",
    "JobOutcome",
    "NO_RETRY",
    "ResultCache",
    "RetryPolicy",
    "STATUS_CRASH",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "TRANSIENT_STATUSES",
    "assemble_figure",
    "auto_parallel",
    "backend_compare_report",
    "chaos_jobs",
    "code_fingerprint",
    "execute_job",
    "figure_jobs",
    "job_cost",
    "job_key",
    "litmus_jobs",
    "plan_chunks",
    "app_synth_jobs",
    "probe_jobs",
    "result_checksum",
    "run_campaign",
    "run_figure_cell",
    "run_resilience_differential",
    "sabotage_cache",
    "scripted_plan",
    "set_process_fingerprint",
    "synth_jobs",
    "verify_jobs",
    "write_backend_compare_report",
]
