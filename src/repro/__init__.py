"""Fence Scoping (S-Fence) reproduction.

Reproduction of "Fence Scoping" (Lin, Nagarajan & Gupta, SC'14): scoped
fences -- fences whose ordering effect is confined to a class or
variable-set scope -- evaluated on an approximate cycle-level multicore
out-of-order simulator with a genuinely relaxed functional memory
model.

Public API tour:

* :mod:`repro.sim` -- simulator configuration (Table III) and stats.
* :mod:`repro.isa` -- the guest instruction set incl. ``class-fence``,
  ``set-fence``, ``fs_start``/``fs_end``.
* :mod:`repro.core` -- the S-Fence hardware model (FSB, FSS/FSS',
  mapping table, scope tracker, Figure 5 abstract semantics).
* :mod:`repro.runtime` -- the "language/compiler" layer: shared
  variables, scoped classes, workload harnesses.
* :mod:`repro.algorithms` -- Dekker, Chase-Lev, Michael-Scott, Harris
  (+ Treiber and Lamport extensions) as guest programs.
* :mod:`repro.apps` -- pst, ptc, barnes, radiosity and the delay-set
  analysis.
* :mod:`repro.litmus` -- memory-model litmus tests.
* :mod:`repro.analysis` -- experiment drivers and reporting.
"""

from .isa import Fence, FenceKind, WAIT_BOTH, WAIT_LOADS, WAIT_STORES
from .isa.program import Program
from .runtime.lang import Env, ScopedStructure, scoped_method
from .sim.config import MemoryModel, SimConfig, TABLE_III
from .sim.simulator import SimResult, Simulator, run_program

__version__ = "1.0.0"

__all__ = [
    "Env",
    "Fence",
    "FenceKind",
    "MemoryModel",
    "Program",
    "ScopedStructure",
    "SimConfig",
    "SimResult",
    "Simulator",
    "TABLE_III",
    "WAIT_BOTH",
    "WAIT_LOADS",
    "WAIT_STORES",
    "run_program",
    "scoped_method",
    "__version__",
]
