"""Branch outcome models for guest programs.

Guest ``Branch`` ops carry their misprediction flag; most workloads
stamp it with one of these models so that misprediction rates are
seeded and reproducible.  The timing cost lives in the core
(``branch_latency`` to resolve, ``mispredict_penalty`` on a flush, FSS
restored from FSS' -- Section IV-A3).
"""

from __future__ import annotations

import random

from ..isa.instructions import Branch


class BranchModel:
    """Base: always predicted correctly."""

    def branch(self, taken: bool = True) -> Branch:
        return Branch(taken=taken, mispredict=False)


class RandomBranchModel(BranchModel):
    """Mispredicts with a fixed probability (seeded)."""

    def __init__(self, mispredict_rate: float, seed: int = 0) -> None:
        if not 0.0 <= mispredict_rate <= 1.0:
            raise ValueError("mispredict_rate must be in [0, 1]")
        self.mispredict_rate = mispredict_rate
        self._rng = random.Random(seed)

    def branch(self, taken: bool = True) -> Branch:
        return Branch(taken=taken, mispredict=self._rng.random() < self.mispredict_rate)


class AlternatingBranchModel(BranchModel):
    """Deterministic mispredict every ``period``-th branch (unit tests)."""

    def __init__(self, period: int) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self._count = 0

    def branch(self, taken: bool = True) -> Branch:
        self._count += 1
        return Branch(taken=taken, mispredict=self._count % self.period == 0)
