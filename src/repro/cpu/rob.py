"""Reorder buffer model.

Instructions enter at dispatch in program order, complete out of order
and retire from the head in program order (Section IV-A2).  Each entry
carries the fence scope bits (FSB) mask of its memory op, which is how
the scope tracker's counters and the per-entry bits stay consistent.
"""

from __future__ import annotations

from collections import deque

# entry kinds (ints for speed in the cycle loop)
K_LOAD = 0
K_STORE = 1
K_CAS = 2
K_FENCE = 3
K_COMPUTE = 4
K_BRANCH = 5
K_FS = 6
K_PROBE = 7

KIND_NAMES = {
    K_LOAD: "load",
    K_STORE: "store",
    K_CAS: "cas",
    K_FENCE: "fence",
    K_COMPUTE: "compute",
    K_BRANCH: "branch",
    K_FS: "fs",
    K_PROBE: "probe",
}


class RobEntry:
    """One ROB slot."""

    __slots__ = (
        "kind",
        "done",
        "fsb_mask",
        "addr",
        "value",
        "waits",
        "scope_entry",
        "dispatch_cycle",
        "in_sb",
        "seq",
    )

    def __init__(self, kind: int, dispatch_cycle: int) -> None:
        self.kind = kind
        self.done = False
        self.fsb_mask = 0
        self.addr = -1
        self.value = 0
        self.waits = 0
        self.scope_entry = 0
        self.dispatch_cycle = dispatch_cycle
        self.in_sb = False  # store already placed in the SB at dispatch (RMO)
        self.seq = 0        # memory-op sequence number (program order)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "wait"
        return f"<RobEntry {KIND_NAMES[self.kind]} {state} @{self.dispatch_cycle}>"


class ReorderBuffer:
    """Bounded in-order window of :class:`RobEntry`."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("ROB capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque[RobEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, entry: RobEntry) -> None:
        if self.full:
            raise OverflowError("ROB full")
        self._entries.append(entry)

    def head(self) -> RobEntry:
        return self._entries[0]

    def pop_head(self) -> RobEntry:
        return self._entries.popleft()

    def entries(self):
        """Oldest-to-youngest iteration (tests/diagnostics)."""
        return iter(self._entries)
