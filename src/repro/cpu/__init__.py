"""CPU microarchitecture: ROB, store buffer, branches, the OoO core."""

from .branch import AlternatingBranchModel, BranchModel, RandomBranchModel
from .core import Core
from .rob import ReorderBuffer, RobEntry
from .store_buffer import SBEntry, StoreBuffer

__all__ = [
    "AlternatingBranchModel",
    "BranchModel",
    "Core",
    "RandomBranchModel",
    "ReorderBuffer",
    "RobEntry",
    "SBEntry",
    "StoreBuffer",
]
