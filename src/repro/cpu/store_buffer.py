"""Store buffer model.

Retired stores wait here until the cache accepts them; only at drain
completion does the store become globally visible (the functional
memory applies the value) and do its FSB bits clear.  The drain policy
depends on the memory model:

* SC/TSO: strict FIFO -- only the oldest entry may issue.
* PSO/RMO: any entry may issue as long as no older entry targets the
  same address (per-location coherence order), which makes store-store
  reordering architecturally visible.

One store issues to the cache per cycle (single write port); several
may be in flight concurrently (non-blocking cache).
"""

from __future__ import annotations

# entry states
S_WAITING = 0
S_INFLIGHT = 1


class SBEntry:
    """One buffered store.

    ``held`` marks a store that entered the buffer behind a
    speculatively issued fence (in-window speculation): it may not
    drain -- become globally visible -- until that fence completes.
    Stores are never speculative in real hardware either; only loads
    are issued past a speculative fence.
    """

    __slots__ = ("addr", "fsb_mask", "state", "done_cycle", "seq", "held", "op_seq")

    def __init__(self, addr: int, fsb_mask: int, seq: int, held: bool = False) -> None:
        self.addr = addr
        self.fsb_mask = fsb_mask
        self.state = S_WAITING
        self.done_cycle = -1
        self.seq = seq
        self.held = held
        self.op_seq = 0  # program-order memory sequence number of the store

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        st = "waiting" if self.state == S_WAITING else f"inflight->{self.done_cycle}"
        return f"<SBEntry a={self.addr} {st}>"


class StoreBuffer:
    """Bounded buffer of retired, undrained stores."""

    __slots__ = ("capacity", "fifo_drain", "_entries", "_next_seq")

    def __init__(self, capacity: int, fifo_drain: bool) -> None:
        if capacity < 1:
            raise ValueError("store buffer capacity must be >= 1")
        self.capacity = capacity
        self.fifo_drain = fifo_drain
        self._entries: list[SBEntry] = []
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def insert(self, addr: int, fsb_mask: int, held: bool = False) -> SBEntry:
        if self.full:
            raise OverflowError("store buffer full")
        entry = SBEntry(addr, fsb_mask, self._next_seq, held=held)
        self._next_seq += 1
        self._entries.append(entry)
        return entry

    def next_issuable(self) -> SBEntry | None:
        """The entry the write port should issue this cycle, if any."""
        if not self._entries:
            return None
        if self.fifo_drain:
            head = self._entries[0]
            return head if head.state == S_WAITING and not head.held else None
        seen_addrs: set[int] = set()
        for entry in self._entries:  # program order
            if entry.state == S_WAITING and not entry.held and entry.addr not in seen_addrs:
                return entry
            seen_addrs.add(entry.addr)
        return None

    def mark_inflight(self, entry: SBEntry, done_cycle: int) -> None:
        entry.state = S_INFLIGHT
        entry.done_cycle = done_cycle

    def next_completion_cycle(self) -> int | None:
        """Earliest drain-completion cycle among in-flight entries.

        Part of the event-scheduler wake-up contract (architecture §9):
        the store buffer reports the exact cycle its next drain becomes
        globally visible, so the scheduler never has to poll it.
        Returns None when nothing is in flight.
        """
        best = None
        for entry in self._entries:
            if entry.state == S_INFLIGHT and (best is None or entry.done_cycle < best):
                best = entry.done_cycle
        return best

    def remove(self, entry: SBEntry) -> None:
        self._entries.remove(entry)

    def entries(self):
        """Program-order iteration (oldest first)."""
        return iter(self._entries)

    def inflight(self):
        return (e for e in self._entries if e.state == S_INFLIGHT)
