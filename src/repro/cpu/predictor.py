"""Two-bit saturating-counter branch predictor.

With ``SimConfig.use_branch_predictor`` the core predicts each guest
``Branch`` from a per-core pattern table indexed by the branch's ``pc``
and derives mispredictions from the comparison with the architectural
outcome (``Branch.taken``), instead of trusting a guest-stamped
``mispredict`` flag.  Classic loop branches then behave classically:
mispredict on first encounter and at loop exit, predict correctly in
the steady state -- which is exactly the traffic the shadow fence scope
stack (FSS') exists to survive.
"""

from __future__ import annotations

# counter states: 0,1 -> predict not taken; 2,3 -> predict taken
_WEAK_TAKEN = 2


class TwoBitPredictor:
    """Pattern history table of 2-bit saturating counters."""

    __slots__ = ("entries", "_table", "predictions", "mispredictions", "force")

    def __init__(self, entries: int = 512) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self._table = [_WEAK_TAKEN] * entries  # weakly taken, like most PHTs
        self.predictions = 0
        self.mispredictions = 0
        # optional fault-injection hook (chaos harness): called as
        # ``force(pc, taken, predicted) -> bool``; True forces this
        # branch to be reported as mispredicted.  Forcing a mispredict
        # is always architecturally safe -- the core squashes and pays
        # the penalty -- which is exactly the FSS' restore path the
        # chaos harness wants to hammer.
        self.force = None

    def _index(self, pc: int) -> int:
        return pc & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._table[self._index(pc)] >= _WEAK_TAKEN

    def update(self, pc: int, taken: bool) -> bool:
        """Record the architectural outcome; returns True on mispredict."""
        idx = self._index(pc)
        predicted = self._table[idx] >= _WEAK_TAKEN
        if taken and self._table[idx] < 3:
            self._table[idx] += 1
        elif not taken and self._table[idx] > 0:
            self._table[idx] -= 1
        self.predictions += 1
        mispredicted = predicted != taken
        if not mispredicted and self.force is not None and self.force(pc, taken, predicted):
            mispredicted = True
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
