"""Approximate out-of-order core with S-Fence support.

One :class:`Core` per simulated hardware thread.  Each cycle
(:meth:`tick`) the core, in order:

1. applies completions scheduled for this cycle (loads, CAS, branches,
   store-buffer drains),
2. retires up to ``retire_width`` instructions from the ROB head
   (stores move into the store buffer; speculatively issued fences
   re-check their scope condition here),
3. issues at most one buffered store to the cache write port,
4. dispatches up to ``dispatch_width`` new ops pulled from the guest
   generator, applying their *functional* effect immediately and their
   timing effects through the ROB/store-buffer/cache models.

Fence handling is the paper's mechanism:

* without in-window speculation a fence blocks dispatch until the
  scope tracker says its scope's FSB column is clear
  (``ScopeTracker.fence_ready``);
* with in-window speculation (``SimConfig.in_window_speculation``) the
  fence dispatches immediately and re-checks the store-buffer FSB
  column when it reaches the ROB head (Section VI-B).

Cycles in which instruction issue is blocked by a fence (or by the
implicit fence of an atomic CAS) are counted as *fence stall cycles*,
the quantity Figures 13-16 break out.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Generator

from ..core.scope_tracker import ScopeTracker
from ..isa.instructions import (
    Branch,
    Cas,
    Compute,
    Fence,
    FenceKind,
    FsEnd,
    FsStart,
    Load,
    Op,
    Probe,
    Store,
    WAIT_BOTH,
    WAIT_LOADS,
    WAIT_STORES,
)
from ..mem.backend import CoherenceBackend
from ..mem.memory import SharedMemory
from ..sim.config import MemoryModel, SimConfig
from ..sim.stats import CoreStats
from .rob import (
    K_BRANCH,
    K_CAS,
    K_COMPUTE,
    K_FENCE,
    K_FS,
    K_LOAD,
    K_PROBE,
    K_STORE,
    KIND_NAMES,
    ReorderBuffer,
    RobEntry,
)
from .store_buffer import StoreBuffer

# event payload kinds in the completion heap
_EV_ROB = 0
_EV_SB = 1


class Core:
    """One out-of-order core executing one guest thread."""

    def __init__(
        self,
        core_id: int,
        config: SimConfig,
        memory: SharedMemory,
        hierarchy: CoherenceBackend,
        stats: CoreStats,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.memory = memory
        self.hierarchy = hierarchy
        self.stats = stats
        self.rob = ReorderBuffer(config.rob_size)
        self.sb = StoreBuffer(config.sb_size, config.memory_model.sb_fifo)
        # hot-loop aliases: both containers are stable objects, and the
        # per-tick property/len indirection on them is measurable in the
        # cycle loop (tick runs hundreds of thousands of times per run)
        self._rob_q = self.rob._entries
        self._sb_q = self.sb._entries
        self.tracker = ScopeTracker(config)
        if config.use_branch_predictor:
            from .predictor import TwoBitPredictor

            self.predictor = TwoBitPredictor(config.predictor_entries)
        else:
            self.predictor = None
        self._events: list[tuple[int, int, int, object]] = []
        self._ev_seq = 0
        self._gen: Generator[Op, object, object] | None = None
        self._gen_done = True
        self._pending_op: Op | None = None
        self._last_result: object = None
        self._blocking_entry: RobEntry | None = None  # CAS serialization
        self._blocked_until = 0  # compute chains / mispredict penalty
        # in-window speculation: [fence entry, held stores, countdown of
        # older in-scope memory ops the fence still waits for]
        self._spec_fence_groups: list[list] = []
        self._mem_seq = 0  # program-order sequence numbers for memory ops
        self._next_fence_id = 0  # ids for speculatively issued fences
        self._outstanding_misses = 0  # loads missing L1, bounded by MSHRs
        self._sb_hold_until = 0  # chaos: store-drain throttle release cycle
        # stall counters a no-progress tick bumps, as per-cycle deltas;
        # account_idle replays them for every cycle the event scheduler
        # skips so fast-path stats stay byte-identical to the dense loop
        self._idle_deltas = (0, 0, 0, 0)  # fence, rob_full, sb_full, mshr
        self.finished = True
        self.finish_cycle = 0
        self.stall_reason: str | None = None
        self.tracer = None  # optional TraceCollector
        # chaos-harness hooks: ``chaos`` injects faults (forced branch
        # mispredictions, store-drain throttling), ``monitor`` receives
        # the ordering-event stream the invariant checker consumes.
        # Both default to None and cost one attribute test when unused.
        self.chaos = None
        self.monitor = None
        self.retire_log: deque | None = (
            deque(maxlen=config.retire_log_len) if config.retire_log_len > 0 else None
        )

    # ------------------------------------------------------------------ set-up
    def bind(self, gen: Generator[Op, object, object] | None) -> None:
        """Attach the guest thread generator (None leaves the core idle)."""
        self._gen = gen
        self._gen_done = gen is None
        self.finished = gen is None

    # ------------------------------------------------------------------ events
    def _schedule(self, cycle: int, kind: int, payload: object) -> None:
        self._ev_seq += 1
        heapq.heappush(self._events, (cycle, self._ev_seq, kind, payload))

    def next_event_cycle(self, now: int) -> int | None:
        """Exact earliest future cycle at which this core can change state.

        This is the wake-up contract the event-driven scheduler relies
        on (architecture §9): after a tick at ``now`` made no progress,
        ticking this core at any cycle strictly before the returned
        value makes no progress and mutates no architectural state, so
        the scheduler may skip straight to it (replaying per-cycle stall
        accounting via :meth:`account_idle`).  ``None`` means no event
        will ever wake this core again -- it can only progress via a
        future event, so a ``None`` from every running core is a proven
        deadlock.

        Wake-up sources, each reporting an exact cycle:

        * the completion event heap (ROB completions scheduled from the
          coherence backend's :meth:`~repro.mem.backend.CoherenceBackend.
          completion_cycle`, branch resolutions, compute latencies, and
          store-buffer drains),
        * the store buffer's own earliest in-flight drain
          (:meth:`~repro.cpu.store_buffer.StoreBuffer.next_completion_cycle`),
        * the dependent-chain release cycle (``_blocked_until``), and
        * the chaos write-port throttle release (``_sb_hold_until``).
        """
        best = None
        if self._events:
            c = self._events[0][0]
            if c > now:
                best = c
        c = self.sb.next_completion_cycle()
        if c is not None and c > now and (best is None or c < best):
            best = c
        c = self._blocked_until
        if c > now and (best is None or c < best):
            best = c
        c = self._sb_hold_until
        if c > now and self._sb_q and (best is None or c < best):
            best = c
        return best

    # ------------------------------------------------------------------- tick
    def tick(self, cycle: int) -> bool:
        """Advance one cycle; returns True if any state changed."""
        if self.finished:
            return False
        stats = self.stats
        pre_fence = stats.fence_stall_cycles
        pre_rob_full = stats.rob_full_stalls
        pre_sb_full = stats.sb_full_stalls
        pre_mshr = stats.mshr_stalls
        self.stall_reason = None
        progress = False

        if self._events:
            progress |= self._apply_completions(cycle)
        if self._spec_fence_groups:
            progress |= self._try_complete_open_fences(cycle)
        if self._rob_q:
            progress |= self._retire(cycle)
        if self._sb_q:
            progress |= self._issue_store(cycle)
        progress |= self._dispatch(cycle)

        stats.rob_occupancy_sum += len(self._rob_q)
        stats.rob_occupancy_samples += 1

        if self._gen_done and self._pending_op is None and not self._rob_q and not self._sb_q:
            self.finished = True
            self.finish_cycle = cycle
            stats.cycles = cycle
            return True
        if not progress:
            # A no-progress tick is a pure function of (state, cycle),
            # and state cannot change before the next wake-up event, so
            # the counters it bumped repeat identically every skipped
            # cycle; record them for account_idle's exact replay.
            self._idle_deltas = (
                stats.fence_stall_cycles - pre_fence,
                stats.rob_full_stalls - pre_rob_full,
                stats.sb_full_stalls - pre_sb_full,
                stats.mshr_stalls - pre_mshr,
            )
        return progress

    def account_idle(self, delta: int) -> None:
        """Attribute ``delta`` skipped cycles to this core's stats.

        Replays, once per skipped cycle, exactly the increments the last
        no-progress tick made -- ROB-occupancy sampling plus whichever
        stall counters that tick bumped -- so a warped run's statistics
        are byte-identical to the dense per-cycle loop's.
        """
        if self.finished or delta <= 0:
            return
        stats = self.stats
        stats.rob_occupancy_sum += len(self._rob_q) * delta
        stats.rob_occupancy_samples += delta
        d_fence, d_rob_full, d_sb_full, d_mshr = self._idle_deltas
        if d_fence:
            stats.fence_stall_cycles += d_fence * delta
        if d_rob_full:
            stats.rob_full_stalls += d_rob_full * delta
        if d_sb_full:
            stats.sb_full_stalls += d_sb_full * delta
        if d_mshr:
            stats.mshr_stalls += d_mshr * delta

    # ------------------------------------------------------------- completions
    def _apply_completions(self, cycle: int) -> bool:
        progress = False
        events = self._events
        heappop = heapq.heappop
        while events and events[0][0] <= cycle:
            _, _, kind, payload = heappop(events)
            progress = True
            if kind == _EV_ROB:
                entry: RobEntry = payload  # type: ignore[assignment]
                entry.done = True
                if entry.kind == K_LOAD:
                    self.tracker.complete_mem(entry.fsb_mask, is_load=True)
                    self._fence_countdown(entry.fsb_mask, True, entry.seq)
                    if entry.value:
                        self._outstanding_misses -= 1
                    if self.monitor is not None:
                        self.monitor.on_mem_complete(self.core_id, cycle, entry.seq, True)
                elif entry.kind == K_CAS:
                    self.tracker.complete_mem(entry.fsb_mask, is_load=False)
                    self._fence_countdown(entry.fsb_mask, False, entry.seq)
                    if self.monitor is not None:
                        self.monitor.on_mem_complete(self.core_id, cycle, entry.seq, False)
                elif entry.kind == K_BRANCH:
                    if entry.value:  # mispredict flag stored in .value
                        self.tracker.squash()
                        if self.monitor is not None:
                            self.monitor.on_squash(
                                self.core_id, cycle,
                                self.tracker.fss.items(),
                                self.tracker.overflow_count,
                            )
                    else:
                        self.tracker.confirm_speculation()
            else:  # _EV_SB: store drain completed -> becomes globally visible
                sbe = payload
                self.memory.drain_store(self.core_id, sbe.addr)
                self.tracker.complete_mem(sbe.fsb_mask, is_load=False, in_sb=True)
                self._fence_countdown(sbe.fsb_mask, False, sbe.op_seq)
                self.sb.remove(sbe)
                if self.monitor is not None:
                    self.monitor.on_store_drain(self.core_id, cycle, sbe.op_seq)
        return progress

    # ------------------------------------------------------------------ retire
    def _retire(self, cycle: int) -> bool:
        progress = False
        rob_q = self._rob_q
        retire_log = self.retire_log
        for _ in range(self.config.retire_width):
            if not rob_q:
                break
            head = rob_q[0]
            if not head.done:
                # incomplete load/CAS, or a speculatively issued fence
                # still waiting for its countdown (completed in
                # _try_complete_open_fences)
                break
            if head.kind == K_STORE and not head.in_sb:
                if self.sb.full:
                    self.stats.sb_full_stalls += 1
                    break
                sbe = self.sb.insert(head.addr, head.fsb_mask)
                sbe.op_seq = head.seq
                self.tracker.store_retired(head.fsb_mask)
            rob_q.popleft()
            if retire_log is not None:
                retire_log.append((cycle, KIND_NAMES[head.kind], head.addr))
            progress = True
        return progress

    def _fence_countdown(self, mask: int, is_load: bool, seq: int) -> None:
        """A memory op completed: notify the open speculative fences.

        Each open fence counts down the *older* in-scope ops it still
        waits for; hitting zero is exactly its ordering condition
        (checked in :meth:`_try_complete_open_fences`).
        """
        for grp in self._spec_fence_groups:
            fe = grp[0]
            if fe.done or seq > fe.seq:
                continue
            if is_load:
                if not (fe.waits & WAIT_LOADS):
                    continue
            elif not (fe.waits & WAIT_STORES):
                continue
            if fe.scope_entry != ScopeTracker.GLOBAL_SCOPE and not (
                (mask >> fe.scope_entry) & 1
            ):
                continue
            grp[2] -= 1

    def _try_complete_open_fences(self, cycle: int) -> bool:
        """Complete speculative fences whose condition already holds.

        A fence completes when its countdown of older in-scope memory
        ops reaches zero.  Fences complete strictly oldest-first:
        releasing a younger fence's stores while an older fence is
        still open would leak visibility past the older fence.
        """
        progress = False
        while self._spec_fence_groups and self._spec_fence_groups[0][2] <= 0:
            grp = self._spec_fence_groups[0]
            fe = grp[0]
            fe.done = True
            if self.monitor is not None:
                self.monitor.on_fence_complete(self.core_id, cycle, grp[3])
            self._coherence_sync(cycle, grp[4], fe.waits)
            self._release_fence_holds(fe)
            progress = True
        return progress

    def _release_fence_holds(self, fence_entry: RobEntry) -> None:
        """A speculative fence completed: its held stores may now drain."""
        for i, grp in enumerate(self._spec_fence_groups):
            if grp[0] is fence_entry:
                for sbe in grp[1]:
                    sbe.held = False
                    self.tracker.store_retired(sbe.fsb_mask)
                del self._spec_fence_groups[i]
                return

    def _coherence_sync(self, cycle: int, kind: str, waits: int) -> None:
        """A fence's ordering condition held: run the backend sync point.

        Invalidation-based backends (mesi) return ``None`` -- sync
        points are architecturally free there, and this path must stay
        byte-identical to the pre-multi-backend core.  SiSd returns a
        :class:`~repro.mem.backend.SyncOutcome`: its self-downgrade
        latency blocks younger dispatch (an LLC write-through round
        trip) and the sync is reported to the monitor stream so the
        ordering checker can audit backend behaviour.
        """
        sync = self.hierarchy.fence(self.core_id, kind, waits, self.stats)
        if sync is None:
            return
        if sync.latency > 0:
            self._blocked_until = max(self._blocked_until, cycle + sync.latency)
        if self.monitor is not None:
            self.monitor.on_coherence_sync(
                self.core_id, cycle, sync.kind, sync.invalidated, sync.downgraded
            )

    def _youngest_open_fence(self) -> RobEntry | None:
        """The most recent speculatively issued, not-yet-complete fence.

        Completed fences are removed from the group list in ``_retire``,
        so every listed fence is still open.
        """
        if self._spec_fence_groups:
            return self._spec_fence_groups[-1][0]
        return None

    # ------------------------------------------------------------- store drain
    def _issue_store(self, cycle: int) -> bool:
        if cycle < self._sb_hold_until:
            return False  # chaos: write port throttled
        entry = self.sb.next_issuable()
        if entry is None:
            return False
        if self.chaos is not None:
            # chaos: delay the drain (the store stays buffered, which is
            # always safe -- visibility is only ever postponed)
            hold = self.chaos.drain_delay(self.core_id, cycle)
            if hold > 0:
                self._sb_hold_until = cycle + hold
                return False
        done = self.hierarchy.completion_cycle(
            cycle, self.core_id, entry.addr, True, self.stats
        )
        self.sb.mark_inflight(entry, done)
        self._schedule(done, _EV_SB, entry)
        return True

    # ---------------------------------------------------------------- dispatch
    def _next_op(self) -> Op | None:
        if self._pending_op is not None:
            return self._pending_op
        if self._gen_done:
            return None
        try:
            op = self._gen.send(self._last_result)
        except StopIteration:
            self._gen_done = True
            return None
        self._last_result = None
        if not isinstance(op, Op):
            raise TypeError(f"guest thread yielded {op!r}, expected an Op")
        self._pending_op = op
        return op

    def _dispatch(self, cycle: int) -> bool:
        cfg = self.config
        stats = self.stats
        rob_q = self._rob_q
        rob_cap = self.rob.capacity
        dispatched = 0
        for _ in range(cfg.dispatch_width):
            if cycle < self._blocked_until:
                break
            if self._blocking_entry is not None:
                if self._blocking_entry.done:
                    self._blocking_entry = None
                else:
                    if dispatched == 0:
                        stats.fence_stall_cycles += 1
                        self.stall_reason = "fence"
                    break
            op = self._pending_op
            if op is None:
                op = self._next_op()
                if op is None:
                    break
            if len(rob_q) >= rob_cap:
                if dispatched == 0:
                    stats.rob_full_stalls += 1
                    head = rob_q[0]
                    if head.kind == K_FENCE and not head.done:
                        # issue is blocked because a waiting fence clogs the ROB
                        stats.fence_stall_cycles += 1
                        self.stall_reason = "fence"
                    else:
                        self.stall_reason = "rob_full"
                break
            if not self._dispatch_one(op, cycle, dispatched):
                break
            self._pending_op = None
            dispatched += 1
            stats.instructions += 1
        return dispatched > 0

    def _dispatch_one(self, op: Op, cycle: int, dispatched: int) -> bool:
        """Try to dispatch one op; returns False if it must stall."""
        cfg = self.config
        stats = self.stats
        tracker = self.tracker
        cls = type(op)

        if cls is Load:
            if not self._sc_ready(dispatched):
                return False
            forwarded = self.memory.has_pending(self.core_id, op.addr)
            # a load that will miss the L1 needs a free MSHR
            needs_mshr = (
                cfg.mshrs > 0
                and not forwarded
                and not self.hierarchy.resident_in_l1(self.core_id, op.addr)
            )
            if needs_mshr and self._outstanding_misses >= cfg.mshrs:
                if dispatched == 0:
                    stats.mshr_stalls += 1
                    self.stall_reason = "mshr"
                return False
            if self.tracer is not None:
                self.tracer.record(self.core_id, "load", op.addr)
            entry = RobEntry(K_LOAD, cycle)
            entry.addr = op.addr
            self._mem_seq += 1
            entry.seq = self._mem_seq
            entry.fsb_mask = tracker.dispatch_mem(is_load=True, flagged=op.flagged)
            if self.monitor is not None:
                self.monitor.on_mem_dispatch(
                    self.core_id, cycle, entry.seq, "load", op.addr,
                    entry.fsb_mask, op.flagged,
                )
            value = self.memory.read(self.core_id, op.addr)
            if forwarded:
                latency = 1  # store-to-load forwarding from own buffer
                stats.sb_forwards += 1
            else:
                latency = self.hierarchy.access(self.core_id, op.addr, False, stats)
            if needs_mshr:
                entry.value = 1  # occupies an MSHR until completion
                self._outstanding_misses += 1
            self._schedule(cycle + latency, _EV_ROB, entry)
            self.rob.push(entry)
            if op.serialize:
                # address dependency: nothing younger can dispatch until
                # the pointer value is architecturally available
                self._blocked_until = max(self._blocked_until, cycle + latency)
            self._last_result = value
            stats.loads += 1
            return True

        if cls is Store:
            if not self._sc_ready(dispatched):
                return False
            at_dispatch = cfg.memory_model.sb_at_dispatch
            if at_dispatch and self.sb.full:
                # senior store queue full: issue stalls until a drain frees it
                if dispatched == 0:
                    stats.sb_full_stalls += 1
                    self.stall_reason = "sb_full"
                return False
            if self.tracer is not None:
                self.tracer.record(self.core_id, "store", op.addr)
            entry = RobEntry(K_STORE, cycle)
            entry.addr = op.addr
            self._mem_seq += 1
            entry.seq = self._mem_seq
            entry.fsb_mask = tracker.dispatch_mem(is_load=False, flagged=op.flagged)
            entry.done = True  # value and address are ready at dispatch
            if self.monitor is not None:
                self.monitor.on_mem_dispatch(
                    self.core_id, cycle, entry.seq, "store", op.addr,
                    entry.fsb_mask, op.flagged,
                )
            self.memory.buffer_store(self.core_id, op.addr, op.value)
            if at_dispatch:
                # RMO: the store enters the store buffer immediately (the
                # paper's "as soon as the value and destination address
                # are available"); its ROB slot retires as a no-op.  A
                # store behind a speculatively issued fence is *held*:
                # it may not become globally visible until the fence
                # completes (stores are never speculative).
                entry.in_sb = True
                open_fence = self._youngest_open_fence()
                if open_fence is not None:
                    sbe = self.sb.insert(op.addr, entry.fsb_mask, held=True)
                    sbe.op_seq = entry.seq
                    self._spec_fence_groups[-1][1].append(sbe)
                else:
                    sbe = self.sb.insert(op.addr, entry.fsb_mask)
                    sbe.op_seq = entry.seq
                    tracker.store_retired(entry.fsb_mask)
            self.rob.push(entry)
            stats.stores += 1
            return True

        if cls is Fence:
            waits = op.waits
            if cfg.in_window_speculation and op.speculable:
                entry = RobEntry(K_FENCE, cycle)
                entry.waits = waits
                entry.scope_entry = tracker.resolve_fence_scope(op.kind)
                entry.done = False
                entry.seq = self._mem_seq  # ops <= seq are older
                self.rob.push(entry)
                countdown = tracker.pending_for_scope(entry.scope_entry, waits)
                self._next_fence_id += 1
                self._spec_fence_groups.append(
                    [entry, [], countdown, self._next_fence_id, op.kind.value]
                )
                if self.monitor is not None:
                    self.monitor.on_fence_open(
                        self.core_id, cycle, self._next_fence_id,
                        op.kind.value, waits, entry.scope_entry, entry.seq,
                    )
                stats.fences += 1
                if tracker.would_stall_as_global(waits):
                    stats.sfence_early_issues += 1
                return True
            if not tracker.fence_ready(op.kind, waits):
                if dispatched == 0:
                    stats.fence_stall_cycles += 1
                    self.stall_reason = "fence"
                return False
            if tracker.would_stall_as_global(waits):
                stats.sfence_early_issues += 1
            if self.monitor is not None:
                self.monitor.on_fence_pass(
                    self.core_id, cycle, op.kind.value, waits,
                    tracker.resolve_fence_scope(op.kind), self._mem_seq,
                )
            self._coherence_sync(cycle, op.kind.value, waits)
            entry = RobEntry(K_FENCE, cycle)
            entry.done = True
            self.rob.push(entry)
            stats.fences += 1
            return True

        if cls is Cas:
            # The paper's substrate is MIPS-like: LL/SC atomics carry no
            # implicit ordering, only per-location coherence order.  With
            # cas_fence=True the CAS behaves like an x86 locked RMW: it
            # waits for all prior memory ops and blocks younger issue.
            if cfg.cas_fence and not tracker.fence_ready(FenceKind.GLOBAL, WAIT_BOTH):
                if dispatched == 0:
                    stats.fence_stall_cycles += 1
                    self.stall_reason = "fence"
                return False
            # a CAS publishes globally at dispatch, so it may never pass a
            # speculatively issued fence: wait until all open fences retire
            if self._youngest_open_fence() is not None:
                if dispatched == 0:
                    stats.fence_stall_cycles += 1
                    self.stall_reason = "fence"
                return False
            # never reorder a CAS with an own buffered store to the same
            # address (per-location order is never relaxed)
            if self.memory.has_pending(self.core_id, op.addr):
                if dispatched == 0:
                    stats.fence_stall_cycles += 1
                    self.stall_reason = "fence"
                return False
            if not self._sc_ready(dispatched):
                return False
            if self.tracer is not None:
                self.tracer.record(self.core_id, "cas", op.addr)
            entry = RobEntry(K_CAS, cycle)
            entry.addr = op.addr
            self._mem_seq += 1
            entry.seq = self._mem_seq
            entry.fsb_mask = tracker.dispatch_mem(is_load=False, flagged=op.flagged)
            if self.monitor is not None:
                self.monitor.on_mem_dispatch(
                    self.core_id, cycle, entry.seq, "cas", op.addr,
                    entry.fsb_mask, op.flagged,
                )
            success = self.memory.cas(self.core_id, op.addr, op.expected, op.new)
            done = self.hierarchy.completion_cycle(
                cycle, self.core_id, op.addr, True, stats
            )
            self._schedule(done, _EV_ROB, entry)
            self.rob.push(entry)
            if cfg.cas_fence:
                self._blocking_entry = entry  # later ops wait for the atomic
                # an x86-style locked RMW is a full sync point for the
                # coherence backend too (free under mesi)
                self._coherence_sync(cycle, FenceKind.GLOBAL.value, WAIT_BOTH)
            self._last_result = success
            stats.cas_ops += 1
            return True

        if cls is Compute:
            entry = RobEntry(K_COMPUTE, cycle)
            latency = max(1, op.cycles)
            self._schedule(cycle + latency, _EV_ROB, entry)
            self.rob.push(entry)
            # model a dependent ALU chain: issue resumes when it finishes
            self._blocked_until = cycle + latency
            return True

        if cls is FsStart:
            placed = tracker.fs_start(op.cid)
            if self.monitor is not None:
                self.monitor.on_scope(self.core_id, cycle, "start", op.cid, placed)
            entry = RobEntry(K_FS, cycle)
            entry.done = True
            self.rob.push(entry)
            return True

        if cls is FsEnd:
            placed = tracker.fs_end(op.cid)
            if self.monitor is not None:
                self.monitor.on_scope(self.core_id, cycle, "end", op.cid, placed)
            entry = RobEntry(K_FS, cycle)
            entry.done = True
            self.rob.push(entry)
            return True

        if cls is Branch:
            entry = RobEntry(K_BRANCH, cycle)
            if self.predictor is not None:
                mispredict = self.predictor.update(op.pc, op.taken)
            else:
                mispredict = op.mispredict
            if self.chaos is not None and not mispredict:
                # chaos: forcing a mispredict squashes speculative scope
                # state and restores FSS from FSS' -- always safe, only
                # slower (the guest stream itself is never wrong-path)
                mispredict = self.chaos.force_mispredict(self.core_id, op.pc)
            entry.value = 1 if mispredict else 0
            resolve = cycle + cfg.branch_latency
            tracker.begin_speculation()
            self._schedule(resolve, _EV_ROB, entry)
            self.rob.push(entry)
            if mispredict:
                stats.branch_mispredicts += 1
                self._blocked_until = resolve + cfg.mispredict_penalty
            return True

        if cls is Probe:
            if op.fn is not None:
                op.fn(cycle)
            entry = RobEntry(K_PROBE, cycle)
            entry.done = True
            self.rob.push(entry)
            return True

        raise TypeError(f"unknown guest op {op!r}")

    def _sc_ready(self, dispatched: int) -> bool:
        """Under SC every memory op waits for all prior memory ops."""
        if self.config.memory_model is not MemoryModel.SC:
            return True
        if self.tracker.fsb.all_clear(True, True):
            return True
        if dispatched == 0:
            self.stall_reason = "rob_full"  # implicit-ordering stall, not a fence
        return False
