"""Approximate out-of-order core with S-Fence support.

One :class:`Core` per simulated hardware thread.  Each cycle
(:meth:`tick`) the core, in order:

1. applies completions scheduled for this cycle (loads, CAS, branches,
   store-buffer drains),
2. retires up to ``retire_width`` instructions from the ROB head
   (stores move into the store buffer; speculatively issued fences
   re-check their scope condition here),
3. issues at most one buffered store to the cache write port,
4. dispatches up to ``dispatch_width`` new ops pulled from the guest
   generator, applying their *functional* effect immediately and their
   timing effects through the ROB/store-buffer/cache models.

Fence handling is the paper's mechanism:

* without in-window speculation a fence blocks dispatch until the
  scope tracker says its scope's FSB column is clear
  (``ScopeTracker.fence_ready``);
* with in-window speculation (``SimConfig.in_window_speculation``) the
  fence dispatches immediately and re-checks the store-buffer FSB
  column when it reaches the ROB head (Section VI-B).

Cycles in which instruction issue is blocked by a fence (or by the
implicit fence of an atomic CAS) are counted as *fence stall cycles*,
the quantity Figures 13-16 break out.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Generator

from ..core.scope_tracker import ScopeTracker
from ..isa.instructions import (
    Branch,
    Cas,
    Compute,
    Fence,
    FenceKind,
    FsEnd,
    FsStart,
    Load,
    Op,
    Probe,
    Store,
    WAIT_BOTH,
    WAIT_LOADS,
    WAIT_STORES,
)
from ..mem.backend import CoherenceBackend
from ..mem.memory import SharedMemory
from ..sim.config import MemoryModel, SimConfig
from ..sim.stats import CoreStats
from ..sim.tracecomp import BlockHint, CompiledBlock
from .rob import (
    K_BRANCH,
    K_CAS,
    K_COMPUTE,
    K_FENCE,
    K_FS,
    K_LOAD,
    K_PROBE,
    K_STORE,
    KIND_NAMES,
    ReorderBuffer,
    RobEntry,
)
from .store_buffer import SBEntry, StoreBuffer

_heappush = heapq.heappush
_heappop = heapq.heappop

# event payload kinds in the completion heap
_EV_ROB = 0
_EV_SB = 1


class Core:
    """One out-of-order core executing one guest thread."""

    def __init__(
        self,
        core_id: int,
        config: SimConfig,
        memory: SharedMemory,
        hierarchy: CoherenceBackend,
        stats: CoreStats,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.memory = memory
        self.hierarchy = hierarchy
        self.stats = stats
        self.rob = ReorderBuffer(config.rob_size)
        self.sb = StoreBuffer(config.sb_size, config.memory_model.sb_fifo)
        # hot-loop aliases: both containers are stable objects, and the
        # per-tick property/len indirection on them is measurable in the
        # cycle loop (tick runs hundreds of thousands of times per run)
        self._rob_q = self.rob._entries
        self._sb_q = self.sb._entries
        self.tracker = ScopeTracker(config)
        if config.use_branch_predictor:
            from .predictor import TwoBitPredictor

            self.predictor = TwoBitPredictor(config.predictor_entries)
        else:
            self.predictor = None
        self._events: list[tuple[int, int, int, object]] = []
        self._ev_seq = 0
        self._gen: Generator[Op, object, object] | None = None
        self._gen_done = True
        self._pending_op: Op | None = None
        self._last_result: object = None
        self._blocking_entry: RobEntry | None = None  # CAS serialization
        self._blocked_until = 0  # compute chains / mispredict penalty
        # in-window speculation: [fence entry, held stores, countdown of
        # older in-scope memory ops the fence still waits for]
        self._spec_fence_groups: list[list] = []
        self._mem_seq = 0  # program-order sequence numbers for memory ops
        self._next_fence_id = 0  # ids for speculatively issued fences
        self._outstanding_misses = 0  # loads missing L1, bounded by MSHRs
        self._sb_hold_until = 0  # chaos: store-drain throttle release cycle
        # stall counters a no-progress tick bumps, as per-cycle deltas;
        # account_idle replays them for every cycle the event scheduler
        # skips so fast-path stats stay byte-identical to the dense loop
        self._idle_deltas = (0, 0, 0, 0)  # fence, rob_full, sb_full, mshr
        # trace-compiled execution state (sim.tracecomp): upcoming units
        # (CompiledBlocks and cut ops) for static programs / expanded
        # BlockHints, plus the admission cursor into the active block
        self._pending_units: deque = deque()
        self._active_block: CompiledBlock | None = None
        self._block_pos = 0
        # interpreter-side BlockHint expansion (dense/event engines):
        # queued hint ops, and whether the last gen pull came through a
        # hint (its results are discarded by the hint contract)
        self._hint_ops: deque = deque()
        self._hint_active = False
        # dispatch-loop constants hoisted once (the config never changes
        # after construction): the compiled engine's per-tick paths read
        # these instead of chasing config attributes on every call
        self._width = config.dispatch_width
        self._rob_cap = config.rob_size
        self._mshrs = config.mshrs
        self._sb_cap = config.sb_size
        self._scoped = config.scoped_fences
        self._at_dispatch = config.memory_model.sb_at_dispatch
        # every stable object the compiled dispatch loop touches, bundled
        # so one attribute fetch + tuple unpack replaces ~20 per call.
        # All members are fixed for the core's lifetime: containers are
        # only ever mutated in place (attach_units refills the deque),
        # and bound methods pin their receivers.
        fsb = self.tracker.fsb
        self._hot = (
            stats,
            self._rob_q,
            self._sb_q,
            self._events,
            self._pending_units,
            self.tracker,
            fsb,
            fsb.pending_loads,
            fsb.pending_stores,
            fsb.sb_pending_stores,
            memory.pending_map(core_id),
            memory.read,
            hierarchy,
            hierarchy.resident_in_l1,
            hierarchy.access,
            hierarchy.load_timed,
            self.sb,
        )
        self._in_window = config.in_window_speculation
        self._fast = True  # recomputed at bind(), once hooks are settled
        # probe-skip hint (compiled engine): after a progress tick, the
        # earliest cycle the next tick could possibly progress at, when
        # every tick before it is provably a zero-delta blocked probe;
        # 0 means "tick me at cycle+1 as usual"
        self._skip_until = 0
        self.finished = True
        self.finish_cycle = 0
        self.stall_reason: str | None = None
        self.tracer = None  # optional TraceCollector
        # chaos-harness hooks: ``chaos`` injects faults (forced branch
        # mispredictions, store-drain throttling), ``monitor`` receives
        # the ordering-event stream the invariant checker consumes.
        # Both default to None and cost one attribute test when unused.
        self.chaos = None
        self.monitor = None
        self.retire_log: deque | None = (
            deque(maxlen=config.retire_log_len) if config.retire_log_len > 0 else None
        )

    # ------------------------------------------------------------------ set-up
    def bind(self, gen: Generator[Op, object, object] | None) -> None:
        """Attach the guest thread generator (None leaves the core idle)."""
        self._gen = gen
        self._gen_done = gen is None
        self.finished = gen is None
        # instrumentation hooks and the memory model are settled before
        # a run starts, so the fused-lane eligibility test is a constant
        # per run rather than three attribute reads per dispatch call
        self._fast = (self.monitor is None and self.tracer is None
                      and self.config.memory_model is not MemoryModel.SC)

    def attach_units(self, units) -> None:
        """Compiled mode: feed a precompiled unit stream instead of the
        generator (static programs only -- see tracecomp.compile_program).

        Must follow :meth:`bind`; the generator is dropped because the
        unit stream *is* the thread's op sequence.  The deque is refilled
        in place -- it is aliased from the ``_hot`` dispatch bundle.
        """
        self._pending_units.clear()
        self._pending_units.extend(units)
        self._gen = None
        self._gen_done = True

    # ------------------------------------------------------------------ events
    def _schedule(self, cycle: int, kind: int, payload: object) -> None:
        self._ev_seq += 1
        heapq.heappush(self._events, (cycle, self._ev_seq, kind, payload))

    def next_event_cycle(self, now: int) -> int | None:
        """Exact earliest future cycle at which this core can change state.

        This is the wake-up contract the event-driven scheduler relies
        on (architecture §9): after a tick at ``now`` made no progress,
        ticking this core at any cycle strictly before the returned
        value makes no progress and mutates no architectural state, so
        the scheduler may skip straight to it (replaying per-cycle stall
        accounting via :meth:`account_idle`).  ``None`` means no event
        will ever wake this core again -- it can only progress via a
        future event, so a ``None`` from every running core is a proven
        deadlock.

        Wake-up sources, each reporting an exact cycle:

        * the completion event heap (ROB completions scheduled from the
          coherence backend's :meth:`~repro.mem.backend.CoherenceBackend.
          completion_cycle`, branch resolutions, compute latencies, and
          store-buffer drains),
        * the store buffer's own earliest in-flight drain
          (:meth:`~repro.cpu.store_buffer.StoreBuffer.next_completion_cycle`),
        * the dependent-chain release cycle (``_blocked_until``), and
        * the chaos write-port throttle release (``_sb_hold_until``).
        """
        best = None
        if self._events:
            c = self._events[0][0]
            if c > now:
                best = c
        c = self.sb.next_completion_cycle()
        if c is not None and c > now and (best is None or c < best):
            best = c
        c = self._blocked_until
        if c > now and (best is None or c < best):
            best = c
        c = self._sb_hold_until
        if c > now and self._sb_q and (best is None or c < best):
            best = c
        return best

    # ------------------------------------------------------------------- tick
    def tick(self, cycle: int) -> bool:
        """Advance one cycle; returns True if any state changed."""
        if self.finished:
            return False
        stats = self.stats
        pre_fence = stats.fence_stall_cycles
        pre_rob_full = stats.rob_full_stalls
        pre_sb_full = stats.sb_full_stalls
        pre_mshr = stats.mshr_stalls
        self.stall_reason = None
        progress = False

        if self._events:
            progress |= self._apply_completions(cycle)
        if self._spec_fence_groups:
            progress |= self._try_complete_open_fences(cycle)
        if self._rob_q:
            progress |= self._retire(cycle)
        if self._sb_q:
            progress |= self._issue_store(cycle)
        progress |= self._dispatch(cycle)

        stats.rob_occupancy_sum += len(self._rob_q)
        stats.rob_occupancy_samples += 1

        if self._gen_done and self._pending_op is None and not self._rob_q and not self._sb_q:
            self.finished = True
            self.finish_cycle = cycle
            stats.cycles = cycle
            return True
        if not progress:
            # A no-progress tick is a pure function of (state, cycle),
            # and state cannot change before the next wake-up event, so
            # the counters it bumped repeat identically every skipped
            # cycle; record them for account_idle's exact replay.
            self._idle_deltas = (
                stats.fence_stall_cycles - pre_fence,
                stats.rob_full_stalls - pre_rob_full,
                stats.sb_full_stalls - pre_sb_full,
                stats.mshr_stalls - pre_mshr,
            )
        return progress

    def account_idle(self, delta: int) -> None:
        """Attribute ``delta`` skipped cycles to this core's stats.

        Replays, once per skipped cycle, exactly the increments the last
        no-progress tick made -- ROB-occupancy sampling plus whichever
        stall counters that tick bumped -- so a warped run's statistics
        are byte-identical to the dense per-cycle loop's.
        """
        if self.finished or delta <= 0:
            return
        stats = self.stats
        stats.rob_occupancy_sum += len(self._rob_q) * delta
        stats.rob_occupancy_samples += delta
        d_fence, d_rob_full, d_sb_full, d_mshr = self._idle_deltas
        if d_fence:
            stats.fence_stall_cycles += d_fence * delta
        if d_rob_full:
            stats.rob_full_stalls += d_rob_full * delta
        if d_sb_full:
            stats.sb_full_stalls += d_sb_full * delta
        if d_mshr:
            stats.mshr_stalls += d_mshr * delta

    # ------------------------------------------------------------- completions
    def _apply_completions(self, cycle: int) -> bool:
        progress = False
        events = self._events
        heappop = heapq.heappop
        while events and events[0][0] <= cycle:
            _, _, kind, payload = heappop(events)
            progress = True
            if kind == _EV_ROB:
                entry: RobEntry = payload  # type: ignore[assignment]
                entry.done = True
                if entry.kind == K_LOAD:
                    self.tracker.complete_mem(entry.fsb_mask, is_load=True)
                    self._fence_countdown(entry.fsb_mask, True, entry.seq)
                    if entry.value:
                        self._outstanding_misses -= 1
                    if self.monitor is not None:
                        self.monitor.on_mem_complete(self.core_id, cycle, entry.seq, True)
                elif entry.kind == K_CAS:
                    self.tracker.complete_mem(entry.fsb_mask, is_load=False)
                    self._fence_countdown(entry.fsb_mask, False, entry.seq)
                    if self.monitor is not None:
                        self.monitor.on_mem_complete(self.core_id, cycle, entry.seq, False)
                elif entry.kind == K_BRANCH:
                    if entry.value:  # mispredict flag stored in .value
                        self.tracker.squash()
                        if self.monitor is not None:
                            self.monitor.on_squash(
                                self.core_id, cycle,
                                self.tracker.fss.items(),
                                self.tracker.overflow_count,
                            )
                    else:
                        self.tracker.confirm_speculation()
            else:  # _EV_SB: store drain completed -> becomes globally visible
                sbe = payload
                self.memory.drain_store(self.core_id, sbe.addr)
                self.tracker.complete_mem(sbe.fsb_mask, is_load=False, in_sb=True)
                self._fence_countdown(sbe.fsb_mask, False, sbe.op_seq)
                self.sb.remove(sbe)
                if self.monitor is not None:
                    self.monitor.on_store_drain(self.core_id, cycle, sbe.op_seq)
        return progress

    # ------------------------------------------------------------------ retire
    def _retire(self, cycle: int) -> bool:
        progress = False
        rob_q = self._rob_q
        retire_log = self.retire_log
        for _ in range(self.config.retire_width):
            if not rob_q:
                break
            head = rob_q[0]
            if not head.done:
                # incomplete load/CAS, or a speculatively issued fence
                # still waiting for its countdown (completed in
                # _try_complete_open_fences)
                break
            if head.kind == K_STORE and not head.in_sb:
                if self.sb.full:
                    self.stats.sb_full_stalls += 1
                    break
                sbe = self.sb.insert(head.addr, head.fsb_mask)
                sbe.op_seq = head.seq
                self.tracker.store_retired(head.fsb_mask)
            rob_q.popleft()
            if retire_log is not None:
                retire_log.append((cycle, KIND_NAMES[head.kind], head.addr))
            progress = True
        return progress

    def _fence_countdown(self, mask: int, is_load: bool, seq: int) -> None:
        """A memory op completed: notify the open speculative fences.

        Each open fence counts down the *older* in-scope ops it still
        waits for; hitting zero is exactly its ordering condition
        (checked in :meth:`_try_complete_open_fences`).
        """
        for grp in self._spec_fence_groups:
            fe = grp[0]
            if fe.done or seq > fe.seq:
                continue
            if is_load:
                if not (fe.waits & WAIT_LOADS):
                    continue
            elif not (fe.waits & WAIT_STORES):
                continue
            if fe.scope_entry != ScopeTracker.GLOBAL_SCOPE and not (
                (mask >> fe.scope_entry) & 1
            ):
                continue
            grp[2] -= 1

    def _try_complete_open_fences(self, cycle: int) -> bool:
        """Complete speculative fences whose condition already holds.

        A fence completes when its countdown of older in-scope memory
        ops reaches zero.  Fences complete strictly oldest-first:
        releasing a younger fence's stores while an older fence is
        still open would leak visibility past the older fence.
        """
        progress = False
        while self._spec_fence_groups and self._spec_fence_groups[0][2] <= 0:
            grp = self._spec_fence_groups[0]
            fe = grp[0]
            fe.done = True
            if self.monitor is not None:
                self.monitor.on_fence_complete(self.core_id, cycle, grp[3])
            self._coherence_sync(cycle, grp[4], fe.waits)
            self._release_fence_holds(fe)
            progress = True
        return progress

    def _release_fence_holds(self, fence_entry: RobEntry) -> None:
        """A speculative fence completed: its held stores may now drain."""
        for i, grp in enumerate(self._spec_fence_groups):
            if grp[0] is fence_entry:
                for sbe in grp[1]:
                    sbe.held = False
                    self.tracker.store_retired(sbe.fsb_mask)
                del self._spec_fence_groups[i]
                return

    def _coherence_sync(self, cycle: int, kind: str, waits: int) -> None:
        """A fence's ordering condition held: run the backend sync point.

        Invalidation-based backends (mesi) return ``None`` -- sync
        points are architecturally free there, and this path must stay
        byte-identical to the pre-multi-backend core.  SiSd returns a
        :class:`~repro.mem.backend.SyncOutcome`: its self-downgrade
        latency blocks younger dispatch (an LLC write-through round
        trip) and the sync is reported to the monitor stream so the
        ordering checker can audit backend behaviour.
        """
        sync = self.hierarchy.fence(self.core_id, kind, waits, self.stats)
        if sync is None:
            return
        if sync.latency > 0:
            self._blocked_until = max(self._blocked_until, cycle + sync.latency)
        if self.monitor is not None:
            self.monitor.on_coherence_sync(
                self.core_id, cycle, sync.kind, sync.invalidated, sync.downgraded
            )

    def _youngest_open_fence(self) -> RobEntry | None:
        """The most recent speculatively issued, not-yet-complete fence.

        Completed fences are removed from the group list in ``_retire``,
        so every listed fence is still open.
        """
        if self._spec_fence_groups:
            return self._spec_fence_groups[-1][0]
        return None

    # ------------------------------------------------------------- store drain
    def _issue_store(self, cycle: int) -> bool:
        if cycle < self._sb_hold_until:
            return False  # chaos: write port throttled
        entry = self.sb.next_issuable()
        if entry is None:
            return False
        if self.chaos is not None:
            # chaos: delay the drain (the store stays buffered, which is
            # always safe -- visibility is only ever postponed)
            hold = self.chaos.drain_delay(self.core_id, cycle)
            if hold > 0:
                self._sb_hold_until = cycle + hold
                return False
        done = self.hierarchy.completion_cycle(
            cycle, self.core_id, entry.addr, True, self.stats
        )
        self.sb.mark_inflight(entry, done)
        self._schedule(done, _EV_SB, entry)
        return True

    # ---------------------------------------------------------------- dispatch
    def _next_op(self) -> Op | None:
        if self._pending_op is not None:
            return self._pending_op
        hq = self._hint_ops
        if hq:
            op = hq.popleft()
            self._pending_op = op
            return op
        if self._gen_done:
            return None
        while True:
            if self._hint_active:
                # the hint contract: its ops' results are discarded
                self._last_result = None
                self._hint_active = False
            try:
                op = self._gen.send(self._last_result)
            except StopIteration:
                self._gen_done = True
                return None
            self._last_result = None
            if type(op) is BlockHint:
                if not op.ops:
                    continue
                self._hint_active = True
                hq.extend(op.ops)
                op = hq.popleft()
                self._pending_op = op
                return op
            if not isinstance(op, Op):
                raise TypeError(f"guest thread yielded {op!r}, expected an Op")
            self._pending_op = op
            return op

    def _dispatch(self, cycle: int) -> bool:
        cfg = self.config
        stats = self.stats
        rob_q = self._rob_q
        rob_cap = self.rob.capacity
        dispatched = 0
        for _ in range(cfg.dispatch_width):
            if cycle < self._blocked_until:
                break
            if self._blocking_entry is not None:
                if self._blocking_entry.done:
                    self._blocking_entry = None
                else:
                    if dispatched == 0:
                        stats.fence_stall_cycles += 1
                        self.stall_reason = "fence"
                    break
            op = self._pending_op
            if op is None:
                op = self._next_op()
                if op is None:
                    break
            if len(rob_q) >= rob_cap:
                if dispatched == 0:
                    stats.rob_full_stalls += 1
                    head = rob_q[0]
                    if head.kind == K_FENCE and not head.done:
                        # issue is blocked because a waiting fence clogs the ROB
                        stats.fence_stall_cycles += 1
                        self.stall_reason = "fence"
                    else:
                        self.stall_reason = "rob_full"
                break
            if not self._dispatch_one(op, cycle, dispatched):
                break
            self._pending_op = None
            dispatched += 1
            stats.instructions += 1
        return dispatched > 0

    def _dispatch_one(self, op: Op, cycle: int, dispatched: int) -> bool:
        """Try to dispatch one op; returns False if it must stall."""
        cfg = self.config
        stats = self.stats
        tracker = self.tracker
        cls = type(op)

        if cls is Load:
            if not self._sc_ready(dispatched):
                return False
            forwarded = self.memory.has_pending(self.core_id, op.addr)
            # a load that will miss the L1 needs a free MSHR
            needs_mshr = (
                cfg.mshrs > 0
                and not forwarded
                and not self.hierarchy.resident_in_l1(self.core_id, op.addr)
            )
            if needs_mshr and self._outstanding_misses >= cfg.mshrs:
                if dispatched == 0:
                    stats.mshr_stalls += 1
                    self.stall_reason = "mshr"
                return False
            if self.tracer is not None:
                self.tracer.record(self.core_id, "load", op.addr)
            entry = RobEntry(K_LOAD, cycle)
            entry.addr = op.addr
            self._mem_seq += 1
            entry.seq = self._mem_seq
            entry.fsb_mask = tracker.dispatch_mem(is_load=True, flagged=op.flagged)
            if self.monitor is not None:
                self.monitor.on_mem_dispatch(
                    self.core_id, cycle, entry.seq, "load", op.addr,
                    entry.fsb_mask, op.flagged,
                )
            value = self.memory.read(self.core_id, op.addr)
            if forwarded:
                latency = 1  # store-to-load forwarding from own buffer
                stats.sb_forwards += 1
            else:
                latency = self.hierarchy.access(self.core_id, op.addr, False, stats)
            if needs_mshr:
                entry.value = 1  # occupies an MSHR until completion
                self._outstanding_misses += 1
            self._schedule(cycle + latency, _EV_ROB, entry)
            self.rob.push(entry)
            if op.serialize:
                # address dependency: nothing younger can dispatch until
                # the pointer value is architecturally available
                self._blocked_until = max(self._blocked_until, cycle + latency)
            self._last_result = value
            stats.loads += 1
            return True

        if cls is Store:
            if not self._sc_ready(dispatched):
                return False
            at_dispatch = cfg.memory_model.sb_at_dispatch
            if at_dispatch and self.sb.full:
                # senior store queue full: issue stalls until a drain frees it
                if dispatched == 0:
                    stats.sb_full_stalls += 1
                    self.stall_reason = "sb_full"
                return False
            if self.tracer is not None:
                self.tracer.record(self.core_id, "store", op.addr)
            entry = RobEntry(K_STORE, cycle)
            entry.addr = op.addr
            self._mem_seq += 1
            entry.seq = self._mem_seq
            entry.fsb_mask = tracker.dispatch_mem(is_load=False, flagged=op.flagged)
            entry.done = True  # value and address are ready at dispatch
            if self.monitor is not None:
                self.monitor.on_mem_dispatch(
                    self.core_id, cycle, entry.seq, "store", op.addr,
                    entry.fsb_mask, op.flagged,
                )
            self.memory.buffer_store(self.core_id, op.addr, op.value)
            if at_dispatch:
                # RMO: the store enters the store buffer immediately (the
                # paper's "as soon as the value and destination address
                # are available"); its ROB slot retires as a no-op.  A
                # store behind a speculatively issued fence is *held*:
                # it may not become globally visible until the fence
                # completes (stores are never speculative).
                entry.in_sb = True
                open_fence = self._youngest_open_fence()
                if open_fence is not None:
                    sbe = self.sb.insert(op.addr, entry.fsb_mask, held=True)
                    sbe.op_seq = entry.seq
                    self._spec_fence_groups[-1][1].append(sbe)
                else:
                    sbe = self.sb.insert(op.addr, entry.fsb_mask)
                    sbe.op_seq = entry.seq
                    tracker.store_retired(entry.fsb_mask)
            self.rob.push(entry)
            stats.stores += 1
            return True

        if cls is Fence:
            waits = op.waits
            if cfg.in_window_speculation and op.speculable:
                entry = RobEntry(K_FENCE, cycle)
                entry.waits = waits
                entry.scope_entry = tracker.resolve_fence_scope(op.kind)
                entry.done = False
                entry.seq = self._mem_seq  # ops <= seq are older
                self.rob.push(entry)
                countdown = tracker.pending_for_scope(entry.scope_entry, waits)
                self._next_fence_id += 1
                self._spec_fence_groups.append(
                    [entry, [], countdown, self._next_fence_id, op.kind.value]
                )
                if self.monitor is not None:
                    self.monitor.on_fence_open(
                        self.core_id, cycle, self._next_fence_id,
                        op.kind.value, waits, entry.scope_entry, entry.seq,
                    )
                stats.fences += 1
                if tracker.would_stall_as_global(waits):
                    stats.sfence_early_issues += 1
                return True
            if not tracker.fence_ready(op.kind, waits):
                if dispatched == 0:
                    stats.fence_stall_cycles += 1
                    self.stall_reason = "fence"
                return False
            if tracker.would_stall_as_global(waits):
                stats.sfence_early_issues += 1
            if self.monitor is not None:
                self.monitor.on_fence_pass(
                    self.core_id, cycle, op.kind.value, waits,
                    tracker.resolve_fence_scope(op.kind), self._mem_seq,
                )
            self._coherence_sync(cycle, op.kind.value, waits)
            entry = RobEntry(K_FENCE, cycle)
            entry.done = True
            self.rob.push(entry)
            stats.fences += 1
            return True

        if cls is Cas:
            # The paper's substrate is MIPS-like: LL/SC atomics carry no
            # implicit ordering, only per-location coherence order.  With
            # cas_fence=True the CAS behaves like an x86 locked RMW: it
            # waits for all prior memory ops and blocks younger issue.
            if cfg.cas_fence and not tracker.fence_ready(FenceKind.GLOBAL, WAIT_BOTH):
                if dispatched == 0:
                    stats.fence_stall_cycles += 1
                    self.stall_reason = "fence"
                return False
            # a CAS publishes globally at dispatch, so it may never pass a
            # speculatively issued fence: wait until all open fences retire
            if self._youngest_open_fence() is not None:
                if dispatched == 0:
                    stats.fence_stall_cycles += 1
                    self.stall_reason = "fence"
                return False
            # never reorder a CAS with an own buffered store to the same
            # address (per-location order is never relaxed)
            if self.memory.has_pending(self.core_id, op.addr):
                if dispatched == 0:
                    stats.fence_stall_cycles += 1
                    self.stall_reason = "fence"
                return False
            if not self._sc_ready(dispatched):
                return False
            if self.tracer is not None:
                self.tracer.record(self.core_id, "cas", op.addr)
            entry = RobEntry(K_CAS, cycle)
            entry.addr = op.addr
            self._mem_seq += 1
            entry.seq = self._mem_seq
            entry.fsb_mask = tracker.dispatch_mem(is_load=False, flagged=op.flagged)
            if self.monitor is not None:
                self.monitor.on_mem_dispatch(
                    self.core_id, cycle, entry.seq, "cas", op.addr,
                    entry.fsb_mask, op.flagged,
                )
            success = self.memory.cas(self.core_id, op.addr, op.expected, op.new)
            done = self.hierarchy.completion_cycle(
                cycle, self.core_id, op.addr, True, stats
            )
            self._schedule(done, _EV_ROB, entry)
            self.rob.push(entry)
            if cfg.cas_fence:
                self._blocking_entry = entry  # later ops wait for the atomic
                # an x86-style locked RMW is a full sync point for the
                # coherence backend too (free under mesi)
                self._coherence_sync(cycle, FenceKind.GLOBAL.value, WAIT_BOTH)
            self._last_result = success
            stats.cas_ops += 1
            return True

        if cls is Compute:
            entry = RobEntry(K_COMPUTE, cycle)
            latency = max(1, op.cycles)
            self._schedule(cycle + latency, _EV_ROB, entry)
            self.rob.push(entry)
            # model a dependent ALU chain: issue resumes when it finishes
            self._blocked_until = cycle + latency
            return True

        if cls is FsStart:
            placed = tracker.fs_start(op.cid)
            if self.monitor is not None:
                self.monitor.on_scope(self.core_id, cycle, "start", op.cid, placed)
            entry = RobEntry(K_FS, cycle)
            entry.done = True
            self.rob.push(entry)
            return True

        if cls is FsEnd:
            placed = tracker.fs_end(op.cid)
            if self.monitor is not None:
                self.monitor.on_scope(self.core_id, cycle, "end", op.cid, placed)
            entry = RobEntry(K_FS, cycle)
            entry.done = True
            self.rob.push(entry)
            return True

        if cls is Branch:
            entry = RobEntry(K_BRANCH, cycle)
            if self.predictor is not None:
                mispredict = self.predictor.update(op.pc, op.taken)
            else:
                mispredict = op.mispredict
            if self.chaos is not None and not mispredict:
                # chaos: forcing a mispredict squashes speculative scope
                # state and restores FSS from FSS' -- always safe, only
                # slower (the guest stream itself is never wrong-path)
                mispredict = self.chaos.force_mispredict(self.core_id, op.pc)
            entry.value = 1 if mispredict else 0
            resolve = cycle + cfg.branch_latency
            tracker.begin_speculation()
            self._schedule(resolve, _EV_ROB, entry)
            self.rob.push(entry)
            if mispredict:
                stats.branch_mispredicts += 1
                self._blocked_until = resolve + cfg.mispredict_penalty
            return True

        if cls is Probe:
            if op.fn is not None:
                op.fn(cycle)
            entry = RobEntry(K_PROBE, cycle)
            entry.done = True
            self.rob.push(entry)
            return True

        raise TypeError(f"unknown guest op {op!r}")

    def _sc_ready(self, dispatched: int) -> bool:
        """Under SC every memory op waits for all prior memory ops."""
        if self.config.memory_model is not MemoryModel.SC:
            return True
        if self.tracker.fsb.all_clear(True, True):
            return True
        if dispatched == 0:
            self.stall_reason = "rob_full"  # implicit-ordering stall, not a fence
        return False

    # ------------------------------------------------------- compiled engine
    def tick_compiled(self, cycle: int) -> bool:
        """Advance one cycle under the trace-compiled engine.

        Observationally identical to :meth:`tick` -- same phase order,
        same stall attribution, same idle-delta recording; the
        differential suites (tests/test_fastpath_equivalence.py) police
        byte-identity.  The difference is mechanical: dispatch runs
        through :meth:`_dispatch_compiled`, which admits
        :class:`~repro.sim.tracecomp.CompiledBlock` runs as a batch and
        fuses the interpreter's hot per-op lanes (load/store/compute)
        with hoisted state.
        """
        if self.finished:
            return False
        stats = self.stats
        pre_fence = stats.fence_stall_cycles
        pre_rob_full = stats.rob_full_stalls
        pre_sb_full = stats.sb_full_stalls
        pre_mshr = stats.mshr_stalls
        self.stall_reason = None
        progress = False

        # Completions, inlined from _apply_completions: the maturity
        # test runs every tick, so the call is only paid when an event
        # is actually due; mask-0 load completions (unscoped straight-
        # line code) reduce complete_mem to one counter decrement, and
        # the open-fence countdown is skipped when no fence is open
        # (both are exact: the skipped calls are no-ops).
        events = self._events
        if events and events[0][0] <= cycle:
            progress = True
            mon = self.monitor
            tracker = self.tracker
            fsb = tracker.fsb
            groups = self._spec_fence_groups
            core_id = self.core_id
            while events and events[0][0] <= cycle:
                ev = _heappop(events)
                if ev[2] == _EV_ROB:
                    entry = ev[3]
                    entry.done = True
                    ekind = entry.kind
                    if ekind == K_LOAD:
                        mask = entry.fsb_mask
                        if mask:
                            tracker.complete_mem(mask, is_load=True)
                        else:
                            fsb.total_loads -= 1
                        if groups:
                            self._fence_countdown(mask, True, entry.seq)
                        if entry.value:
                            self._outstanding_misses -= 1
                        if mon is not None:
                            mon.on_mem_complete(core_id, cycle, entry.seq, True)
                    elif ekind == K_CAS:
                        tracker.complete_mem(entry.fsb_mask, is_load=False)
                        if groups:
                            self._fence_countdown(entry.fsb_mask, False, entry.seq)
                        if mon is not None:
                            mon.on_mem_complete(core_id, cycle, entry.seq, False)
                    elif ekind == K_BRANCH:
                        if entry.value:  # mispredict flag stored in .value
                            tracker.squash()
                            if mon is not None:
                                mon.on_squash(
                                    core_id, cycle,
                                    tracker.fss.items(),
                                    tracker.overflow_count,
                                )
                        else:
                            tracker.confirm_speculation()
                else:  # _EV_SB: store drain completed -> globally visible
                    sbe = ev[3]
                    self.memory.drain_store(core_id, sbe.addr)
                    tracker.complete_mem(sbe.fsb_mask, is_load=False, in_sb=True)
                    if groups:
                        self._fence_countdown(sbe.fsb_mask, False, sbe.op_seq)
                    self.sb.remove(sbe)
                    if mon is not None:
                        mon.on_store_drain(core_id, cycle, sbe.op_seq)
        if self._spec_fence_groups:
            progress |= self._try_complete_open_fences(cycle)
        rob_q = self._rob_q
        sb_q = self._sb_q
        # _retire only does work when the head entry is done (a store
        # head may also insert into the SB, but only once done): the
        # guard skips a call on the many ticks spent waiting on a head
        if rob_q and rob_q[0].done:
            progress |= self._retire(cycle)
        if sb_q:
            progress |= self._issue_store(cycle)
        if self._dispatch_compiled(cycle):
            progress = True

        stats.rob_occupancy_sum += len(rob_q)
        stats.rob_occupancy_samples += 1

        if (not rob_q and not sb_q and self._gen_done
                and self._pending_op is None
                and self._active_block is None
                and not self._pending_units and not self._hint_ops):
            self.finished = True
            self.finish_cycle = cycle
            stats.cycles = cycle
            return True
        if not progress:
            self._idle_deltas = (
                stats.fence_stall_cycles - pre_fence,
                stats.rob_full_stalls - pre_rob_full,
                stats.sb_full_stalls - pre_sb_full,
                stats.mshr_stalls - pre_mshr,
            )
            return False
        # Publish the probe-skip hint: the earliest cycle the next tick
        # could possibly progress at, when every tick before it is
        # provably a no-progress probe whose stall deltas are known now.
        # Preconditions shared by both cases -- nothing but dispatch can
        # act: no open fence groups, no retirable ROB head (the head
        # only becomes done via a completion event), and no issuable
        # buffered store (store-buffer state only changes via drain
        # events, which live in the same event heap; the chaos guard
        # keeps the write-port throttle out of the proof).
        self._skip_until = 0
        if (not self._spec_fence_groups
                and not (rob_q and rob_q[0].done)
                and (not sb_q
                     or (self.chaos is None
                         and self.sb.next_issuable() is None))):
            events = self._events
            if self._blocked_until > cycle + 1:
                # dependent-chain block: the blocked dispatch path
                # returns before any stall counter, so the skipped
                # probes are zero-delta
                e = self._blocked_until
                if events and events[0][0] < e:
                    e = events[0][0]
                if e > cycle + 1:
                    self._skip_until = e
                    self._idle_deltas = (0, 0, 0, 0)
            elif events:
                op = self._pending_op
                if (op is not None and op.__class__ is Fence
                        and not (self._in_window and op.speculable)
                        and len(rob_q) < self._rob_cap
                        and not self.tracker.fence_ready(op.kind, op.waits)):
                    # pending non-speculative fence waiting on its FSB
                    # column, which only completions/drains can clear:
                    # each skipped probe is exactly one fence stall
                    e = events[0][0]
                    if e > cycle + 1:
                        self._skip_until = e
                        self._idle_deltas = (1, 0, 0, 0)
        return True

    def _dispatch_compiled(self, cycle: int) -> bool:
        """Fused dispatch: block admission + inlined hot per-op lanes.

        A transcription of :meth:`_dispatch`/:meth:`_dispatch_one` for
        the three block-op classes with state hoisted into locals; every
        cut-point op, plus *all* ops when a monitor/tracer is installed
        or the memory model is SC, goes through the unabridged
        :meth:`_dispatch_one` (the instrumented paths emit events in
        op order, and SC adds a dispatch-gating check -- neither is
        worth duplicating here).  Capacity hazards (ROB, store buffer,
        MSHRs) and ``_blocked_until`` stop a block mid-run with its
        cursor saved; admission resumes at the exact op it stopped at.
        """
        # Probe early-outs: almost half of all ticks cannot dispatch at
        # all (dependent-chain block, CAS serialization, drained stream,
        # clogged ROB with the stalled op already pulled).  Resolve
        # those before the full lane-state hoist below -- their cost is
        # pure overhead the event engine pays too, so trimming it here
        # is where the compiled engine's speedup comes from.
        if cycle < self._blocked_until:
            return False
        be = self._blocking_entry
        if be is not None:
            if be.done:
                self._blocking_entry = None
            else:
                self.stats.fence_stall_cycles += 1
                self.stall_reason = "fence"
                return False
        op = self._pending_op
        units = self._pending_units
        if op is None and self._active_block is None and not units:
            if self._gen_done:
                return False
        elif op is not None and len(self._rob_q) >= self._rob_cap:
            stats = self.stats
            stats.rob_full_stalls += 1
            head = self._rob_q[0]
            if head.kind == K_FENCE and not head.done:
                stats.fence_stall_cycles += 1
                self.stall_reason = "fence"
            else:
                self.stall_reason = "rob_full"
            return False
        elif (op is not None and op.__class__ is Fence
                and not (self._in_window and op.speculable)
                and not self.tracker.fence_ready(op.kind, op.waits)):
            # non-speculative fence waiting on its FSB column: the by
            # far most common stall probe -- fence_ready is pure, and
            # the interpreter's not-ready path does exactly this
            self.stats.fence_stall_cycles += 1
            self.stall_reason = "fence"
            return False

        (stats, rob_q, sb_q, events, units, tracker, fsb, pend_loads,
         pend_stores, sb_pend_stores, pend_map, mem_read, hier, resident,
         access, load_timed, sb) = self._hot
        rob_cap = self._rob_cap
        width = self._width
        mshrs = self._mshrs
        scoped = self._scoped
        at_dispatch = self._at_dispatch
        sb_cap = self._sb_cap
        dispatched = 0
        fast = self._fast
        core_id = self.core_id
        # the FSB mask every in-block/straight-line memory op is stamped
        # with; constant until a cut op (scope delimiter / flagged op /
        # fence) dispatches through _dispatch_one, which invalidates it
        mask_entries: list | None = None
        base_mask = 0

        # _blocked_until and _blocking_entry were resolved by the probe
        # early-outs above; only _dispatch_one and the compute lanes can
        # re-arm them, and those paths re-check or break explicitly, so
        # the loop head does not re-read them every op
        while dispatched < width:
            blk = self._active_block
            if blk is not None:
                # ---------------- batch admission of a compiled block
                if mask_entries is None:
                    if scoped:
                        base_mask = (tracker._all_class_mask
                                     if tracker.overflow_count
                                     else tracker.fss.mask())
                    else:
                        base_mask = 0
                    mask_entries = []
                    m = base_mask
                    while m:
                        low = m & -m
                        mask_entries.append(low.bit_length() - 1)
                        m ^= low
                    mask_entries = tuple(mask_entries)
                kinds = blk.kinds
                addrs = blk.addrs
                values = blk.values
                n = blk.n
                pos = self._block_pos
                start = dispatched
                n_loads = 0
                n_stores = 0
                while pos < n and dispatched < width:
                    if len(rob_q) >= rob_cap:
                        if dispatched == 0:
                            stats.rob_full_stalls += 1
                            head = rob_q[0]
                            if head.kind == K_FENCE and not head.done:
                                stats.fence_stall_cycles += 1
                                self.stall_reason = "fence"
                            else:
                                self.stall_reason = "rob_full"
                        break
                    kind = kinds[pos]
                    addr = addrs[pos]
                    if kind == K_LOAD:
                        if not pend_map:
                            # batch-timing query: a forwarding-free run
                            # of loads resolves in one backend call,
                            # bounded so even an all-miss run cannot
                            # exhaust the MSHRs mid-batch
                            span = width - dispatched
                            room = rob_cap - len(rob_q)
                            if room < span:
                                span = room
                            if mshrs:
                                head_room = mshrs - self._outstanding_misses
                                if head_room < span:
                                    span = head_room
                            end = pos
                            stop = pos + span
                            if stop > n:
                                stop = n
                            while end < stop and kinds[end] == K_LOAD:
                                end += 1
                            if end > pos:
                                timings = hier.access_batch(
                                    core_id, addrs[pos:end], False, stats
                                )
                                seq = self._mem_seq
                                ev_seq = self._ev_seq
                                misses = 0
                                for was_res, latency in timings:
                                    entry = RobEntry(K_LOAD, cycle)
                                    entry.addr = addrs[pos]
                                    seq += 1
                                    entry.seq = seq
                                    entry.fsb_mask = base_mask
                                    if mshrs and not was_res:
                                        entry.value = 1
                                        misses += 1
                                    ev_seq += 1
                                    _heappush(events, (cycle + latency,
                                                       ev_seq, _EV_ROB, entry))
                                    rob_q.append(entry)
                                    pos += 1
                                self._mem_seq = seq
                                self._ev_seq = ev_seq
                                self._outstanding_misses += misses
                                fsb.total_loads += len(timings)
                                for e in mask_entries:
                                    pend_loads[e] += len(timings)
                                n_loads += len(timings)
                                dispatched += len(timings)
                                continue
                            # span == 0: MSHRs exhausted before this load
                            if not resident(core_id, addr):
                                if dispatched == 0:
                                    stats.mshr_stalls += 1
                                    self.stall_reason = "mshr"
                                break
                        # forwarding possible: per-op load lane
                        forwarded = addr in pend_map
                        if forwarded:
                            latency = 1
                            stats.sb_forwards += 1
                        elif mshrs == 0 or self._outstanding_misses < mshrs:
                            was_res, latency = load_timed(core_id, addr, stats)
                            entry_value = 1 if (mshrs and not was_res) else 0
                        else:
                            if not resident(core_id, addr):
                                if dispatched == 0:
                                    stats.mshr_stalls += 1
                                    self.stall_reason = "mshr"
                                break
                            latency = access(core_id, addr, False, stats)
                            entry_value = 0
                        entry = RobEntry(K_LOAD, cycle)
                        entry.addr = addr
                        self._mem_seq += 1
                        entry.seq = self._mem_seq
                        entry.fsb_mask = base_mask
                        fsb.total_loads += 1
                        for e in mask_entries:
                            pend_loads[e] += 1
                        if not forwarded and entry_value:
                            entry.value = 1
                            self._outstanding_misses += 1
                        self._ev_seq += 1
                        _heappush(events, (cycle + latency,
                                           self._ev_seq, _EV_ROB, entry))
                        rob_q.append(entry)
                        n_loads += 1
                    elif kind == K_STORE:
                        if at_dispatch and len(sb_q) >= sb_cap:
                            if dispatched == 0:
                                stats.sb_full_stalls += 1
                                self.stall_reason = "sb_full"
                            break
                        entry = RobEntry(K_STORE, cycle)
                        entry.addr = addr
                        self._mem_seq += 1
                        entry.seq = self._mem_seq
                        entry.fsb_mask = base_mask
                        entry.done = True
                        fsb.total_stores += 1
                        for e in mask_entries:
                            pend_stores[e] += 1
                        pend_map[addr].append(values[pos])
                        if at_dispatch:
                            entry.in_sb = True
                            sbe = SBEntry(addr, base_mask, sb._next_seq)
                            sb._next_seq += 1
                            sb_q.append(sbe)
                            sbe.op_seq = entry.seq
                            groups = self._spec_fence_groups
                            if groups:
                                sbe.held = True
                                groups[-1][1].append(sbe)
                            else:
                                fsb.sb_total_stores += 1
                                for e in mask_entries:
                                    sb_pend_stores[e] += 1
                        rob_q.append(entry)
                        n_stores += 1
                    else:  # K_COMPUTE: latency precompiled into the addr slot
                        latency = addr
                        entry = RobEntry(K_COMPUTE, cycle)
                        self._ev_seq += 1
                        _heappush(events, (cycle + latency,
                                           self._ev_seq, _EV_ROB, entry))
                        rob_q.append(entry)
                        self._blocked_until = cycle + latency
                        # latency >= 1 blocks the rest of this cycle
                        pos += 1
                        dispatched += 1
                        break
                    pos += 1
                    dispatched += 1
                if pos >= n:
                    self._active_block = None
                else:
                    self._block_pos = pos
                admitted = dispatched - start
                if admitted:
                    stats.instructions += admitted
                    if n_loads:
                        stats.loads += n_loads
                    if n_stores:
                        stats.stores += n_stores
                    if cycle < self._blocked_until:
                        break  # a mid-block compute closed the cycle
                    continue
                break

            op = self._pending_op
            if op is None:
                if units:
                    u = units.popleft()
                    if u.__class__ is CompiledBlock:
                        if fast:
                            self._active_block = u
                            self._block_pos = 0
                        else:
                            # instrumented run: stream the block's ops
                            # through the interpreter path instead
                            units.extendleft(reversed(u.ops))
                        continue
                    op = u
                    self._pending_op = op
                elif self._gen_done:
                    break
                else:
                    if self._hint_active:
                        # the hint contract: its results are discarded
                        self._last_result = None
                        self._hint_active = False
                    try:
                        op = self._gen.send(self._last_result)
                    except StopIteration:
                        self._gen_done = True
                        break
                    self._last_result = None
                    if op.__class__ is BlockHint:
                        if not op.ops:
                            continue
                        self._hint_active = True
                        if fast:
                            units.extend(op.units())
                        else:
                            units.extend(op.ops)
                        continue
                    if not isinstance(op, Op):
                        raise TypeError(
                            f"guest thread yielded {op!r}, expected an Op"
                        )
                    self._pending_op = op

            if len(rob_q) >= rob_cap:
                if dispatched == 0:
                    stats.rob_full_stalls += 1
                    head = rob_q[0]
                    if head.kind == K_FENCE and not head.done:
                        stats.fence_stall_cycles += 1
                        self.stall_reason = "fence"
                    else:
                        self.stall_reason = "rob_full"
                break

            cls = op.__class__
            if fast and cls is Load and not op.flagged and not op.serialize:
                # ------------------------------- fused plain-load lane
                if mask_entries is None:
                    if scoped:
                        base_mask = (tracker._all_class_mask
                                     if tracker.overflow_count
                                     else tracker.fss.mask())
                    else:
                        base_mask = 0
                    mask_entries = []
                    m = base_mask
                    while m:
                        low = m & -m
                        mask_entries.append(low.bit_length() - 1)
                        m ^= low
                    mask_entries = tuple(mask_entries)
                addr = op.addr
                fifo = pend_map.get(addr)
                if fifo is not None:
                    value = fifo[-1]
                    latency = 1
                    stats.sb_forwards += 1
                    needs_mshr = False
                elif mshrs == 0 or self._outstanding_misses < mshrs:
                    # MSHR headroom known: residency + latency in one
                    # fused cache walk (the value read is pure, so its
                    # position relative to the timed access is free)
                    was_res, latency = load_timed(core_id, addr, stats)
                    needs_mshr = bool(mshrs) and not was_res
                    value = mem_read(core_id, addr)
                else:
                    needs_mshr = not resident(core_id, addr)
                    if needs_mshr:
                        if dispatched == 0:
                            stats.mshr_stalls += 1
                            self.stall_reason = "mshr"
                        break
                    value = mem_read(core_id, addr)
                    latency = access(core_id, addr, False, stats)
                entry = RobEntry(K_LOAD, cycle)
                entry.addr = addr
                self._mem_seq += 1
                entry.seq = self._mem_seq
                entry.fsb_mask = base_mask
                fsb.total_loads += 1
                for e in mask_entries:
                    pend_loads[e] += 1
                if needs_mshr:
                    entry.value = 1
                    self._outstanding_misses += 1
                self._ev_seq += 1
                _heappush(events, (cycle + latency,
                                   self._ev_seq, _EV_ROB, entry))
                rob_q.append(entry)
                self._last_result = value
                stats.loads += 1
            elif fast and cls is Store and not op.flagged:
                # ------------------------------ fused plain-store lane
                if at_dispatch and len(sb_q) >= sb_cap:
                    if dispatched == 0:
                        stats.sb_full_stalls += 1
                        self.stall_reason = "sb_full"
                    break
                if mask_entries is None:
                    if scoped:
                        base_mask = (tracker._all_class_mask
                                     if tracker.overflow_count
                                     else tracker.fss.mask())
                    else:
                        base_mask = 0
                    mask_entries = []
                    m = base_mask
                    while m:
                        low = m & -m
                        mask_entries.append(low.bit_length() - 1)
                        m ^= low
                    mask_entries = tuple(mask_entries)
                addr = op.addr
                entry = RobEntry(K_STORE, cycle)
                entry.addr = addr
                self._mem_seq += 1
                entry.seq = self._mem_seq
                entry.fsb_mask = base_mask
                entry.done = True
                fsb.total_stores += 1
                for e in mask_entries:
                    pend_stores[e] += 1
                pend_map[addr].append(op.value)
                if at_dispatch:
                    entry.in_sb = True
                    sbe = SBEntry(addr, base_mask, sb._next_seq)
                    sb._next_seq += 1
                    sb_q.append(sbe)
                    sbe.op_seq = entry.seq
                    groups = self._spec_fence_groups
                    if groups:
                        sbe.held = True
                        groups[-1][1].append(sbe)
                    else:
                        fsb.sb_total_stores += 1
                        for e in mask_entries:
                            sb_pend_stores[e] += 1
                rob_q.append(entry)
                stats.stores += 1
            elif fast and cls is Compute:
                # ---------------------------------- fused compute lane
                latency = op.cycles
                if latency < 1:
                    latency = 1
                entry = RobEntry(K_COMPUTE, cycle)
                self._ev_seq += 1
                _heappush(events, (cycle + latency,
                                   self._ev_seq, _EV_ROB, entry))
                rob_q.append(entry)
                self._blocked_until = cycle + latency
                # latency >= 1: the next iteration is guaranteed blocked
                self._pending_op = None
                dispatched += 1
                stats.instructions += 1
                break
            else:
                # cut-point / instrumented op: unabridged interpreter
                if not self._dispatch_one(op, cycle, dispatched):
                    break
                # scope delimiters, fences and flagged ops may have
                # changed the FSS or opened a fence group
                mask_entries = None
                self._pending_op = None
                dispatched += 1
                stats.instructions += 1
                # _dispatch_one may have re-armed the dependent-chain
                # block (serialize load) or installed a blocking entry
                # (CAS, speculative fence): re-check before the next op
                if cycle < self._blocked_until:
                    break
                be = self._blocking_entry
                if be is not None:
                    if be.done:
                        self._blocking_entry = None
                    else:
                        break
                continue
            self._pending_op = None
            dispatched += 1
            stats.instructions += 1
        return dispatched > 0
