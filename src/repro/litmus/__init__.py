"""Litmus tests validating the relaxed functional memory model."""

from .dsl import (
    LitmusParseError,
    LitmusRun,
    LitmusTest,
    build_program,
    parse_litmus,
    run_litmus,
)
from .tests import (
    DEFAULT_OFFSETS,
    LitmusResult,
    coherence_rr,
    explore,
    iriw,
    load_buffering,
    message_passing,
    store_buffering,
)

__all__ = [
    "DEFAULT_OFFSETS",
    "LitmusParseError",
    "LitmusResult",
    "LitmusRun",
    "LitmusTest",
    "build_program",
    "coherence_rr",
    "explore",
    "iriw",
    "load_buffering",
    "message_passing",
    "parse_litmus",
    "run_litmus",
    "store_buffering",
]
