"""Litmus tests for the simulator's relaxed memory behaviour.

The functional model publishes stores at store-buffer drain time, so
classic relaxed outcomes are architecturally observable -- and fences
(traditional *or* scoped, when the racing accesses are in scope) forbid
them again.  The runner explores many timing offsets per test, since a
single deterministic schedule observes only one outcome.

Expectations under each memory model (documented deviations included):

=====  ==========================  ====  ====  ====  ====
test   relaxed outcome             SC    TSO   PSO   RMO
=====  ==========================  ====  ====  ====  ====
SB     r0 == r1 == 0               no    yes   yes   yes
MP     r_flag == 1, r_data == 0    no    no    yes   yes
LB     r0 == r1 == 1               no    no    no    no*
CoRR   new then old (same addr)    no    no    no    no
IRIW   readers disagree on order   no    no    no    no*
=====  ==========================  ====  ====  ====  ====

(*) RMO permits LB and IRIW on paper; the simulator binds load values
at dispatch in program order and publishes stores to a single shared
image, making it multi-copy atomic with ordered loads.  This is the
documented functional-first approximation (DESIGN.md) -- it matches
TSO/PSO for load behaviour and does not affect fence-stall timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..isa.instructions import Compute, Fence, FenceKind, Load, Op, Store, WAIT_BOTH, WAIT_STORES
from ..isa.program import Program
from ..runtime.lang import Env
from ..sim.config import MemoryModel, SimConfig


@dataclass
class LitmusResult:
    """All outcomes observed across the explored schedules."""

    name: str
    outcomes: set[tuple] = field(default_factory=set)

    def observed(self, outcome: tuple) -> bool:
        return outcome in self.outcomes


#: timing offsets (delay cycles per thread) explored for each litmus test
DEFAULT_OFFSETS = [0, 1, 2, 3, 5, 8, 13, 40, 100, 200, 320, 400]


def _run_once(
    build: Callable[[Env, int, int], tuple[Program, Callable[[], tuple]]],
    model: MemoryModel,
    d0: int,
    d1: int,
) -> tuple:
    env = Env(SimConfig(n_cores=4, memory_model=model))
    program, outcome = build(env, d0, d1)
    env.run(program)
    return outcome()


def explore(
    build: Callable[[Env, int, int], tuple[Program, Callable[[], tuple]]],
    name: str,
    model: MemoryModel = MemoryModel.RMO,
    offsets: list[int] | None = None,
) -> LitmusResult:
    """Run ``build`` across a grid of per-thread delays; collect outcomes."""
    result = LitmusResult(name)
    for d0 in offsets or DEFAULT_OFFSETS:
        for d1 in offsets or DEFAULT_OFFSETS:
            result.outcomes.add(_run_once(build, model, d0, d1))
    return result


def _delay(cycles: int):
    if cycles:
        yield Compute(cycles)


# ----------------------------------------------------------------------- tests
def store_buffering(fenced: bool = False, fence_kind: FenceKind = FenceKind.GLOBAL):
    """SB: both threads store then read the other's variable.

    Relaxed outcome (0, 0) requires both loads to bypass the peer's
    buffered store.  With ``fenced=True`` a full (or set-scope, both
    variables flagged) fence separates each store from the load.
    """

    def build(env: Env, d0: int, d1: int):
        flagged = fence_kind is FenceKind.SET
        x = env.var("x", flagged=flagged)
        y = env.var("y", flagged=flagged)
        out: dict[int, int] = {}

        def t0(tid: int):
            yield from _delay(d0)
            yield x.store(1)
            if fenced:
                yield Fence(fence_kind, WAIT_BOTH)
            out[0] = yield y.load()

        def t1(tid: int):
            yield from _delay(d1)
            yield y.store(1)
            if fenced:
                yield Fence(fence_kind, WAIT_BOTH)
            out[1] = yield x.load()

        return Program([t0, t1], name="SB"), lambda: (out[0], out[1])

    return build


def message_passing(fenced: bool = False, fence_kind: FenceKind = FenceKind.GLOBAL):
    """MP: writer stores data then flag; reader polls flag then reads data.

    Relaxed outcome (1, 0) needs the two stores to drain out of order
    (PSO/RMO); a store-store fence in the writer forbids it.
    """

    def build(env: Env, d0: int, d1: int):
        flagged = fence_kind is FenceKind.SET
        data = env.var("data", flagged=flagged)
        flag = env.var("flag", flagged=flagged)
        out: dict[str, int] = {}

        def writer(tid: int):
            yield from _delay(d0)
            yield data.store(42)
            if fenced:
                yield Fence(fence_kind, WAIT_STORES)
            yield flag.store(1)

        def reader(tid: int):
            yield from _delay(d1)
            for _ in range(400):
                f = yield flag.load()
                if f:
                    break
            else:
                out["flag"] = 0
                out["data"] = -1
                return
            out["flag"] = 1
            out["data"] = yield data.load()

        return Program([writer, reader], name="MP"), lambda: (
            out["flag"],
            out["data"],
        )

    return build


def load_buffering():
    """LB: each thread loads one variable then stores the other.

    The relaxed outcome (1, 1) is impossible in this simulator (loads
    bind at dispatch in program order) -- the documented deviation from
    pure RMO.
    """

    def build(env: Env, d0: int, d1: int):
        x = env.var("x")
        y = env.var("y")
        out: dict[int, int] = {}

        def t0(tid: int):
            yield from _delay(d0)
            out[0] = yield x.load()
            yield y.store(1)

        def t1(tid: int):
            yield from _delay(d1)
            out[1] = yield y.load()
            yield x.store(1)

        return Program([t0, t1], name="LB"), lambda: (out[0], out[1])

    return build


def coherence_rr():
    """CoRR: two reads of the same variable must not see new-then-old."""

    def build(env: Env, d0: int, d1: int):
        x = env.var("x")
        out: dict[int, int] = {}

        def writer(tid: int):
            yield from _delay(d0)
            yield x.store(1)

        def reader(tid: int):
            yield from _delay(d1)
            out[0] = yield x.load()
            out[1] = yield x.load()

        return Program([writer, reader], name="CoRR"), lambda: (out[0], out[1])

    return build


def iriw():
    """IRIW: two writers, two readers; readers must agree on store order
    (the simulator is multi-copy atomic by construction)."""

    def build(env: Env, d0: int, d1: int):
        x = env.var("x")
        y = env.var("y")
        out: dict[str, int] = {}

        def w0(tid: int):
            yield from _delay(d0)
            yield x.store(1)

        def w1(tid: int):
            yield from _delay(d1)
            yield y.store(1)

        def r0(tid: int):
            yield from _delay(d0 // 2)
            out["r0x"] = yield x.load()
            yield Fence(FenceKind.GLOBAL, WAIT_BOTH)
            out["r0y"] = yield y.load()

        def r1(tid: int):
            yield from _delay(d1 // 2)
            out["r1y"] = yield y.load()
            yield Fence(FenceKind.GLOBAL, WAIT_BOTH)
            out["r1x"] = yield x.load()

        return Program([w0, w1, r0, r1], name="IRIW"), lambda: (
            out["r0x"],
            out["r0y"],
            out["r1y"],
            out["r1x"],
        )

    return build
