"""A tiny textual litmus-test format.

Litmus tests read much better as columns than as Python closures::

    test = parse_litmus('''
        name SB
        flag x y                  # set-scope-flag these variables
        init x=0 y=0

        x = 1        | y = 1
        fence        | fence
        r0 = y       | r1 = x

        exists r0 == 0 and r1 == 0
    ''')
    result = run_litmus(test)     # explores timing offsets
    assert not result.condition_observed

Statement forms (one row per pipeline step, threads separated by ``|``):

* ``var = N``            -- store the literal N
* ``reg = var``          -- load into a register (any ``r*`` name)
* ``fence``              -- traditional full fence
* ``fence.set``          -- S-FENCE[set,...] (over the ``flag``ged vars)
* ``fence.ss`` / ``fence.ll`` -- store-store / load-load ordering only
  (suffixes compose: ``fence.set.ss``)
* ``delay``              -- the per-thread exploration delay slot
* (empty cell)           -- no-op for this thread in this row

Directives: ``name``, ``init var=N ...``, ``flag var ...``, and a final
``exists <python expression over registers>``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..isa.instructions import Compute, Fence, FenceKind, WAIT_BOTH, WAIT_LOADS, WAIT_STORES
from ..isa.program import Program
from ..runtime.lang import Env
from ..sim.config import MemoryModel, SimConfig
from .tests import DEFAULT_OFFSETS, LitmusResult

_STORE_RE = re.compile(r"^(\w+)\s*=\s*(-?\d+)$")
_LOAD_RE = re.compile(r"^(r\w*)\s*=\s*(\w+)$")
_FENCE_RE = re.compile(r"^fence((?:\.\w+)*)$")


@dataclass
class LitmusTest:
    """A parsed litmus test."""

    name: str
    threads: list[list[str]]          # statements per thread
    init: dict[str, int] = field(default_factory=dict)
    flagged: set[str] = field(default_factory=set)
    condition: str | None = None      # python expression over registers

    @property
    def n_threads(self) -> int:
        return len(self.threads)


class LitmusParseError(ValueError):
    pass


def parse_litmus(text: str) -> LitmusTest:
    """Parse the textual format into a :class:`LitmusTest`."""
    name = "litmus"
    init: dict[str, int] = {}
    flagged: set[str] = set()
    condition: str | None = None
    rows: list[list[str]] = []

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("name "):
            name = line[5:].strip()
        elif line.startswith("init "):
            for assign in line[5:].split():
                var, _, value = assign.partition("=")
                if not value:
                    raise LitmusParseError(f"bad init clause {assign!r}")
                init[var.strip()] = int(value)
        elif line.startswith("flag "):
            flagged.update(line[5:].split())
        elif line.startswith("exists "):
            condition = line[7:].strip()
        else:
            rows.append([cell.strip() for cell in line.split("|")])

    if not rows:
        raise LitmusParseError("no thread statements found")
    n_threads = max(len(r) for r in rows)
    threads: list[list[str]] = [[] for _ in range(n_threads)]
    for row in rows:
        for t in range(n_threads):
            cell = row[t] if t < len(row) else ""
            if cell:
                threads[t].append(cell)
    return LitmusTest(name, threads, init, flagged, condition)


def stmt_kind(stmt: str) -> str:
    """Classify one DSL statement: ``store``/``load``/``fence``/``delay``.

    Raises :class:`LitmusParseError` on anything unrecognised, so the
    fence-mode rewriter in :mod:`repro.verify.modes` fails loudly
    instead of silently dropping a malformed statement.
    """
    if stmt == "delay":
        return "delay"
    if _STORE_RE.match(stmt):
        return "store"
    if _LOAD_RE.match(stmt):
        return "load"
    if _FENCE_RE.match(stmt):
        return "fence"
    raise LitmusParseError(f"cannot classify statement {stmt!r}")


def litmus_variables(test: LitmusTest) -> set[str]:
    """Every shared variable the test stores to or loads from."""
    out: set[str] = set()
    for stmts in test.threads:
        for stmt in stmts:
            m = _STORE_RE.match(stmt)
            if m:
                out.add(m.group(1))
                continue
            m = _LOAD_RE.match(stmt)
            if m:
                out.add(m.group(2))
    return out


def _parse_fence(suffixes: str, flagged: bool) -> Fence:
    kind = FenceKind.GLOBAL
    waits = WAIT_BOTH
    for suffix in filter(None, suffixes.split(".")):
        if suffix == "set":
            kind = FenceKind.SET
        elif suffix == "class":
            kind = FenceKind.CLASS
        elif suffix == "ss":
            waits = WAIT_STORES
        elif suffix == "ll":
            waits = WAIT_LOADS
        else:
            raise LitmusParseError(f"unknown fence suffix {suffix!r}")
    return Fence(kind, waits)


def build_program(test: LitmusTest, env: Env, delays: list[int]) -> tuple[Program, dict]:
    """Instantiate the test in ``env`` with per-thread delay values."""
    variables = {}

    def var_of(name: str):
        if name not in variables:
            variables[name] = env.var(
                name, init=test.init.get(name, 0), flagged=name in test.flagged
            )
        return variables[name]

    # materialise all variables up front so inits apply before any run
    for row in test.threads:
        for stmt in row:
            m = _STORE_RE.match(stmt)
            if m:
                var_of(m.group(1))
            m = _LOAD_RE.match(stmt)
            if m:
                var_of(m.group(2))

    registers: dict[str, int] = {}

    def make_thread(stmts: list[str], delay: int):
        def body(tid: int):
            if delay:
                yield Compute(delay)
            for stmt in stmts:
                if stmt == "delay":
                    if delay:
                        yield Compute(delay)
                    continue
                m = _STORE_RE.match(stmt)
                if m:
                    yield var_of(m.group(1)).store(int(m.group(2)))
                    continue
                m = _LOAD_RE.match(stmt)
                if m:
                    registers[m.group(1)] = yield var_of(m.group(2)).load()
                    continue
                m = _FENCE_RE.match(stmt)
                if m:
                    yield _parse_fence(m.group(1), True)
                    continue
                raise LitmusParseError(f"cannot parse statement {stmt!r}")

        return body

    fns = [
        make_thread(stmts, delays[t % len(delays)])
        for t, stmts in enumerate(test.threads)
    ]
    return Program(fns, name=test.name), registers


def abstract_threads(test: LitmusTest) -> list[list[tuple]]:
    """Translate a parsed test into the reference model's abstract ops.

    The output feeds
    :func:`repro.core.semantics.reference_allowed_outcomes`:
    ``("store", var, value, flagged)`` / ``("load", var, reg, flagged)``
    / ``("fence", waits, scope)``.  ``delay`` statements are timing-only
    and vanish; a class fence in a litmus program (which has no method
    scopes) takes the conservative global interpretation, exactly as
    the FENCE rule does for an empty ``FSeq``.
    """
    threads: list[list[tuple]] = []
    for stmts in test.threads:
        ops: list[tuple] = []
        for stmt in stmts:
            if stmt == "delay":
                continue
            m = _STORE_RE.match(stmt)
            if m:
                var = m.group(1)
                ops.append(("store", var, int(m.group(2)), var in test.flagged))
                continue
            m = _LOAD_RE.match(stmt)
            if m:
                var = m.group(2)
                ops.append(("load", var, m.group(1), var in test.flagged))
                continue
            m = _FENCE_RE.match(stmt)
            if m:
                fence = _parse_fence(m.group(1), True)
                scope = "set" if fence.kind is FenceKind.SET else "global"
                ops.append(("fence", fence.waits, scope))
                continue
            raise LitmusParseError(f"cannot abstract statement {stmt!r}")
        threads.append(ops)
    return threads


def outcomes_matching(
    condition: str | None,
    register_names: list[str],
    outcomes,
) -> list[tuple]:
    """The outcome tuples (among ``outcomes``) satisfying ``condition``.

    This is the *single* code path that decides which concrete register
    tuples an ``exists`` clause names: :func:`run_litmus` derives
    ``condition_observed`` from it, :meth:`LitmusRun.matching_outcomes`
    delegates to it, the verify runner uses it to name the tuples a
    simulator sweep reached, and the fence synthesizer uses it to name
    the bad outcome a rejected candidate placement still admits.
    Callers used to re-derive the evaluation inline; keeping one
    implementation means every mismatch/counterexample message agrees
    on both the tuples and their (sorted) register order.
    """
    if not condition:
        return []
    matched = []
    for outcome in sorted(outcomes, key=str):
        env = dict(zip(register_names, outcome))
        if eval(  # noqa: S307 - test-author expression
            condition, {"__builtins__": {}}, env
        ):
            matched.append(outcome)
    return matched


@dataclass
class LitmusRun:
    """Outcome of exploring one litmus test."""

    test: LitmusTest
    outcomes: set[tuple]
    condition_observed: bool
    total_cycles: int = 0  # summed over all explored offset pairs

    @property
    def register_names(self) -> list[str]:
        """Register names in the order outcome tuples are reported.

        Sorted, matching both :func:`run_litmus` (which records
        ``tuple(registers[r] for r in sorted(registers))``) and the
        reference/explorer allowed sets -- it used to return program
        order, which mislabelled the columns of any test whose loads
        are not already alphabetical (MP's ``rw`` poll, for one).
        """
        names: set[str] = set()
        for stmts in self.test.threads:
            for stmt in stmts:
                m = _LOAD_RE.match(stmt)
                if m:
                    names.add(m.group(1))
        return sorted(names)

    def matching_outcomes(self) -> list[tuple]:
        """The observed outcomes satisfying the ``exists`` condition.

        These are the offending tuples when a forbidden condition was
        observed -- error reporting names them instead of just the test.
        """
        return outcomes_matching(
            self.test.condition, self.register_names, self.outcomes
        )


def run_litmus(
    test: LitmusTest,
    model: MemoryModel = MemoryModel.RMO,
    offsets: list[int] | None = None,
    n_cores: int | None = None,
    dense_loop: bool = False,
    mem_backend: str = "mesi",
    trace_compile: bool = True,
) -> LitmusRun:
    """Explore timing offsets; evaluate the ``exists`` condition."""
    offsets = offsets or DEFAULT_OFFSETS
    cores = n_cores or max(2, test.n_threads)
    outcomes: set[tuple] = set()
    total_cycles = 0
    reg_names: list[str] | None = None
    for d0 in offsets:
        for d1 in offsets:
            env = Env(SimConfig(
                n_cores=cores, memory_model=model, dense_loop=dense_loop,
                mem_backend=mem_backend, trace_compile=trace_compile,
            ))
            program, registers = build_program(test, env, [d0, d1])
            res = env.run(program, max_cycles=2_000_000)
            total_cycles += res.cycles
            if reg_names is None:
                reg_names = sorted(registers)
            outcomes.add(tuple(registers.get(r) for r in reg_names))
    observed = bool(
        outcomes_matching(test.condition, reg_names or [], outcomes)
    )
    return LitmusRun(test, outcomes, observed, total_cycles)
