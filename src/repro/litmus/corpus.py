"""A corpus of classic litmus tests in the textual DSL.

Each entry records the test source and whether its ``exists`` clause
(the relaxed outcome) is observable on this simulator under RMO.  The
model is multi-copy atomic with program-ordered loads and drain-time
store visibility (see DESIGN.md), so store-buffer-driven relaxations
(SB, MP) are observable without fences and forbidden with the right
ones, while same-location coherence and fenced causality chains never
relax.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import MemoryModel
from .dsl import LitmusRun, parse_litmus, run_litmus


@dataclass(frozen=True)
class CorpusEntry:
    name: str
    source: str
    observable_rmo: bool   # is the `exists` outcome observable under RMO?


CORPUS: list[CorpusEntry] = [
    CorpusEntry(
        "SB",
        """
        name SB
        x = 1  | y = 1
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """,
        observable_rmo=True,
    ),
    CorpusEntry(
        "SB+fences",
        """
        name SB+fences
        x = 1  | y = 1
        fence  | fence
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """,
        observable_rmo=False,
    ),
    CorpusEntry(
        # a load-load fence does not order the store before the load:
        # the SB outcome stays observable (mask selectivity)
        "SB+ll",
        """
        name SB+ll
        x = 1    | y = 1
        fence.ll | fence.ll
        r0 = y   | r1 = x
        exists r0 == 0 and r1 == 0
        """,
        observable_rmo=True,
    ),
    CorpusEntry(
        # MP: the reader pre-touches y (warming its line), so the
        # writer's younger y-store drains long before the older
        # cold-miss x-store -- the flag-before-data relaxation
        "MP",
        """
        name MP
        x = 1  | rw = y
        y = 1  | delay
               | r0 = y
               | r1 = x
        exists r0 == 1 and r1 == 0
        """,
        observable_rmo=True,
    ),
    CorpusEntry(
        "MP+ss",
        """
        name MP+ss
        x = 1    | rw = y
        fence.ss | delay
        y = 1    | r0 = y
                 | r1 = x
        exists r0 == 1 and r1 == 0
        """,
        observable_rmo=False,
    ),
    CorpusEntry(
        # same-location write order is never relaxed (coherence)
        "CoWR",
        """
        name CoWR
        x = 1  | r0 = x
        x = 2  | r1 = x
        exists r0 == 2 and r1 == 1
        """,
        observable_rmo=False,
    ),
    CorpusEntry(
        # WRC causality chain with fences everywhere must hold
        "WRC+fences",
        """
        name WRC+fences
        x = 1  | r0 = x | r1 = y
        fence  | fence  | fence
               | y = 1  | r2 = x
        exists r0 == 1 and r1 == 1 and r2 == 0
        """,
        observable_rmo=False,
    ),
]


def run_corpus(model: MemoryModel = MemoryModel.RMO, offsets=None) -> dict[str, LitmusRun]:
    """Run every corpus entry; returns runs keyed by test name."""
    offsets = offsets or [0, 1, 40, 150, 320]
    out = {}
    for entry in CORPUS:
        out[entry.name] = run_litmus(parse_litmus(entry.source), model, offsets)
    return out
