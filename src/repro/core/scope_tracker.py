"""Per-core S-Fence controller: FSB + FSS/FSS' + mapping table glue.

This is the hardware described in Section IV-A2..4 and V-A2, as one
object per core:

* ``fs_start``/``fs_end`` maintain the FSS (and, for non-speculative
  ops, the shadow FSS') and the mapping table, entering the overflow
  counter mode when either structure is full.
* ``dispatch_mem`` computes the FSB bitmask of a newly decoded memory
  op: one bit per scope on the FSS, plus the dedicated set-scope bit
  when the op carries the compiler's set-scope flag.
* ``complete_mem`` clears bits when a load completes or a store drains
  from the store buffer, and recycles FSB entries/mappings whose
  columns are fully clear and that are no longer on either stack.
* ``fence_ready`` is the issue check: traditional fences wait for all
  prior memory ops, class fences for the FSS-top column, set fences
  for the set column.  With scoped fences disabled (baseline runs) or
  while the overflow counter is non-zero, every fence degrades to a
  traditional fence -- strictly more ordering, hence always safe.
* speculation hooks (``begin_speculation``/``confirm_speculation``/
  ``squash``) implement the FSS' discipline for branch misprediction.
"""

from __future__ import annotations

from ..isa.instructions import FenceKind, WAIT_LOADS, WAIT_STORES
from ..sim.config import SimConfig
from .fsb import FenceScopeBits
from .fss import ScopeStack
from .mapping_table import MappingOverflow, MappingTable


class ScopeTracker:
    """All per-core S-Fence state."""

    __slots__ = (
        "config",
        "fsb",
        "fss",
        "shadow_fss",
        "mapping",
        "overflow_count",
        "shadow_overflow_count",
        "spec_depth",
        "_spec_queue",
        "unmatched_fs_ends",
        "overflow_events",
        "_all_class_mask",
        "chaos_overflow",
    )

    #: ``fs_start``/``fs_end`` outcome sentinels (also used by the chaos
    #: invariant checker to mirror scope state from the event stream)
    OVERFLOWED = -2   # the scope was only counted (overflow mode)
    UNMATCHED = -3    # fs_end with no open scope (wrong-path artefact)

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.fsb = FenceScopeBits(config.fsb_entries)
        # union of all class entries: the conservative mask used while
        # the overflow counter is active (see dispatch_mem)
        self._all_class_mask = (1 << (config.fsb_entries - 1)) - 1
        self.fss = ScopeStack(config.fss_entries)
        self.shadow_fss = ScopeStack(config.fss_entries)
        self.mapping = MappingTable(config.mapping_entries, config.fsb_entries - 1)
        self.overflow_count = 0
        self.shadow_overflow_count = 0
        self.spec_depth = 0  # unresolved predicted branches in flight
        # queued shadow actions: (depth_remaining, action, entry)
        self._spec_queue: list[list] = []
        self.unmatched_fs_ends = 0
        self.overflow_events = 0
        # optional fault-injection hook (chaos harness): called as
        # ``chaos_overflow(cid) -> bool`` at each fs_start; True forces
        # the overflow-counter path even though the FSS/mapping table
        # still have room.  Overflow mode over-constrains ordering
        # (every fence degrades to a traditional fence), so forcing it
        # is always safe -- it exercises the degraded path the paper's
        # safety argument leans on.
        self.chaos_overflow = None

    # -- class-scope delimiters -------------------------------------------------
    def fs_start(self, cid: int) -> int:
        """Open a scope; returns its FSB entry or ``OVERFLOWED``."""
        forced = self.chaos_overflow is not None and self.chaos_overflow(cid)
        if forced or self.overflow_count > 0 or self.fss.full:
            # excessive-scope fallback: just count nesting depth
            self.overflow_count += 1
            self.overflow_events += 1
            self._record_shadow("ovf+", 0)
            return self.OVERFLOWED
        try:
            entry = self.mapping.lookup_or_allocate(cid)
        except MappingOverflow:
            self.overflow_count += 1
            self.overflow_events += 1
            self._record_shadow("ovf+", 0)
            return self.OVERFLOWED
        self.fss.push(entry)
        self._record_shadow("push", entry)
        return entry

    def fs_end(self, cid: int) -> int:
        """Close the innermost scope; returns its FSB entry,
        ``OVERFLOWED`` (counter decrement) or ``UNMATCHED`` (no-op)."""
        if self.overflow_count > 0:
            self.overflow_count -= 1
            self._record_shadow("ovf-", 0)
            return self.OVERFLOWED
        if self.fss.empty:
            # unmatched pop (only possible on a wrong speculative path);
            # hardware treats it as a no-op.
            self.unmatched_fs_ends += 1
            return self.UNMATCHED
        entry = self.fss.pop()
        self._record_shadow("pop", entry)
        self._maybe_release(entry)
        return entry

    # -- speculation (branch prediction) ------------------------------------------
    def begin_speculation(self) -> None:
        """A predicted branch entered the window."""
        self.spec_depth += 1

    def confirm_speculation(self) -> None:
        """The oldest in-flight branch resolved as correctly predicted."""
        if self.spec_depth == 0:
            raise RuntimeError("confirm_speculation without begin_speculation")
        self.spec_depth -= 1
        remaining = []
        for item in self._spec_queue:
            item[0] -= 1
            if item[0] <= 0:
                self._apply_shadow(item[1], item[2])
            else:
                remaining.append(item)
        self._spec_queue = remaining

    def squash(self) -> None:
        """Branch misprediction: restore FSS from FSS', drop wrong-path state."""
        self.fss.restore_from(self.shadow_fss)
        self.overflow_count = self.shadow_overflow_count
        self._spec_queue.clear()
        self.spec_depth = 0

    def _record_shadow(self, action: str, entry: int) -> None:
        if self.spec_depth == 0:
            self._apply_shadow(action, entry)
        else:
            self._spec_queue.append([self.spec_depth, action, entry])

    def _apply_shadow(self, action: str, entry: int) -> None:
        if action == "push":
            self.shadow_fss.push(entry)
        elif action == "pop":
            if not self.shadow_fss.empty:
                self.shadow_fss.pop()
            self._maybe_release(entry)
        elif action == "ovf+":
            self.shadow_overflow_count += 1
        elif action == "ovf-":
            self.shadow_overflow_count -= 1

    # -- memory ops ---------------------------------------------------------------
    def dispatch_mem(self, is_load: bool, flagged: bool) -> int:
        """Flag a decoded memory op; returns its FSB bitmask.

        While the overflow counter is active, the op's true scope may
        have no FSB entry (its ``fs_start`` was only counted), so it is
        conservatively flagged with *every* class entry.  Without this,
        a class fence in a later re-activation of the overflowed scope
        would not wait for the op -- the paper's overflow description
        leaves this corner open, and the lockstep property test against
        the Figure 5 semantics (tests/test_semantics_oracle.py) catches
        the unsound variant.
        """
        if self.config.scoped_fences:
            if self.overflow_count > 0:
                mask = self._all_class_mask
            else:
                mask = self.fss.mask()
            if flagged:
                mask |= 1 << self.fsb.set_entry
        else:
            mask = 0
        self.fsb.record_dispatch(mask, is_load)
        return mask

    def store_retired(self, mask: int) -> None:
        """A store moved from the ROB into the store buffer."""
        self.fsb.record_store_retired(mask)

    def complete_mem(self, mask: int, is_load: bool, in_sb: bool = False) -> None:
        """A load completed / a store drained; clear its bits, recycle."""
        self.fsb.record_complete(mask, is_load, in_sb=in_sb)
        m = mask & ~(1 << self.fsb.set_entry)
        while m:
            low = m & -m
            self._maybe_release(low.bit_length() - 1)
            m ^= low

    def _maybe_release(self, entry: int) -> None:
        """Invalidate the mapping of ``entry`` once its scope is fully done."""
        if entry == self.fsb.set_entry:
            return
        if not self.fsb.entry_idle(entry):
            return
        if self.fss.contains(entry) or self.shadow_fss.contains(entry):
            return
        if any(item[1] == "push" and item[2] == entry for item in self._spec_queue):
            return
        self.mapping.release_entry(entry)

    # -- fence issue check -----------------------------------------------------------
    def fence_ready(self, kind: FenceKind, waits: int) -> bool:
        """May a fence of this kind issue right now?"""
        wait_l = bool(waits & WAIT_LOADS)
        wait_s = bool(waits & WAIT_STORES)
        if not self.config.scoped_fences:
            kind = FenceKind.GLOBAL
        elif kind is FenceKind.CLASS and (self.overflow_count > 0 or self.fss.empty):
            kind = FenceKind.GLOBAL
        if kind is FenceKind.GLOBAL:
            return self.fsb.all_clear(wait_l, wait_s)
        if kind is FenceKind.CLASS:
            return self.fsb.entry_clear(self.fss.top(), wait_l, wait_s)
        return self.fsb.entry_clear(self.fsb.set_entry, wait_l, wait_s)

    def would_stall_as_global(self, waits: int) -> bool:
        """True if a traditional fence could not issue now (for stats)."""
        return not self.fsb.all_clear(bool(waits & WAIT_LOADS), bool(waits & WAIT_STORES))

    # -- in-window speculation support ------------------------------------------
    # A speculatively issued fence re-checks its condition when it reaches
    # the ROB head ("before it can be retired from ROB, it has to check
    # the FSBs of store buffer", Section VI-B).  At that point in-order
    # retirement guarantees every older load has completed, so only
    # store-buffer-resident stores can still be pending.  The fence's
    # scope is resolved at dispatch (the FSS moves on afterwards).

    GLOBAL_SCOPE = -1

    def resolve_fence_scope(self, kind: FenceKind) -> int:
        """Resolve the scope of a fence at dispatch time.

        Returns ``GLOBAL_SCOPE`` for a traditional/degraded fence or the
        FSB entry index the fence must watch.
        """
        if not self.config.scoped_fences:
            return self.GLOBAL_SCOPE
        if kind is FenceKind.SET:
            return self.fsb.set_entry
        if kind is FenceKind.CLASS:
            if self.overflow_count > 0 or self.fss.empty:
                return self.GLOBAL_SCOPE
            return self.fss.top()
        return self.GLOBAL_SCOPE

    def fence_ready_at_head(self, scope_entry: int, waits: int) -> bool:
        """Retire-time check for a speculatively issued fence."""
        if not (waits & WAIT_STORES):
            return True  # older loads are complete by in-order retirement
        if scope_entry == self.GLOBAL_SCOPE:
            return self.fsb.all_clear_sb()
        return self.fsb.entry_clear_sb(scope_entry)

    def pending_for_scope(self, scope_entry: int, waits: int) -> int:
        """Count of in-flight memory ops a fence of this scope waits on.

        Used at fence dispatch: at that moment every in-flight op is
        older than the fence, so the window counters are an exact
        snapshot of the fence's wait set (the basis of the per-fence
        countdown in in-window speculation mode).
        """
        count = 0
        if waits & WAIT_LOADS:
            count += (
                self.fsb.total_loads
                if scope_entry == self.GLOBAL_SCOPE
                else self.fsb.pending_loads[scope_entry]
            )
        if waits & WAIT_STORES:
            count += (
                self.fsb.total_stores
                if scope_entry == self.GLOBAL_SCOPE
                else self.fsb.pending_stores[scope_entry]
            )
        return count

    def fence_ready_resolved(self, scope_entry: int, waits: int) -> bool:
        """Window-wide check for a resolved fence scope (early completion).

        Conservative before the fence reaches the ROB head: the window
        counters include ops younger than the fence, so clearing implies
        the fence's real condition holds.
        """
        wait_l = bool(waits & WAIT_LOADS)
        wait_s = bool(waits & WAIT_STORES)
        if scope_entry == self.GLOBAL_SCOPE:
            return self.fsb.all_clear(wait_l, wait_s)
        return self.fsb.entry_clear(scope_entry, wait_l, wait_s)
