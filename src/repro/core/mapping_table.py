"""The cid -> FSB-entry mapping table (Section IV-A3).

``fs_start cid`` looks the class id up here; a hit reuses the mapped
FSB entry, a miss allocates a free entry (or, if none is free, falls
back to one designated *shared* entry -- "for each newly encountered
scope, we simply choose one specific FSB entry", which is safe because
sharing only over-constrains ordering).

A mapping is invalidated when its FSB entry's bits have been cleared in
every ROB/store-buffer slot *and* the entry is no longer on the FSS or
FSS' (the scope is still active otherwise).  The tracker drives that
via :meth:`release_entry`.

If the table itself is full and an unmapped cid arrives, the caller
must enter overflow-counter mode; :meth:`lookup_or_allocate` signals
that by raising :class:`MappingOverflow`.
"""

from __future__ import annotations


class MappingOverflow(Exception):
    """No table slot available for a new cid."""


class MappingTable:
    """Bounded associative table from class ids to FSB entries."""

    __slots__ = ("capacity", "n_fsb_class_entries", "shared_entry", "_map", "_free")

    def __init__(self, capacity: int, n_fsb_class_entries: int) -> None:
        if capacity < 1:
            raise ValueError("mapping table capacity must be >= 1")
        if n_fsb_class_entries < 1:
            raise ValueError("need at least one class-scope FSB entry")
        self.capacity = capacity
        self.n_fsb_class_entries = n_fsb_class_entries
        # the designated fallback when FSB entries run out (entry 0)
        self.shared_entry = 0
        self._map: dict[int, int] = {}
        self._free: list[int] = list(range(n_fsb_class_entries - 1, -1, -1))

    def lookup(self, cid: int) -> int | None:
        return self._map.get(cid)

    def lookup_or_allocate(self, cid: int) -> int:
        """Return the FSB entry for ``cid``, allocating on first use.

        Raises :class:`MappingOverflow` when the table is full and the
        cid is unmapped.
        """
        entry = self._map.get(cid)
        if entry is not None:
            return entry
        if len(self._map) >= self.capacity:
            raise MappingOverflow(cid)
        entry = self._free.pop() if self._free else self.shared_entry
        self._map[cid] = entry
        return entry

    def release_entry(self, entry: int) -> None:
        """Invalidate every mapping that points at ``entry``; free it."""
        stale = [cid for cid, e in self._map.items() if e == entry]
        for cid in stale:
            del self._map[cid]
        if stale and entry not in self._free:
            self._free.append(entry)

    def entry_in_use(self, entry: int) -> bool:
        return any(e == entry for e in self._map.values())

    def free_entries(self) -> tuple[int, ...]:
        """Snapshot of the FSB-entry free list (tests/diagnostics)."""
        return tuple(self._free)

    @property
    def size(self) -> int:
        return len(self._map)

    def mappings(self) -> dict[int, int]:
        """Snapshot of the current cid -> entry map (for tests)."""
        return dict(self._map)
