"""Fence Scope Stack (FSS) and its shadow copy FSS'.

The FSS records the FSB entries of the currently open, nested class
scopes: the outermost scope at the bottom, the scope being decoded at
the top (Section IV-A3).  A newly decoded memory op sets the FSB bit of
*every* entry on the FSS, so inner-scope ops also flag their outer
scopes.

Branch prediction can corrupt the FSS: a wrong-path ``fs_end`` pops an
entry that the (re-fetched) correct path will try to pop again.  The
shadow stack FSS' is updated only by ``fs_start``/``fs_end`` ops with no
unconfirmed branch prediction before them; on a misprediction the FSS
is restored from FSS' (Section IV-A3, "Handling branch prediction").

``ScopeStack`` models one stack with bounded capacity.  Overflow is not
handled here -- the tracker's overflow counter takes over when ``push``
would exceed capacity (Section IV-A3, "Handling excessive scopes").
"""

from __future__ import annotations


class ScopeStack:
    """Bounded stack of FSB entry indices."""

    __slots__ = ("capacity", "_items")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("FSS capacity must be >= 1")
        self.capacity = capacity
        self._items: list[int] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, entry: int) -> None:
        if self.full:
            raise OverflowError("FSS full")
        self._items.append(entry)

    def pop(self) -> int:
        if not self._items:
            raise IndexError("FSS empty")
        return self._items.pop()

    def top(self) -> int:
        if not self._items:
            raise IndexError("FSS empty")
        return self._items[-1]

    def mask(self) -> int:
        """Bitmask of all FSB entries currently on the stack."""
        m = 0
        for e in self._items:
            m |= 1 << e
        return m

    def contains(self, entry: int) -> bool:
        return entry in self._items

    def items(self) -> tuple[int, ...]:
        """Bottom-to-top snapshot (for tests and the shadow copy)."""
        return tuple(self._items)

    def restore_from(self, other: "ScopeStack") -> None:
        """Copy ``other``'s contents into this stack (FSS <- FSS')."""
        self._items = list(other._items)

    def clear(self) -> None:
        self._items.clear()
