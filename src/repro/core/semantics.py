"""Executable operational semantics of class scope (Figure 5).

The paper defines class scope with four inference rules over the state
``<FSeq x Scope x pc>``:

* ``SCOPEENT``: ``enter_md f``  pushes ``f`` onto ``FSeq``.
* ``SCOPEEX``:  ``exit_md f``   pops ``f`` from ``FSeq``.
* ``MEMOP``:    a memory op ``mop`` is added to ``Scope(C(f))`` for
  every distinct method ``f`` in ``FSeq``.
* ``FENCE``:    a fence may complete only when ``Scope(C(f))`` is empty
  for the class of the innermost method.

This module implements those rules directly, as an *oracle*: property
tests drive random instruction streams through both this abstract
machine and the hardware :class:`~repro.core.scope_tracker.ScopeTracker`
and check that the hardware never lets a fence proceed while the
abstract scope still has pending ops (hardware is allowed to be
stricter -- entry sharing and overflow only add ordering).

Here a "method" is identified by its class id (cid): the semantics only
ever uses ``C(f)``, so tracking cids directly loses nothing.
"""

from __future__ import annotations

from collections import Counter


class AbstractScopeMachine:
    """Direct implementation of the Figure 5 rules for one processor."""

    def __init__(self) -> None:
        self.fseq: list[int] = []          # nested method invocations (cids)
        self.scope: dict[int, set[int]] = {}  # cid -> pending mem-op ids
        self._next_op_id = 0
        self._op_scopes: dict[int, set[int]] = {}  # op id -> cids it was added to

    # -- rules -------------------------------------------------------------------
    def enter_method(self, cid: int) -> None:
        """[SCOPEENT] stmt(pc) = enter_md f."""
        self.fseq.append(cid)

    def exit_method(self, cid: int) -> None:
        """[SCOPEEX] stmt(pc) = exit_md f; requires FSeq = s . f."""
        if not self.fseq or self.fseq[-1] != cid:
            raise ValueError(f"exit_method({cid}) does not match FSeq {self.fseq}")
        self.fseq.pop()

    def mem_op(self) -> int:
        """[MEMOP] add a new memory op to every scope in [[FSeq]].

        Returns the op id used later by :meth:`complete`.
        """
        op_id = self._next_op_id
        self._next_op_id += 1
        cids = set(self.fseq)
        self._op_scopes[op_id] = cids
        for cid in cids:
            self.scope.setdefault(cid, set()).add(op_id)
        return op_id

    def complete(self, op_id: int) -> None:
        """The memory subsystem completed ``op_id``: remove it everywhere."""
        for cid in self._op_scopes.pop(op_id):
            pend = self.scope.get(cid)
            pend.discard(op_id)
            if not pend:
                del self.scope[cid]

    def fence_pending(self) -> set[int]:
        """[FENCE] the op ids a class fence at this point must wait for.

        Empty set means the fence may complete (``Scope(C(f)) = {}``).
        A fence outside any method has no class scope; we return all
        outstanding ops (the conservative global interpretation the
        hardware also uses).
        """
        if not self.fseq:
            return self.all_pending()
        return set(self.scope.get(self.fseq[-1], ()))

    def fence_ready(self) -> bool:
        return not self.fence_pending()

    # -- helpers --------------------------------------------------------------------
    def all_pending(self) -> set[int]:
        """Every outstanding memory op (the traditional fence's wait set)."""
        return set(self._op_scopes)

    def pending_in(self, cid: int) -> set[int]:
        return set(self.scope.get(cid, ()))

    def depth(self) -> int:
        return len(self.fseq)

    def scope_multiplicity(self) -> Counter:
        """How many pending ops each cid currently has (diagnostics)."""
        return Counter({cid: len(ops) for cid, ops in self.scope.items()})
