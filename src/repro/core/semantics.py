"""Executable operational semantics of class scope (Figure 5).

The paper defines class scope with four inference rules over the state
``<FSeq x Scope x pc>``:

* ``SCOPEENT``: ``enter_md f``  pushes ``f`` onto ``FSeq``.
* ``SCOPEEX``:  ``exit_md f``   pops ``f`` from ``FSeq``.
* ``MEMOP``:    a memory op ``mop`` is added to ``Scope(C(f))`` for
  every distinct method ``f`` in ``FSeq``.
* ``FENCE``:    a fence may complete only when ``Scope(C(f))`` is empty
  for the class of the innermost method.

This module implements those rules directly, as an *oracle*: property
tests drive random instruction streams through both this abstract
machine and the hardware :class:`~repro.core.scope_tracker.ScopeTracker`
and check that the hardware never lets a fence proceed while the
abstract scope still has pending ops (hardware is allowed to be
stricter -- entry sharing and overflow only add ordering).

Here a "method" is identified by its class id (cid): the semantics only
ever uses ``C(f)``, so tracking cids directly loses nothing.
"""

from __future__ import annotations

import itertools
from collections import Counter


class AbstractScopeMachine:
    """Direct implementation of the Figure 5 rules for one processor."""

    def __init__(self) -> None:
        self.fseq: list[int] = []          # nested method invocations (cids)
        self.scope: dict[int, set[int]] = {}  # cid -> pending mem-op ids
        self._next_op_id = 0
        self._op_scopes: dict[int, set[int]] = {}  # op id -> cids it was added to

    # -- rules -------------------------------------------------------------------
    def enter_method(self, cid: int) -> None:
        """[SCOPEENT] stmt(pc) = enter_md f."""
        self.fseq.append(cid)

    def exit_method(self, cid: int) -> None:
        """[SCOPEEX] stmt(pc) = exit_md f; requires FSeq = s . f."""
        if not self.fseq or self.fseq[-1] != cid:
            raise ValueError(f"exit_method({cid}) does not match FSeq {self.fseq}")
        self.fseq.pop()

    def mem_op(self) -> int:
        """[MEMOP] add a new memory op to every scope in [[FSeq]].

        Returns the op id used later by :meth:`complete`.
        """
        op_id = self._next_op_id
        self._next_op_id += 1
        cids = set(self.fseq)
        self._op_scopes[op_id] = cids
        for cid in cids:
            self.scope.setdefault(cid, set()).add(op_id)
        return op_id

    def complete(self, op_id: int) -> None:
        """The memory subsystem completed ``op_id``: remove it everywhere."""
        for cid in self._op_scopes.pop(op_id):
            pend = self.scope.get(cid)
            pend.discard(op_id)
            if not pend:
                del self.scope[cid]

    def fence_pending(self) -> set[int]:
        """[FENCE] the op ids a class fence at this point must wait for.

        Empty set means the fence may complete (``Scope(C(f)) = {}``).
        A fence outside any method has no class scope; we return all
        outstanding ops (the conservative global interpretation the
        hardware also uses).
        """
        if not self.fseq:
            return self.all_pending()
        return set(self.scope.get(self.fseq[-1], ()))

    def fence_ready(self) -> bool:
        return not self.fence_pending()

    # -- helpers --------------------------------------------------------------------
    def all_pending(self) -> set[int]:
        """Every outstanding memory op (the traditional fence's wait set)."""
        return set(self._op_scopes)

    def pending_in(self, cid: int) -> set[int]:
        return set(self.scope.get(cid, ()))

    def depth(self) -> int:
        return len(self.fseq)

    def scope_multiplicity(self) -> Counter:
        """How many pending ops each cid currently has (diagnostics)."""
        return Counter({cid: len(ops) for cid, ops in self.scope.items()})


# ---------------------------------------------------------------------------
# Reference memory model: the allowed-outcome set of a litmus program.
#
# The differential fuzz tests need an oracle that is *at least as weak*
# as the simulator under RMO, so that every outcome the simulator
# observes must fall inside the oracle's allowed set.  The model below
# is axiomatic-by-enumeration: each thread's memory operations may be
# reordered into any linear extension of a small constraint set, the
# reordered threads are interleaved every possible way over a single
# multi-copy-atomic memory, and a load returns the most recent store to
# its location in that global order.
#
# Per-thread ordering constraints (everything else may reorder):
#
# * same-location program order is preserved (coherence; also covers
#   store->load forwarding, which reads the in-order value), and
# * a fence orders every prior *waited-on, in-scope* operation before
#   every subsequent operation: loads when the fence waits on loads,
#   stores when it waits on stores; a ``global`` fence scopes every
#   operation, a ``set`` fence only set-scope-flagged ones.  This is
#   the FENCE rule of Figure 5 with [[FSeq]] collapsed to the flagged
#   set -- a fence may complete only once its scope has drained, and
#   nothing later dispatches before it completes.
#
# The simulator is strictly stronger (it binds load values at dispatch
# in program order and publishes stores through one shared image), so
# observed ⊆ allowed must hold for every program; a violation is a
# fence-semantics bug, not schedule noise.  The enumeration is exact,
# not sampled: for litmus-sized programs (<= ~4 memory ops per thread)
# the state space is tiny.
#
# Abstract op forms (plain tuples so any front-end can produce them):
#
#   ("store", var, value, flagged)
#   ("load",  var, reg,   flagged)
#   ("fence", waits, scope)          waits: REF_WAIT_* mask
#                                    scope: "global" | "set"
# ---------------------------------------------------------------------------

REF_WAIT_LOADS = 0b01
REF_WAIT_STORES = 0b10
REF_WAIT_BOTH = REF_WAIT_LOADS | REF_WAIT_STORES


def thread_order_constraints(ops: list[tuple]) -> tuple[list[tuple], set[tuple[int, int]]]:
    """One thread's memory ops and the pairs that must stay ordered.

    Returns ``(mems, before)`` where ``mems`` is the thread's memory
    operations in program order (fences removed) and ``before`` holds
    index pairs ``(a, b)`` over ``mems`` meaning ``mems[a]`` must
    execute before ``mems[b]``: same-location program order plus every
    fence-induced edge (waited-on, in-scope priors before all
    subsequents).  This is the single definition of the per-thread
    ordering axioms; both the permutation enumerator below and the
    DPOR explorer in :mod:`repro.verify.explorer` consume it, so the
    two allowed-outcome implementations can only diverge in the
    *search*, never in the model.
    """
    mems = [op for op in ops if op[0] != "fence"]
    index_of: dict[int, int] = {}
    mem_positions = []
    for pos, op in enumerate(ops):
        if op[0] != "fence":
            index_of[pos] = len(mem_positions)
            mem_positions.append(pos)

    before: set[tuple[int, int]] = set()
    for a, b in itertools.combinations(range(len(mems)), 2):
        if mems[a][1] == mems[b][1]:  # same location: keep program order
            before.add((a, b))
    for pos, op in enumerate(ops):
        if op[0] != "fence":
            continue
        _, waits, scope = op
        for ppos in mem_positions:
            if ppos > pos:
                continue
            prior = ops[ppos]
            kind_bit = REF_WAIT_LOADS if prior[0] == "load" else REF_WAIT_STORES
            if not waits & kind_bit:
                continue
            if scope == "set" and not prior[3]:
                continue
            for npos in mem_positions:
                if npos > pos:
                    before.add((index_of[ppos], index_of[npos]))
    return mems, before


def _thread_orders(ops: list[tuple]) -> list[list[tuple]]:
    """Every permitted local order of one thread's memory operations."""
    mems, before = thread_order_constraints(ops)
    if not mems:
        return [[]]
    orders = []
    for perm in itertools.permutations(range(len(mems))):
        rank = {idx: r for r, idx in enumerate(perm)}
        if all(rank[a] < rank[b] for a, b in before):
            orders.append([mems[i] for i in perm])
    return orders


def _interleavings(sequences: list[list[tuple]]):
    """Every merge of the given per-thread sequences (order-preserving)."""
    state = [0] * len(sequences)
    prefix: list[tuple] = []

    def walk():
        live = [t for t, i in enumerate(state) if i < len(sequences[t])]
        if not live:
            yield list(prefix)
            return
        for t in live:
            op = sequences[t][state[t]]
            state[t] += 1
            prefix.append(op)
            yield from walk()
            prefix.pop()
            state[t] -= 1

    yield from walk()


def reference_allowed_outcomes(
    threads: list[list[tuple]],
    init: dict | None = None,
) -> set[tuple]:
    """All register outcomes the reference model allows.

    ``threads`` holds one abstract-op list per thread (see the tuple
    forms above).  Returns outcomes as tuples of register values in
    sorted register-name order -- the same shape
    :func:`repro.litmus.dsl.run_litmus` reports observed outcomes in.
    """
    init = init or {}
    regs = sorted(
        op[2] for ops in threads for op in ops if op[0] == "load"
    )
    outcomes: set[tuple] = set()
    per_thread = [_thread_orders(ops) for ops in threads]
    for combo in itertools.product(*per_thread):
        for sequence in _interleavings(list(combo)):
            memory = dict(init)
            values: dict[str, int] = {}
            for op in sequence:
                if op[0] == "store":
                    memory[op[1]] = op[2]
                else:
                    values[op[2]] = memory.get(op[1], 0)
            outcomes.add(tuple(values[r] for r in regs))
    return outcomes
