"""The paper's contribution: scoped fences (S-Fence) hardware model."""

from .fsb import FenceScopeBits
from .fss import ScopeStack
from .hwcost import HardwareCost, estimate_cost
from .mapping_table import MappingOverflow, MappingTable
from .scope_tracker import ScopeTracker
from .semantics import AbstractScopeMachine

__all__ = [
    "AbstractScopeMachine",
    "FenceScopeBits",
    "HardwareCost",
    "MappingOverflow",
    "MappingTable",
    "ScopeStack",
    "ScopeTracker",
    "estimate_cost",
]
