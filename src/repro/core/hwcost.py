"""Hardware cost model for S-Fence (Section VI-E).

The paper argues the additions are tiny: a few FSB bits per ROB and
store-buffer entry, a small mapping table, two small stacks and one
counter, all core-local.  With a 128-entry ROB, an 8-entry store buffer
and 4 FSB bits the paper quotes "less than 80 bytes for each core".
This module computes the same bill of materials for any configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.config import SimConfig


@dataclass(frozen=True)
class HardwareCost:
    """Bit-level cost breakdown of the S-Fence additions for one core."""

    fsb_rob_bits: int
    fsb_sb_bits: int
    mapping_table_bits: int
    fss_bits: int
    shadow_fss_bits: int
    overflow_counter_bits: int

    @property
    def total_bits(self) -> int:
        return (
            self.fsb_rob_bits
            + self.fsb_sb_bits
            + self.mapping_table_bits
            + self.fss_bits
            + self.shadow_fss_bits
            + self.overflow_counter_bits
        )

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0


def estimate_cost(
    config: SimConfig,
    cid_bits: int = 10,
    overflow_counter_bits: int = 8,
) -> HardwareCost:
    """Cost of the S-Fence structures for one core under ``config``.

    ``cid_bits`` is the width of a class id in the mapping table's tag
    field (1024 distinct scoped classes is generous; the paper leaves
    this unspecified).
    """
    entry_index_bits = max(1, math.ceil(math.log2(config.fsb_entries)))
    return HardwareCost(
        fsb_rob_bits=config.rob_size * config.fsb_entries,
        fsb_sb_bits=config.sb_size * config.fsb_entries,
        # each mapping slot: valid bit + cid tag + FSB entry index
        mapping_table_bits=config.mapping_entries * (1 + cid_bits + entry_index_bits),
        fss_bits=config.fss_entries * entry_index_bits,
        shadow_fss_bits=config.fss_entries * entry_index_bits,
        overflow_counter_bits=overflow_counter_bits,
    )
