"""Fence Scope Bits (FSB) bookkeeping.

In hardware, every ROB and store-buffer entry is extended with one bit
per FSB entry; bit *e* of a memory op is set iff the op belongs to the
scope currently mapped to FSB entry *e* (Section IV-A2/3).  A fence can
issue when the relevant column of bits is clear across both structures.

The simulator represents an op's bits as a plain ``int`` bitmask stored
on its ROB/store-buffer entry, and this class keeps the column-wise
aggregate the issue check needs: per-entry counters of in-flight
(flagged, not yet completed) loads and stores.  A column of bits being
"all clear" is exactly ``pending_loads[e] == pending_stores[e] == 0``.

One dedicated entry -- the last one -- is reserved for set scope
(Section V-A2: "we use a specific FSB entry (e.g., the last entry)").
"""

from __future__ import annotations


class FenceScopeBits:
    """Column-wise pending-op counters for the FSB array."""

    __slots__ = (
        "n_entries",
        "set_entry",
        "pending_loads",
        "pending_stores",
        "total_loads",
        "total_stores",
        "sb_pending_stores",
        "sb_total_stores",
    )

    def __init__(self, n_entries: int) -> None:
        if n_entries < 2:
            raise ValueError("need at least 2 FSB entries (one reserved for set scope)")
        self.n_entries = n_entries
        self.set_entry = n_entries - 1
        self.pending_loads = [0] * n_entries
        self.pending_stores = [0] * n_entries
        # totals across *all* memory ops, flagged or not: these implement
        # the traditional (global-scope) fence check.
        self.total_loads = 0
        self.total_stores = 0
        # store-buffer-side columns: stores that have *retired* into the
        # store buffer and not yet drained.  A fence that reached the ROB
        # head (in-window speculation) only has these left to wait for --
        # every older load has completed by in-order retirement.
        self.sb_pending_stores = [0] * n_entries
        self.sb_total_stores = 0

    @property
    def class_entries(self) -> range:
        """Indices usable for class scopes (set entry excluded)."""
        return range(self.n_entries - 1)

    # -- decode-time -----------------------------------------------------------
    def record_dispatch(self, mask: int, is_load: bool) -> None:
        """A memory op with FSB bits ``mask`` entered the window."""
        if is_load:
            self.total_loads += 1
            counters = self.pending_loads
        else:
            self.total_stores += 1
            counters = self.pending_stores
        while mask:
            low = mask & -mask
            counters[low.bit_length() - 1] += 1
            mask ^= low

    # -- retire-time ------------------------------------------------------------
    def record_store_retired(self, mask: int) -> None:
        """A store retired from the ROB into the store buffer."""
        self.sb_total_stores += 1
        while mask:
            low = mask & -mask
            self.sb_pending_stores[low.bit_length() - 1] += 1
            mask ^= low

    # -- completion-time --------------------------------------------------------
    def record_complete(self, mask: int, is_load: bool, in_sb: bool = False) -> None:
        """A memory op completed (load done / store drained); clear its bits.

        ``in_sb`` marks a store that had already retired into the store
        buffer, whose SB-side column must be cleared too.
        """
        if is_load:
            self.total_loads -= 1
            counters = self.pending_loads
        else:
            self.total_stores -= 1
            counters = self.pending_stores
            if in_sb:
                self.sb_total_stores -= 1
                if self.sb_total_stores < 0:
                    raise RuntimeError("SB-side FSB counter underflow")
        if self.total_loads < 0 or self.total_stores < 0:
            raise RuntimeError("FSB completion without matching dispatch")
        m = mask
        while m:
            low = m & -m
            e = low.bit_length() - 1
            counters[e] -= 1
            if counters[e] < 0:
                raise RuntimeError(f"FSB entry {e} counter underflow")
            if in_sb and not is_load:
                self.sb_pending_stores[e] -= 1
                if self.sb_pending_stores[e] < 0:
                    raise RuntimeError(f"SB FSB entry {e} counter underflow")
            m ^= low

    # -- issue checks -------------------------------------------------------------
    def entry_clear(self, entry: int, wait_loads: bool, wait_stores: bool) -> bool:
        """True iff entry's column has no pending ops of the waited kinds."""
        if wait_loads and self.pending_loads[entry]:
            return False
        if wait_stores and self.pending_stores[entry]:
            return False
        return True

    def all_clear(self, wait_loads: bool, wait_stores: bool) -> bool:
        """Traditional-fence check: no pending memory ops at all."""
        if wait_loads and self.total_loads:
            return False
        if wait_stores and self.total_stores:
            return False
        return True

    def entry_clear_sb(self, entry: int) -> bool:
        """True iff no buffered (retired, undrained) store has this bit set."""
        return self.sb_pending_stores[entry] == 0

    def all_clear_sb(self) -> bool:
        """True iff the store buffer holds no stores at all."""
        return self.sb_total_stores == 0

    def entry_idle(self, entry: int) -> bool:
        """True iff no in-flight op has this entry's bit set (recycling test)."""
        return self.pending_loads[entry] == 0 and self.pending_stores[entry] == 0
