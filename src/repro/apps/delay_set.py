"""Delay-set analysis (Shasha-Snir) and trace-based access classification.

The paper's barnes/radiosity experiments rely on a compiler that
enforces sequential consistency by inserting fences at *delay pairs*
found by delay-set analysis [38], and on the observation that accesses
to private or shared-read-only data are never part of a conflict and
therefore are not flagged for set-scope fences (Section VI-B, citing
Singh et al. [40]).

Two tools here:

* :func:`classify_trace` -- dynamic classification: partition the
  addresses of a memory trace into ``private`` / ``shared_read_only`` /
  ``conflicting``.  An address conflicts iff at least two cores access
  it and at least one of them writes.  The set-scope flag assignments
  of the barnes/radiosity guests are validated against this partition
  in the test suite.
* :func:`delay_pairs` -- static Shasha-Snir analysis for small
  (litmus-sized) programs: find the program-order pairs that lie on a
  *critical cycle* of the conflict graph; exactly those pairs need a
  fence to restore SC.  Dekker's classic two delay pairs fall out of
  this directly.

Whole-program extension (the apps-wide synthesis path): real programs
here are Python generators, so their "program graph" is obtained by
*concrete replay* -- :func:`record_program` drives the guest
generators against functional memory (no simulator) and records every
memory access and fence into a :class:`ProgramSkeleton`.  The
skeleton's conflict graph (:func:`skeleton_graph`) uses *transitive*
program edges, so critical cycles between non-adjacent accesses are
found; :func:`critical_cycles` enumerates them with a bounded
block-DFS (at most two adjacent accesses per thread, at most
``max_threads`` threads -- the Shasha-Snir shape, enforced by
construction), and :func:`skeleton_delay_pairs` /
:func:`required_patterns` turn them into the insertion sites and the
runtime-checkable ordering requirements the synthesizer and the chaos
oracle consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import networkx as nx

from ..isa.instructions import (
    Branch,
    Cas,
    Compute,
    Fence,
    FenceKind,
    FsEnd,
    FsStart,
    Load,
    Probe,
    Store,
    WAIT_STORES,
)
from ..sim.trace import TraceCollector
from ..sim.tracecomp import BlockHint


@dataclass(frozen=True)
class AddressClassification:
    """Partition of traced addresses."""

    private: frozenset[int]
    shared_read_only: frozenset[int]
    conflicting: frozenset[int]

    def flagged(self) -> frozenset[int]:
        """The addresses a set-scope compiler must flag."""
        return self.conflicting


def classify_trace(trace: TraceCollector) -> AddressClassification:
    """Classify every address appearing in ``trace``."""
    readers: dict[int, set[int]] = {}
    writers: dict[int, set[int]] = {}
    for rec in trace.records:
        if rec.kind == "load":
            readers.setdefault(rec.addr, set()).add(rec.core)
        else:  # store or cas
            writers.setdefault(rec.addr, set()).add(rec.core)
    private: set[int] = set()
    read_only: set[int] = set()
    conflicting = set()
    for addr in set(readers) | set(writers):
        r = readers.get(addr, set())
        w = writers.get(addr, set())
        cores = r | w
        if len(cores) <= 1:
            private.add(addr)
        elif not w:
            read_only.add(addr)
        else:
            conflicting.add(addr)
    return AddressClassification(
        frozenset(private), frozenset(read_only), frozenset(conflicting)
    )


# --------------------------------------------------------------------- static
@dataclass(frozen=True)
class Access:
    """One static access in a thread program."""

    thread: int
    index: int
    var: str
    is_write: bool

    @property
    def key(self) -> tuple[int, int]:
        return (self.thread, self.index)


def _parse(threads: list[list[tuple[str, str]]]) -> list[Access]:
    accesses = []
    for t, ops in enumerate(threads):
        for i, (var, mode) in enumerate(ops):
            if mode not in ("r", "w"):
                raise ValueError(f"access mode must be 'r' or 'w', got {mode!r}")
            accesses.append(Access(t, i, var, mode == "w"))
    return accesses


def conflict_graph(threads: list[list[tuple[str, str]]]) -> nx.DiGraph:
    """The mixed program/conflict graph of Shasha-Snir.

    Nodes are ``(thread, index)``; program edges follow program order
    within a thread, conflict edges connect (both directions) accesses
    of the same variable on different threads when at least one writes.
    """
    accesses = _parse(threads)
    g = nx.DiGraph()
    for a in accesses:
        g.add_node(a.key, var=a.var, is_write=a.is_write, thread=a.thread)
    by_thread: dict[int, list[Access]] = {}
    for a in accesses:
        by_thread.setdefault(a.thread, []).append(a)
    for ops in by_thread.values():
        ops.sort(key=lambda a: a.index)
        for u, v in zip(ops, ops[1:]):
            g.add_edge(u.key, v.key, kind="program")
    for a, b in combinations(accesses, 2):
        if a.thread != b.thread and a.var == b.var and (a.is_write or b.is_write):
            g.add_edge(a.key, b.key, kind="conflict")
            g.add_edge(b.key, a.key, kind="conflict")
    return g


def _is_critical(cycle: list[tuple[int, int]], g: nx.DiGraph) -> bool:
    """Shasha-Snir critical cycle: <= 2 accesses per thread, adjacent."""
    per_thread: dict[int, list[int]] = {}
    for pos, node in enumerate(cycle):
        per_thread.setdefault(g.nodes[node]["thread"], []).append(pos)
    n = len(cycle)
    for positions in per_thread.values():
        if len(positions) > 2:
            return False
        if len(positions) == 2:
            a, b = positions
            if not (b - a == 1 or (a == 0 and b == n - 1)):
                return False
    return True


def delay_pairs(
    threads: list[list[tuple[str, str]]],
    max_cycle_len: int = 8,
) -> set[tuple[tuple[int, int], tuple[int, int]]]:
    """Program-order pairs that must be enforced to guarantee SC.

    Returns pairs of ``(thread, index)`` node keys, earlier access
    first.  A fence (or other enforcement) between each pair restores
    SC per Shasha-Snir.
    """
    g = conflict_graph(threads)
    pairs: set[tuple[tuple[int, int], tuple[int, int]]] = set()
    for cycle in nx.simple_cycles(g):
        if len(cycle) < 2 or len(cycle) > max_cycle_len:
            continue
        if not _is_critical(cycle, g):
            continue
        n = len(cycle)
        for pos, node in enumerate(cycle):
            nxt = cycle[(pos + 1) % n]
            if g.nodes[node]["thread"] == g.nodes[nxt]["thread"]:
                u, v = node, nxt
                if u[1] > v[1]:
                    u, v = v, u
                pairs.add((u, v))
    return pairs


def fence_points(
    threads: list[list[tuple[str, str]]],
    max_cycle_len: int = 8,
) -> dict[int, set[int]]:
    """Where to insert fences: after access ``i`` of thread ``t``.

    The conservative placement: one fence directly between each delay
    pair's two accesses (adjacent pairs come out of program edges, so
    "after the first access" is exactly "between the two").
    """
    points: dict[int, set[int]] = {}
    for (t, i), (_, _j) in delay_pairs(threads, max_cycle_len):
        points.setdefault(t, set()).add(i)
    return points


# -------------------------------------------------------------- whole-program
#: instruction fence kind -> synth mode lattice name
FENCE_MODE = {
    FenceKind.GLOBAL: "full",
    FenceKind.CLASS: "sfence-class",
    FenceKind.SET: "sfence-set",
}


def base_var(name: str) -> str:
    """``"wsq.arr[3]"`` -> ``"wsq.arr"``: the allocation a name indexes."""
    return name.split("[", 1)[0]


@dataclass(frozen=True)
class RecordedAccess:
    """One memory access observed while replaying a guest generator."""

    thread: int
    index: int
    var: str
    addr: int
    is_write: bool
    flagged: bool
    op: str  # "load" | "store" | "cas"

    @property
    def key(self) -> tuple[int, int]:
        return (self.thread, self.index)

    @property
    def base(self) -> str:
        return base_var(self.var)

    @property
    def kind(self) -> str:
        return "w" if self.is_write else "r"


@dataclass(frozen=True)
class RecordedFence:
    """One fence observed during replay.

    ``after`` is the index of the access it follows in its thread (-1
    when the fence leads the thread); ``name`` is the hand-written
    placement's slot label when the guest names its fences.
    """

    thread: int
    after: int
    mode: str
    waits: int
    speculable: bool
    name: str = ""

    def covers(self, i: int, j: int) -> bool:
        """True when the fence sits strictly between accesses i and j."""
        return i <= self.after < j


@dataclass
class ProgramSkeleton:
    """The recorded access/fence structure of one concrete execution."""

    threads: list[list[RecordedAccess]]
    fences: list[RecordedFence]
    steps: int = 0

    def thread_fences(self, thread: int) -> list[RecordedFence]:
        return [f for f in self.fences if f.thread == thread]

    def slots(self) -> dict[str, list[RecordedFence]]:
        """Named fences grouped by slot label, in recording order."""
        out: dict[str, list[RecordedFence]] = {}
        for f in self.fences:
            if f.name:
                out.setdefault(f.name, []).append(f)
        return out

    def access(self, key: tuple[int, int]) -> RecordedAccess:
        t, i = key
        return self.threads[t][i]

    def flagged_bases(self) -> frozenset[str]:
        return frozenset(
            a.base for ops in self.threads for a in ops if a.flagged
        )


def record_program(program, memory, schedule: str = "sequential",
                   max_steps: int = 200_000) -> ProgramSkeleton:
    """Concretely replay ``program`` against functional memory.

    No simulator is involved: every op executes immediately and in
    order, which yields one legal SC execution whose access sequence is
    the program skeleton the delay-set analysis runs on.  ``schedule``
    is ``"sequential"`` (run each thread to completion in turn -- fine
    for programs whose threads terminate independently) or
    ``"round-robin"`` (one op per live thread per turn -- required for
    work-sharing programs such as ptc whose threads only terminate
    once every thread's work is visible).
    """
    if schedule not in ("sequential", "round-robin"):
        raise ValueError(f"unknown replay schedule {schedule!r}")
    gens = program.spawn()
    threads: list[list[RecordedAccess]] = [[] for _ in gens]
    fences: list[RecordedFence] = []
    steps = 0

    def step(t: int, gen, send) -> tuple[bool, object]:
        """Advance thread ``t`` one op; returns (alive, next send value)."""
        nonlocal steps
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"record_program exceeded {max_steps} steps "
                f"(schedule={schedule!r}); the program does not terminate "
                f"under this replay schedule")
        try:
            op = gen.send(send)
        except StopIteration:
            return False, None
        if type(op) is BlockHint:
            # replay the hinted ops for their memory effects; per the
            # hint contract the guest never consumes their results
            for sub in op.ops:
                apply_op(t, sub)
            return True, None
        return True, apply_op(t, op)

    def apply_op(t: int, op) -> object:
        """Apply one op's functional effect; returns the send value."""
        accesses = threads[t]
        if isinstance(op, Load):
            value = memory.read_global(op.addr)
            accesses.append(RecordedAccess(
                t, len(accesses), op.name or f"@{op.addr}", op.addr,
                False, op.flagged, "load"))
            return value
        if isinstance(op, Store):
            memory.write_global(op.addr, op.value)
            accesses.append(RecordedAccess(
                t, len(accesses), op.name or f"@{op.addr}", op.addr,
                True, op.flagged, "store"))
            return None
        if isinstance(op, Cas):
            current = memory.read_global(op.addr)
            success = current == op.expected
            if success:
                memory.write_global(op.addr, op.new)
            accesses.append(RecordedAccess(
                t, len(accesses), op.name or f"@{op.addr}", op.addr,
                True, op.flagged, "cas"))
            return success
        if isinstance(op, Fence):
            fences.append(RecordedFence(
                t, len(accesses) - 1, FENCE_MODE[op.kind], op.waits,
                op.speculable, getattr(op, "name", "")))
            return None
        if isinstance(op, (FsStart, FsEnd, Compute, Branch, Probe)):
            return None
        raise TypeError(f"cannot replay op {op!r}")

    if schedule == "sequential":
        for t, gen in enumerate(gens):
            alive, send = True, None
            while alive:
                alive, send = step(t, gen, send)
    else:
        live = {t: (gen, None) for t, gen in enumerate(gens)}
        while live:
            for t in list(live):
                gen, send = live[t]
                alive, send = step(t, gen, send)
                if alive:
                    live[t] = (gen, send)
                else:
                    del live[t]
    return ProgramSkeleton(threads, fences, steps)


def skeleton_graph(skel: ProgramSkeleton) -> nx.DiGraph:
    """The Shasha-Snir graph of a recorded skeleton.

    Unlike :func:`conflict_graph` (consecutive program edges only --
    adequate for litmus programs whose critical cycles use adjacent
    accesses), program edges here are *transitive*: real programs have
    critical cycles between accesses many ops apart, and the bounded
    cycle search below relies on one program edge reaching any later
    access of the thread.
    """
    g = nx.DiGraph()
    for ops in skel.threads:
        for a in ops:
            g.add_node(a.key, var=a.var, base=a.base, addr=a.addr,
                       is_write=a.is_write, thread=a.thread,
                       flagged=a.flagged)
        for i, u in enumerate(ops):
            for v in ops[i + 1:]:
                g.add_edge(u.key, v.key, kind="program")
    by_addr: dict[int, list[RecordedAccess]] = {}
    for ops in skel.threads:
        for a in ops:
            by_addr.setdefault(a.addr, []).append(a)
    for group in by_addr.values():
        for a, b in combinations(group, 2):
            if a.thread != b.thread and (a.is_write or b.is_write):
                g.add_edge(a.key, b.key, kind="conflict")
                g.add_edge(b.key, a.key, kind="conflict")
    return g


def critical_cycles(g: nx.DiGraph,
                    max_threads: int = 3) -> list[list[tuple[int, int]]]:
    """Enumerate the critical cycles of a skeleton graph.

    A critical cycle visits at most two accesses per thread, adjacent
    on the cycle, through at most ``max_threads`` distinct threads.
    The search walks thread *blocks* (enter a thread over a conflict
    edge, optionally take one transitive program step, leave over a
    conflict edge), so the Shasha-Snir shape holds by construction and
    the exponential :func:`networkx.simple_cycles` sweep is avoided.
    Each cycle is discovered exactly once, anchored at its minimal
    block-entry node.
    """
    conf: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for u, v, d in g.edges(data=True):
        if d["kind"] == "conflict":
            conf.setdefault(u, []).append(v)
    sources: dict[int, list[tuple[int, int]]] = {}
    for u in conf:
        sources.setdefault(g.nodes[u]["thread"], []).append(u)
    for lst in sources.values():
        lst.sort()
    seen: set[tuple[tuple[int, int], ...]] = set()
    cycles: list[list[tuple[int, int]]] = []

    def block_exits(entry):
        """Ways to leave ``entry``'s thread: at entry, or one step on."""
        out = []
        if entry in conf:
            out.append((entry, [entry]))
        for x in sources.get(g.nodes[entry]["thread"], ()):
            if x > entry:
                out.append((x, [entry, x]))
        return out

    def visit(path, threads_used, start):
        entry = path[-1]
        for exit_node, block in block_exits(entry):
            full = path[:-1] + block
            for v in conf.get(exit_node, ()):
                if v == start:
                    if len(threads_used) >= 2:
                        key = tuple(full)
                        if key not in seen:
                            seen.add(key)
                            cycles.append(list(full))
                    continue
                if v < start:
                    continue
                tv = g.nodes[v]["thread"]
                if tv in threads_used or len(threads_used) >= max_threads:
                    continue
                visit(full + [v], threads_used | {tv}, start)

    starts = sorted({v for targets in conf.values() for v in targets})
    for s in starts:
        visit([s], {g.nodes[s]["thread"]}, s)
    return cycles


def skeleton_delay_pairs(
    g: nx.DiGraph,
    cycles: list[list[tuple[int, int]]],
) -> set[tuple[tuple[int, int], tuple[int, int]]]:
    """Same-thread adjacent pairs over ``cycles``, earlier access first."""
    pairs: set[tuple[tuple[int, int], tuple[int, int]]] = set()
    for cycle in cycles:
        n = len(cycle)
        for pos, node in enumerate(cycle):
            nxt = cycle[(pos + 1) % n]
            if node[0] == nxt[0] and node != nxt:
                u, v = (node, nxt) if node[1] < nxt[1] else (nxt, node)
                pairs.add((u, v))
    return pairs


def cycle_components(
    cycles: list[list[tuple[int, int]]],
) -> list[list[list[tuple[int, int]]]]:
    """Group cycles that share at least one access (union-find)."""
    parent: dict[tuple[int, int], tuple[int, int]] = {}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for cycle in cycles:
        for node in cycle:
            parent.setdefault(node, node)
        for node in cycle[1:]:
            union(cycle[0], node)
    groups: dict[tuple[int, int], list[list[tuple[int, int]]]] = {}
    for cycle in cycles:
        groups.setdefault(find(cycle[0]), []).append(cycle)
    return [groups[root] for root in sorted(groups)]


# ---------------------------------------------- runtime-checkable requirements
def required_patterns(
    skel: ProgramSkeleton,
    pairs: set[tuple[tuple[int, int], tuple[int, int]]],
) -> set[tuple[str, str, str, str]]:
    """Base-level ``(base_a, 'w', base_b, kind_b)`` ordering requirements.

    Only store-first pairs over *distinct* bases survive: those are the
    requirements a store-buffer monitor can check at runtime (an older
    store to ``base_a`` still buffered when an access to ``base_b``
    becomes visible).  Load-first delay pairs are enforced by fences
    too, but their violation is not observable from the drain stream.
    """
    patterns: set[tuple[str, str, str, str]] = set()
    for u, v in pairs:
        a, b = skel.access(u), skel.access(v)
        if a.kind != "w" or a.base == b.base:
            continue
        patterns.add((a.base, "w", b.base, b.kind))
    return patterns


def _fence_adequate(fence: RecordedFence, mode: str, kind_b: str,
                    a_flagged: bool, b_flagged: bool) -> bool:
    """Does this fence, run at ``mode``, order a-(store) before b?

    The scoped-fence semantics this mirrors: any fence drains older
    stores it waits on, so (w, w) is ordered even by speculable
    fences (store-past-fence / cas-past-fence invariants); (w, r)
    additionally needs a non-speculable fence, since a speculative
    fence does not block younger loads from completing early.  A
    set-scope fence only orders flagged accesses.
    """
    if mode == "none":
        return False
    if not fence.waits & WAIT_STORES:
        return False
    if kind_b == "r" and fence.speculable:
        return False
    if mode == "sfence-set" and not (a_flagged and b_flagged):
        return False
    return True


def enforced_patterns(
    skel: ProgramSkeleton,
    patterns: set[tuple[str, str, str, str]],
    modes: dict[str, str] | None = None,
) -> set[tuple[str, str, str, str]]:
    """The subset of ``patterns`` every static occurrence of which is
    separated by an adequate fence.

    An occurrence of ``(base_a, 'w', base_b, kind_b)`` is any
    same-thread pair ``i < j`` matching the bases and kinds; the
    pattern holds only when *every* occurrence has a fence strictly
    between whose mode/waits/speculability/scope orders the pair (see
    :func:`_fence_adequate`).  ``modes`` overrides the mode of named
    fences by slot label ("none" disables the slot), which is how a
    synthesized placement is statically checked against the floor.
    """
    fences_by_thread: dict[int, list[RecordedFence]] = {}
    for f in skel.fences:
        fences_by_thread.setdefault(f.thread, []).append(f)

    def fence_mode(f: RecordedFence) -> str:
        if modes is not None and f.name and f.name in modes:
            return modes[f.name]
        return f.mode

    held: set[tuple[str, str, str, str]] = set()
    for pattern in patterns:
        base_a, _, base_b, kind_b = pattern
        ok = True
        for t, ops in enumerate(skel.threads):
            if not ok:
                break
            fences = fences_by_thread.get(t, [])
            firsts = [a for a in ops if a.base == base_a and a.kind == "w"]
            seconds = [b for b in ops
                       if b.base == base_b and b.kind == kind_b]
            for a in firsts:
                for b in seconds:
                    if b.index <= a.index:
                        continue
                    if not any(
                        f.covers(a.index, b.index)
                        and _fence_adequate(f, fence_mode(f), kind_b,
                                            a.flagged, b.flagged)
                        for f in fences
                    ):
                        ok = False
                        break
                if not ok:
                    break
        if ok:
            held.add(pattern)
    return held
