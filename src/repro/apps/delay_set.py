"""Delay-set analysis (Shasha-Snir) and trace-based access classification.

The paper's barnes/radiosity experiments rely on a compiler that
enforces sequential consistency by inserting fences at *delay pairs*
found by delay-set analysis [38], and on the observation that accesses
to private or shared-read-only data are never part of a conflict and
therefore are not flagged for set-scope fences (Section VI-B, citing
Singh et al. [40]).

Two tools here:

* :func:`classify_trace` -- dynamic classification: partition the
  addresses of a memory trace into ``private`` / ``shared_read_only`` /
  ``conflicting``.  An address conflicts iff at least two cores access
  it and at least one of them writes.  The set-scope flag assignments
  of the barnes/radiosity guests are validated against this partition
  in the test suite.
* :func:`delay_pairs` -- static Shasha-Snir analysis for small
  (litmus-sized) programs: find the program-order pairs that lie on a
  *critical cycle* of the conflict graph; exactly those pairs need a
  fence to restore SC.  Dekker's classic two delay pairs fall out of
  this directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import networkx as nx

from ..sim.trace import TraceCollector


@dataclass(frozen=True)
class AddressClassification:
    """Partition of traced addresses."""

    private: frozenset[int]
    shared_read_only: frozenset[int]
    conflicting: frozenset[int]

    def flagged(self) -> frozenset[int]:
        """The addresses a set-scope compiler must flag."""
        return self.conflicting


def classify_trace(trace: TraceCollector) -> AddressClassification:
    """Classify every address appearing in ``trace``."""
    readers: dict[int, set[int]] = {}
    writers: dict[int, set[int]] = {}
    for rec in trace.records:
        if rec.kind == "load":
            readers.setdefault(rec.addr, set()).add(rec.core)
        else:  # store or cas
            writers.setdefault(rec.addr, set()).add(rec.core)
    private: set[int] = set()
    read_only: set[int] = set()
    conflicting = set()
    for addr in set(readers) | set(writers):
        r = readers.get(addr, set())
        w = writers.get(addr, set())
        cores = r | w
        if len(cores) <= 1:
            private.add(addr)
        elif not w:
            read_only.add(addr)
        else:
            conflicting.add(addr)
    return AddressClassification(
        frozenset(private), frozenset(read_only), frozenset(conflicting)
    )


# --------------------------------------------------------------------- static
@dataclass(frozen=True)
class Access:
    """One static access in a thread program."""

    thread: int
    index: int
    var: str
    is_write: bool

    @property
    def key(self) -> tuple[int, int]:
        return (self.thread, self.index)


def _parse(threads: list[list[tuple[str, str]]]) -> list[Access]:
    accesses = []
    for t, ops in enumerate(threads):
        for i, (var, mode) in enumerate(ops):
            if mode not in ("r", "w"):
                raise ValueError(f"access mode must be 'r' or 'w', got {mode!r}")
            accesses.append(Access(t, i, var, mode == "w"))
    return accesses


def conflict_graph(threads: list[list[tuple[str, str]]]) -> nx.DiGraph:
    """The mixed program/conflict graph of Shasha-Snir.

    Nodes are ``(thread, index)``; program edges follow program order
    within a thread, conflict edges connect (both directions) accesses
    of the same variable on different threads when at least one writes.
    """
    accesses = _parse(threads)
    g = nx.DiGraph()
    for a in accesses:
        g.add_node(a.key, var=a.var, is_write=a.is_write, thread=a.thread)
    by_thread: dict[int, list[Access]] = {}
    for a in accesses:
        by_thread.setdefault(a.thread, []).append(a)
    for ops in by_thread.values():
        ops.sort(key=lambda a: a.index)
        for u, v in zip(ops, ops[1:]):
            g.add_edge(u.key, v.key, kind="program")
    for a, b in combinations(accesses, 2):
        if a.thread != b.thread and a.var == b.var and (a.is_write or b.is_write):
            g.add_edge(a.key, b.key, kind="conflict")
            g.add_edge(b.key, a.key, kind="conflict")
    return g


def _is_critical(cycle: list[tuple[int, int]], g: nx.DiGraph) -> bool:
    """Shasha-Snir critical cycle: <= 2 accesses per thread, adjacent."""
    per_thread: dict[int, list[int]] = {}
    for pos, node in enumerate(cycle):
        per_thread.setdefault(g.nodes[node]["thread"], []).append(pos)
    n = len(cycle)
    for positions in per_thread.values():
        if len(positions) > 2:
            return False
        if len(positions) == 2:
            a, b = positions
            if not (b - a == 1 or (a == 0 and b == n - 1)):
                return False
    return True


def delay_pairs(
    threads: list[list[tuple[str, str]]],
    max_cycle_len: int = 8,
) -> set[tuple[tuple[int, int], tuple[int, int]]]:
    """Program-order pairs that must be enforced to guarantee SC.

    Returns pairs of ``(thread, index)`` node keys, earlier access
    first.  A fence (or other enforcement) between each pair restores
    SC per Shasha-Snir.
    """
    g = conflict_graph(threads)
    pairs: set[tuple[tuple[int, int], tuple[int, int]]] = set()
    for cycle in nx.simple_cycles(g):
        if len(cycle) < 2 or len(cycle) > max_cycle_len:
            continue
        if not _is_critical(cycle, g):
            continue
        n = len(cycle)
        for pos, node in enumerate(cycle):
            nxt = cycle[(pos + 1) % n]
            if g.nodes[node]["thread"] == g.nodes[nxt]["thread"]:
                u, v = node, nxt
                if u[1] > v[1]:
                    u, v = v, u
                pairs.add((u, v))
    return pairs


def fence_points(
    threads: list[list[tuple[str, str]]],
    max_cycle_len: int = 8,
) -> dict[int, set[int]]:
    """Where to insert fences: after access ``i`` of thread ``t``.

    The conservative placement: one fence directly between each delay
    pair's two accesses (adjacent pairs come out of program edges, so
    "after the first access" is exactly "between the two").
    """
    points: dict[int, set[int]] = {}
    for (t, i), (_, _j) in delay_pairs(threads, max_cycle_len):
        points.setdefault(t, set()).add(i)
    return points
