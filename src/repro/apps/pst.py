"""Parallel spanning tree over a work-stealing deque (``pst``, Table IV).

The Bader-Cong style algorithm of Figure 3: each thread takes a vertex
from its own Chase-Lev deque (stealing from peers when empty), claims
unvisited neighbors, records their ``parent``, and pushes them for
later expansion.  Work-stealing queues use class-scope S-Fences; the
application itself needs one *full* fence between the ``color`` claim
and the ``parent`` store under relaxed models -- the paper points at
exactly this fence as the reason pst profits less from S-Fence than
barnes/radiosity (Section VI-B).

Scale model: ``color``/``parent`` and the adjacency arrays are padded
to one cache line per record, reproducing the irregular-graph miss
behaviour of paper-sized inputs at simulable vertex counts.

Termination uses a shared pending-work counter: incremented (CAS)
before every ``put``, decremented after a task is fully expanded; all
threads exit when it reaches zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.chase_lev import WorkStealingDeque
from ..isa.instructions import Compute, Fence, FenceKind, WAIT_BOTH
from ..isa.program import Program
from ..runtime.lang import Env, SharedArray, SharedVar
from .graphs import CsrGraph, random_connected_graph


@dataclass
class PstInstance:
    """Everything a pst run needs, plus its checker."""

    program: Program
    graph: CsrGraph
    color: SharedArray
    parent: SharedArray
    root: int

    def check(self) -> None:
        g = self.graph
        n = g.n
        colored = [self.color.peek(v) for v in range(n)]
        assert all(c != 0 for c in colored), (
            f"pst: {sum(1 for c in colored if c == 0)} vertices left uncolored"
        )
        # parent edges must be real graph edges and form a tree on the root
        seen_depth = 0
        for v in range(n):
            if v == self.root:
                continue
            p = self.parent.peek(v) - 1  # stored as parent+1
            assert 0 <= p < n, f"pst: vertex {v} has invalid parent {p}"
            assert p in g.neighbors_of(v), f"pst: parent edge ({p},{v}) not in graph"
        # acyclicity / reachability: walking parents must reach the root
        for v in range(n):
            hops = 0
            u = v
            while u != self.root:
                u = self.parent.peek(u) - 1
                hops += 1
                assert hops <= n, f"pst: parent chain from {v} does not reach root"
            seen_depth = max(seen_depth, hops)
        assert seen_depth > 0 or n == 1


def _cas_add(var: SharedVar, delta: int):
    """Guest fragment: atomic add via a CAS loop."""
    while True:
        v = yield var.load()
        ok = yield var.cas(v, v + delta)
        if ok:
            return v + delta


def build_pst(
    env: Env,
    n_vertices: int = 192,
    extra_edges: int = 192,
    n_threads: int = 8,
    scope: FenceKind = FenceKind.CLASS,
    seed: int = 11,
    deque_capacity: int | None = None,
    app_full_fence: bool = True,
    compute_per_neighbor: int = 25,
    deque_factory=None,
) -> PstInstance:
    """Construct the pst guest program.

    ``scope`` picks the fence flavour inside the work-stealing deques
    (GLOBAL = the traditional baseline).  ``app_full_fence=False``
    drops the application-level full fence (ablation only -- the paper
    keeps it, and so do the benchmarks).  ``deque_factory(env, name,
    capacity, scope)`` swaps the work-stealing structure -- used by the
    idempotent-work-stealing comparison (the tasks are naturally
    idempotent here: claims are CAS-deduplicated).
    """
    graph = random_connected_graph(n_vertices, extra_edges, seed=seed)
    wpl = env.config.words_per_line

    # read-only adjacency in CSR form (offsets contiguous, neighbor
    # records one per line: irregular-graph scale model)
    offsets = env.array("pst.offsets", graph.n + 1)
    for i, off in enumerate(graph.offsets):
        offsets.poke(i, off)
    neighbors = env.line_array("pst.neighbors", max(1, graph.n_edges))
    for i, w in enumerate(graph.neighbors):
        neighbors.poke(i, w)

    color = env.line_array("pst.color", graph.n)
    parent = env.line_array("pst.parent", graph.n)
    # exactly-once expansion guard: under the in-window-speculation
    # approximation a take/steal race can hand the same task to two
    # threads (real hardware would replay the violated load); the CAS
    # guard keeps the pending counter exact in every configuration
    expanded = env.line_array("pst.expanded", graph.n)
    # the vertex records are hot across the whole run (every thread scans
    # them); model steady-state L2 residency so pst's behaviour is the
    # paper's: mostly latency-insensitive, dominated by its full fence
    env.request_warm(color, 0)
    env.request_warm(parent, 0)
    env.request_warm(neighbors, 0)
    env.request_warm(expanded, 0)
    pending = env.var("pst.pending")
    if deque_factory is None:
        deque_factory = lambda env, name, capacity, scope: WorkStealingDeque(  # noqa: E731
            env, name=name, capacity=capacity, scope=scope
        )
    deques = [
        deque_factory(env, f"pst.wsq{t}", deque_capacity or (graph.n + 4), scope)
        for t in range(n_threads)
    ]

    root = 0
    color.poke(root, 1)  # claimed by thread 0's label before the run
    pending.poke(1)

    def thread(tid: int):
        label = tid + 1
        my = deques[tid]
        if tid == 0:
            yield from my.put(root + 1)  # tasks are vertex+1 (0 is EMPTY-ish)
        while True:
            task = yield from my.take()
            if task < 0:
                for k in range(1, n_threads):  # try to steal round-robin
                    victim = deques[(tid + k) % n_threads]
                    task = yield from victim.steal()
                    if task >= 0:
                        break
            if task < 0:
                if (yield pending.load()) <= 0:
                    return
                continue
            v = task - 1
            ok = yield expanded.cas(v, 0, 1)
            if not ok:
                continue  # duplicate delivery of the same task: skip
            off = yield offsets.load(v)
            end = yield offsets.load(v + 1)
            for i in range(off, end):
                w = yield neighbors.load(i)
                c = yield color.load(w)
                if compute_per_neighbor:
                    yield Compute(compute_per_neighbor)  # per-neighbor processing
                if c == 0:
                    ok = yield color.cas(w, 0, label)
                    if ok:
                        if app_full_fence:
                            # the application-level ordering requirement
                            # between the color claim and the parent
                            # store: a traditional full fence (the paper
                            # does not scope it)
                            yield Fence(FenceKind.GLOBAL, WAIT_BOTH)
                        yield parent.store(w, v + 1)
                        yield from _cas_add(pending, 1)
                        yield from my.put(w + 1)
            yield from _cas_add(pending, -1)

    return PstInstance(
        Program([thread] * n_threads, name="pst"),
        graph,
        color,
        parent,
        root,
    )
