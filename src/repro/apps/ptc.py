"""Parallel transitive closure over work-stealing deques (``ptc``).

Foster's worklist formulation: every vertex carries a reachability
bitmask ``reach[v]`` (bit ``v`` plus everything reachable from ``v``).
Processing a vertex recomputes its mask from its successors; when the
mask grows, all predecessors are re-enqueued.  The fixpoint is the
transitive closure of the DAG.

Like pst, the work-stealing deques carry class-scope S-Fences.  Unlike
pst there is no application-level full fence, and the per-task workload
(several mask loads + a CAS merge) is comparatively large -- which is
why the paper sees only a small fence-stall share for ptc.

Vertex count is bounded by the 63 usable bits of one memory word; the
reach masks are padded one-per-line (scale model of big reach sets).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.chase_lev import WorkStealingDeque
from ..isa.instructions import Compute, FenceKind
from ..isa.program import Program
from ..runtime.lang import Env, SharedArray, SharedVar
from .graphs import CsrGraph, predecessors_of, random_dag


@dataclass
class PtcInstance:
    """A ptc run plus its fixpoint checker."""

    program: Program
    graph: CsrGraph  # successor CSR
    reach: SharedArray

    def expected_closure(self) -> list[int]:
        """Host-side reference: reach masks via reverse topological order."""
        g = self.graph
        masks = [1 << v for v in range(g.n)]
        for v in range(g.n - 1, -1, -1):  # random_dag edges go low -> high
            for s in g.neighbors_of(v):
                masks[v] |= masks[s]
        return masks

    def check(self) -> None:
        expected = self.expected_closure()
        actual = [self.reach.peek(v) for v in range(self.graph.n)]
        bad = [v for v in range(self.graph.n) if actual[v] != expected[v]]
        assert not bad, (
            f"ptc: wrong closure at vertices {bad[:5]} "
            f"(e.g. v={bad[0]}: {actual[bad[0]]:#x} != {expected[bad[0]]:#x})"
        )


def _cas_add(var: SharedVar, delta: int):
    while True:
        v = yield var.load()
        ok = yield var.cas(v, v + delta)
        if ok:
            return v + delta


def build_ptc(
    env: Env,
    n_vertices: int = 56,
    avg_out_degree: float = 2.5,
    n_threads: int = 8,
    scope: FenceKind = FenceKind.CLASS,
    seed: int = 23,
    compute_per_successor: int = 60,
    fence_plan=None,
) -> PtcInstance:
    """Construct the ptc guest program."""
    if n_vertices > 63:
        raise ValueError("reach masks use one 64-bit word: n_vertices <= 63")
    graph = random_dag(n_vertices, avg_out_degree, seed=seed)
    preds = predecessors_of(graph)

    succ_off = env.array("ptc.succ_off", graph.n + 1)
    succ = env.line_array("ptc.succ", max(1, graph.n_edges))
    pred_off = env.array("ptc.pred_off", preds.n + 1)
    pred = env.line_array("ptc.pred", max(1, preds.n_edges))
    for i, off in enumerate(graph.offsets):
        succ_off.poke(i, off)
    for i, w in enumerate(graph.neighbors):
        succ.poke(i, w)
    for i, off in enumerate(preds.offsets):
        pred_off.poke(i, off)
    for i, w in enumerate(preds.neighbors):
        pred.poke(i, w)

    reach = env.line_array("ptc.reach", graph.n)
    for v in range(graph.n):
        reach.poke(v, 1 << v)

    pending = env.var("ptc.pending")
    pending.poke(graph.n)  # every vertex is seeded once
    # each vertex can be re-enqueued once per predecessor per growth wave;
    # 64*n is far beyond any realistic in-flight population
    ticket_space = 64 * graph.n * max(4, n_threads)
    deques = [
        WorkStealingDeque(env, name=f"ptc.wsq{t}", capacity=64 * graph.n,
                          scope=scope, fence_plan=fence_plan)
        for t in range(n_threads)
    ]
    # exactly-once consumption guard: every enqueued task instance gets a
    # unique ticket; under the in-window-speculation approximation a
    # take/steal race can deliver one instance twice (real hardware would
    # replay the violated load), which would corrupt the pending counter
    consumed = env.array("ptc.consumed", ticket_space)
    vertex_of: dict[int, int] = {}
    next_ticket = [1]

    def issue_ticket(v: int) -> int:
        t = next_ticket[0]
        next_ticket[0] = t + 1
        if t >= ticket_space:
            raise MemoryError("ptc: ticket space exhausted")
        vertex_of[t] = v
        return t

    def thread(tid: int):
        my = deques[tid]
        # seed vertices round-robin across threads
        for v in range(tid, graph.n, n_threads):
            yield from my.put(issue_ticket(v))
        while True:
            task = yield from my.take()
            if task < 0:
                for k in range(1, n_threads):
                    task = yield from deques[(tid + k) % n_threads].steal()
                    if task >= 0:
                        break
            if task < 0:
                if (yield pending.load()) <= 0:
                    return
                continue
            ok = yield consumed.cas(task, 0, 1)
            if not ok:
                continue  # duplicate delivery of this task instance
            v = vertex_of[task]
            off = yield succ_off.load(v)
            end = yield succ_off.load(v + 1)
            new = 1 << v
            for i in range(off, end):
                s = yield succ.load(i)
                new |= yield reach.load(s)
                if compute_per_successor:
                    yield Compute(compute_per_successor)  # mask-merge arithmetic
            # merge via CAS so concurrent processors of v never lose bits
            grew = False
            while True:
                old = yield reach.load(v)
                if old | new == old:
                    break
                ok = yield reach.cas(v, old, old | new)
                if ok:
                    grew = True
                    break
            if grew:
                poff = yield pred_off.load(v)
                pend = yield pred_off.load(v + 1)
                for i in range(poff, pend):
                    p = yield pred.load(i)
                    yield from _cas_add(pending, 1)
                    yield from my.put(issue_ticket(p))
            yield from _cas_add(pending, -1)

    return PtcInstance(Program([thread] * n_threads, name="ptc"), graph, reach)
