"""Barnes-Hut n-body force step with SC-by-fences (``barnes``, Table IV).

The paper's barnes comes from SPLASH-2, compiled with fences that
enforce sequential consistency; delay-set analysis [Shasha-Snir] marks
only the *conflicting* accesses, so ``S-FENCE[set,...]`` fences skip
the dominant private/read-only traffic (Section VI-B).

This is a faithful-in-structure, reduced-scale force-computation step:

* a host-built quadtree over seeded 2-D bodies, flattened into
  read-only cell arrays (one line per cell record: scale model);
* guest threads claim bodies from a shared work counter (CAS),
  traverse the tree with an opening criterion (dependent loads --
  pointer chasing serialises), read the positions of nearby bodies
  (shared, *conflicting* -> flagged), accumulate into per-thread
  private scratch (unflagged, long-latency), and finally update their
  body's position (conflicting -> flagged) bracketed by SC fences.

The SC-enforcing fences are emitted at the delay-set boundary points:
before and after each conflicting (flagged) access region.  With
traditional fences these wait for the private scratch stores and any
in-flight read-only tree loads; with set scope they only wait for the
flagged accesses -- the 40-50% fence-stall reduction of Figure 13.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..isa.instructions import Compute, FenceKind, WAIT_BOTH
from ..isa.program import Program
from ..runtime.harness import FencePlan, FlaggedExchange, ScratchSpill
from ..runtime.lang import Env, SharedArray
from .quadtree import Quadtree, build_quadtree

#: fixed-point scale for positions stored in integer memory words
FIX = 1 << 16


@dataclass
class BarnesInstance:
    """A barnes run plus end-of-run sanity checks."""

    program: Program
    tree: Quadtree
    pos_x: SharedArray
    pos_y: SharedArray
    n_bodies: int
    interactions: list[int] = field(default_factory=list)

    def check(self) -> None:
        assert len(self.interactions) == self.n_bodies, (
            f"barnes: only {len(self.interactions)} of {self.n_bodies} "
            f"bodies processed"
        )
        moved = sum(
            1
            for b in range(self.n_bodies)
            if (self.pos_x.peek(b), self.pos_y.peek(b)) != self.tree.initial[b]
        )
        assert moved == self.n_bodies, (
            f"barnes: only {moved} of {self.n_bodies} bodies were updated"
        )
        assert all(n > 0 for n in self.interactions), "barnes: empty traversal"


def build_barnes(
    env: Env,
    n_bodies: int = 256,
    n_threads: int = 8,
    scope: FenceKind = FenceKind.SET,
    seed: int = 5,
    theta_cells: int = 8,
    cold_spill_every: int = 1,
    compute_per_interaction: int = 4,
    exchange_every: int = 2,
    fence_plan=None,
) -> BarnesInstance:
    """Construct the barnes force-step guest program.

    ``scope=FenceKind.GLOBAL`` is the traditional-fence baseline;
    ``scope=FenceKind.SET`` flags exactly the delay-set conflicting
    data (body positions + the work counter).
    """
    rng = random.Random(seed)
    bodies = [(rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(n_bodies)]
    tree = build_quadtree(bodies, leaf_capacity=4)

    flag = scope is FenceKind.SET
    # conflicting (delay-set-flagged) data: body positions
    pos_x = env.line_array("barnes.pos_x", n_bodies, flagged=flag)
    pos_y = env.line_array("barnes.pos_y", n_bodies, flagged=flag)
    # read-only tree records (never flagged: no conflicting write)
    cell_com_x = env.line_array("barnes.com_x", tree.n_cells)
    cell_com_y = env.line_array("barnes.com_y", tree.n_cells)
    cell_mass = env.line_array("barnes.mass", tree.n_cells)
    cell_child = env.line_array("barnes.child", tree.n_cells * 4)
    cell_count = env.line_array("barnes.count", tree.n_cells)
    for b, (x, y) in enumerate(bodies):
        pos_x.poke(b, int(x * FIX))
        pos_y.poke(b, int(y * FIX))
    for c in range(tree.n_cells):
        cell_com_x.poke(c, int(tree.com[c][0] * FIX))
        cell_com_y.poke(c, int(tree.com[c][1] * FIX))
        cell_mass.poke(c, tree.count[c] * FIX)
        cell_count.poke(c, tree.count[c])
        for k in range(4):
            cell_child.poke(c * 4 + k, tree.children[c][k] + 1)  # 0 = none

    tree.initial = {b: (int(x * FIX), int(y * FIX)) for b, (x, y) in enumerate(bodies)}

    # per-thread private force accumulators (unflagged, long-latency)
    spills = [
        ScratchSpill(env, t, "barnes", cold_every=cold_spill_every)
        for t in range(n_threads)
    ]
    # conflicting body/cell-ownership exchange traffic (delay-set flagged):
    # the reason set-scope fences still stall (Section VI-B discussion)
    exchange_region = FlaggedExchange.make_region(env, "barnes.exchange", n_threads)
    exchanges = [
        FlaggedExchange(env, t, n_threads, exchange_region, every=exchange_every)
        for t in range(n_threads)
    ]

    instance = BarnesInstance(
        Program([], name="barnes"), tree, pos_x, pos_y, n_bodies
    )

    plan = fence_plan if fence_plan is not None else FencePlan.hand()

    def sc_fence(slot: str):
        return plan.fence(slot, scope, WAIT_BOTH)

    def thread(tid: int):
        spill = spills[tid]
        exchange = exchanges[tid]
        # SPLASH-2 style static partitioning: bodies tid, tid+P, ...
        for b in range(tid, n_bodies, n_threads):
            # delay-set boundary before conflicting reads
            yield from sc_fence("gather")
            ax = ay = 0
            visited = 0
            stack = [tree.root]
            bx = yield pos_x.load(b)  # flagged read of own position
            by = yield pos_y.load(b)
            while stack:
                c = stack.pop()
                visited += 1
                count = yield cell_count.load(c)
                cx = yield cell_com_x.load(c)
                cy = yield cell_com_y.load(c)
                if count <= theta_cells or tree.is_leaf(c):
                    if tree.is_leaf(c):
                        # read the (conflicting) positions of leaf bodies
                        for ob in tree.leaf_bodies(c):
                            if ob != b:
                                ox = yield pos_x.load(ob)
                                oy = yield pos_y.load(ob)
                                ax += (ox - bx) >> 8
                                ay += (oy - by) >> 8
                    else:
                        ax += (cx - bx) >> 8
                        ay += (cy - by) >> 8
                    yield Compute(compute_per_interaction)  # force kernel arithmetic
                else:
                    for k in range(4):
                        child = yield cell_child.load(c * 4 + k)
                        if child:
                            stack.append(child - 1)
            instance.interactions.append(visited)
            # spill the accumulated force to private scratch (unflagged,
            # long-latency stores pending at the next fence)
            yield spill.store(ax & ((1 << 62) - 1))
            yield spill.store(ay & ((1 << 62) - 1))
            yield from exchange.emit(b + 1)  # conflicting ownership traffic
            # position update: conflicting accesses, SC-fence bracketed
            yield from sc_fence("publish")
            yield pos_x.store(b, bx + (ax >> 8) + 1)
            yield pos_y.store(b, by + (ay >> 8) + 1)
            yield from sc_fence("flush")

    instance.program = Program([thread] * n_threads, name="barnes")
    return instance
