"""Cilk-style fork-join runtime on the work-stealing deque (extension).

The paper's Section II-A motivates fence cost with Frigo et al.'s
observation that Cilk-5's THE protocol "spends half of its time
executing a memory fence".  This module builds a miniature Cilk: a
fork-join ``fib(n)`` computation scheduled THE-style over per-thread
Chase-Lev deques, with join counters in shared memory (CAS-decremented)
and results delivered through shared result slots.

Every ``take``/``put``/``steal`` executes the deque's fences, so the
fence-stall share of total runtime directly reflects the THE-protocol
observation -- and class-scope S-Fences shrink it.

Tasks are tickets (exactly-once consumption guard, as in pst/ptc) into
a host-side frame table; each frame is either a *fork* (spawn two
children, then wait) or a *join* continuation (sum the children).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algorithms.chase_lev import WorkStealingDeque
from ..isa.instructions import Compute, Fence, FenceKind, WAIT_STORES
from ..isa.program import Program
from ..runtime.lang import Env, SharedArray, SharedVar


def fib(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def fib_frames(n: int) -> int:
    """Number of call frames the naive fork-join fib(n) creates."""
    if n < 2:
        return 1
    return 1 + fib_frames(n - 1) + fib_frames(n - 2)


@dataclass
class CilkFibInstance:
    """A fork-join fib run plus its checker."""

    program: Program
    n: int
    result: SharedVar
    done: SharedVar
    frames_used: list = field(default_factory=list)

    def check(self) -> None:
        assert self.done.peek() == 1, "cilk_fib: computation did not finish"
        got = self.result.peek()
        expect = fib(self.n)
        assert got == expect, f"cilk_fib: fib({self.n}) = {got}, expected {expect}"


def build_cilk_fib(
    env: Env,
    n: int = 11,
    n_threads: int = 8,
    scope: FenceKind = FenceKind.CLASS,
    work_per_task: int = 10,
) -> CilkFibInstance:
    """Construct the fork-join fib(n) guest program."""
    max_frames = fib_frames(n) + 4
    # frame state in shared memory: join counters and two child results
    join = env.line_array("cilk.join", max_frames)
    res_a = env.line_array("cilk.res_a", max_frames)
    res_b = env.line_array("cilk.res_b", max_frames)
    result = env.var("cilk.result")
    done = env.var("cilk.done")
    # tickets: exactly-once consumption guard (see pst/ptc)
    ticket_space = 4 * max_frames
    consumed = env.array("cilk.consumed", ticket_space + 2)

    deques = [
        WorkStealingDeque(env, name=f"cilk.wsq{t}", capacity=2 * max_frames, scope=scope)
        for t in range(n_threads)
    ]

    # host-side frame/task tables
    # frame: [n, parent_frame, parent_slot]  (slot 0 = res_a, 1 = res_b)
    frames: dict[int, tuple[int, int, int]] = {}
    task_of_ticket: dict[int, tuple[str, int]] = {}  # ticket -> (kind, frame)
    next_ids = [0, 1]  # frame counter, ticket counter

    def new_frame(num: int, parent: int, slot: int) -> int:
        fid = next_ids[0]
        next_ids[0] += 1
        if fid >= max_frames:
            raise MemoryError("cilk_fib: frame table exhausted")
        frames[fid] = (num, parent, slot)
        return fid

    def new_ticket(kind: str, frame: int) -> int:
        t = next_ids[1]
        next_ids[1] += 1
        if t >= ticket_space:
            raise MemoryError("cilk_fib: ticket space exhausted")
        task_of_ticket[t] = (kind, frame)
        return t

    root = new_frame(n, -1, 0)

    def deliver(frame_id: int, value: int, my):
        """Report ``value`` to the frame's parent; guest fragment."""
        num, parent, slot = frames[frame_id]
        if parent < 0:
            yield result.store(value)
            yield done.store(1)
            return
        yield (res_a if slot == 0 else res_b).store(parent, value)
        # runtime-level ordering: the result must be visible before the
        # join counter moves.  This fence belongs to the *application's*
        # sync protocol (like pst's color/parent fence), so it stays a
        # traditional full fence -- S-Fence does not optimise it.
        yield Fence(FenceKind.GLOBAL, WAIT_STORES)
        # join-counter decrement: last child enqueues the continuation
        while True:
            j = yield join.load(parent)
            ok = yield join.cas(parent, j, j - 1)
            if ok:
                break
        if j - 1 == 0:
            yield from my.put(new_ticket("join", parent) + 1)

    def execute(ticket: int, my):
        kind, frame_id = task_of_ticket[ticket]
        num, parent, slot = frames[frame_id]
        if work_per_task:
            yield Compute(work_per_task)
        if kind == "fork":
            if num < 2:
                yield from deliver(frame_id, num, my)
                return
            yield join.store(frame_id, 2)
            # the join counter must be visible before either child can
            # be stolen and report back (application-level ordering)
            yield Fence(FenceKind.GLOBAL, WAIT_STORES)
            child_a = new_frame(num - 1, frame_id, 0)
            child_b = new_frame(num - 2, frame_id, 1)
            yield from my.put(new_ticket("fork", child_a) + 1)
            yield from my.put(new_ticket("fork", child_b) + 1)
        else:  # join continuation: both children have reported
            a = yield res_a.load(frame_id)
            b = yield res_b.load(frame_id)
            yield from deliver(frame_id, a + b, my)

    def thread(tid: int):
        my = deques[tid]
        if tid == 0:
            yield from my.put(new_ticket("fork", root) + 1)
        while True:
            if (yield done.load()):
                return
            task = yield from my.take()
            if task < 0:
                for k in range(1, n_threads):
                    task = yield from deques[(tid + k) % n_threads].steal()
                    if task >= 0:
                        break
            if task < 0:
                continue
            ok = yield consumed.cas(task, 0, 1)
            if not ok:
                continue  # duplicate delivery (speculation approximation)
            yield from execute(task - 1, my)

    instance = CilkFibInstance(
        Program([thread] * n_threads, name="cilk_fib"), n, result, done
    )
    instance.frames_used = frames
    return instance
