"""Seeded workload-graph generators for the full applications.

The paper's pst/ptc are *irregular* graph applications: poor locality
on the ``color``/``parent``/adjacency arrays is what creates the
long-latency accesses whose ordering a class-scope fence can skip.
These generators produce connected random graphs in a flat CSR-like
layout suitable for guest programs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class CsrGraph:
    """Compressed sparse row graph (undirected unless stated)."""

    n: int
    offsets: list[int]   # len n+1
    neighbors: list[int]

    def degree(self, v: int) -> int:
        return self.offsets[v + 1] - self.offsets[v]

    def neighbors_of(self, v: int) -> list[int]:
        return self.neighbors[self.offsets[v] : self.offsets[v + 1]]

    @property
    def n_edges(self) -> int:
        return len(self.neighbors)


def random_connected_graph(n: int, extra_edges: int, seed: int = 0, shuffle: bool = True) -> CsrGraph:
    """A connected undirected graph: random spanning tree + extra edges.

    Vertex ids are shuffled so that neighbor lists jump around memory --
    the irregular-access pattern the paper's graph workloads exhibit.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = random.Random(seed)
    ids = list(range(n))
    if shuffle:
        rng.shuffle(ids)
    adj: list[set[int]] = [set() for _ in range(n)]
    for i in range(1, n):
        a, b = ids[i], ids[rng.randrange(i)]
        adj[a].add(b)
        adj[b].add(a)
    for _ in range(extra_edges):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            adj[a].add(b)
            adj[b].add(a)
    offsets = [0]
    neighbors: list[int] = []
    for v in range(n):
        nbrs = sorted(adj[v], key=lambda x: rng.random())
        neighbors.extend(nbrs)
        offsets.append(len(neighbors))
    return CsrGraph(n, offsets, neighbors)


def random_dag(n: int, avg_out_degree: float, seed: int = 0) -> CsrGraph:
    """A random DAG (edges from lower to higher topological rank).

    Used by the transitive-closure workload; returned in CSR form with
    *successor* lists.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = random.Random(seed)
    succ: list[set[int]] = [set() for _ in range(n)]
    n_edges = int(avg_out_degree * n)
    for _ in range(n_edges):
        a = rng.randrange(n - 1)
        b = rng.randrange(a + 1, n)
        succ[a].add(b)
    # make sure ranks are not trivially ordered in memory
    offsets = [0]
    neighbors: list[int] = []
    for v in range(n):
        nbrs = sorted(succ[v], key=lambda x: rng.random())
        neighbors.extend(nbrs)
        offsets.append(len(neighbors))
    return CsrGraph(n, offsets, neighbors)


def predecessors_of(graph: CsrGraph) -> CsrGraph:
    """Reverse a successor-CSR DAG into a predecessor-CSR DAG."""
    preds: list[list[int]] = [[] for _ in range(graph.n)]
    for v in range(graph.n):
        for w in graph.neighbors_of(v):
            preds[w].append(v)
    offsets = [0]
    neighbors: list[int] = []
    for v in range(graph.n):
        neighbors.extend(preds[v])
        offsets.append(len(neighbors))
    return CsrGraph(graph.n, offsets, neighbors)
