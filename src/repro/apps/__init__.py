"""Full applications (Table IV rows 5-8) and supporting analyses."""

from .barnes import BarnesInstance, build_barnes
from .cilk_fib import CilkFibInstance, build_cilk_fib
from .delay_set import (
    AddressClassification,
    classify_trace,
    conflict_graph,
    delay_pairs,
    fence_points,
)
from .graphs import CsrGraph, predecessors_of, random_connected_graph, random_dag
from .pst import PstInstance, build_pst
from .ptc import PtcInstance, build_ptc
from .quadtree import Quadtree, build_quadtree
from .radiosity import RadiosityInstance, build_radiosity

__all__ = [
    "AddressClassification",
    "BarnesInstance",
    "CilkFibInstance",
    "CsrGraph",
    "PstInstance",
    "PtcInstance",
    "Quadtree",
    "RadiosityInstance",
    "build_barnes",
    "build_cilk_fib",
    "build_pst",
    "build_ptc",
    "build_quadtree",
    "build_radiosity",
    "classify_trace",
    "conflict_graph",
    "delay_pairs",
    "fence_points",
    "predecessors_of",
    "random_connected_graph",
    "random_dag",
]
