"""Iterative radiosity kernel with SC-by-fences (``radiosity``, Table IV).

SPLASH-2's radiosity distributes patch-to-patch light energy until
convergence; its shared ``radiosity`` values are the conflicting data,
the form-factor interaction lists are read-only, and per-thread scratch
is private.  As with barnes, delay-set analysis flags only the
conflicting accesses, so set-scope fences skip the private/read-only
traffic.

The reproduction: seeded patches with random interaction lists
(one line per record); threads claim patches from a shared work
counter, gather energy from their interaction lists (flagged loads of
other patches' radiosity), run the form-factor arithmetic, spill to
private scratch (unflagged, long-latency) and publish the new
radiosity (flagged store) bracketed by SC fences.  A fixed number of
gather rounds stands in for convergence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..isa.instructions import Compute, FenceKind, WAIT_BOTH
from ..isa.program import Program
from ..runtime.harness import FencePlan, FlaggedExchange, ScratchSpill
from ..runtime.lang import Env, SharedArray

FIX = 1 << 12


@dataclass
class RadiosityInstance:
    """A radiosity run plus its conservation checker."""

    program: Program
    radiosity: SharedArray
    emission: list[int]
    n_patches: int
    rounds: int

    def check(self) -> None:
        finals = [self.radiosity.peek(p) for p in range(self.n_patches)]
        # every patch is updated exactly `rounds` times, each update adds
        # at least 1 on top of whatever was gathered
        assert all(
            v >= e + self.rounds for v, e in zip(finals, self.emission)
        ), "radiosity: some patch missed an update round"
        assert any(
            v > e + self.rounds for v, e in zip(finals, self.emission)
        ), "radiosity: no energy was ever transferred"


def build_radiosity(
    env: Env,
    n_patches: int = 160,
    interactions_per_patch: int = 12,
    rounds: int = 2,
    n_threads: int = 8,
    scope: FenceKind = FenceKind.SET,
    seed: int = 17,
    cold_spill_every: int = 3,
    compute_per_interaction: int = 40,
    exchange_every: int = 3,
    fence_plan=None,
) -> RadiosityInstance:
    """Construct the radiosity guest program."""
    rng = random.Random(seed)
    flag = scope is FenceKind.SET

    # conflicting (flagged): patch radiosity
    radiosity = env.line_array("rad.radiosity", n_patches, flagged=flag)
    # read-only: interaction (form-factor) lists, one record per line
    inter = env.line_array("rad.inter", n_patches * interactions_per_patch)
    factor = env.line_array("rad.factor", n_patches * interactions_per_patch)

    emission = [rng.randrange(1, 64) * FIX for _ in range(n_patches)]
    for p in range(n_patches):
        radiosity.poke(p, emission[p])
        others = rng.sample([q for q in range(n_patches) if q != p],
                            min(interactions_per_patch, n_patches - 1))
        for k in range(interactions_per_patch):
            q = others[k % len(others)]
            inter.poke(p * interactions_per_patch + k, q)
            factor.poke(p * interactions_per_patch + k, rng.randrange(1, 32))

    spills = [
        ScratchSpill(env, t, "rad", cold_every=cold_spill_every)
        for t in range(n_threads)
    ]
    # conflicting mutable interaction/visibility structures (flagged)
    exchange_region = FlaggedExchange.make_region(env, "rad.exchange", n_threads)
    exchanges = [
        FlaggedExchange(env, t, n_threads, exchange_region, every=exchange_every)
        for t in range(n_threads)
    ]

    plan = fence_plan if fence_plan is not None else FencePlan.hand()

    def sc_fence(slot: str):
        return plan.fence(slot, scope, WAIT_BOTH)

    # one op per distinct latency: ops are immutable, so the same
    # Compute can be yielded every interaction (same idiom as the
    # SharedArray load memo)
    form_factor = Compute(compute_per_interaction)

    def thread(tid: int):
        spill = spills[tid]
        exchange = exchanges[tid]
        # SPLASH-2 style static partitioning, one pass per gather round
        tasks = [
            p
            for r in range(rounds)
            for p in range(tid, n_patches, n_threads)
        ]
        for p in tasks:
            # delay-set boundary before conflicting reads
            yield from sc_fence("gather")
            gathered = 0
            base = p * interactions_per_patch
            for k in range(interactions_per_patch):
                q = yield inter.load(base + k)
                f = yield factor.load(base + k)
                rq = yield radiosity.load(q)  # flagged: conflicting read
                gathered += (rq * f) >> 10
                yield form_factor  # form-factor arithmetic
            # spill intermediate gather results to private scratch
            yield spill.store(gathered)
            yield from exchange.emit(p + 1)  # conflicting shared traffic
            # publish the new radiosity (conflicting write, SC-bracketed)
            yield from sc_fence("publish")
            old = yield radiosity.load(p)
            yield radiosity.store(p, old + (gathered >> 4) + 1)
            yield from sc_fence("flush")

    return RadiosityInstance(
        Program([thread] * n_threads, name="radiosity"),
        radiosity,
        emission,
        n_patches,
        rounds,
    )
