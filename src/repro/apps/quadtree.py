"""Host-side quadtree builder for the Barnes-Hut workload.

The tree is built once on the host (the paper's barnes rebuilds it each
timestep; the force phase we reproduce treats it as read-only) and
flattened into arrays the guest traverses.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Quadtree:
    """Flattened quadtree: cell -> children / center of mass / count."""

    root: int
    children: list[list[int]]      # 4 child cell ids, -1 = none
    com: list[tuple[float, float]]
    count: list[int]               # bodies under each cell
    bodies_in: list[list[int]]     # body ids stored at leaf cells
    initial: dict = field(default_factory=dict)

    @property
    def n_cells(self) -> int:
        return len(self.children)

    def is_leaf(self, c: int) -> bool:
        return all(k == -1 for k in self.children[c])

    def leaf_bodies(self, c: int) -> list[int]:
        return self.bodies_in[c]

    def depth(self) -> int:
        def d(c: int) -> int:
            kids = [k for k in self.children[c] if k != -1]
            return 1 + (max(d(k) for k in kids) if kids else 0)

        return d(self.root)


def build_quadtree(
    bodies: list[tuple[float, float]],
    leaf_capacity: int = 4,
    max_depth: int = 16,
) -> Quadtree:
    """Recursively partition unit-square ``bodies`` into a quadtree."""
    if not bodies:
        raise ValueError("need at least one body")
    children: list[list[int]] = []
    com: list[tuple[float, float]] = []
    count: list[int] = []
    bodies_in: list[list[int]] = []

    def new_cell() -> int:
        children.append([-1, -1, -1, -1])
        com.append((0.0, 0.0))
        count.append(0)
        bodies_in.append([])
        return len(children) - 1

    def build(ids: list[int], x0: float, y0: float, size: float, depth: int) -> int:
        c = new_cell()
        count[c] = len(ids)
        cx = sum(bodies[i][0] for i in ids) / len(ids)
        cy = sum(bodies[i][1] for i in ids) / len(ids)
        com[c] = (cx, cy)
        if len(ids) <= leaf_capacity or depth >= max_depth:
            bodies_in[c] = list(ids)
            return c
        half = size / 2.0
        quads: list[list[int]] = [[], [], [], []]
        for i in ids:
            bx, by = bodies[i]
            q = (1 if bx >= x0 + half else 0) + (2 if by >= y0 + half else 0)
            quads[q].append(i)
        for q, qids in enumerate(quads):
            if qids:
                qx = x0 + half * (q & 1)
                qy = y0 + half * (q >> 1)
                children[c][q] = build(qids, qx, qy, half, depth + 1)
        return c

    root = build(list(range(len(bodies))), 0.0, 0.0, 1.0, 0)
    return Quadtree(root, children, com, count, bodies_in)
