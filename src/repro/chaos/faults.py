"""Deterministic seeded fault injectors.

A :class:`ChaosEngine` perturbs a run through the explicit hook points
the simulator exposes -- ``MemoryHierarchy.fault``, ``Core.chaos``,
``ScopeTracker.chaos_overflow`` -- according to a :class:`FaultPlan`.
Every injector is *timing-only* or *strictly-more-ordering*: latency
spikes and drain throttling postpone visibility, forced mispredictions
squash-and-restore scope state, forced scope overflow degrades fences
toward traditional fences.  A perturbed run therefore must still
satisfy every ordering invariant and every algorithm-level checker;
any failure is a simulator bug, not an artefact of the injection.

Determinism: each (purpose, core) pair gets its own ``random.Random``
stream seeded from ``FaultPlan.seed``, and the simulator's cycle loop
is deterministic, so the *sequence of injection decisions* -- and hence
the entire perturbed run -- is a pure function of (program, config,
plan).  Re-running with the same seed reproduces a failure exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from functools import partial
from random import Random


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, how often, and under which seed."""

    seed: int = 0
    # memory-latency perturbation (mem/hierarchy.py hook)
    mem_spike_prob: float = 0.0    # chance an access gets a big spike
    mem_spike_cycles: int = 500    # spike magnitude
    mem_jitter: int = 0            # uniform extra latency in [0, jitter]
    # forced branch mispredictions (cpu/core.py + cpu/predictor.py hooks)
    branch_flip_prob: float = 0.0
    # forced scope-capacity pressure (core/scope_tracker.py hook)
    scope_overflow_prob: float = 0.0
    # store-buffer drain throttling (cpu/core.py write-port hook)
    drain_stall_prob: float = 0.0
    drain_stall_cycles: int = 40

    def with_(self, **kwargs) -> "FaultPlan":
        return replace(self, **kwargs)

    @property
    def active(self) -> bool:
        return any((
            self.mem_spike_prob, self.mem_jitter, self.branch_flip_prob,
            self.scope_overflow_prob, self.drain_stall_prob,
        ))


class ChaosEngine:
    """Installs a :class:`FaultPlan` into a simulator and injects."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counts: Counter = Counter()
        self._rngs: dict[tuple[str, int], Random] = {}

    def _rng(self, purpose: str, core: int) -> Random:
        key = (purpose, core)
        rng = self._rngs.get(key)
        if rng is None:
            rng = self._rngs[key] = Random(f"{self.plan.seed}:{purpose}:{core}")
        return rng

    # ------------------------------------------------------------- installation
    def install(self, sim) -> "ChaosEngine":
        """Attach this engine's hooks to a built Simulator."""
        sim.hierarchy.fault = self.mem_fault
        for core in sim.cores:
            core.chaos = self
            core.tracker.chaos_overflow = partial(self.scope_overflow, core.core_id)
        return self

    # ----------------------------------------------------------------- injectors
    def mem_fault(self, core: int, addr: int, is_write: bool, latency: int) -> int:
        plan = self.plan
        rng = self._rng("mem", core)
        if plan.mem_jitter:
            extra = rng.randint(0, plan.mem_jitter)
            if extra:
                self.counts["mem_jitter"] += 1
                latency += extra
        if plan.mem_spike_prob and rng.random() < plan.mem_spike_prob:
            self.counts["mem_spike"] += 1
            latency += plan.mem_spike_cycles
        return latency

    def force_mispredict(self, core: int, pc: int) -> bool:
        plan = self.plan
        if plan.branch_flip_prob and self._rng("branch", core).random() < plan.branch_flip_prob:
            self.counts["branch_flip"] += 1
            return True
        return False

    def scope_overflow(self, core: int, cid: int) -> bool:
        plan = self.plan
        if plan.scope_overflow_prob and self._rng("scope", core).random() < plan.scope_overflow_prob:
            self.counts["scope_overflow"] += 1
            return True
        return False

    def drain_delay(self, core: int, cycle: int) -> int:
        plan = self.plan
        if plan.drain_stall_prob and self._rng("drain", core).random() < plan.drain_stall_prob:
            self.counts["drain_stall"] += 1
            return plan.drain_stall_cycles
        return 0

    # ------------------------------------------------------------------- summary
    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> dict[str, int]:
        return dict(self.counts)


class ScriptedFault:
    """Deterministic memory-latency injector for exact-cycle tests.

    Where :class:`ChaosEngine` draws from seeded RNG streams, this hook
    adds a fixed ``extra`` latency to the Nth..every access of a given
    address, recording each perturbed access.  Tests use it to assert
    that an injected spike is honoured at the *exact* perturbed cycle
    under both execution engines: the hierarchy folds the spike into
    the completion cycle it reports, so the event scheduler wakes the
    core precisely when the slowed access completes -- fault schedules
    are never stretched or quantised by clock jumps.

    Install with ``sim.hierarchy.fault = scripted.fault`` (the plain
    hierarchy hook; composable with nothing else by design -- keep test
    scenarios single-injector).
    """

    def __init__(self, addr: int, extra: int, from_nth: int = 0) -> None:
        self.addr = addr
        self.extra = extra
        self.from_nth = from_nth
        self.hits: list[tuple[int, bool, int]] = []  # (core, is_write, latency out)
        self._seen = 0

    def fault(self, core: int, addr: int, is_write: bool, latency: int) -> int:
        if addr != self.addr:
            return latency
        n = self._seen
        self._seen += 1
        if n < self.from_nth:
            return latency
        latency += self.extra
        self.hits.append((core, is_write, latency))
        return latency
