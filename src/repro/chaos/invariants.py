"""Ordering-invariant checker for perturbed (and unperturbed) runs.

The checker implements the core monitor protocol (see
:mod:`repro.sim.trace`) and *independently* re-derives the S-Fence
guarantees from the raw event stream -- it deliberately does not trust
the scope tracker's FSB counters, FSS, or overflow logic, because those
are exactly the structures a simulator bug would corrupt.  It mirrors
scope state from the ``fs_start``/``fs_end`` events and keeps its own
in-flight tables keyed by each op's program-order sequence number.

Checked invariants:

* **scope-mask** -- every memory op dispatched inside open scopes
  carries the FSB bits of *all* of them (inner ops flag outer scopes,
  Section IV-A3); ops dispatched during an overflow episode carry every
  class bit; set-scope-flagged ops carry the set bit.
* **fence-order** -- when a fence issues (blocking) or completes
  (speculative), no older memory op of a waited-on kind in the fence's
  scope is still in flight.  For a degraded/traditional fence the scope
  is *all* older ops -- which is the "overflow mode is at least as
  strong as a traditional fence" guarantee.
* **overflow-degrade** -- a class fence issued while the overflow
  counter is non-zero must have resolved to global scope.
* **store-past-fence** -- a store never drains (becomes globally
  visible) while an older speculatively-issued fence is incomplete.
* **cas-past-fence** -- a CAS (which publishes at dispatch) never
  dispatches past an incomplete speculative fence.
* **stream-sanity** -- completions/drains match dispatches (a corrupted
  event stream fails loudly instead of vacuously passing).

Violations are collected (bounded) rather than raised mid-run so a
sweep can report all of them; call :meth:`OrderingChecker.assert_ok`
at the end.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scope_tracker import ScopeTracker
from ..isa.instructions import WAIT_LOADS, WAIT_STORES
from ..sim.config import SimConfig

GLOBAL = ScopeTracker.GLOBAL_SCOPE
OVERFLOWED = ScopeTracker.OVERFLOWED
UNMATCHED = ScopeTracker.UNMATCHED


class OrderingViolationError(AssertionError):
    """At least one ordering invariant failed during a run."""


@dataclass(frozen=True)
class InvariantViolation:
    """One failed check, with enough context to reproduce/debug."""

    rule: str
    core: int
    cycle: int
    detail: str

    def render(self) -> str:
        return f"[{self.rule}] core {self.core} @ cycle {self.cycle}: {self.detail}"


class _CoreState:
    """Per-core mirror of scope state + in-flight op tables."""

    __slots__ = ("loads", "stores", "scopes", "overflow", "fences")

    def __init__(self) -> None:
        self.loads: dict[int, int] = {}     # seq -> fsb mask (until complete)
        self.stores: dict[int, int] = {}    # seq -> fsb mask (until drain/complete)
        self.scopes: list[int] = []         # mirrored FSS (FSB entries)
        self.overflow = 0                   # mirrored overflow counter
        self.fences: dict[int, tuple[int, int, int]] = {}  # fid -> (seq, scope, waits)


class OrderingChecker:
    """Consumes monitor events and accumulates invariant violations."""

    #: stop recording (but keep counting) beyond this many violations
    MAX_RECORDED = 200

    def __init__(self, config: SimConfig | None = None) -> None:
        self.config = config if config is not None else SimConfig()
        n = self.config.fsb_entries
        self._set_bit = 1 << (n - 1)
        self._all_class_mask = (1 << (n - 1)) - 1
        self._cores: dict[int, _CoreState] = {}
        self.violations: list[InvariantViolation] = []
        self.violation_count = 0
        self.events_seen = 0
        self.fences_checked = 0
        self.coherence_syncs = 0

    # ------------------------------------------------------------------ helpers
    def _core(self, core: int) -> _CoreState:
        st = self._cores.get(core)
        if st is None:
            st = self._cores[core] = _CoreState()
        return st

    def _flag(self, rule: str, core: int, cycle: int, detail: str) -> None:
        self.violation_count += 1
        if len(self.violations) < self.MAX_RECORDED:
            self.violations.append(InvariantViolation(rule, core, cycle, detail))

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def assert_ok(self) -> None:
        if self.ok:
            return
        shown = "\n".join(v.render() for v in self.violations[:20])
        more = self.violation_count - min(self.violation_count, 20)
        raise OrderingViolationError(
            f"{self.violation_count} ordering-invariant violation(s)\n{shown}"
            + (f"\n... and {more} more" if more else "")
        )

    def report(self) -> dict:
        """Headline numbers for sweep tables."""
        return {
            "events": self.events_seen,
            "fences_checked": self.fences_checked,
            "violations": self.violation_count,
            "coherence_syncs": self.coherence_syncs,
        }

    # ------------------------------------------------------- monitor protocol
    def on_mem_dispatch(self, core, cycle, seq, op, addr, mask, flagged) -> None:
        self.events_seen += 1
        st = self._core(core)
        if self.config.scoped_fences:
            expected = 0
            for e in st.scopes:
                expected |= 1 << e
            if st.overflow > 0:
                expected |= self._all_class_mask
            if flagged:
                expected |= self._set_bit
            if mask & expected != expected:
                self._flag(
                    "scope-mask", core, cycle,
                    f"{op} seq={seq} addr={addr} mask={mask:#x} lacks required "
                    f"bits {expected & ~mask:#x} (open scopes {st.scopes}, "
                    f"overflow={st.overflow}, flagged={flagged})",
                )
        if op == "load":
            st.loads[seq] = mask
        else:
            if op == "cas" and st.fences:
                self._flag(
                    "cas-past-fence", core, cycle,
                    f"cas seq={seq} dispatched while speculative fences "
                    f"{sorted(st.fences)} are incomplete",
                )
            st.stores[seq] = mask

    def on_mem_complete(self, core, cycle, seq, is_load) -> None:
        self.events_seen += 1
        st = self._core(core)
        table = st.loads if is_load else st.stores
        if table.pop(seq, None) is None:
            self._flag(
                "stream-sanity", core, cycle,
                f"{'load' if is_load else 'store/cas'} seq={seq} completed "
                f"without a matching dispatch",
            )

    def on_store_drain(self, core, cycle, seq) -> None:
        self.events_seen += 1
        st = self._core(core)
        if st.stores.pop(seq, None) is None:
            self._flag(
                "stream-sanity", core, cycle,
                f"store seq={seq} drained without a matching dispatch",
            )
        for fid, (fseq, _scope, _waits) in st.fences.items():
            if fseq < seq:
                self._flag(
                    "store-past-fence", core, cycle,
                    f"store seq={seq} drained while older fence fid={fid} "
                    f"(dispatched after mem seq {fseq}) is incomplete",
                )

    def _check_fence(self, st, core, cycle, scope, waits, seq, label) -> None:
        """No older in-scope op of a waited kind may still be in flight."""
        self.fences_checked += 1
        pending = []
        if waits & WAIT_LOADS:
            pending.extend(
                ("load", s, m) for s, m in st.loads.items() if s <= seq
            )
        if waits & WAIT_STORES:
            pending.extend(
                ("store", s, m) for s, m in st.stores.items() if s <= seq
            )
        for kind, s, m in pending:
            if scope != GLOBAL and not (m >> scope) & 1:
                continue  # out of the fence's scope: allowed to float past
            self._flag(
                "fence-order", core, cycle,
                f"{label} (scope={'global' if scope == GLOBAL else scope}, "
                f"waits={waits}, after mem seq {seq}) passed while older "
                f"{kind} seq={s} mask={m:#x} was still in flight",
            )

    def on_fence_pass(self, core, cycle, kind, waits, scope, seq) -> None:
        self.events_seen += 1
        st = self._core(core)
        if kind == "class" and st.overflow > 0 and scope != GLOBAL:
            self._flag(
                "overflow-degrade", core, cycle,
                f"class fence resolved to entry {scope} while the overflow "
                f"counter is {st.overflow} (must degrade to global)",
            )
        self._check_fence(st, core, cycle, scope, waits, seq, f"{kind}-fence")

    def on_fence_open(self, core, cycle, fid, kind, waits, scope, seq) -> None:
        self.events_seen += 1
        st = self._core(core)
        if kind == "class" and st.overflow > 0 and scope != GLOBAL:
            self._flag(
                "overflow-degrade", core, cycle,
                f"speculative class fence fid={fid} resolved to entry {scope} "
                f"while the overflow counter is {st.overflow}",
            )
        st.fences[fid] = (seq, scope, waits)

    def on_fence_complete(self, core, cycle, fid) -> None:
        self.events_seen += 1
        st = self._core(core)
        rec = st.fences.pop(fid, None)
        if rec is None:
            self._flag(
                "stream-sanity", core, cycle,
                f"fence fid={fid} completed without a matching open",
            )
            return
        seq, scope, waits = rec
        self._check_fence(st, core, cycle, scope, waits, seq,
                          f"speculative fence fid={fid}")

    def on_scope(self, core, cycle, action, cid, entry) -> None:
        self.events_seen += 1
        st = self._core(core)
        if action == "start":
            if entry == OVERFLOWED:
                st.overflow += 1
            else:
                st.scopes.append(entry)
        else:  # "end"
            if entry == OVERFLOWED:
                st.overflow -= 1
                if st.overflow < 0:
                    self._flag(
                        "stream-sanity", core, cycle,
                        f"fs_end cid={cid} drained the overflow counter "
                        f"below zero",
                    )
                    st.overflow = 0
            elif entry == UNMATCHED:
                pass  # wrong-path artefact; hardware no-op
            else:
                if not st.scopes or st.scopes[-1] != entry:
                    self._flag(
                        "stream-sanity", core, cycle,
                        f"fs_end cid={cid} popped entry {entry} but the "
                        f"mirrored FSS top is "
                        f"{st.scopes[-1] if st.scopes else 'empty'}",
                    )
                if st.scopes:
                    st.scopes.pop()

    def on_squash(self, core, cycle, scopes, overflow) -> None:
        self.events_seen += 1
        st = self._core(core)
        # resync the mirror with the post-restore FSS: the tracker's own
        # wrong-path bookkeeping (FSS') is authoritative across a squash
        st.scopes = list(scopes)
        st.overflow = overflow

    def on_coherence_sync(self, core, cycle, kind, invalidated, downgraded) -> None:
        """A backend sync point (SiSd self-invalidation/self-downgrade).

        The mesi backend keeps caches coherent continuously and must
        never report a per-fence sync; seeing one under a mesi config is
        a backend-dispatch bug.  Under SiSd the event is audited for
        shape (known kind, non-negative line counts) and counted so
        sweep tables can report sync activity.
        """
        self.events_seen += 1
        self.coherence_syncs += 1
        if self.config.mem_backend == "mesi":
            self._flag(
                "backend-sync", core, cycle,
                f"coherence sync ({kind}) reported under the mesi backend, "
                f"whose sync points must be free",
            )
        if kind not in ("acquire", "release", "full"):
            self._flag(
                "backend-sync", core, cycle,
                f"coherence sync with unknown kind {kind!r}",
            )
        if invalidated < 0 or downgraded < 0:
            self._flag(
                "backend-sync", core, cycle,
                f"coherence sync reported negative line counts "
                f"(invalidated={invalidated}, downgraded={downgraded})",
            )
        if kind == "acquire" and downgraded:
            self._flag(
                "backend-sync", core, cycle,
                f"acquire-only sync self-downgraded {downgraded} line(s); "
                f"downgrades require a release-like sync point",
            )
        if kind == "release" and invalidated:
            self._flag(
                "backend-sync", core, cycle,
                f"release-only sync self-invalidated {invalidated} line(s); "
                f"invalidations require an acquire-like sync point",
            )


class _PairCoreState:
    """Per-core in-flight tables for the delay-pair checker."""

    __slots__ = ("outstanding", "loads", "cas_seqs")

    def __init__(self) -> None:
        self.outstanding: dict[int, str] = {}  # store seq -> base name
        self.loads: dict[int, str] = {}        # load seq -> base name
        self.cas_seqs: set[int] = set()


class DelayPairChecker:
    """Checks delay-set ordering requirements from the raw event stream.

    The whole-program synthesizer derives, per app, the set of
    base-level ordering *patterns* ``(base_a, 'w', base_b, kind_b)``
    whose every static occurrence the hand-written fences separate
    (:func:`repro.apps.delay_set.required_patterns` /
    ``enforced_patterns``).  This monitor enforces them dynamically: a
    violation is an older store to ``base_a`` still buffered (not yet
    globally visible) at the moment an access to ``base_b`` of the
    required kind becomes visible (store drain, CAS dispatch) or binds
    its value (load completion).

    Only store-first patterns are checkable this way, and ``(w, r)``
    patterns are only derived from non-speculable fences (a speculative
    fence does not block younger loads), so a fence-correct run never
    trips this checker -- which is what makes it a soundness oracle for
    synthesized placements under chaos schedules.

    ``addr_base`` maps a word address to its allocation's base name;
    build it from :meth:`repro.runtime.lang.Env.space` regions via
    :func:`address_base_map`.
    """

    MAX_RECORDED = 200

    def __init__(self, patterns, addr_base) -> None:
        self.ww_required: dict[str, set[str]] = {}
        self.wr_required: dict[str, set[str]] = {}
        for base_a, kind_a, base_b, kind_b in patterns:
            if kind_a != "w":
                raise ValueError(
                    f"only store-first patterns are runtime-checkable: "
                    f"{(base_a, kind_a, base_b, kind_b)!r}")
            table = self.ww_required if kind_b == "w" else self.wr_required
            table.setdefault(base_b, set()).add(base_a)
        self._first_bases = set()
        for bases in self.ww_required.values():
            self._first_bases |= bases
        for bases in self.wr_required.values():
            self._first_bases |= bases
        self._addr_base = addr_base
        self._cores: dict[int, _PairCoreState] = {}
        self.violations: list[InvariantViolation] = []
        #: distinct ``(base_a, 'w', base_b, kind_b)`` patterns seen
        #: violated -- the whole-program synthesizer calibrates its
        #: monitor spec by running the hand placement and discarding
        #: whatever it trips (see ``repro.synth.programs``)
        self.violated: set[tuple[str, str, str, str]] = set()
        self.violation_count = 0
        self.events_seen = 0
        self.checks = 0

    def _core(self, core: int) -> _PairCoreState:
        st = self._cores.get(core)
        if st is None:
            st = self._cores[core] = _PairCoreState()
        return st

    def _flag(self, rule: str, core: int, cycle: int, detail: str) -> None:
        self.violation_count += 1
        if len(self.violations) < self.MAX_RECORDED:
            self.violations.append(InvariantViolation(rule, core, cycle, detail))

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def assert_ok(self) -> None:
        if self.ok:
            return
        shown = "\n".join(v.render() for v in self.violations[:20])
        more = self.violation_count - min(self.violation_count, 20)
        raise OrderingViolationError(
            f"{self.violation_count} delay-pair violation(s)\n{shown}"
            + (f"\n... and {more} more" if more else "")
        )

    def report(self) -> dict:
        return {
            "events": self.events_seen,
            "checks": self.checks,
            "violations": self.violation_count,
        }

    def _check_visible(self, st, core, cycle, seq, base_b, what) -> None:
        required = self.ww_required.get(base_b)
        if not required:
            return
        self.checks += 1
        for s, base_a in st.outstanding.items():
            if s < seq and base_a in required:
                self.violated.add((base_a, "w", base_b, "w"))
                self._flag(
                    "delay-pair-ww", core, cycle,
                    f"{what} of {base_b} (seq={seq}) became visible while "
                    f"older store to {base_a} (seq={s}) is still buffered; "
                    f"required order {base_a} -> {base_b}",
                )

    # ------------------------------------------------------- monitor protocol
    def on_mem_dispatch(self, core, cycle, seq, op, addr, mask, flagged) -> None:
        self.events_seen += 1
        base = self._addr_base(addr)
        if base is None:
            return
        st = self._core(core)
        if op == "load":
            if base in self.wr_required:
                st.loads[seq] = base
            return
        if op == "cas":
            # a CAS publishes at dispatch: it is a visibility event and
            # never sits in the store buffer behind the checkable window
            self._check_visible(st, core, cycle, seq, base, "cas")
            st.cas_seqs.add(seq)
            return
        if base in self._first_bases or base in self.ww_required:
            st.outstanding[seq] = base

    def on_mem_complete(self, core, cycle, seq, is_load) -> None:
        self.events_seen += 1
        st = self._core(core)
        if is_load:
            base_b = st.loads.pop(seq, None)
            if base_b is None:
                return
            required = self.wr_required[base_b]
            self.checks += 1
            for s, base_a in st.outstanding.items():
                if s < seq and base_a in required:
                    self.violated.add((base_a, "w", base_b, "r"))
                    self._flag(
                        "delay-pair-wr", core, cycle,
                        f"load of {base_b} (seq={seq}) completed while older "
                        f"store to {base_a} (seq={s}) is still buffered; "
                        f"required order {base_a} -> {base_b}",
                    )
            return
        # completion without drain (e.g. a CAS): never became visible as
        # a plain buffered store, just retire the bookkeeping
        st.outstanding.pop(seq, None)
        st.cas_seqs.discard(seq)

    def on_store_drain(self, core, cycle, seq) -> None:
        self.events_seen += 1
        st = self._core(core)
        if seq in st.cas_seqs:
            st.cas_seqs.discard(seq)
            return
        base_b = st.outstanding.pop(seq, None)
        if base_b is not None:
            self._check_visible(st, core, cycle, seq, base_b, "store")

    def on_fence_pass(self, core, cycle, kind, waits, scope, seq) -> None:
        self.events_seen += 1

    def on_fence_open(self, core, cycle, fid, kind, waits, scope, seq) -> None:
        self.events_seen += 1

    def on_fence_complete(self, core, cycle, fid) -> None:
        self.events_seen += 1

    def on_scope(self, core, cycle, action, cid, entry) -> None:
        self.events_seen += 1

    def on_squash(self, core, cycle, scopes, overflow) -> None:
        self.events_seen += 1

    def on_coherence_sync(self, core, cycle, kind, invalidated, downgraded) -> None:
        self.events_seen += 1


def address_base_map(space):
    """An ``addr -> base name`` lookup over an allocator's regions.

    Region names are exactly the base names the delay-set recorder
    derives (``"wsq.TAIL"``, ``"wsq.wsq"``, ...), so the runtime checker
    and the static analysis speak the same vocabulary.  Lookups memoise
    per address over a sorted-region bisection.
    """
    import bisect

    regions = sorted(
        (base, base + length, name)
        for name, (base, length) in space.regions().items()
    )
    starts = [r[0] for r in regions]
    memo: dict[int, str | None] = {}

    def lookup(addr: int) -> str | None:
        hit = memo.get(addr, _MISSING)
        if hit is not _MISSING:
            return hit
        i = bisect.bisect_right(starts, addr) - 1
        name = None
        if i >= 0:
            base, end, rname = regions[i]
            if addr < end:
                name = rname
        memo[addr] = name
        return name

    return lookup


_MISSING = object()
