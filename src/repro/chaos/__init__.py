"""Chaos harness: deterministic fault injection + invariant checking.

The S-Fence design is safe because its degraded paths (mapping-table
entry sharing, the overflow counter, FSS' restore after misprediction)
always preserve *strictly more* ordering than required.  This package
adversarially exercises exactly those paths:

* :mod:`repro.chaos.faults` -- seeded, deterministic fault injectors
  (memory-latency spikes and jitter, forced branch mispredictions,
  artificial scope-capacity pressure, store-drain throttling);
* :mod:`repro.chaos.invariants` -- an ordering-invariant checker that
  consumes the :class:`~repro.sim.trace.OrderEvent` stream of a
  perturbed run and independently re-derives the S-Fence guarantees;
* :mod:`repro.chaos.supervisor` -- a supervised runner with a
  cycle-budget escalation ladder and deadlock/livelock/budget failure
  classification, reusing :mod:`repro.sim.diagnostics` snapshots;
* :mod:`repro.chaos.runner` -- the seed-sweep driver behind
  ``python -m repro chaos``.
"""

from .faults import ChaosEngine, FaultPlan
from .invariants import InvariantViolation, OrderingChecker, OrderingViolationError
from .supervisor import Attempt, ChaosFailure, FailureKind, SupervisedOutcome, run_supervised

__all__ = [
    "Attempt",
    "ChaosEngine",
    "ChaosFailure",
    "FailureKind",
    "FaultPlan",
    "InvariantViolation",
    "OrderingChecker",
    "OrderingViolationError",
    "SupervisedOutcome",
    "run_supervised",
]
