"""Seed-sweep driver: scenarios x algorithms x seeds.

One *case* = one algorithm harness run under one fault scenario with
one seed.  The case is rebuilt from scratch for every supervised
attempt (fresh :class:`~repro.runtime.lang.Env`, fresh workload handle,
fresh fault engine and checker) so escalation rungs are exact
deterministic replays.  After the run the case is judged three ways:

1. the :class:`~repro.chaos.invariants.OrderingChecker` that shadowed
   every core must report zero violations,
2. the workload's own ``check()`` (linearizability/accounting) must
   pass,
3. the supervisor must not have classified the run as
   deadlock/livelock/budget.

Scenario presets target the degraded paths the paper's safety argument
leans on: the ``scope`` scenario shrinks the FSB/FSS/mapping table *and*
forces the overflow counter, so entry sharing, mapping overflow and
counter mode all trigger; ``branch`` forces mispredictions to exercise
the FSS' restore; ``storm`` layers everything at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algorithms.workloads import (
    build_harris_workload,
    build_lamport_workload,
    build_msn_workload,
    build_treiber_workload,
    build_wsq_workload,
)
from ..isa.instructions import FenceKind
from ..runtime.lang import Env
from ..sim.config import SimConfig
from .faults import ChaosEngine, FaultPlan
from .invariants import DelayPairChecker, OrderingChecker, address_base_map
from .supervisor import run_supervised


@dataclass(frozen=True)
class Scenario:
    """A named fault mix plus the config it needs."""

    name: str
    description: str
    plan: FaultPlan                      # template; seed filled per case
    config: dict = field(default_factory=dict)   # SimConfig overrides
    emit_branches: bool = False
    #: relative wall-clock weight vs the latency baseline; a campaign
    #: chunk-shaping hint only (repro.campaign.jobs.job_cost), never
    #: part of what the scenario simulates
    cost: float = 1.0


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "latency",
            "memory-latency spikes and jitter",
            FaultPlan(mem_spike_prob=0.05, mem_spike_cycles=700, mem_jitter=7),
            cost=1.4,
        ),
        Scenario(
            "branch",
            "forced branch mispredictions (FSS' restore path)",
            FaultPlan(branch_flip_prob=0.3),
            config={"use_branch_predictor": True},
            emit_branches=True,
            cost=0.9,
        ),
        Scenario(
            "drain",
            "store-buffer drain throttling",
            FaultPlan(drain_stall_prob=0.1, drain_stall_cycles=60),
        ),
        Scenario(
            "scope",
            "tiny FSB/FSS/mapping table + forced overflow "
            "(entry sharing, mapping overflow, counter mode)",
            FaultPlan(scope_overflow_prob=0.2),
            config={"fsb_entries": 2, "fss_entries": 2, "mapping_entries": 2},
        ),
        Scenario(
            "storm",
            "all of the above, plus in-window speculation",
            FaultPlan(
                mem_spike_prob=0.03, mem_spike_cycles=500, mem_jitter=5,
                branch_flip_prob=0.2, scope_overflow_prob=0.1,
                drain_stall_prob=0.05, drain_stall_cycles=40,
            ),
            config={
                "use_branch_predictor": True,
                "in_window_speculation": True,
                "fsb_entries": 3, "fss_entries": 3, "mapping_entries": 3,
            },
            emit_branches=True,
            cost=1.8,
        ),
    )
}

# Small-iteration variants of the Section VI-A harnesses: a sweep runs
# hundreds of cases, so each one is kept to a few thousand memory ops.
ALGORITHMS = {
    "wsq": lambda env, scope, br: build_wsq_workload(
        env, scope=scope, iterations=8, workload_level=1, n_threads=4,
        emit_branches=br),
    "msn": lambda env, scope, br: build_msn_workload(
        env, scope=scope, iterations=6, workload_level=1, n_threads=4,
        emit_branches=br),
    "harris": lambda env, scope, br: build_harris_workload(
        env, scope=scope, iterations=6, workload_level=1, n_threads=4,
        emit_branches=br),
    "treiber": lambda env, scope, br: build_treiber_workload(
        env, scope=scope, iterations=6, workload_level=1, n_threads=4,
        emit_branches=br),
    "lamport": lambda env, scope, br: build_lamport_workload(
        env, scope=scope, iterations=12, workload_level=1,
        emit_branches=br),
}


@dataclass
class ChaosReport:
    """Outcome of one case, flattened for tables/JSON."""

    algo: str
    scenario: str
    seed: int
    scope: str
    status: str          # ok / violations / check-failed / deadlock / livelock / budget
    cycles: int = 0
    attempts: int = 0
    events: int = 0
    fences_checked: int = 0
    violations: int = 0
    injected: dict = field(default_factory=dict)
    detail: str = ""
    #: distinct delay patterns the DelayPairChecker saw violated, as
    #: JSON-pure [base_a, kind_a, base_b, kind_b] lists so cached and
    #: live payloads compare equal (plan cases only; empty when no
    #: patterns were monitored)
    pair_violated: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def run_chaos_case(
    algo: str,
    scenario: str,
    seed: int,
    base_budget: int = 400_000,
    escalations: int = 3,
    on_attempt=None,
    dense_loop: bool = False,
    mem_backend: str = "mesi",
    trace_compile: bool = True,
) -> ChaosReport:
    """Run one (algorithm, scenario, seed) case under supervision.

    ``on_attempt`` is forwarded to the supervisor's escalation ladder;
    campaign workers use it to heartbeat between budget rungs.
    """
    scen = SCENARIOS[scenario]
    build_algo = ALGORITHMS[algo]
    # alternate the fence flavour so both class- and set-scope paths
    # (and their distinct FSB columns) see every scenario
    scope = FenceKind.SET if seed % 2 else FenceKind.CLASS
    state: dict = {}

    def build():
        cfg = SimConfig(
            n_cores=4, retire_log_len=16, dense_loop=dense_loop,
            mem_backend=mem_backend, trace_compile=trace_compile,
            **scen.config
        )
        env = Env(cfg)
        handle = build_algo(env, scope, scen.emit_branches)
        sim = env.simulator(handle.program)
        engine = ChaosEngine(scen.plan.with_(seed=seed)).install(sim)
        checker = OrderingChecker(cfg)
        for core in sim.cores:
            core.monitor = checker
        state.update(handle=handle, engine=engine, checker=checker)
        return sim

    outcome = run_supervised(
        build, base_budget=base_budget, escalations=escalations,
        raise_on_failure=False, on_attempt=on_attempt,
    )
    checker: OrderingChecker = state["checker"]
    report = ChaosReport(
        algo=algo,
        scenario=scenario,
        seed=seed,
        scope=scope.value,
        status="ok",
        attempts=len(outcome.attempts),
        events=checker.events_seen,
        fences_checked=checker.fences_checked,
        violations=checker.violation_count,
        injected=state["engine"].summary(),
    )
    if outcome.failure is not None:
        report.status = outcome.failure.kind.value
        report.detail = str(outcome.failure)
        return report
    report.cycles = outcome.result.cycles
    if not checker.ok:
        report.status = "violations"
        report.detail = "\n".join(v.render() for v in checker.violations[:10])
        return report
    try:
        state["handle"].check()
    except AssertionError as exc:
        report.status = "check-failed"
        report.detail = str(exc)
    return report


def run_plan_case(
    builder,
    scenario: str,
    seed: int,
    patterns=None,
    label: str = "app",
    base_budget: int = 400_000,
    escalations: int = 3,
    on_attempt=None,
    dense_loop: bool = False,
    mem_backend: str = "mesi",
    trace_compile: bool = True,
) -> ChaosReport:
    """Run an arbitrary guest builder under one chaos scenario.

    The generalized :func:`run_chaos_case`: instead of a named
    ``ALGORITHMS`` preset, ``builder(env, emit_branches)`` constructs
    the workload handle -- which is how the whole-program synthesizer
    drives the real apps with swapped-in
    :class:`~repro.runtime.harness.FencePlan` placements.  When
    ``patterns`` (delay-set ordering requirements) are given, a
    :class:`~repro.chaos.invariants.DelayPairChecker` shadows every
    core alongside the ordering checker; the case is judged by the
    supervisor, both checkers, and the handle's own ``check()``.
    """
    scen = SCENARIOS[scenario]
    state: dict = {}

    def build():
        cfg = SimConfig(
            n_cores=4, retire_log_len=16, dense_loop=dense_loop,
            mem_backend=mem_backend, trace_compile=trace_compile,
            **scen.config
        )
        env = Env(cfg)
        handle = builder(env, scen.emit_branches)
        sim = env.simulator(handle.program)
        engine = ChaosEngine(scen.plan.with_(seed=seed)).install(sim)
        checker = OrderingChecker(cfg)
        pair_checker = None
        monitor = checker
        if patterns:
            pair_checker = DelayPairChecker(patterns, address_base_map(env.space))
            from ..sim.trace import MonitorFanout

            monitor = MonitorFanout(checker, pair_checker)
        for core in sim.cores:
            core.monitor = monitor
        state.update(handle=handle, engine=engine, checker=checker,
                     pair_checker=pair_checker)
        return sim

    outcome = run_supervised(
        build, base_budget=base_budget, escalations=escalations,
        raise_on_failure=False, on_attempt=on_attempt,
    )
    checker: OrderingChecker = state["checker"]
    pair_checker = state["pair_checker"]
    pair_violations = pair_checker.violation_count if pair_checker else 0
    report = ChaosReport(
        algo=label,
        scenario=scenario,
        seed=seed,
        scope="plan",
        status="ok",
        attempts=len(outcome.attempts),
        events=checker.events_seen,
        fences_checked=checker.fences_checked,
        violations=checker.violation_count + pair_violations,
        injected=state["engine"].summary(),
    )
    if pair_checker is not None:
        report.pair_violated = sorted(list(p) for p in pair_checker.violated)
    if outcome.failure is not None:
        report.status = outcome.failure.kind.value
        report.detail = str(outcome.failure)
        return report
    report.cycles = outcome.result.cycles
    if not checker.ok or (pair_checker is not None and not pair_checker.ok):
        report.status = "violations"
        lines = [v.render() for v in checker.violations[:5]]
        if pair_checker is not None:
            lines += [v.render() for v in pair_checker.violations[:5]]
        report.detail = "\n".join(lines)
        return report
    try:
        state["handle"].check()
    except AssertionError as exc:
        report.status = "check-failed"
        report.detail = str(exc)
    return report


def sweep(
    algos=None,
    scenarios=None,
    n_seeds: int = 20,
    seed_base: int = 0,
    base_budget: int = 400_000,
    escalations: int = 3,
    progress=None,
    dense_loop: bool = False,
    mem_backend: str = "mesi",
    trace_compile: bool = True,
) -> list[ChaosReport]:
    """Run the full cross product; returns one report per case."""
    algos = list(ALGORITHMS) if algos is None else list(algos)
    scenarios = list(SCENARIOS) if scenarios is None else list(scenarios)
    for name in algos:
        if name not in ALGORITHMS:
            raise KeyError(f"unknown algorithm {name!r} (have {sorted(ALGORITHMS)})")
    for name in scenarios:
        if name not in SCENARIOS:
            raise KeyError(f"unknown scenario {name!r} (have {sorted(SCENARIOS)})")
    reports = []
    for scenario in scenarios:
        for algo in algos:
            for s in range(n_seeds):
                rep = run_chaos_case(
                    algo, scenario, seed_base + s,
                    base_budget=base_budget, escalations=escalations,
                    dense_loop=dense_loop, mem_backend=mem_backend,
                    trace_compile=trace_compile,
                )
                reports.append(rep)
                if progress is not None:
                    progress(rep)
    return reports
