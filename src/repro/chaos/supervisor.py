"""Supervised runner: cycle-budget escalation + failure classification.

Chaos runs burn more cycles than clean runs (latency spikes, forced
squashes, drain throttling), so a fixed ``max_cycles`` would misreport
slow-but-healthy runs as failures.  :func:`run_supervised` wraps
``Simulator.run`` in an escalation ladder: start from a base cycle
budget and double it (up to a cap) whenever the run hits
:class:`~repro.sim.simulator.CycleLimitError`.  Each attempt rebuilds
the simulator from scratch via the caller's factory, so attempts are
independent deterministic replays, not resumptions.

Failure classification:

* **deadlock** -- the simulator proved no core can ever progress
  (:class:`DeadlockError`).  Deterministic; never retried.
* **livelock** -- two consecutive attempts exhausted different budgets
  while retiring the *same* total instruction count: more cycles bought
  zero forward progress, so no budget will finish the run.
* **budget** -- the escalation ladder ran out while the run was still
  retiring instructions; likely just slow, rerun with a bigger base.
* **guest-crash** -- the guest program itself raised (e.g. a stolen
  garbage value indexing a table after a fence-broken publish).
  Deterministic; for the synthesizer's mutation battery this is prime
  kill evidence, not a harness fault.

Every classified failure carries the last run's
:class:`~repro.sim.diagnostics.SimDiagnostic` plus the per-attempt
history, so ``python -m repro chaos`` can print a full post-mortem.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..sim.diagnostics import SimDiagnostic
from ..sim.simulator import CycleLimitError, DeadlockError, SimResult


class FailureKind(enum.Enum):
    DEADLOCK = "deadlock"
    LIVELOCK = "livelock"
    BUDGET = "budget"
    GUEST = "guest-crash"


@dataclass(frozen=True)
class Attempt:
    """One rung of the escalation ladder."""

    budget: int
    outcome: str          # "ok" / "deadlock" / "cycle-limit"
    cycles: int           # cycles consumed (== budget unless "ok")
    instructions: int     # total instructions retired across cores


class ChaosFailure(RuntimeError):
    """A supervised run that could not be completed."""

    def __init__(
        self,
        kind: FailureKind,
        message: str,
        diagnostic: SimDiagnostic | None = None,
        attempts: tuple[Attempt, ...] = (),
    ) -> None:
        ladder = " -> ".join(
            f"{a.budget}cy:{a.outcome}(insns={a.instructions})" for a in attempts
        )
        full = f"[{kind.value}] {message}"
        if ladder:
            full += f"\n  attempts: {ladder}"
        if diagnostic is not None:
            full += f"\n{diagnostic.render()}"
        super().__init__(full)
        self.kind = kind
        self.diagnostic = diagnostic
        self.attempts = attempts


@dataclass
class SupervisedOutcome:
    """Result of :func:`run_supervised` (success or classified failure)."""

    result: SimResult | None = None
    attempts: list[Attempt] = field(default_factory=list)
    failure: ChaosFailure | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def run_supervised(
    build,
    base_budget: int = 200_000,
    escalations: int = 3,
    factor: int = 2,
    raise_on_failure: bool = True,
    on_attempt=None,
) -> SupervisedOutcome:
    """Run ``build()`` -> ``Simulator`` under the escalation ladder.

    ``build`` must return a *fresh, fully wired* simulator each call
    (fault hooks and monitors attached); it is invoked once per attempt
    so every rung replays the identical deterministic run under a larger
    budget.

    ``on_attempt(attempt)`` is called after every rung (success or
    not).  Campaign workers use it as a liveness heartbeat: a case
    climbing the budget ladder keeps signalling progress, so the
    engine's wall-clock watchdog only fires on a genuinely wedged
    worker, never on a legitimately slow escalation.
    """
    outcome = SupervisedOutcome()
    attempts = outcome.attempts

    def record(attempt: Attempt) -> None:
        attempts.append(attempt)
        if on_attempt is not None:
            on_attempt(attempt)

    budget = base_budget
    prev_instructions: int | None = None
    last_diag: SimDiagnostic | None = None

    for rung in range(escalations + 1):
        sim = build()
        try:
            result = sim.run(max_cycles=budget)
        except DeadlockError as exc:
            diag = exc.diagnostic
            insns = diag.total_instructions if diag is not None else -1
            record(Attempt(budget, "deadlock", diag.cycle if diag else -1, insns))
            outcome.failure = ChaosFailure(
                FailureKind.DEADLOCK,
                f"deadlock after {insns} instructions",
                diagnostic=diag,
                attempts=tuple(attempts),
            )
            break
        except CycleLimitError as exc:
            diag = exc.diagnostic
            last_diag = diag
            insns = diag.total_instructions if diag is not None else -1
            record(Attempt(budget, "cycle-limit", budget, insns))
            if prev_instructions is not None and insns == prev_instructions:
                outcome.failure = ChaosFailure(
                    FailureKind.LIVELOCK,
                    f"no forward progress between budgets "
                    f"{attempts[-2].budget} and {budget} cycles "
                    f"(stuck at {insns} instructions)",
                    diagnostic=diag,
                    attempts=tuple(attempts),
                )
                break
            prev_instructions = insns
            budget *= factor
        except Exception as exc:  # guest code raised mid-run
            record(Attempt(budget, "guest-crash", -1, -1))
            outcome.failure = ChaosFailure(
                FailureKind.GUEST,
                f"guest program raised {type(exc).__name__}: {exc}",
                attempts=tuple(attempts),
            )
            break
        else:
            record(Attempt(
                budget, "ok", result.cycles,
                sum(c.instructions for c in result.stats.cores),
            ))
            outcome.result = result
            break
    else:
        outcome.failure = ChaosFailure(
            FailureKind.BUDGET,
            f"still running after {escalations + 1} attempts "
            f"(final budget {attempts[-1].budget} cycles); the run kept "
            f"making progress, so this is likely slowness, not a hang",
            diagnostic=last_diag,
            attempts=tuple(attempts),
        )

    if outcome.failure is not None and raise_on_failure:
        raise outcome.failure
    return outcome
