"""Synchronization primitives built on the guest ISA.

The SPLASH-2 applications the paper evaluates rely on barriers and
locks besides the lock-free structures; these are the standard
implementations, with their fence requirements spelled out:

* :class:`SpinLock` -- test-and-test-and-set via CAS.  The *release*
  store must be ordered after the critical section's stores (a
  store-store fence); the scope of that fence is exactly the paper's
  question: a set/class scope covering only the lock word would let the
  next owner enter before the protected data is visible, so ``unlock``
  uses a traditional fence by default and callers opt into scoping only
  when they manage data visibility themselves (Figure 1's division of
  responsibility).
* :class:`SenseBarrier` -- sense-reversing centralized barrier.  The
  arrival decrement is a CAS (immediately visible); waiters spin on the
  sense word.  A store-store fence orders each thread's pre-barrier
  stores before its arrival, giving the usual "everything before the
  barrier is visible after it" guarantee.
"""

from __future__ import annotations

from ..isa.instructions import Fence, FenceKind, WAIT_BOTH, WAIT_STORES
from .lang import Env, ScopedStructure, scoped_method


class SpinLock(ScopedStructure):
    """Test-and-test-and-set lock."""

    def __init__(self, env: Env, name: str = "lock", scope: FenceKind = FenceKind.GLOBAL) -> None:
        super().__init__(env, name, scope)
        self.word = self.svar("word")

    @scoped_method
    def lock(self):
        while True:
            # test ...
            while (yield self.word.load()) != 0:
                pass
            # ... and test-and-set
            ok = yield self.word.cas(0, 1)
            if ok:
                return

    @scoped_method
    def unlock(self, publish_all: bool = True):
        """Release.  ``publish_all=True`` (default) uses a traditional
        store-store fence so every critical-section store is visible to
        the next owner; ``False`` scopes the fence to this structure
        (callers must order their own data -- Figure 1's contract)."""
        if publish_all:
            yield Fence(FenceKind.GLOBAL, WAIT_STORES)
        else:
            yield self.fence(WAIT_STORES)
        yield self.word.store(0)

    def holder_view(self) -> int:
        return self.word.peek()


class SenseBarrier(ScopedStructure):
    """Sense-reversing centralized barrier for ``n_threads``."""

    def __init__(self, env: Env, n_threads: int, name: str = "barrier") -> None:
        super().__init__(env, name, FenceKind.GLOBAL)
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self.count = self.svar("count", init=n_threads)
        self.sense = self.svar("sense")  # global sense, flips each episode
        self._local_sense: dict[int, int] = {}

    def wait(self, tid: int):
        """Guest fragment: block until all ``n_threads`` arrive."""
        local = self._local_sense.get(tid, 0) ^ 1
        self._local_sense[tid] = local
        # order this thread's pre-barrier stores before its arrival
        yield Fence(FenceKind.GLOBAL, WAIT_STORES)
        while True:
            c = yield self.count.load()
            ok = yield self.count.cas(c, c - 1)
            if ok:
                break
        if c - 1 == 0:
            # last arriver resets and releases everyone
            yield self.count.store(self.n_threads)
            yield Fence(FenceKind.GLOBAL, WAIT_STORES)  # reset before release
            yield self.sense.store(local)
        else:
            while (yield self.sense.load()) != local:
                pass
