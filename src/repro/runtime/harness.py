"""Tunable-workload harness pieces (Section VI-A).

The paper evaluates the lock-free algorithms with harness programs that
repeatedly (1) access shared data through the lock-free algorithm and
(2) perform computation on private variables whose accesses need not be
ordered by the algorithm's fences.  The *workload level* scales step
(2); Figure 12 sweeps it from 1 (low) to 6 (high).

:class:`PrivateWork` emits step (2) with the structure that produces
the paper's rise-then-fall speedup curve:

* a dependent compute chain (``compute_per_level * level`` cycles),
* ``hot_per_level * level`` stores + ``loads_per_level * level`` loads
  over a per-thread 64 KB working set -- misses the 32 KB L1, hits the
  shared L2, so these drain quickly;
* up to :data:`COLD_CAP` *cold* stores per iteration (``0.5 * level``
  on average), streaming over a large never-reused region -- these are
  the long-latency (300-cycle) accesses a traditional fence in the next
  lock-free operation must wait out while a scoped fence does not.

The cold count saturating at :data:`COLD_CAP` is what bends the curve
down again: past the peak the traditional fence's extra stall stops
growing while the compute term keeps rising, so the relative benefit
shrinks (exactly the paper's explanation of Figure 12).
"""

from __future__ import annotations

from ..isa.instructions import Branch, Compute, Fence, FenceKind, WAIT_BOTH
from .lang import Env, SharedArray


def supervised_run(build_sim, base_budget: int = 200_000, escalations: int = 3,
                   factor: int = 2, raise_on_failure: bool = True):
    """Run a simulator factory under the chaos escalation ladder.

    ``build_sim`` is a zero-argument callable returning a fresh, fully
    wired :class:`~repro.sim.simulator.Simulator`; it is re-invoked for
    every budget rung so each attempt is an independent deterministic
    replay.  Returns a :class:`~repro.chaos.supervisor.SupervisedOutcome`
    whose ``result`` is the usual :class:`~repro.sim.simulator.SimResult`
    on success; deadlock/livelock/budget failures raise (or carry, with
    ``raise_on_failure=False``) a classified
    :class:`~repro.chaos.supervisor.ChaosFailure` with per-core
    diagnostics.  The import is lazy so harness users who never need
    supervision do not load the chaos package.
    """
    from ..chaos.supervisor import run_supervised

    return run_supervised(build_sim, base_budget=base_budget,
                          escalations=escalations, factor=factor,
                          raise_on_failure=raise_on_failure)

#: synth mode lattice name -> instruction fence kind
MODE_KIND = {
    "full": FenceKind.GLOBAL,
    "sfence-class": FenceKind.CLASS,
    "sfence-set": FenceKind.SET,
}


class FencePlan:
    """A per-slot fence-mode assignment for a guest program.

    The lock-free algorithms and apps name each hand-written fence
    *slot* ("put.publish", "gather", ...).  A plan maps slot names to
    synth lattice modes (``none``/``sfence-set``/``sfence-class``/
    ``full``); slots absent from the map fall back to ``default`` --
    ``"hand"`` keeps the structure's own scope choice, ``"none"``
    elides the fence (the old ``use_fences=False``).  This is how the
    whole-program synthesizer swaps placements into the real guests
    without touching their code.
    """

    def __init__(self, modes: dict[str, str] | None = None,
                 default: str = "hand"):
        self.modes = dict(modes or {})
        self.default = default
        # fence ops are immutable once built (the simulator keys on
        # RobEntry state, never op identity), so each slot's tuple is
        # built once and replayed -- guests call fence() per iteration
        self._fence_memo: dict[tuple, tuple] = {}

    @classmethod
    def hand(cls) -> "FencePlan":
        """Every slot keeps its hand-written mode."""
        return cls({}, default="hand")

    @classmethod
    def none(cls) -> "FencePlan":
        """Every slot elided: the unfenced baseline."""
        return cls({}, default="none")

    def mode(self, slot: str, hand_kind: FenceKind) -> FenceKind | None:
        mode = self.modes.get(slot, self.default)
        if mode == "hand":
            return hand_kind
        if mode == "none":
            return None
        return MODE_KIND[mode]

    def fence(self, slot: str, hand_kind: FenceKind,
              waits: int = WAIT_BOTH, speculable: bool = True):
        """The ops for one slot: ``()`` or a single named fence.

        Call sites splice it with ``yield from``, so an elided slot
        costs nothing and emits nothing.
        """
        key = (slot, hand_kind, waits, speculable)
        ops = self._fence_memo.get(key)
        if ops is None:
            kind = self.mode(slot, hand_kind)
            ops = () if kind is None else (
                Fence(kind=kind, waits=waits, speculable=speculable,
                      name=slot),)
            self._fence_memo[key] = ops
        return ops


#: distinct synthetic branch pcs handed out to PrivateWork instances
_next_branch_pc = [0x100]

#: per-thread hot working set (words): 64 KB -> L1-missing, L2-hitting
HOT_WORDS = 8_192
#: per-thread cold region (words): streamed, never re-used before wrap;
#: eight threads stream 4 MB total >> the 1 MB shared L2
COLD_WORDS = 65_536

#: workload-level scaling
HOT_STORES_PER_LEVEL = 2
LOADS_PER_LEVEL = 1
COMPUTE_PER_LEVEL = 400
#: average cold stores per iteration = COLD_PER_LEVEL * (level - 1), capped:
#: level 1 has (almost) no long-latency private accesses pending at the
#: fence, so both fence flavours stall alike; the cap bends the curve
#: back down once compute dominates
COLD_PER_LEVEL = 1.0
COLD_CAP = 3


class ScratchSpill:
    """Per-thread private spill area with a controlled cold-miss rate.

    The full applications spill intermediate results to private scratch
    memory right before their fences; how often such a spill is a
    long-latency (cold) miss controls how much a *traditional* fence
    stalls on private traffic.  ``cold_every=k`` makes every k-th spill
    stream into never-reused memory (a 300-cycle store) while the rest
    hit a small L1-resident hot buffer.
    """

    def __init__(
        self,
        env: Env,
        tid: int,
        name: str,
        cold_every: int = 3,
        hot_words: int = 64,
        cold_words: int = COLD_WORDS,
    ) -> None:
        if cold_every < 1:
            raise ValueError("cold_every must be >= 1")
        self.cold_every = cold_every
        self.words_per_line = env.config.words_per_line
        self.hot: SharedArray = env.private_array(f"{name}.hotspill", tid, hot_words)
        self.cold: SharedArray = env.private_array(f"{name}.coldspill", tid, cold_words)
        self._count = 0
        self._hot_cursor = 0
        self._cold_cursor = 0

    def store(self, value: int):
        """One spill store op (guest yields the result)."""
        self._count += 1
        if self._count % self.cold_every == 0:
            idx = self._cold_cursor
            self._cold_cursor = (self._cold_cursor + self.words_per_line) % len(self.cold)
            return self.cold.store(idx, value)
        idx = self._hot_cursor
        self._hot_cursor = (self._hot_cursor + 1) % len(self.hot)
        return self.hot.store(idx, value)


class FlaggedExchange:
    """Shared *conflicting* traffic with poor locality (delay-set flagged).

    Both SPLASH-2 applications have genuinely conflicting data beyond
    the headline arrays (barnes: cell/body ownership exchanged between
    threads each step; radiosity: mutable interaction/task structures).
    Those accesses are flagged by delay-set analysis, so even a
    set-scope fence must wait for them -- which is why the paper's
    S-Fence removes only 40-50% of the fence stalls rather than all of
    them (Figure 13).

    Each ``emit`` (rate-limited by ``every``) publishes one record into
    the thread's streaming slot and reads the neighbouring thread's
    slot; the region is sized so these are long-latency misses.
    """

    def __init__(
        self,
        env: Env,
        tid: int,
        n_threads: int,
        array: SharedArray,
        every: int = 2,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.tid = tid
        self.n_threads = n_threads
        self.array = array
        self.every = every
        self.slice_len = len(array) // n_threads
        self._count = 0
        self._cursor = 0

    @staticmethod
    def make_region(env: Env, name: str, n_threads: int, words_per_thread: int = 4096) -> SharedArray:
        """The shared flagged region all threads exchange through."""
        return env.line_array(name, n_threads * words_per_thread, flagged=True)

    def emit(self, token: int = 0):
        """Guest fragment: one flagged store + one flagged load, rate-limited."""
        self._count += 1
        if self._count % self.every:
            return 0
        own = self.tid * self.slice_len + self._cursor
        peer = ((self.tid + 1) % self.n_threads) * self.slice_len + self._cursor
        self._cursor = (self._cursor + 1) % self.slice_len
        yield self.array.store(own, token)
        value = yield self.array.load(peer)
        return value


class PrivateWork:
    """Per-thread private computation with calibrated cache behaviour."""

    def __init__(
        self,
        env: Env,
        tid: int,
        level: int,
        name: str = "priv",
        hot_words: int = HOT_WORDS,
        cold_words: int = COLD_WORDS,
        compute_per_level: int = COMPUTE_PER_LEVEL,
        cold_per_level: float = COLD_PER_LEVEL,
        cold_cap: int = COLD_CAP,
        emit_branches: bool = False,
    ) -> None:
        if level < 0:
            raise ValueError("workload level must be >= 0")
        self.level = level
        self.words_per_line = env.config.words_per_line
        self.hot: SharedArray = env.private_array(f"{name}.hot", tid, hot_words)
        self.cold: SharedArray = env.private_array(f"{name}.cold", tid, cold_words)
        # steady-state residency: the hot set lives in the shared L2
        # (it exceeds the 32 KB L1, so it is *not* warmed into L1)
        env.request_warm(self.hot, tid)
        self._hot_cursor = 0
        self._cold_cursor = 0
        # cold loads stream the other half of the region so they never
        # touch lines the cold stores just wrote
        self._cold_load_cursor = cold_words // 2
        self._cold_budget = 0.0
        self.n_hot_stores = HOT_STORES_PER_LEVEL * level
        self.n_loads = LOADS_PER_LEVEL * level
        self.compute_cycles = compute_per_level * level
        self.cold_rate = min(cold_per_level * max(0, level - 1), float(cold_cap))
        self.emit_branches = emit_branches
        self._branch_pc = _next_branch_pc[0]
        _next_branch_pc[0] += 1
        self._emit_count = 0

    def _hot_index(self) -> int:
        idx = self._hot_cursor
        self._hot_cursor = (self._hot_cursor + self.words_per_line) % len(self.hot)
        return idx

    def _cold_index(self) -> int:
        idx = self._cold_cursor
        self._cold_cursor = (self._cold_cursor + self.words_per_line) % (len(self.cold) // 2)
        return idx

    def _cold_load_index(self) -> int:
        idx = self._cold_load_cursor
        half = len(self.cold) // 2
        self._cold_load_cursor = half + (
            self._cold_load_cursor - half + self.words_per_line
        ) % (len(self.cold) - half)
        return idx

    def emit(self, token: int = 0):
        """Yield one iteration of private work (a guest fragment).

        Ordering matters: loads and compute come first (their latency is
        hidden by the time the next lock-free operation runs), the cold
        stores come *last* so they are still draining when that
        operation's fence executes.
        """
        acc = 0
        for _ in range(self.n_loads):
            acc ^= yield self.hot.load(self._hot_index())
        if self.compute_cycles:
            yield Compute(self.compute_cycles)
        for _ in range(self.n_hot_stores):
            yield self.hot.store(self._hot_index(), token)
        self._cold_budget += self.cold_rate
        while self._cold_budget >= 1.0:
            self._cold_budget -= 1.0
            yield self.cold.store(self._cold_index(), token)
            acc ^= yield self.cold.load(self._cold_load_index())
        if self.emit_branches:
            # the iteration's loop-back branch: taken except every 8th
            # time (loop exit), the classic two-bit-predictor pattern
            self._emit_count += 1
            yield Branch(taken=self._emit_count % 8 != 0, pc=self._branch_pc)
        return acc
