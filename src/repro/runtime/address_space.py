"""Guest address space management.

A simple bump allocator over the word-addressed functional memory.
Every named allocation is cache-line aligned by default so unrelated
variables never share a line (the paper's benchmarks would be padded
the same way; false sharing can still be produced on purpose with
``line_aligned=False``).
"""

from __future__ import annotations


class AddressSpace:
    """Bump allocator handing out disjoint word ranges."""

    def __init__(self, size_words: int, words_per_line: int) -> None:
        if size_words < 1 or words_per_line < 1:
            raise ValueError("sizes must be positive")
        self.size_words = size_words
        self.words_per_line = words_per_line
        self._next = words_per_line  # keep address 0 unused (null pointer)
        self._regions: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, n_words: int, line_aligned: bool = True) -> int:
        """Reserve ``n_words``; returns the base address."""
        if n_words < 1:
            raise ValueError("n_words must be >= 1")
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        base = self._next
        if line_aligned:
            wpl = self.words_per_line
            base = (base + wpl - 1) // wpl * wpl
        end = base + n_words
        if end > self.size_words:
            raise MemoryError(
                f"address space exhausted allocating {name!r} "
                f"({end} > {self.size_words} words)"
            )
        self._regions[name] = (base, n_words)
        self._next = end
        return base

    def region(self, name: str) -> tuple[int, int]:
        """(base, length) of a named region."""
        return self._regions[name]

    def regions(self) -> dict[str, tuple[int, int]]:
        return dict(self._regions)

    def owner_of(self, addr: int) -> str | None:
        """Name of the region containing ``addr`` (diagnostics)."""
        for name, (base, length) in self._regions.items():
            if base <= addr < base + length:
                return name
        return None

    @property
    def used_words(self) -> int:
        return self._next
