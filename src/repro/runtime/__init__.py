"""Guest runtime: address space, language/compiler layer, harnesses."""

from .address_space import AddressSpace
from .harness import FlaggedExchange, PrivateWork, ScratchSpill
from .lang import Env, ScopedStructure, SharedArray, SharedVar, cid_of, scoped_method
from .sync import SenseBarrier, SpinLock

__all__ = [
    "AddressSpace",
    "Env",
    "FlaggedExchange",
    "PrivateWork",
    "ScratchSpill",
    "SenseBarrier",
    "SpinLock",
    "ScopedStructure",
    "SharedArray",
    "SharedVar",
    "cid_of",
    "scoped_method",
]
