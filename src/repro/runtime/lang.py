"""The "language + compiler" layer for guest programs.

The paper's compiler support is deliberately small (Sections IV-A1 and
V-A1): wrap every public method of a scoped class in ``fs_start cid`` /
``fs_end cid``, and flag the loads/stores of the variables named by a
set-scope fence.  This module performs exactly those transformations on
guest instruction streams:

* :class:`Env` owns the functional memory + address space and hands out
  :class:`SharedVar` / :class:`SharedArray` handles whose ``load`` /
  ``store`` / ``cas`` methods build the corresponding ISA ops (with the
  set-scope ``flagged`` bit when requested).
* :func:`scoped_method` wraps a generator method so that ``fs_start``
  is emitted at entry and ``fs_end`` at *every* exit -- normal return,
  early return, or exception -- mirroring "for each public function, we
  insert fs_start at the entry ... and insert fs_end for each exit".
* :class:`ScopedStructure` is the base class concurrent data structures
  derive from; it assigns each class a unique *cid* and resolves the
  fence kind from the structure's configured scope
  (GLOBAL / CLASS / SET), so one implementation serves the traditional
  baseline, class scope, and set scope (Figure 14 compares the latter
  two).
* :func:`block` (and the :meth:`SharedArray.load_block` /
  :meth:`SharedArray.store_block` conveniences) marks a straight-line
  run of result-free ops as one
  :class:`~repro.sim.tracecomp.BlockHint`, the block-boundary marker
  the trace-compiled engine batch-admits.  Semantically a hint is
  exactly the per-op sequence on every engine; it only changes
  wall-clock time.
"""

from __future__ import annotations

import functools
import itertools
from collections.abc import Generator

from ..isa.instructions import (
    Cas,
    Fence,
    FenceKind,
    FsEnd,
    FsStart,
    Load,
    Op,
    Store,
    WAIT_BOTH,
)
from ..mem.memory import SharedMemory
from ..sim.config import SimConfig
from ..sim.simulator import Simulator, SimResult
from ..sim.tracecomp import BlockHint
from ..isa.program import Program
from .address_space import AddressSpace

_cid_counter = itertools.count(1)
_cid_registry: dict[type, int] = {}


def cid_of(cls: type) -> int:
    """The unique class id assigned to a scoped class (lazily)."""
    cid = _cid_registry.get(cls)
    if cid is None:
        cid = next(_cid_counter)
        _cid_registry[cls] = cid
    return cid


def reset_cids() -> None:
    """Forget every lazily assigned class id.

    cid *values* never influence simulation behaviour (they are opaque
    mapping-table keys), but they do appear in monitor event streams and
    depend on which classes were touched first in a process.  The
    campaign engine resets them before each job so a job's full event
    stream -- not just its stats -- is identical no matter which worker
    ran it or what ran before.  Never call this while scoped structures
    built earlier are still in use.
    """
    global _cid_counter
    _cid_counter = itertools.count(1)
    _cid_registry.clear()


def block(ops) -> BlockHint:
    """Mark a straight-line run of ops as one yieldable batch.

    ``yield block([...])`` is the guest-level block-boundary marker:
    it promises the guest will not consume any of the wrapped ops'
    results (the hint's yield sends back ``None``), which is what lets
    the trace-compiled engine admit the run through the fused batch
    path.  On the dense and event engines the hint expands to the
    identical per-op stream -- results, timing and instrumentation are
    byte-for-byte the same either way.

    Ops whose values steer guest control flow (a load feeding a
    branch, a CAS whose success is checked) must stay outside the
    block.  Cut-point ops (fences, scope delimiters, flagged
    accesses) *may* appear -- they simply segment the hint into
    several compiled blocks with interpreted ops in between.
    """
    return BlockHint(ops)


def scoped_method(fn):
    """Wrap a generator method in ``fs_start``/``fs_end`` delimiters."""

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        cid = cid_of(type(self))
        yield FsStart(cid)
        try:
            result = yield from fn(self, *args, **kwargs)
        except GeneratorExit:
            # the guest was abandoned mid-run (aborted/failed simulation
            # being torn down): yielding FsEnd during close() is illegal
            raise
        except BaseException:
            yield FsEnd(cid)
            raise
        yield FsEnd(cid)
        return result

    wrapper.__scoped__ = True
    return wrapper


class SharedVar:
    """A single shared word with symbolic name."""

    __slots__ = ("addr", "name", "flagged", "_memory", "_load_op")

    def __init__(self, addr: int, name: str, flagged: bool, memory: SharedMemory) -> None:
        self.addr = addr
        self.name = name
        self.flagged = flagged
        self._memory = memory
        # ops are immutable once built (the simulator keys everything on
        # addr/name and per-dispatch RobEntries, never op identity), so
        # hot guest loops reuse one Load object instead of allocating
        # per access
        self._load_op = Load(addr, flagged=flagged, name=name)

    # guest ops --------------------------------------------------------------
    def load(self) -> Load:
        return self._load_op

    def store(self, value: int) -> Store:
        return Store(self.addr, value, flagged=self.flagged, name=self.name)

    def cas(self, expected: int, new: int) -> Cas:
        return Cas(self.addr, expected, new, flagged=self.flagged, name=self.name)

    # host (out-of-band) access ----------------------------------------------
    def peek(self) -> int:
        """Globally visible value, bypassing the simulation (checkers)."""
        return self._memory.read_global(self.addr)

    def poke(self, value: int) -> None:
        """Initialise the globally visible value before a run."""
        self._memory.write_global(self.addr, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SharedVar {self.name}@{self.addr}>"


class SharedArray:
    """A shared array of words.

    ``stride > 1`` pads each element to its own ``stride``-word slot
    (e.g. one cache line per element).  This is the scale-model layout
    the graph/n-body applications use: one line per record reproduces
    the miss behaviour of paper-sized data sets at simulable sizes.
    """

    __slots__ = ("base", "length", "name", "flagged", "stride", "_memory",
                 "_op_names", "_load_ops")

    def __init__(
        self,
        base: int,
        length: int,
        name: str,
        flagged: bool,
        memory: SharedMemory,
        stride: int = 1,
    ) -> None:
        self.base = base
        self.length = length
        self.name = name
        self.flagged = flagged
        self.stride = stride
        self._memory = memory
        # op memos: hot guest loops hit the same indices over and over,
        # so the "name[index]" strings ops carry (load-bearing for the
        # delay-set analyzer's allocation grouping) and the plain Load
        # objects themselves (immutable once built; the simulator never
        # keys on op identity) are built once per index, not per access
        self._op_names: dict[int, str] = {}
        self._load_ops: dict[int, Load] = {}

    def _check(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"{self.name}[{index}] out of range (len {self.length})")
        return self.base + index * self.stride

    def addr_of(self, index: int) -> int:
        return self._check(index)

    # guest ops --------------------------------------------------------------
    def _op_name(self, index: int) -> str:
        name = self._op_names.get(index)
        if name is None:
            name = f"{self.name}[{index}]"
            self._op_names[index] = name
        return name

    def load(self, index: int, serialize: bool = False) -> Load:
        if serialize:
            return Load(
                self._check(index),
                flagged=self.flagged,
                serialize=True,
                name=self._op_name(index),
            )
        op = self._load_ops.get(index)
        if op is None:
            op = Load(
                self._check(index),
                flagged=self.flagged,
                name=self._op_name(index),
            )
            self._load_ops[index] = op
        return op

    def store(self, index: int, value: int) -> Store:
        return Store(self._check(index), value, flagged=self.flagged, name=self._op_name(index))

    def cas(self, index: int, expected: int, new: int) -> Cas:
        return Cas(self._check(index), expected, new, flagged=self.flagged, name=self._op_name(index))

    # block-boundary markers (see :func:`block`) -----------------------------
    def load_block(self, indices) -> BlockHint:
        """A batched gather whose loaded values are discarded.

        The touch-the-lines access pattern (warming, scanning for side
        effects on the cache) as one block boundary: each index becomes
        a plain :meth:`load`, and the guest receives ``None`` -- use
        individual ``yield self.load(i)`` when the value matters.
        """
        return block(self.load(i) for i in indices)

    def store_block(self, items) -> BlockHint:
        """A batched scatter; ``items`` yields ``(index, value)`` pairs."""
        return block(self.store(i, v) for i, v in items)

    # host access ---------------------------------------------------------------
    def peek(self, index: int) -> int:
        return self._memory.read_global(self._check(index))

    def poke(self, index: int, value: int) -> None:
        self._memory.write_global(self._check(index), value)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SharedArray {self.name}[{self.length}]@{self.base}>"


class Env:
    """One guest environment: functional memory + allocator + config."""

    def __init__(self, config: SimConfig | None = None) -> None:
        self.config = config if config is not None else SimConfig()
        self.memory = SharedMemory(self.config.mem_size_words, self.config.n_cores)
        self.space = AddressSpace(self.config.mem_size_words, self.config.words_per_line)
        # cache warm-up requests applied when a simulator is built:
        # (core, base, length, into_l1)
        self._warm_requests: list[tuple[int, int, int, bool]] = []

    def var(self, name: str, init: int = 0, flagged: bool = False) -> SharedVar:
        addr = self.space.alloc(name, 1)
        v = SharedVar(addr, name, flagged, self.memory)
        if init:
            v.poke(init)
        return v

    def array(
        self,
        name: str,
        length: int,
        init: int = 0,
        flagged: bool = False,
        line_aligned: bool = True,
        stride: int = 1,
    ) -> SharedArray:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        base = self.space.alloc(name, length * stride, line_aligned=line_aligned)
        arr = SharedArray(base, length, name, flagged, self.memory, stride=stride)
        if init:
            for i in range(length):
                arr.poke(i, init)
        return arr

    def line_array(self, name: str, length: int, init: int = 0, flagged: bool = False) -> SharedArray:
        """An array with one cache line per element (scale-model layout)."""
        return self.array(name, length, init, flagged, stride=self.config.words_per_line)

    def private_array(self, name: str, tid: int, length: int) -> SharedArray:
        """Per-thread scratch memory (private by construction/usage)."""
        return self.array(f"{name}.t{tid}", length)

    def request_warm(self, target, core: int, into_l1: bool = False) -> None:
        """Pre-load an array or variable into the caches before the run.

        Models the measurement-phase warm-up of a cycle-accurate
        simulator; used by harnesses whose steady-state cache residency
        matters (e.g. the L2-resident private working sets of the
        Section VI-A workloads).  ``target`` is a :class:`SharedArray`
        or :class:`SharedVar`.
        """
        if isinstance(target, SharedArray):
            self._warm_requests.append(
                (core, target.base, target.length * target.stride, into_l1)
            )
        elif isinstance(target, SharedVar):
            self._warm_requests.append((core, target.addr, 1, into_l1))
        else:
            raise TypeError(f"cannot warm {target!r}")

    def simulator(self, program: Program, tracer=None) -> Simulator:
        sim = Simulator(self.config, program, memory=self.memory, tracer=tracer)
        for core, base, length, into_l1 in self._warm_requests:
            sim.hierarchy.warm(core, base, length, into_l1=into_l1)
        return sim

    def run(self, program: Program, tracer=None, max_cycles: int | None = None) -> SimResult:
        return self.simulator(program, tracer=tracer).run(max_cycles=max_cycles)


class ScopedStructure:
    """Base for concurrent data structures whose fences can be scoped.

    ``scope`` selects how the structure's fences behave:

    * ``FenceKind.GLOBAL`` -- plain traditional fences (baseline),
    * ``FenceKind.CLASS``  -- class-scope S-Fences (methods are wrapped
      in ``fs_start``/``fs_end`` by :func:`scoped_method`),
    * ``FenceKind.SET``    -- set-scope S-Fences; the structure's shared
      variables are created flagged so the hardware can match them.
    """

    def __init__(self, env: Env, name: str, scope: FenceKind = FenceKind.CLASS) -> None:
        self.env = env
        self.name = name
        self.scope = scope
        self.cid = cid_of(type(self))

    # -- construction helpers -------------------------------------------------
    @property
    def flag_vars(self) -> bool:
        return self.scope is FenceKind.SET

    def svar(self, suffix: str, init: int = 0) -> SharedVar:
        return self.env.var(f"{self.name}.{suffix}", init, flagged=self.flag_vars)

    def sarray(self, suffix: str, length: int, init: int = 0, stride: int = 1) -> SharedArray:
        return self.env.array(
            f"{self.name}.{suffix}", length, init, flagged=self.flag_vars, stride=stride
        )

    # -- fence construction -----------------------------------------------------
    def fence(self, waits: int = WAIT_BOTH, speculable: bool = True) -> Fence:
        """An S-Fence with this structure's configured scope."""
        return Fence(kind=self.scope, waits=waits, speculable=speculable)

    # -- auxiliary bookkeeping ----------------------------------------------------
    def init_opstats(self) -> None:
        """Create the structure's operation-statistics counter.

        Deliberately *never* set-scope-flagged: the counter is a hint,
        not part of the algorithm's ordering requirements.  Class scope
        still orders it (it is accessed inside the class's methods) --
        the reason set scope is slightly faster in Figure 14.
        """
        self._opstat = self.env.var(f"{self.name}.opstat")
        self._opcount = 0

    def note_op(self):
        """One bookkeeping store per public operation (guest op)."""
        self._opcount += 1
        return self._opstat.store(self._opcount)
