"""The formal coherence-backend interface and its factory.

The simulator is multi-backend: every timing question about the memory
system goes through one :class:`CoherenceBackend` instance, selected by
``SimConfig.mem_backend`` and constructed by :func:`create_backend`.
Two backends exist today:

* ``mesi`` -- :class:`repro.mem.hierarchy.MemoryHierarchy`: private L1s
  + inclusive shared L2 with an MSI-style directory (invalidation-based
  coherence, cache-to-cache transfers).  Fence sync points are a no-op
  (``fence`` returns ``None``): an invalidation protocol keeps caches
  coherent continuously, so a fence is purely a core-side ordering
  matter.
* ``sisd`` -- :class:`repro.mem.sisd.SiSdHierarchy`: self-invalidation/
  self-downgrade coherence (Abdulla et al.).  No directory, no
  invalidation traffic, no cache-to-cache transfers; instead each core
  *self-invalidates* its clean lines at acquire-like sync points and
  *self-downgrades* (writes through) its dirty lines at release-like
  points.  ``fence`` performs that sync and returns a
  :class:`SyncOutcome` the core turns into dispatch-blocking latency
  and an ``on_coherence_sync`` monitor event.

The contract both sides honour:

* **Cores and runtimes call only the members named in**
  :data:`BACKEND_INTERFACE`.  ``tests/test_backend_interface.py``
  greps the source tree for ``hierarchy.<attr>`` call sites and fails
  on anything outside this surface, so neither backend's internals can
  leak back into the core model.
* **Backends are timing-only.**  Functional values live in
  :class:`~repro.mem.memory.SharedMemory` and the store buffers; a
  backend resolves latencies and sync outcomes, never data.  That is
  what makes a new backend *sound by construction* -- it can change
  which interleavings a sweep reaches, not what a load may return --
  and the verify/fuzz batteries then prove the claim empirically
  (observed outcomes stay within the reference allowed sets).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import MEM_BACKENDS, SimConfig
from ..sim.stats import CoreStats

#: the complete public surface of a coherence backend: the only
#: attributes code outside ``repro.mem`` may touch on ``sim.hierarchy``
#: (enforced by tests/test_backend_interface.py's call-site scan)
BACKEND_INTERFACE = (
    "name",
    "config",
    "fault",
    "access",
    "access_batch",
    "load_timed",
    "completion_cycle",
    "fence",
    "warm",
    "line_of",
    "resident_in_l1",
    "resident_in_l2",
    "backend_stats",
)


@dataclass(frozen=True)
class SyncOutcome:
    """What one fence sync point did inside the backend.

    Returned by :meth:`CoherenceBackend.fence` when the backend has
    per-sync-point work (SiSd); ``None`` from a backend means the sync
    point is architecturally free (MESI) and the core must emit no
    event and charge no latency -- which is exactly what keeps the
    default backend byte-identical to the pre-refactor hierarchy.
    """

    kind: str         # "acquire" / "release" / "full"
    latency: int      # extra cycles the core blocks dispatch for
    invalidated: int  # clean lines dropped (self-invalidation)
    downgraded: int   # dirty lines written through (self-downgrade)


class CoherenceBackend:
    """Abstract timing model of the memory system below the cores.

    Subclasses implement every method; ``fault`` is a plain attribute
    (the chaos harness installs a latency-perturbation hook there) and
    ``name`` identifies the backend in reports and cache keys.
    """

    #: backend identifier, one of :data:`repro.sim.config.MEM_BACKENDS`
    name = "abstract"

    config: SimConfig
    #: optional chaos hook ``fault(core, addr, is_write, latency) -> latency``
    fault = None

    def access(self, core: int, addr: int, is_write: bool, stats: CoreStats) -> int:
        """Perform one timed access; returns the latency in cycles."""
        raise NotImplementedError

    def access_batch(
        self, core: int, addrs, is_write: bool, stats: CoreStats
    ) -> list[tuple[bool, int]]:
        """Timed accesses for a straight-line batch of same-kind ops.

        For each address, in order: ``(was_resident_in_l1, latency)``,
        where residency is sampled *before* that access runs (the MSHR
        allocation test) and each access observes the cache state left
        by the previous one -- i.e. exactly the per-op sequence
        ``resident_in_l1(); access()`` the interpreter issues, as one
        backend call.  This is the batch-timing contract the trace
        compiler's block admission relies on (docs/architecture.md
        §16): a backend override may vectorise the walk but must
        preserve the sequential semantics, because an access can evict
        the line a later access in the same batch touches.
        """
        resident = self.resident_in_l1
        access = self.access
        return [
            (resident(core, a), access(core, a, is_write, stats))
            for a in addrs
        ]

    def load_timed(self, core: int, addr: int, stats: CoreStats) -> tuple[bool, int]:
        """One timed read access as ``(was_resident_in_l1, latency)``.

        Semantically ``(resident_in_l1(core, addr), access(core, addr,
        False, stats))`` -- residency sampled before the access runs
        (the MSHR allocation test), then the access performed.  Backends
        may override it to resolve both in a single cache walk; the
        trace-compiled dispatch lane issues this instead of the two-call
        sequence whenever an MSHR is known to be available.
        """
        return self.resident_in_l1(core, addr), self.access(core, addr, False, stats)

    def completion_cycle(
        self, now: int, core: int, addr: int, is_write: bool, stats: CoreStats
    ) -> int:
        """Perform one timed access; returns the exact completion cycle.

        Part of the event-scheduler wake-up contract (architecture §9):
        the backend resolves each access to an absolute wake-up cycle
        (``now`` + architectural latency + any injected fault latency)
        that the core schedules as a completion event.
        """
        return now + self.access(core, addr, is_write, stats)

    def fence(self, core: int, kind: str, waits: int, stats: CoreStats):
        """One fence sync point passed on ``core``.

        ``kind`` is the fence's :class:`~repro.isa.instructions.FenceKind`
        value string, ``waits`` its WAIT_LOADS/WAIT_STORES mask.  Returns
        a :class:`SyncOutcome` when the backend did per-sync work the
        core must account (latency, monitor event), or ``None`` when the
        sync point is free.  Called *after* the core's own ordering
        condition held -- the backend never decides whether a fence may
        pass, only what passing costs.
        """
        raise NotImplementedError

    def warm(self, core: int, base: int, length: int, into_l1: bool = False) -> None:
        """Pre-load an address range into the caches without charging time."""
        raise NotImplementedError

    def line_of(self, addr: int) -> int:
        """The cache line index holding ``addr``."""
        raise NotImplementedError

    def resident_in_l1(self, core: int, addr: int) -> bool:
        """Whether ``addr`` currently hits in ``core``'s L1 (MSHR check)."""
        raise NotImplementedError

    def resident_in_l2(self, addr: int) -> bool:
        """Whether ``addr`` currently hits in the shared level."""
        raise NotImplementedError

    def backend_stats(self) -> dict:
        """Backend-specific counters (JSON-safe; may be empty)."""
        return {}


def create_backend(config: SimConfig) -> CoherenceBackend:
    """The backend instance ``config.mem_backend`` names.

    The single construction point every :class:`~repro.sim.simulator.
    Simulator` uses; backends are resolved lazily so importing one
    never drags in the other's module.
    """
    name = config.mem_backend
    if name == "mesi":
        from .hierarchy import MemoryHierarchy

        return MemoryHierarchy(config)
    if name == "sisd":
        from .sisd import SiSdHierarchy

        return SiSdHierarchy(config)
    raise KeyError(f"unknown mem_backend {name!r} (have {MEM_BACKENDS})")
