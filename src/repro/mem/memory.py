"""Functional shared memory with relaxed store visibility.

The simulator is *functional-first*: a load binds its value when the
core dispatches it, but a plain store only becomes visible to other
cores when it drains from the simulated store buffer.  This module
implements that split:

* ``SharedMemory.read(core, addr)`` returns the youngest *pending*
  store of the reading core for ``addr`` if one exists (store-to-load
  forwarding), else the globally visible value.
* ``SharedMemory.buffer_store(core, addr, value)`` records a pending
  store at dispatch time.
* ``SharedMemory.drain_store(core, addr)`` is called when the store
  buffer finishes writing the oldest pending store for ``addr``; only
  then does the value become globally visible.
* ``Cas`` bypasses the buffer: ``cas`` reads (with forwarding) and, on
  success, publishes immediately -- atomics act as fences and are
  modelled as draining synchronously at their serialization point.

This gives genuinely relaxed inter-core behaviour: under PSO/RMO drain
order, store-store reordering is architecturally observable (e.g. the
phantom-task bug of the unfenced Chase-Lev deque).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np


class SharedMemory:
    """Word-addressed functional memory shared by all cores."""

    def __init__(self, size_words: int, n_cores: int) -> None:
        if size_words < 1:
            raise ValueError("size_words must be positive")
        self._mem = np.zeros(size_words, dtype=np.int64)
        self.size_words = size_words
        self.n_cores = n_cores
        # pending[core][addr] -> FIFO list of not-yet-drained values
        self._pending: list[dict[int, list[int]]] = [
            defaultdict(list) for _ in range(n_cores)
        ]

    # -- functional access ----------------------------------------------------
    def read(self, core: int, addr: int) -> int:
        """Load with store-to-load forwarding from the core's own buffer."""
        pend = self._pending[core].get(addr)
        if pend:
            return pend[-1]
        return int(self._mem[addr])

    def read_global(self, addr: int) -> int:
        """Read the globally visible value (no forwarding); for checkers."""
        return int(self._mem[addr])

    def write_global(self, addr: int, value: int) -> None:
        """Directly set the globally visible value (initialisation)."""
        self._mem[addr] = value

    def buffer_store(self, core: int, addr: int, value: int) -> None:
        """Record a store at dispatch; visible only to ``core`` until drain."""
        self._pending[core][addr].append(value)

    def drain_store(self, core: int, addr: int) -> int:
        """Publish the oldest pending store of ``core`` for ``addr``.

        Same-address stores drain in program order (coherence order per
        location), so FIFO-per-address is exact.  Returns the published
        value.
        """
        fifo = self._pending[core][addr]
        if not fifo:
            raise RuntimeError(f"core {core} has no pending store for addr {addr}")
        value = fifo.pop(0)
        if not fifo:
            del self._pending[core][addr]
        self._mem[addr] = value
        return value

    def cas(self, core: int, addr: int, expected: int, new: int) -> bool:
        """Atomic compare-and-swap at the global serialization point.

        Any pending stores of *this core* to ``addr`` are force-drained
        first (a real CAS drains the store buffer); other cores'
        buffers are untouched -- their stores simply have not been
        published yet.
        """
        fifo = self._pending[core].get(addr)
        while fifo:
            self.drain_store(core, addr)
            fifo = self._pending[core].get(addr)
        if int(self._mem[addr]) == expected:
            self._mem[addr] = new
            return True
        return False

    def has_pending(self, core: int, addr: int) -> bool:
        """True if ``core`` has a buffered (undrained) store to ``addr``."""
        return bool(self._pending[core].get(addr))

    def pending_map(self, core: int):
        """``core``'s live pending-store map (addr -> value FIFO).

        A stable dict the compiled dispatch path hoists once per call:
        forwarding checks become one ``in`` test and buffered stores
        one ``append``, with exactly :meth:`has_pending` /
        :meth:`buffer_store` semantics.  Callers must not mutate it
        beyond appending through ``buffer_store``'s contract.
        """
        return self._pending[core]

    def pending_count(self, core: int) -> int:
        """Number of buffered (unpublished) stores for ``core``."""
        return sum(len(v) for v in self._pending[core].values())

    def snapshot(self) -> np.ndarray:
        """Copy of globally visible memory (for end-of-run checkers)."""
        return self._mem.copy()
