"""Memory substrate: functional memory, caches, coherence, hierarchy."""

from .cache import Cache
from .coherence import Directory
from .hierarchy import MemoryHierarchy
from .memory import SharedMemory

__all__ = ["Cache", "Directory", "MemoryHierarchy", "SharedMemory"]
