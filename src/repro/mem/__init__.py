"""Memory substrate: functional memory, caches, coherence backends."""

from .backend import BACKEND_INTERFACE, CoherenceBackend, SyncOutcome, create_backend
from .cache import Cache
from .coherence import Directory
from .hierarchy import MemoryHierarchy
from .memory import SharedMemory
from .sisd import SiSdHierarchy

__all__ = [
    "BACKEND_INTERFACE",
    "Cache",
    "CoherenceBackend",
    "Directory",
    "MemoryHierarchy",
    "SharedMemory",
    "SiSdHierarchy",
    "SyncOutcome",
    "create_backend",
]
