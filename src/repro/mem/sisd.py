"""Self-invalidation/self-downgrade (SiSd) coherence backend.

The rival design to invalidation-based coherence ("Mending Fences with
Self-Invalidation and Self-Downgrade", Abdulla et al.): caches are kept
coherent *only at synchronization points*, by the owning core itself,
with no directory, no invalidation traffic and no cache-to-cache
transfers.  Each core's L1 classifies resident lines as *clean* (read
in) or *dirty* (written by this core); the shared LLC backs everything.

Per ordinary access (:meth:`SiSdHierarchy.access`):

* L1 hit                       -> ``l1_latency`` (a write marks dirty)
* L1 miss, LLC hit             -> ``l2_latency``
* L1 miss, LLC miss            -> ``mem_latency``
* an evicted dirty line writes back into the LLC (lazy downgrade)

No access ever consults or perturbs a peer's L1 -- the structural
"no invalidation traffic" property the property tests pin.

Per fence sync point (:meth:`SiSdHierarchy.fence`), dispatched by the
core once its own ordering condition held:

* release-like (the fence waits on stores, ``WAIT_STORES``):
  **self-downgrade** -- every dirty line writes through to the LLC and
  becomes clean; one LLC round trip (``l2_latency``) covers the burst
  (write-throughs pipeline).
* acquire-like (the fence waits on loads, ``WAIT_LOADS``):
  **self-invalidate** -- every *clean* line is dropped, so the next
  read refetches a possibly-updated copy from the LLC.  Dirty lines
  survive (they are this core's own writes, not stale data);
  invalidation is a local valid-bit flash-clear and costs nothing.
* a full fence (``WAIT_BOTH``) does both, leaving the L1 empty.

The backend is timing-only, like every
:class:`~repro.mem.backend.CoherenceBackend`: values are resolved by
:class:`~repro.mem.memory.SharedMemory` and the store buffers, so SiSd
changes which interleavings a sweep reaches (and what they cost), never
what a load may return.  The verify matrix and the litmus fuzz suite
prove the resulting outcomes stay within the reference allowed sets.
"""

from __future__ import annotations

from ..isa.instructions import WAIT_LOADS, WAIT_STORES
from ..sim.config import SimConfig
from ..sim.stats import CoreStats
from .backend import CoherenceBackend, SyncOutcome
from .cache import Cache


class SiSdHierarchy(CoherenceBackend):
    """Per-core write-back L1s over a shared LLC, synced by SI/SD."""

    name = "sisd"

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        shift = config.line_bytes // config.word_bytes
        self._line_shift = shift.bit_length() - 1 if shift & (shift - 1) == 0 else None
        self._words_per_line = shift
        self.l1 = [
            Cache(config.l1_lines, config.l1_assoc, name=f"sisd-l1.{c}")
            for c in range(config.n_cores)
        ]
        self.llc = Cache(config.l2_lines, config.l2_assoc, name="sisd-llc")
        #: per-core dirty-line sets; always a subset of the core's
        #: resident lines (eviction retires the dirty bit via write-back)
        self.dirty: list[set[int]] = [set() for _ in range(config.n_cores)]
        # same chaos hook contract as the mesi backend: injected latency
        # may only model slower memory, never a functional change
        self.fault = None
        self.counters = {
            "sync_points": 0,
            "self_invalidations": 0,   # clean lines dropped at acquires
            "self_downgrades": 0,      # dirty lines written through at releases
            "eviction_writebacks": 0,  # dirty victims lazily downgraded
        }

    def line_of(self, addr: int) -> int:
        if self._line_shift is not None:
            return addr >> self._line_shift
        return addr // self._words_per_line

    # ------------------------------------------------------------------ access
    def access(self, core: int, addr: int, is_write: bool, stats: CoreStats) -> int:
        """Perform one timed access; returns the latency in cycles."""
        cfg = self.config
        line = self.line_of(addr)
        l1 = self.l1[core]

        if l1.touch(line):
            stats.l1_hits += 1
            latency = cfg.l1_latency
        else:
            stats.l1_misses += 1
            if self.llc.touch(line):
                stats.l2_hits += 1
                latency = cfg.l2_latency
            else:
                stats.l2_misses += 1
                latency = cfg.mem_latency
                self.llc.fill(line)
            self._fill_l1(core, line)
        if is_write:
            self.dirty[core].add(line)

        fault = self.fault
        if fault is not None:
            latency = max(1, fault(core, addr, is_write, latency))
        return latency

    def _fill_l1(self, core: int, line: int) -> None:
        victim = self.l1[core].fill(line)
        if victim is not None and victim in self.dirty[core]:
            # lazy downgrade: an evicted dirty line becomes the LLC's copy
            self.dirty[core].discard(victim)
            self.llc.fill(victim)
            self.counters["eviction_writebacks"] += 1

    # ------------------------------------------------------------- sync points
    def fence(self, core: int, kind: str, waits: int, stats: CoreStats):
        """Self-downgrade and/or self-invalidate this core's L1."""
        downgraded = 0
        invalidated = 0
        l1 = self.l1[core]
        dirty = self.dirty[core]

        if waits & WAIT_STORES:
            for line in sorted(dirty):
                self.llc.fill(line)
            downgraded = len(dirty)
            dirty.clear()

        if waits & WAIT_LOADS:
            for line in sorted(l1.resident_lines() - dirty):
                l1.invalidate(line)
                invalidated += 1

        if waits & WAIT_STORES and waits & WAIT_LOADS:
            sync_kind = "full"
        elif waits & WAIT_STORES:
            sync_kind = "release"
        elif waits & WAIT_LOADS:
            sync_kind = "acquire"
        else:  # pragma: no cover - fences always wait on something
            return None

        self.counters["sync_points"] += 1
        self.counters["self_downgrades"] += downgraded
        self.counters["self_invalidations"] += invalidated
        # write-throughs pipeline into one LLC round trip; invalidation
        # is a local flash-clear of valid bits and costs nothing
        latency = self.config.l2_latency if downgraded else 0
        return SyncOutcome(sync_kind, latency, invalidated, downgraded)

    # ---------------------------------------------------------------- warm-up
    def warm(self, core: int, base: int, length: int, into_l1: bool = False) -> None:
        """Pre-load an address range into the caches without charging time."""
        first = self.line_of(base)
        last = self.line_of(base + length - 1)
        for line in range(first, last + 1):
            self.llc.fill(line)
            if into_l1:
                self._fill_l1(core, line)

    # -- introspection helpers (tests) -----------------------------------------
    def resident_in_l1(self, core: int, addr: int) -> bool:
        return self.l1[core].contains(self.line_of(addr))

    def resident_in_l2(self, addr: int) -> bool:
        return self.llc.contains(self.line_of(addr))

    def dirty_lines(self, core: int) -> set[int]:
        """This core's dirty line ids (property-test oracle surface)."""
        return set(self.dirty[core])

    def clean_lines(self, core: int) -> set[int]:
        """This core's resident-but-clean line ids."""
        return self.l1[core].resident_lines() - self.dirty[core]

    def backend_stats(self) -> dict:
        return dict(self.counters)
