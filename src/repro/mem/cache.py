"""Set-associative LRU cache timing model.

Purely a *timing* structure: it tracks which line ids are resident and
in what recency order, never data values (values live in
:class:`repro.mem.memory.SharedMemory`).  Lookups and fills are O(assoc)
with an ordered-dict-free implementation tuned for the simulator's
inner loop (plain dicts + per-set recency lists).
"""

from __future__ import annotations


class Cache:
    """One cache level: ``n_lines`` total capacity, ``assoc`` ways."""

    __slots__ = ("n_sets", "assoc", "_sets", "_where", "name")

    def __init__(self, n_lines: int, assoc: int, name: str = "cache") -> None:
        if n_lines < assoc:
            raise ValueError("cache must have at least one set")
        if n_lines % assoc != 0:
            raise ValueError("n_lines must be a multiple of assoc")
        self.n_sets = n_lines // assoc
        self.assoc = assoc
        self.name = name
        # each set is a list of line ids, LRU at index 0, MRU at the end
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self._where: dict[int, int] = {}  # line -> set index (presence map)

    def _set_of(self, line: int) -> int:
        return line % self.n_sets

    def contains(self, line: int) -> bool:
        return line in self._where

    def touch(self, line: int) -> bool:
        """Lookup; on hit, update recency and return True."""
        si = self._where.get(line)
        if si is None:
            return False
        ways = self._sets[si]
        # move to MRU position (small lists: O(assoc)); already-MRU hits
        # (common for repeated same-line access) skip the list shuffle
        if ways[-1] != line:
            ways.remove(line)
            ways.append(line)
        return True

    def fill(self, line: int) -> int | None:
        """Insert ``line``; returns the evicted line id or None."""
        si = self._set_of(line)
        ways = self._sets[si]
        if line in self._where:
            if ways[-1] != line:
                ways.remove(line)
                ways.append(line)
            return None
        victim = None
        if len(ways) >= self.assoc:
            victim = ways.pop(0)
            del self._where[victim]
        ways.append(line)
        self._where[line] = si
        return victim

    def fill_absent(self, line: int) -> int | None:
        """:meth:`fill` for a line the caller just saw miss.

        Skips the residency re-check ``fill`` does; only valid when the
        line is known absent (a ``touch`` on it just returned False and
        nothing evicted in between).
        """
        si = line % self.n_sets
        ways = self._sets[si]
        victim = None
        if len(ways) >= self.assoc:
            victim = ways.pop(0)
            del self._where[victim]
        ways.append(line)
        self._where[line] = si
        return victim

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if present; returns True if it was resident."""
        si = self._where.pop(line, None)
        if si is None:
            return False
        self._sets[si].remove(line)
        return True

    def resident_lines(self) -> set[int]:
        """All currently resident line ids (for tests)."""
        return set(self._where)

    def __len__(self) -> int:
        return len(self._where)
