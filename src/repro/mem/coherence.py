"""Invalidation-based coherence state (timing only).

Tracks, per cache line, which cores' private L1s may hold the line and
which core (if any) holds it dirty.  The hierarchy consults this to
price accesses (cache-to-cache transfers, upgrade invalidations) and to
keep L1 presence bits honest when another core writes.

This is an approximate MSI directory: precise enough that false/true
sharing produce extra latency and invalidations, which is all the
fence-stall experiments need.  S-Fence itself requires *no* coherence
changes (Section VI-E) -- this module is part of the baseline substrate.
"""

from __future__ import annotations

from collections import defaultdict


class Directory:
    """Per-line sharer/owner bookkeeping."""

    __slots__ = ("_sharers", "_dirty_owner")

    def __init__(self) -> None:
        self._sharers: dict[int, set[int]] = defaultdict(set)
        self._dirty_owner: dict[int, int] = {}

    def sharers(self, line: int) -> set[int]:
        return self._sharers.get(line, set())

    def dirty_owner(self, line: int) -> int | None:
        return self._dirty_owner.get(line)

    def on_read(self, core: int, line: int) -> int | None:
        """Record a read by ``core``.

        Returns the previous dirty owner if the line must be supplied
        by (and downgraded in) a peer L1, else None.
        """
        owner = self._dirty_owner.get(line)
        supplier = None
        if owner is not None and owner != core:
            supplier = owner
            del self._dirty_owner[line]
        self._sharers[line].add(core)
        return supplier

    def on_write(self, core: int, line: int) -> set[int]:
        """Record a write by ``core``; returns the set of cores to invalidate."""
        victims = {c for c in self._sharers.get(line, ()) if c != core}
        self._sharers[line] = {core}
        self._dirty_owner[line] = core
        return victims

    def on_l1_evict(self, core: int, line: int) -> None:
        """Core ``core`` lost the line from its L1 (capacity/back-inval)."""
        sharers = self._sharers.get(line)
        if sharers is not None:
            sharers.discard(core)
            if not sharers:
                del self._sharers[line]
        if self._dirty_owner.get(line) == core:
            del self._dirty_owner[line]
