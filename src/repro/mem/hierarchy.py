"""Two-level MESI-style cache hierarchy latency model (Table III).

The default (``mesi``) :class:`~repro.mem.backend.CoherenceBackend`:
``access`` resolves one memory access to a latency in cycles and
updates cache/coherence state:

* L1 hit (and no coherence upgrade needed)         -> ``l1_latency``
* L1 miss, L2 hit                                  -> ``l2_latency``
* L1 miss, dirty in a peer L1 (cache-to-cache)     -> ``l2 + c2c``
* L2 miss                                          -> ``mem_latency``
* write upgrade (hit but peers share the line)     -> ``l2_latency``

L2 is inclusive of the L1s: an L2 eviction back-invalidates every L1.

Fence sync points are free here (:meth:`MemoryHierarchy.fence` returns
``None``): invalidation-based coherence keeps every cache coherent
continuously, so a fence is purely a core-side ordering matter -- the
property that keeps this backend bit-for-bit identical to the
pre-multi-backend simulator.
"""

from __future__ import annotations

from ..sim.config import SimConfig
from ..sim.stats import CoreStats
from .backend import CoherenceBackend
from .cache import Cache
from .coherence import Directory


class MemoryHierarchy(CoherenceBackend):
    """Private L1s + shared L2 + DRAM, with an MSI-style directory."""

    name = "mesi"

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        shift = config.line_bytes // config.word_bytes
        # words per line is a power of two for all sane configs; fall back
        # to division if not.
        self._line_shift = shift.bit_length() - 1 if shift & (shift - 1) == 0 else None
        self._words_per_line = shift
        self.l1 = [
            Cache(config.l1_lines, config.l1_assoc, name=f"l1.{c}")
            for c in range(config.n_cores)
        ]
        self.l2 = Cache(config.l2_lines, config.l2_assoc, name="l2")
        self.directory = Directory()
        # latency constants hoisted out of the per-access config chase
        self._l1_lat = config.l1_latency
        self._l2_lat = config.l2_latency
        self._c2c_lat = config.cache_to_cache_latency
        self._mem_lat = config.mem_latency
        # optional fault-injection hook (chaos harness): called as
        # ``fault(core, addr, is_write, latency) -> latency`` after the
        # architectural latency is resolved.  Injected latency may only
        # model slower memory, never a functional change, so every
        # perturbation keeps the run architecturally valid.
        self.fault = None

    def line_of(self, addr: int) -> int:
        if self._line_shift is not None:
            return addr >> self._line_shift
        return addr // self._words_per_line

    # ------------------------------------------------------------------------
    def access(self, core: int, addr: int, is_write: bool, stats: CoreStats) -> int:
        """Perform one timed access; returns the latency in cycles."""
        latency = self._access(core, addr, is_write, stats)
        fault = self.fault
        if fault is not None:
            latency = max(1, fault(core, addr, is_write, latency))
        return latency

    def completion_cycle(
        self, now: int, core: int, addr: int, is_write: bool, stats: CoreStats
    ) -> int:
        """Perform one timed access; returns the exact completion cycle.

        Part of the event-scheduler wake-up contract (architecture §9):
        the hierarchy resolves each access to an absolute wake-up cycle
        (``now`` + architectural latency + any injected fault latency)
        that the core schedules as a completion event, so memory never
        needs to be polled for readiness.
        """
        return now + self.access(core, addr, is_write, stats)

    def load_timed(self, core: int, addr: int, stats: CoreStats) -> tuple[bool, int]:
        """``(was_resident_in_l1, latency)`` for one read, in one walk.

        Exactly ``(resident_in_l1(), access())``: the L1 ``touch``
        doubles as the residency probe (it reports the pre-access hit
        state and never fills), so the compiled dispatch lane's
        resident-then-access pair collapses into a single set lookup.
        """
        line = (addr >> self._line_shift if self._line_shift is not None
                else addr // self._words_per_line)
        if self.l1[core].touch(line):
            stats.l1_hits += 1
            supplier = self.directory.on_read(core, line)
            latency = self._l2_lat if supplier is not None else self._l1_lat
            fault = self.fault
            if fault is not None:
                latency = max(1, fault(core, addr, False, latency))
            return True, latency

        stats.l1_misses += 1
        directory = self.directory
        supplier = directory.on_read(core, line)
        peer_dirty = supplier is not None
        l2 = self.l2
        in_l2 = l2.touch(line)
        if in_l2 or peer_dirty:
            stats.l2_hits += 1
            latency = self._l2_lat + (self._c2c_lat if peer_dirty else 0)
        else:
            stats.l2_misses += 1
            latency = self._mem_lat
        # _fill, with the touch results reused: the L1 insert is for a
        # line that just missed, and the L2 insert is a no-op whenever
        # the touch above already hit (it only refreshed recency)
        victim = self.l1[core].fill_absent(line)
        if victim is not None:
            directory.on_l1_evict(core, victim)
        if not in_l2:
            l2_victim = l2.fill_absent(line)
            if l2_victim is not None and l2_victim != line:
                for c, cache in enumerate(self.l1):
                    if cache.invalidate(l2_victim):
                        directory.on_l1_evict(c, l2_victim)
        fault = self.fault
        if fault is not None:
            latency = max(1, fault(core, addr, False, latency))
        return False, latency

    def access_batch(
        self, core: int, addrs, is_write: bool, stats: CoreStats
    ) -> list[tuple[bool, int]]:
        """Batch timing query (architecture §16) as one fused walk.

        Sequential semantics per the base contract -- each access
        observes the cache state its predecessors left -- but reads
        resolve through :meth:`load_timed`, halving the per-op lookup
        work the generic resident-then-access loop would do.
        """
        if is_write:
            return super().access_batch(core, addrs, is_write, stats)
        load_timed = self.load_timed
        return [load_timed(core, a, stats) for a in addrs]

    def fence(self, core: int, kind: str, waits: int, stats: CoreStats) -> None:
        """Sync points are free under invalidation-based coherence.

        Returning ``None`` (not a zero-cost :class:`~repro.mem.backend.
        SyncOutcome`) tells the core to emit no monitor event and charge
        nothing, so the mesi path stays byte-identical to the simulator
        before the backend interface existed.
        """
        return None

    def _access(self, core: int, addr: int, is_write: bool, stats: CoreStats) -> int:
        cfg = self.config
        line = self.line_of(addr)
        l1 = self.l1[core]

        if l1.touch(line):
            stats.l1_hits += 1
            if not is_write:
                # a hit read may still need a downgrade if a peer holds it
                # dirty; the directory makes that impossible (dirty implies
                # exclusive), so a resident read is always a plain hit.
                supplier = self.directory.on_read(core, line)
                if supplier is not None:
                    # stale presence (peer wrote since): treat as upgrade read
                    return cfg.l2_latency
                return cfg.l1_latency
            victims = self.directory.on_write(core, line)
            if victims:
                self._invalidate_l1s(victims, line)
                return cfg.l2_latency  # upgrade round-trip
            return cfg.l1_latency

        # L1 miss
        stats.l1_misses += 1
        if is_write:
            victims = self.directory.on_write(core, line)
            self._invalidate_l1s(victims, line)
            peer_dirty = bool(victims)
        else:
            supplier = self.directory.on_read(core, line)
            peer_dirty = supplier is not None

        if self.l2.touch(line):
            stats.l2_hits += 1
            latency = cfg.l2_latency + (cfg.cache_to_cache_latency if peer_dirty else 0)
        elif peer_dirty:
            # line lives dirty in a peer L1 but fell out of L2 (rare with an
            # inclusive L2; possible transiently) -- cache-to-cache transfer.
            stats.l2_hits += 1
            latency = cfg.l2_latency + cfg.cache_to_cache_latency
        else:
            stats.l2_misses += 1
            latency = cfg.mem_latency

        self._fill(core, line)
        return latency

    # ------------------------------------------------------------------------
    def _fill(self, core: int, line: int) -> None:
        l1 = self.l1[core]
        victim = l1.fill(line)
        if victim is not None:
            self.directory.on_l1_evict(core, victim)
        l2_victim = self.l2.fill(line)
        if l2_victim is not None and l2_victim != line:
            # inclusive L2: back-invalidate all L1 copies of the victim
            for c, cache in enumerate(self.l1):
                if cache.invalidate(l2_victim):
                    self.directory.on_l1_evict(c, l2_victim)

    def _invalidate_l1s(self, cores, line: int) -> None:
        for c in cores:
            if self.l1[c].invalidate(line):
                self.directory.on_l1_evict(c, line)

    # -- warm-up ------------------------------------------------------------------
    def warm(self, core: int, base: int, length: int, into_l1: bool = False) -> None:
        """Pre-load an address range into the caches without charging time.

        Models the warm-up phase a cycle-accurate simulator runs before
        measurement: the range is installed in the shared L2 (and
        optionally the core's L1) in read state.
        """
        first = self.line_of(base)
        last = self.line_of(base + length - 1)
        for line in range(first, last + 1):
            l2_victim = self.l2.fill(line)
            if l2_victim is not None and l2_victim != line:
                for c, cache in enumerate(self.l1):
                    if cache.invalidate(l2_victim):
                        self.directory.on_l1_evict(c, l2_victim)
            if into_l1:
                victim = self.l1[core].fill(line)
                if victim is not None:
                    self.directory.on_l1_evict(core, victim)
                self.directory.on_read(core, line)

    # -- introspection helpers (tests) -----------------------------------------
    def resident_in_l1(self, core: int, addr: int) -> bool:
        return self.l1[core].contains(self.line_of(addr))

    def resident_in_l2(self, addr: int) -> bool:
        return self.l2.contains(self.line_of(addr))

    def backend_stats(self) -> dict:
        """MESI keeps no per-sync counters; per-access ones live in CoreStats."""
        return {}
