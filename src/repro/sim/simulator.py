"""Multicore cycle-level simulation loop.

Cores are stepped round-robin inside a single global cycle loop, which
makes runs fully deterministic.  When no core makes progress in a cycle
the simulator *warps* forward to the earliest scheduled event (memory
completions dominate run time at 300-cycle latencies, so this is the
main performance lever); warped cycles are attributed to each core's
stall accounting so fence-stall statistics stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.core import Core
from ..isa.program import Program
from ..mem.hierarchy import MemoryHierarchy
from ..mem.memory import SharedMemory
from .config import SimConfig
from .diagnostics import SimDiagnostic, capture
from .stats import CoreStats, SimStats


class SimulationFailure(RuntimeError):
    """A run that ended abnormally; carries a :class:`SimDiagnostic`.

    ``diagnostic`` holds per-core post-mortem state (ROB head,
    store-buffer depth, open scopes, mapping table, last retired ops)
    so failures are debuggable without re-running under a debugger.
    """

    def __init__(self, message: str, diagnostic: SimDiagnostic | None = None) -> None:
        if diagnostic is not None:
            message = f"{message}\n{diagnostic.render()}"
        super().__init__(message)
        self.diagnostic = diagnostic


class DeadlockError(SimulationFailure):
    """No core can ever make progress again."""


class CycleLimitError(SimulationFailure):
    """The run exceeded ``SimConfig.max_cycles``."""


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    stats: SimStats
    memory: SharedMemory
    cycles: int

    @property
    def fence_stall_cycles(self) -> int:
        return self.stats.fence_stall_cycles

    @property
    def fence_stall_fraction(self) -> float:
        return self.stats.fence_stall_fraction


class Simulator:
    """Owns the shared memory, hierarchy and one core per thread."""

    def __init__(
        self,
        config: SimConfig,
        program: Program,
        memory: SharedMemory | None = None,
        tracer=None,
        timeline=None,
    ) -> None:
        if program.n_threads > config.n_cores:
            raise ValueError(
                f"program has {program.n_threads} threads but config has "
                f"{config.n_cores} cores"
            )
        self.config = config
        self.program = program
        self.memory = memory if memory is not None else SharedMemory(
            config.mem_size_words, config.n_cores
        )
        if self.memory.n_cores != config.n_cores:
            raise ValueError("shared memory core count does not match config")
        self.hierarchy = MemoryHierarchy(config)
        self.core_stats = [CoreStats(core_id=c) for c in range(config.n_cores)]
        self.cores = [
            Core(c, config, self.memory, self.hierarchy, self.core_stats[c])
            for c in range(config.n_cores)
        ]
        if tracer is not None:
            for core in self.cores:
                core.tracer = tracer
        self.timeline = timeline

    def run(self, max_cycles: int | None = None) -> SimResult:
        """Execute the program to completion; returns statistics."""
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        gens = self.program.spawn()
        for core, gen in zip(self.cores, gens):
            core.bind(gen)
        for core in self.cores[len(gens):]:
            core.bind(None)

        cores = self.cores
        timeline = self.timeline
        cycle = 0
        while cycle < limit:
            progress = False
            running = 0
            for core in cores:
                if core.tick(cycle):
                    progress = True
                if not core.finished:
                    running += 1
            if timeline is not None:
                timeline.sample(cycle, cores)
            if running == 0:
                break
            if not progress:
                nxt = None
                for core in cores:
                    if core.finished:
                        continue
                    ev = core.next_event_cycle(cycle)
                    if ev is not None and (nxt is None or ev < nxt):
                        nxt = ev
                if nxt is None or nxt <= cycle:
                    self._raise_deadlock(cycle)
                delta = nxt - cycle - 1  # cycles skipped before re-ticking at nxt
                if delta > 0:
                    for core in cores:
                        core.account_idle(delta)
                    if timeline is not None:
                        timeline.idle(cycle, delta, cores)
                cycle = nxt
            else:
                cycle += 1
        else:
            raise CycleLimitError(
                f"simulation exceeded {limit} cycles "
                f"({sum(1 for c in cores if not c.finished)} cores still running)",
                diagnostic=capture(cores, limit, "cycle-limit"),
            )

        stats = SimStats(cores=self.core_stats)
        stats.total_cycles = max((c.finish_cycle for c in cores), default=0)
        # cores that idled from cycle 0 (no thread) report zero cycles
        return SimResult(stats=stats, memory=self.memory, cycles=stats.total_cycles)

    def _raise_deadlock(self, cycle: int) -> None:
        raise DeadlockError(
            f"no progress possible at cycle {cycle}",
            diagnostic=capture(self.cores, cycle, "deadlock"),
        )


def run_program(program: Program, config: SimConfig | None = None, **config_overrides) -> SimResult:
    """Convenience one-shot runner used by examples and tests."""
    cfg = config if config is not None else SimConfig()
    if config_overrides:
        cfg = cfg.with_(**config_overrides)
    return Simulator(cfg, program).run()
